//! Semantic join discovery: find columns whose cells *mean* the same thing
//! even when the strings differ (misspellings, formats) — and compare with
//! what exact equi-matching would find.
//!
//! Run with: `cargo run --release --example semantic_discovery`

use deepjoin::model::{DeepJoin, DeepJoinConfig, Variant};
use deepjoin::train::JoinType;
use deepjoin_embed::cell_space::CellSpace;
use deepjoin_embed::ngram::{NgramConfig, NgramEmbedder};
use deepjoin_lake::column::Column;
use deepjoin_lake::corpus::{Corpus, CorpusConfig, CorpusProfile};
use deepjoin_lake::joinability::equi_joinability;
use deepjoin_lake::repository::Repository;

const TAU: f64 = 0.9;

fn main() {
    println!("generating a noisy web-table lake…");
    let mut cfg = CorpusConfig::new(CorpusProfile::Webtable, 2_000, 123);
    cfg.noise_rate = 0.25; // extra-noisy lake: equi-joins suffer
    let corpus = Corpus::generate(cfg);
    let (repo, _) = corpus.to_repository();

    println!("training DeepJoin for SEMANTIC joins (labels from PEXESO, tau={TAU})…");
    let train_cols = corpus.sample_queries(500, 5);
    let train_repo = Repository::from_columns(train_cols.into_iter().map(|(c, _)| c));
    let config = DeepJoinConfig {
        variant: Variant::MpLite,
        dim: 48,
        sgns: deepjoin_embed::SgnsConfig {
            dim: 48,
            epochs: 1,
            ..Default::default()
        },
        fine_tune: deepjoin::train::FineTuneConfig {
            epochs: 4,
            adam: deepjoin_nn::AdamConfig {
                lr: 5e-3,
                warmup_steps: 30,
                ..Default::default()
            },
            ..Default::default()
        },
        ..DeepJoinConfig::default()
    };
    let (mut model, report) =
        DeepJoin::train(&train_repo, JoinType::Semantic { tau: TAU }, config);
    println!("  {} PEXESO-labeled positives", report.num_positives);
    model.index_repository(&repo);

    // A deliberately misspelled query: every cell gets typos.
    let (clean, _) = corpus.sample_queries(1, 777).pop().expect("query");
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(9);
    let noisy_cells: Vec<String> = clean
        .cells
        .iter()
        .map(|c| deepjoin_lake::noise::perturb(c, &mut rng))
        .collect();
    let noisy = Column::new(noisy_cells, clean.meta.clone());

    println!(
        "\nquery (misspelled copy of a '{}' column): {:?}",
        clean.meta.column_name,
        &noisy.cells[..noisy.len().min(3)]
    );

    // Semantic retrieval still finds the joinable family…
    let hits = model.search(&noisy, 5);
    let space = CellSpace::new(NgramEmbedder::new(NgramConfig {
        dim: 48,
        ..NgramConfig::default()
    }));
    let qv = space.embed_column(&noisy);
    println!("\nDeepJoin (semantic) top-5:");
    for hit in &hits {
        let col = repo.column(hit.id);
        let sem = CellSpace::semantic_joinability(&qv, &space.embed_column(col), TAU);
        let equi = equi_joinability(&noisy, col);
        println!(
            "  {} '{}' — semantic jn {:.2}, equi jn {:.2}",
            hit.id, col.meta.table_title, sem, equi
        );
    }
    println!("\nNote how the semantic joinability stays high while exact (equi)");
    println!("matching often reports much lower overlap on the misspelled query.");
}
