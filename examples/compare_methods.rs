//! Compare the search systems head-to-head on one lake: exact (JOSIE),
//! approximate sketch-based (LSH Ensemble), and embedding-based (fastText
//! average vs fine-tuned DeepJoin) — accuracy and per-query latency.
//!
//! Run with: `cargo run --release --example compare_methods`

use std::time::Instant;

use deepjoin::baselines::{EmbeddingRetriever, FastTextEmbedder};
use deepjoin::model::{DeepJoin, DeepJoinConfig, Variant};
use deepjoin::text::{Textizer, TransformOption};
use deepjoin::train::JoinType;
use deepjoin_embed::ngram::{NgramConfig, NgramEmbedder};
use deepjoin_josie::JosieIndex;
use deepjoin_lake::corpus::{Corpus, CorpusConfig, CorpusProfile};
use deepjoin_lake::repository::Repository;
use deepjoin_lshensemble::{LshEnsembleConfig, LshEnsembleIndex};
use deepjoin_metrics::{mean, precision_at_k};

const K: usize = 10;

fn main() {
    println!("generating the lake…");
    let corpus = Corpus::generate(CorpusConfig::new(CorpusProfile::Webtable, 3_000, 8));
    let (repo, _) = corpus.to_repository();
    let queries: Vec<_> = corpus.sample_queries(20, 55);

    println!("building JOSIE (exact)…");
    let josie = JosieIndex::build(&repo);
    println!("building LSH Ensemble…");
    let lsh = LshEnsembleIndex::build(
        &repo,
        LshEnsembleConfig {
            num_perm: 32,
            ..Default::default()
        },
    );
    println!("building fastText retriever…");
    let ft = EmbeddingRetriever::build(
        FastTextEmbedder {
            ngram: NgramEmbedder::new(NgramConfig {
                dim: 48,
                ..NgramConfig::default()
            }),
            textizer: Textizer::new(TransformOption::TitleColnameStatCol, 48),
        },
        &repo,
        Default::default(),
    );
    println!("training DeepJoin…");
    let train_cols = corpus.sample_queries(800, 3);
    let train_repo = Repository::from_columns(train_cols.into_iter().map(|(c, _)| c));
    let (mut dj, _) = DeepJoin::train(
        &train_repo,
        JoinType::Equi,
        DeepJoinConfig {
            variant: Variant::MpLite,
            dim: 48,
            sgns: deepjoin_embed::SgnsConfig {
                dim: 48,
                epochs: 1,
                ..Default::default()
            },
            fine_tune: deepjoin::train::FineTuneConfig {
                epochs: 5,
                adam: deepjoin_nn::AdamConfig {
                    lr: 5e-3,
                    warmup_steps: 40,
                    ..Default::default()
                },
                ..Default::default()
            },
            ..DeepJoinConfig::default()
        },
    );
    dj.index_repository(&repo);

    // Evaluate each method against JOSIE's exact answer.
    let exact: Vec<Vec<u32>> = queries
        .iter()
        .map(|(q, _)| josie.search(q, K).iter().map(|s| s.id.0).collect())
        .collect();

    let report = |name: &str, f: &dyn Fn(&deepjoin_lake::Column) -> Vec<u32>| {
        let mut precs = Vec::new();
        let start = Instant::now();
        for ((q, _), ex) in queries.iter().zip(&exact) {
            let got = f(q);
            precs.push(precision_at_k(&got, ex, K));
        }
        let ms = start.elapsed().as_secs_f64() * 1e3 / queries.len() as f64;
        println!("{name:<16} precision@{K}: {:.3}   {ms:>8.2} ms/query", mean(&precs));
    };

    println!("\nmethod comparison (against exact top-{K}):");
    report("JOSIE (exact)", &|q| {
        josie.search(q, K).iter().map(|s| s.id.0).collect()
    });
    report("LSH Ensemble", &|q| {
        lsh.search(q, K).iter().map(|s| s.id.0).collect()
    });
    report("fastText", &|q| {
        ft.search(q, K).iter().map(|s| s.id.0).collect()
    });
    report("DeepJoin", &|q| {
        dj.search(q, K).iter().map(|s| s.id.0).collect()
    });
}
