//! Quickstart: generate a small data lake, train DeepJoin, and find
//! joinable columns for a query.
//!
//! Run with: `cargo run --release --example quickstart`

use deepjoin::model::{DeepJoin, DeepJoinConfig, Variant};
use deepjoin::train::JoinType;
use deepjoin_lake::corpus::{Corpus, CorpusConfig, CorpusProfile};
use deepjoin_lake::joinability::equi_joinability;

fn main() {
    // 1. A synthetic data lake standing in for a crawled corpus.
    println!("generating a synthetic data lake…");
    let corpus = Corpus::generate(CorpusConfig::new(CorpusProfile::Webtable, 2_000, 42));
    let (repo, _provenance) = corpus.to_repository();
    println!("  repository: {} searchable columns", repo.len());

    // 2. Train the model on fresh columns drawn from the same lake
    //    (self-supervised: positives come from a containment self-join).
    println!("training DeepJoin (MPLite variant, equi-joins)…");
    let train_cols = corpus.sample_queries(600, 7);
    let train_repo = deepjoin_lake::Repository::from_columns(
        train_cols.into_iter().map(|(c, _)| c),
    );
    let config = DeepJoinConfig {
        variant: Variant::MpLite,
        dim: 48,
        sgns: deepjoin_embed::SgnsConfig {
            dim: 48,
            epochs: 1,
            ..Default::default()
        },
        fine_tune: deepjoin::train::FineTuneConfig {
            epochs: 4,
            adam: deepjoin_nn::AdamConfig {
                lr: 5e-3,
                warmup_steps: 30,
                ..Default::default()
            },
            ..Default::default()
        },
        ..DeepJoinConfig::default()
    };
    let (mut model, report) = DeepJoin::train(&train_repo, JoinType::Equi, config);
    println!(
        "  trained on {} positive pairs (vocab {}), final loss {:.3}",
        report.num_pairs,
        report.vocab_size,
        report.epoch_losses.last().copied().unwrap_or(f32::NAN)
    );

    // 3. Index the repository offline (embed every column + HNSW).
    println!("indexing {} columns…", repo.len());
    model.index_repository(&repo);

    // 4. Search: take a fresh query column from the lake.
    let (query, _) = corpus.sample_queries(1, 99).pop().expect("one query");
    println!(
        "\nquery column '{}' from table '{}' ({} cells), first cells: {:?}",
        query.meta.column_name,
        query.meta.table_title,
        query.len(),
        &query.cells[..query.len().min(4)]
    );

    let hits = model.search(&query, 5);
    println!("\ntop-5 joinable columns:");
    for (rank, hit) in hits.iter().enumerate() {
        let col = repo.column(hit.id);
        let jn = equi_joinability(&query, col);
        println!(
            "  #{rank}: {} — '{}' in '{}' (true joinability {:.2})",
            hit.id, col.meta.column_name, col.meta.table_title, jn
        );
    }
}
