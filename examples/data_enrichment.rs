//! Data enrichment — the motivating scenario from the paper's introduction:
//! an analyst holds a table and wants more features for its key column; the
//! system finds lake tables that can be joined on, then materializes the
//! join.
//!
//! Run with: `cargo run --release --example data_enrichment`

use deepjoin::model::{DeepJoin, DeepJoinConfig, Variant};
use deepjoin::train::JoinType;
use deepjoin_lake::corpus::{Corpus, CorpusConfig, CorpusProfile};
use deepjoin_lake::fxhash::FxHashMap;
use deepjoin_lake::repository::Repository;

fn main() {
    println!("generating the lake…");
    let corpus = Corpus::generate(CorpusConfig::new(CorpusProfile::Webtable, 2_000, 31));
    let (repo, _) = corpus.to_repository();

    println!("training + indexing…");
    let train_cols = corpus.sample_queries(500, 15);
    let train_repo = Repository::from_columns(train_cols.into_iter().map(|(c, _)| c));
    let config = DeepJoinConfig {
        variant: Variant::DistilLite,
        dim: 48,
        sgns: deepjoin_embed::SgnsConfig {
            dim: 48,
            epochs: 1,
            ..Default::default()
        },
        fine_tune: deepjoin::train::FineTuneConfig {
            epochs: 3,
            adam: deepjoin_nn::AdamConfig {
                lr: 5e-3,
                warmup_steps: 30,
                ..Default::default()
            },
            ..Default::default()
        },
        ..DeepJoinConfig::default()
    };
    let (mut model, _) = DeepJoin::train(&train_repo, JoinType::Equi, config);
    model.index_repository(&repo);

    // The analyst's table: the key column they want to enrich.
    let (key_column, _) = corpus.sample_queries(1, 2024).pop().expect("query");
    println!(
        "\nanalyst's key column '{}' ({} cells) — searching for enrichment sources…",
        key_column.meta.column_name,
        key_column.len()
    );

    let hits = model.search(&key_column, 3);
    for hit in &hits {
        // Map the retrieved column back to its source table.
        let col = repo.column(hit.id);
        let table_id = col.meta.table_id.expect("lake columns carry table ids") as usize;
        let table = &corpus.tables[table_id];

        // Materialize the equi-join: build a hash map from the target key
        // column and enrich matching rows with the table's other columns.
        let mut index: FxHashMap<&str, usize> = FxHashMap::default();
        for (row, cell) in table.columns[table.key_column].iter().enumerate() {
            index.entry(cell.as_str()).or_insert(row);
        }
        let mut joined = 0usize;
        let mut sample: Option<(String, Vec<String>)> = None;
        for cell in key_column.distinct() {
            if let Some(&row) = index.get(cell.as_str()) {
                joined += 1;
                if sample.is_none() {
                    let extra: Vec<String> = table
                        .columns
                        .iter()
                        .enumerate()
                        .filter(|&(ci, _)| ci != table.key_column)
                        .map(|(_, col)| col[row].clone())
                        .collect();
                    sample = Some((cell.clone(), extra));
                }
            }
        }
        println!(
            "\n  source '{}' ({} extra attribute(s)) — {}/{} key values join",
            table.title,
            table.num_columns() - 1,
            joined,
            key_column.distinct_len()
        );
        if let Some((key, extras)) = sample {
            println!("    e.g. '{key}' enriched with {extras:?}");
        }
    }
}
