//! Workspace-level umbrella crate for the DeepJoin reproduction.
//!
//! This crate exists to host the runnable [examples](../examples) and the
//! cross-crate integration tests in `/tests`. The actual functionality lives
//! in the `deepjoin-*` member crates; see the repository `README.md` and
//! `DESIGN.md` for the crate map.

pub use deepjoin;
pub use deepjoin_ann as ann;
pub use deepjoin_embed as embed;
pub use deepjoin_josie as josie;
pub use deepjoin_lake as lake;
pub use deepjoin_lshensemble as lshensemble;
pub use deepjoin_metrics as metrics;
pub use deepjoin_nn as nn;
pub use deepjoin_pexeso as pexeso;
