#!/usr/bin/env bash
# Reproducible performance baselines: builds the bench binaries in release
# mode, runs the selected suite, and validates the emitted report against
# its schema.
#
# Usage:
#   scripts/bench.sh [ann|quant|load|serve] [--quick] [extra args...]
#
#   scripts/bench.sh                  # ann suite, full corpus -> BENCH_ann.json
#   scripts/bench.sh quant            # SQ8 suite, full corpus -> BENCH_quant.json
#   scripts/bench.sh load             # cold-start suite -> BENCH_load.json
#   scripts/bench.sh serve            # overload suite -> BENCH_serve.json
#   scripts/bench.sh --quick          # ann suite, tiny corpus (CI smoke)
#   scripts/bench.sh quant --quick    # SQ8 suite, tiny corpus (CI smoke)
#
# Extra arguments are forwarded to the bench binary (e.g. --threads 4
# --out p.json). The first argument selects the suite; anything else is
# forwarded, so the historical `scripts/bench.sh --quick` still runs the
# ann suite.
set -euo pipefail
cd "$(dirname "$0")/.."

SUITE="ann"
if [[ $# -gt 0 && ("$1" == "ann" || "$1" == "quant" || "$1" == "load" || "$1" == "serve") ]]; then
    SUITE="$1"
    shift
fi

case "$SUITE" in
    ann) BIN="bench_ann"; OUT="BENCH_ann.json" ;;
    quant) BIN="bench_quant"; OUT="BENCH_quant.json" ;;
    load) BIN="bench_load"; OUT="BENCH_load.json" ;;
    serve) BIN="bench_serve"; OUT="BENCH_serve.json" ;;
esac

args=("$@")
for ((i = 0; i < ${#args[@]}; i++)); do
    if [[ "${args[$i]}" == "--out" ]]; then
        OUT="${args[$((i + 1))]}"
    fi
done

cargo build --release -p deepjoin-bench --bin "$BIN"
"./target/release/$BIN" --out "$OUT" "$@"

# Schema check: required keys present, speedups and recalls are numbers.
python3 - "$SUITE" "$OUT" <<'EOF'
import json, sys

suite, path = sys.argv[1], sys.argv[2]
with open(path) as f:
    report = json.load(f)

if suite == "ann":
    required = {
        "schema": str, "mode": str, "corpus": dict, "threads": int,
        "kernel_before": str, "kernel_after": str,
        "flat_qps_before": (int, float), "flat_qps_after": (int, float),
        "flat_speedup": (int, float),
        "hnsw_build_s_before": (int, float), "hnsw_build_s_after": (int, float),
        "hnsw_build_speedup": (int, float),
        "recall_at_k_before": (int, float), "recall_at_k_after": (int, float),
    }
elif suite == "serve":
    required = {
        "schema": str, "mode": str, "corpus": dict, "threads": int,
        "capacity_qps": (int, float), "scenarios": list, "pipelined": dict,
        "skew": dict, "server": dict, "unstructured_responses": int,
    }
elif suite == "load":
    required = {
        "schema": str, "mode": str, "corpus": dict, "threads": int,
        "artifact_v1_bytes": int, "artifact_v2_bytes": int,
        "cold_s_v1_heap": (int, float), "cold_s_v2_heap": (int, float),
        "first_open_s_v2_mmap": (int, float), "cold_s_v2_mmap": (int, float),
        "peak_rss_kb_v1_heap": int, "peak_rss_kb_v2_heap": int,
        "peak_rss_kb_v2_mmap": int,
        "cold_speedup_v2_mmap_vs_v1_heap": (int, float),
        "hot_reload_ms": (int, float),
    }
else:
    required = {
        "schema": str, "mode": str, "corpus": dict, "threads": int,
        "kernel": str, "rescore_factor": int,
        "f32_bytes": int, "sq8_bytes": int, "bytes_ratio": (int, float),
        "qps_f32": (int, float), "qps_sq8": (int, float),
        "qps_speedup": (int, float),
        "recall_at_k_sq8": (int, float), "recall_delta": (int, float),
    }
for key, ty in required.items():
    assert key in report, f"missing key: {key}"
    assert isinstance(report[key], ty), f"bad type for {key}: {report[key]!r}"
expected_version = "v2" if suite == "serve" else "v1"
assert report["schema"] == f"bench_{suite}/{expected_version}", report["schema"]
for key in ("n", "dim", "nq", "k"):
    assert isinstance(report["corpus"].get(key), int), f"corpus.{key}"

if suite == "ann":
    assert 0.0 <= report["recall_at_k_before"] <= 1.0
    assert 0.0 <= report["recall_at_k_after"] <= 1.0
    print(f"{path}: schema OK "
          f"(flat {report['flat_speedup']:.2f}x, "
          f"build {report['hnsw_build_speedup']:.2f}x, "
          f"recall {report['recall_at_k_before']:.4f} -> "
          f"{report['recall_at_k_after']:.4f})")
elif suite == "serve":
    # Every response under overload must be structured: a shed is a typed
    # Overloaded error, never a dropped connection or a garbled frame.
    assert report["unstructured_responses"] == 0, report["unstructured_responses"]
    assert report["capacity_qps"] > 0.0
    names = [s["name"] for s in report["scenarios"]]
    assert names == ["open_1x", "open_3x", "open_10x"], names
    for s in report["scenarios"]:
        for key in ("offered_qps", "goodput_qps", "shed", "p50_ms", "p99_ms"):
            assert key in s, f"scenario {s['name']} missing {key}"
        assert s["unstructured"] == 0, s
    skew = report["skew"]
    for key in ("cold_goodput_1x_qps", "cold_goodput_10x_qps", "cold_retention",
                "hot_shed"):
        assert key in skew, f"skew missing {key}"
    srv = report["server"]
    for key in ("accepted", "shed", "bucket_shed", "displaced", "codel_shed",
                "brownout_steps_down", "brownout_steps_up", "brownout_answers"):
        assert key in srv, f"server missing {key}"
    pipe = report["pipelined"]
    for key in ("points", "single_goodput_qps", "batched_goodput",
                "batched_speedup", "wave_size_p50", "bit_identical"):
        assert key in pipe, f"pipelined missing {key}"
    assert pipe["bit_identical"] is True, "pipelined answers diverged"
    depths = [pt["depth"] for pt in pipe["points"]]
    assert depths == [1, 4, 16, 64], depths
    for pt in pipe["points"]:
        for key in ("goodput_qps", "wave_size_p50", "shed"):
            assert key in pt, f"pipelined point missing {key}"
    # Headline fairness criterion, meaningful only at full scale: cold
    # tenants keep >= 80% of their uncontended goodput under a 10x flood
    # with an 8:1 hot-tenant skew. The quick corpus still checks the
    # schema and structured-response invariant.
    if report["mode"] == "full":
        assert skew["cold_retention"] >= 0.8, skew["cold_retention"]
        assert report["scenarios"][2]["shed"] > 0, "10x overload never shed"
        assert pipe["batched_speedup"] >= 1.4, pipe["batched_speedup"]
    print(f"{path}: schema OK "
          f"(capacity {report['capacity_qps']:.0f} qps, "
          f"10x goodput {report['scenarios'][2]['goodput_qps']:.0f} qps, "
          f"cold retention {skew['cold_retention']:.2f}, "
          f"pipelined {pipe['batched_speedup']:.2f}x at wave p50 "
          f"{pipe['wave_size_p50']}, "
          f"{report['unstructured_responses']} unstructured)")
elif suite == "load":
    for key in ("cold_s_v1_heap", "cold_s_v2_heap", "cold_s_v2_mmap"):
        assert report[key] > 0.0, f"{key} must be positive"
    # The headline criteria only hold at production scale: on the quick
    # corpus every artifact loads in milliseconds and fixed per-process
    # overhead dominates, so only the schema is checked there.
    if report["mode"] == "full":
        assert report["cold_speedup_v2_mmap_vs_v1_heap"] >= 5.0, \
            report["cold_speedup_v2_mmap_vs_v1_heap"]
        assert report["hot_reload_ms"] < 50.0, report["hot_reload_ms"]
    print(f"{path}: schema OK "
          f"(cold {report['cold_s_v1_heap']:.3f}s v1-heap -> "
          f"{report['cold_s_v2_mmap']:.3f}s v2-mmap "
          f"({report['cold_speedup_v2_mmap_vs_v1_heap']:.2f}x), "
          f"hot remap {report['hot_reload_ms']:.2f} ms)")
else:
    assert 0.0 <= report["recall_at_k_sq8"] <= 1.0
    # Size and accuracy invariants hold on any machine; the QPS speedup is
    # only load-bearing on the full corpus (the quick corpus fits in cache,
    # so the bandwidth advantage that motivates SQ8 barely shows).
    assert report["bytes_ratio"] >= 3.5, report["bytes_ratio"]
    assert report["recall_delta"] <= 0.01, report["recall_delta"]
    if report["mode"] == "full":
        assert report["qps_speedup"] >= 1.5, report["qps_speedup"]
    print(f"{path}: schema OK "
          f"(qps {report['qps_speedup']:.2f}x, "
          f"bytes {report['bytes_ratio']:.2f}x smaller, "
          f"recall@k {report['recall_at_k_sq8']:.4f})")
EOF
