#!/usr/bin/env bash
# Reproducible ANN performance baseline: builds the workspace in release
# mode, runs the before/after kernel + parallelism benchmark, and validates
# the emitted report against the bench_ann/v1 schema.
#
# Usage:
#   scripts/bench.sh            # full corpus, writes BENCH_ann.json
#   scripts/bench.sh --quick    # tiny corpus (CI smoke), same schema
#
# Extra arguments are forwarded to bench_ann (e.g. --threads 4 --out p.json).
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="BENCH_ann.json"
args=("$@")
for ((i = 0; i < ${#args[@]}; i++)); do
    if [[ "${args[$i]}" == "--out" ]]; then
        OUT="${args[$((i + 1))]}"
    fi
done

cargo build --release -p deepjoin-bench --bin bench_ann
./target/release/bench_ann --out "$OUT" "$@"

# Schema check: required keys present, speedups and recalls are numbers.
python3 - "$OUT" <<'EOF'
import json, sys

path = sys.argv[1]
with open(path) as f:
    report = json.load(f)

required = {
    "schema": str, "mode": str, "corpus": dict, "threads": int,
    "kernel_before": str, "kernel_after": str,
    "flat_qps_before": (int, float), "flat_qps_after": (int, float),
    "flat_speedup": (int, float),
    "hnsw_build_s_before": (int, float), "hnsw_build_s_after": (int, float),
    "hnsw_build_speedup": (int, float),
    "recall_at_k_before": (int, float), "recall_at_k_after": (int, float),
}
for key, ty in required.items():
    assert key in report, f"missing key: {key}"
    assert isinstance(report[key], ty), f"bad type for {key}: {report[key]!r}"
assert report["schema"] == "bench_ann/v1", report["schema"]
for key in ("n", "dim", "nq", "k"):
    assert isinstance(report["corpus"].get(key), int), f"corpus.{key}"
assert 0.0 <= report["recall_at_k_before"] <= 1.0
assert 0.0 <= report["recall_at_k_after"] <= 1.0
print(f"{path}: schema OK "
      f"(flat {report['flat_speedup']:.2f}x, "
      f"build {report['hnsw_build_speedup']:.2f}x, "
      f"recall {report['recall_at_k_before']:.4f} -> "
      f"{report['recall_at_k_after']:.4f})")
EOF
