#!/usr/bin/env bash
# Regenerate every paper table. Output lands in results/.
# Usage: DJ_SCALE=small scripts/run_all_experiments.sh
set -uo pipefail

SCALE="${DJ_SCALE:-small}"
OUT="results/$SCALE"
mkdir -p "$OUT"

run() {
  local name="$1"; shift
  echo "=== $name ($*) ==="
  DJ_SCALE="$SCALE" cargo run --release -p deepjoin-bench --bin "$@" \
    > "$OUT/$name.txt" 2> "$OUT/$name.err" || echo "  FAILED: $name"
  tail -n 3 "$OUT/$name.txt"
}

cargo build --release -p deepjoin-bench

run table2  exp_table2
run table3  exp_accuracy -- equi
run table4  exp_accuracy -- semantic 0.9
run table5  exp_accuracy -- semantic 0.8
run table6  exp_accuracy -- semantic 0.7
run table7  exp_expert
run table8  exp_colsize_accuracy
run table9  exp_ablation_text -- equi
run table10 exp_ablation_text -- semantic
run table11 exp_ablation_shuffle -- equi
run table12 exp_ablation_shuffle -- semantic
run table13 exp_scalability
run table14 exp_vary_k
run table15 exp_colsize_time
run ablation_anns exp_ablation_anns

echo "all done; outputs in $OUT/"
