//! # deepjoin-simd
//!
//! Runtime-dispatched `f32` kernels for the hot distance paths (DESIGN.md
//! §"Performance"). Every index in `deepjoin-ann`, the embedding helpers in
//! `deepjoin-embed` and the matrix loops in `deepjoin-nn` funnel their inner
//! products through this crate, so one dispatch decision accelerates the
//! whole system.
//!
//! Three implementations of each kernel exist:
//!
//! * **scalar** — the straight-line reference (`iter().zip()` chains), kept
//!   as the parity oracle and the before-side of the bench baseline;
//! * **portable** — an 8-accumulator unrolled loop with a fixed reduction
//!   tree, written so LLVM autovectorizes it on any target;
//! * **avx2** — explicit AVX2+FMA intrinsics behind
//!   `is_x86_feature_detected!`, with a 4-row blocked one-query-vs-many
//!   kernel ([`l2_sq_block`]/[`dot_block`]).
//!
//! Dispatch is decided once per process (cached CPUID probe) and can be
//! pinned with [`force_kernel`] so benchmarks can measure before/after in
//! one binary. Results are deterministic for a fixed kernel: each variant
//! uses a fixed accumulation order, so the same inputs always produce the
//! same bits regardless of thread count or call site.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Which kernel implementation serves the dispatched entry points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Straight-line reference implementation.
    Scalar,
    /// Portable 8-lane unrolled accumulators (autovectorizes).
    Portable8,
    /// AVX2 + FMA intrinsics (x86-64 only, runtime-detected).
    Avx2,
}

impl Kernel {
    /// Stable lower-case name (used in bench output).
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Scalar => "scalar",
            Kernel::Portable8 => "portable8",
            Kernel::Avx2 => "avx2",
        }
    }
}

/// 0 = no override, otherwise `Kernel as u8 + 1`.
static FORCED: AtomicU8 = AtomicU8::new(0);
static DETECTED: OnceLock<Kernel> = OnceLock::new();

fn detect() -> Kernel {
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
            return Kernel::Avx2;
        }
    }
    Kernel::Portable8
}

/// The kernel the dispatched entry points currently use.
#[inline]
pub fn active_kernel() -> Kernel {
    match FORCED.load(Ordering::Relaxed) {
        1 => Kernel::Scalar,
        2 => Kernel::Portable8,
        3 => Kernel::Avx2,
        _ => *DETECTED.get_or_init(detect),
    }
}

/// Pin the dispatched kernel (`None` restores auto-detection).
///
/// Intended for benchmarks that measure before/after in one process; the
/// override is process-global, so don't flip it while other threads are
/// mid-search. Forcing [`Kernel::Avx2`] on a machine without AVX2+FMA falls
/// back to auto-detection.
pub fn force_kernel(kernel: Option<Kernel>) {
    let tag = match kernel {
        Some(Kernel::Scalar) => 1,
        Some(Kernel::Portable8) => 2,
        Some(Kernel::Avx2) if detect() == Kernel::Avx2 => 3,
        _ => 0,
    };
    FORCED.store(tag, Ordering::Relaxed);
}

/// Scalar reference kernels — the parity oracle for the optimized paths.
pub mod scalar {
    /// Dot product.
    #[inline]
    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    /// Squared Euclidean distance.
    #[inline]
    pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        a.iter()
            .zip(b)
            .map(|(x, y)| {
                let d = x - y;
                d * d
            })
            .sum()
    }

    /// `acc[i] += s * x[i]`.
    #[inline]
    pub fn axpy(acc: &mut [f32], x: &[f32], s: f32) {
        debug_assert_eq!(acc.len(), x.len());
        for (a, v) in acc.iter_mut().zip(x) {
            *a += s * v;
        }
    }

    /// Dot product of two u8 code rows, accumulated exactly in `u32`.
    /// Exact for `len ≤ 66051` (255² · len must fit in u32) — far beyond
    /// any embedding dimension this crate serves.
    #[inline]
    pub fn dot_u8(a: &[u8], b: &[u8]) -> u32 {
        debug_assert_eq!(a.len(), b.len());
        a.iter().zip(b).map(|(&x, &y)| x as u32 * y as u32).sum()
    }

    /// Dot product of an f32 query against a u8 code row:
    /// `Σ q[i] · c[i]` with the codes widened to f32.
    #[inline]
    pub fn dot_f32u8(q: &[f32], c: &[u8]) -> f32 {
        debug_assert_eq!(q.len(), c.len());
        q.iter().zip(c).map(|(&x, &y)| x * y as f32).sum()
    }

    /// Asymmetric squared L2 between a prepared query and a u8 code row:
    /// `Σ (t[i] − s[i]·c[i])²`, where `t = query − offset` and `s` is the
    /// per-dimension scale — i.e. the exact squared distance between the
    /// query and the *dequantized* row, in one pass over the codes.
    #[inline]
    pub fn l2_sq_f32u8(t: &[f32], s: &[f32], c: &[u8]) -> f32 {
        debug_assert_eq!(t.len(), c.len());
        debug_assert_eq!(s.len(), c.len());
        t.iter()
            .zip(s)
            .zip(c)
            .map(|((&ti, &si), &ci)| {
                let d = ti - si * ci as f32;
                d * d
            })
            .sum()
    }
}

/// Portable unrolled kernels: 8 independent accumulators reduced in a fixed
/// tree, so LLVM can keep 8 lanes in flight without needing permission to
/// reassociate the final sum.
mod portable {
    #[inline]
    fn reduce8(acc: [f32; 8]) -> f32 {
        ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]))
    }

    #[inline]
    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        let mut acc = [0f32; 8];
        let ca = a.chunks_exact(8);
        let cb = b.chunks_exact(8);
        let (ra, rb) = (ca.remainder(), cb.remainder());
        for (xa, xb) in ca.zip(cb) {
            for k in 0..8 {
                acc[k] += xa[k] * xb[k];
            }
        }
        let mut s = reduce8(acc);
        for (x, y) in ra.iter().zip(rb) {
            s += x * y;
        }
        s
    }

    #[inline]
    pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
        let mut acc = [0f32; 8];
        let ca = a.chunks_exact(8);
        let cb = b.chunks_exact(8);
        let (ra, rb) = (ca.remainder(), cb.remainder());
        for (xa, xb) in ca.zip(cb) {
            for k in 0..8 {
                let d = xa[k] - xb[k];
                acc[k] += d * d;
            }
        }
        let mut s = reduce8(acc);
        for (x, y) in ra.iter().zip(rb) {
            let d = x - y;
            s += d * d;
        }
        s
    }

    #[inline]
    pub fn axpy(acc: &mut [f32], x: &[f32], s: f32) {
        let ca = acc.chunks_exact_mut(8);
        let cx = x.chunks_exact(8);
        let n8 = x.len() - x.len() % 8;
        for (xa, xx) in ca.zip(cx) {
            for k in 0..8 {
                xa[k] += s * xx[k];
            }
        }
        for (a, v) in acc[n8..].iter_mut().zip(&x[n8..]) {
            *a += s * v;
        }
    }

    #[inline]
    fn reduce8_u32(acc: [u32; 8]) -> u32 {
        ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]))
    }

    #[inline]
    pub fn dot_u8(a: &[u8], b: &[u8]) -> u32 {
        let mut acc = [0u32; 8];
        let ca = a.chunks_exact(8);
        let cb = b.chunks_exact(8);
        let (ra, rb) = (ca.remainder(), cb.remainder());
        for (xa, xb) in ca.zip(cb) {
            for k in 0..8 {
                acc[k] += xa[k] as u32 * xb[k] as u32;
            }
        }
        let mut s = reduce8_u32(acc);
        for (x, y) in ra.iter().zip(rb) {
            s += *x as u32 * *y as u32;
        }
        s
    }

    #[inline]
    pub fn dot_f32u8(q: &[f32], c: &[u8]) -> f32 {
        let mut acc = [0f32; 8];
        let cq = q.chunks_exact(8);
        let cc = c.chunks_exact(8);
        let (rq, rc) = (cq.remainder(), cc.remainder());
        for (xq, xc) in cq.zip(cc) {
            for k in 0..8 {
                acc[k] += xq[k] * xc[k] as f32;
            }
        }
        let mut s = reduce8(acc);
        for (x, y) in rq.iter().zip(rc) {
            s += x * *y as f32;
        }
        s
    }

    #[inline]
    pub fn l2_sq_f32u8(t: &[f32], s: &[f32], c: &[u8]) -> f32 {
        let mut acc = [0f32; 8];
        let ct = t.chunks_exact(8);
        let cs = s.chunks_exact(8);
        let cc = c.chunks_exact(8);
        let n8 = c.len() - c.len() % 8;
        for ((xt, xs), xc) in ct.zip(cs).zip(cc) {
            for k in 0..8 {
                let d = xt[k] - xs[k] * xc[k] as f32;
                acc[k] += d * d;
            }
        }
        let mut sum = reduce8(acc);
        for ((x, y), z) in t[n8..].iter().zip(&s[n8..]).zip(&c[n8..]) {
            let d = x - y * *z as f32;
            sum += d * d;
        }
        sum
    }
}

/// AVX2+FMA kernels. Safety: every function is `#[target_feature]`-gated and
/// only reachable through [`active_kernel`] after a successful CPUID probe.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use core::arch::x86_64::*;

    #[inline]
    unsafe fn hsum256(v: __m256) -> f32 {
        // (hi + lo) -> 128; then horizontal pairwise adds.
        let lo = _mm256_castps256_ps128(v);
        let hi = _mm256_extractf128_ps(v, 1);
        let s = _mm_add_ps(lo, hi);
        let shuf = _mm_movehdup_ps(s);
        let sums = _mm_add_ps(s, shuf);
        let shuf2 = _mm_movehl_ps(shuf, sums);
        _mm_cvtss_f32(_mm_add_ss(sums, shuf2))
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn dot(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut i = 0;
        while i + 16 <= n {
            acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)), acc0);
            acc1 = _mm256_fmadd_ps(
                _mm256_loadu_ps(pa.add(i + 8)),
                _mm256_loadu_ps(pb.add(i + 8)),
                acc1,
            );
            i += 16;
        }
        if i + 8 <= n {
            acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)), acc0);
            i += 8;
        }
        let mut s = hsum256(_mm256_add_ps(acc0, acc1));
        while i < n {
            s += *pa.add(i) * *pb.add(i);
            i += 1;
        }
        s
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut i = 0;
        while i + 16 <= n {
            let d0 = _mm256_sub_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)));
            acc0 = _mm256_fmadd_ps(d0, d0, acc0);
            let d1 = _mm256_sub_ps(_mm256_loadu_ps(pa.add(i + 8)), _mm256_loadu_ps(pb.add(i + 8)));
            acc1 = _mm256_fmadd_ps(d1, d1, acc1);
            i += 16;
        }
        if i + 8 <= n {
            let d = _mm256_sub_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)));
            acc0 = _mm256_fmadd_ps(d, d, acc0);
            i += 8;
        }
        let mut s = hsum256(_mm256_add_ps(acc0, acc1));
        while i < n {
            let d = *pa.add(i) - *pb.add(i);
            s += d * d;
            i += 1;
        }
        s
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn axpy(acc: &mut [f32], x: &[f32], s: f32) {
        let n = acc.len();
        let pa = acc.as_mut_ptr();
        let px = x.as_ptr();
        let vs = _mm256_set1_ps(s);
        let mut i = 0;
        while i + 8 <= n {
            let r = _mm256_fmadd_ps(vs, _mm256_loadu_ps(px.add(i)), _mm256_loadu_ps(pa.add(i)));
            _mm256_storeu_ps(pa.add(i), r);
            i += 8;
        }
        while i < n {
            *pa.add(i) += s * *px.add(i);
            i += 1;
        }
    }

    /// Blocked one-query-vs-many dot: 4 rows share each query load, so the
    /// query streams from registers while rows stream from memory.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn dot_block(query: &[f32], data: &[f32], out: &mut [f32]) {
        let dim = query.len();
        let rows = out.len();
        let pq = query.as_ptr();
        let pd = data.as_ptr();
        let d8 = dim - dim % 8;
        let mut r = 0;
        while r + 4 <= rows {
            let (r0, r1, r2, r3) = (
                pd.add(r * dim),
                pd.add((r + 1) * dim),
                pd.add((r + 2) * dim),
                pd.add((r + 3) * dim),
            );
            let mut a0 = _mm256_setzero_ps();
            let mut a1 = _mm256_setzero_ps();
            let mut a2 = _mm256_setzero_ps();
            let mut a3 = _mm256_setzero_ps();
            let mut j = 0;
            while j < d8 {
                let q = _mm256_loadu_ps(pq.add(j));
                a0 = _mm256_fmadd_ps(q, _mm256_loadu_ps(r0.add(j)), a0);
                a1 = _mm256_fmadd_ps(q, _mm256_loadu_ps(r1.add(j)), a1);
                a2 = _mm256_fmadd_ps(q, _mm256_loadu_ps(r2.add(j)), a2);
                a3 = _mm256_fmadd_ps(q, _mm256_loadu_ps(r3.add(j)), a3);
                j += 8;
            }
            let mut s0 = hsum256(a0);
            let mut s1 = hsum256(a1);
            let mut s2 = hsum256(a2);
            let mut s3 = hsum256(a3);
            while j < dim {
                let q = *pq.add(j);
                s0 += q * *r0.add(j);
                s1 += q * *r1.add(j);
                s2 += q * *r2.add(j);
                s3 += q * *r3.add(j);
                j += 1;
            }
            out[r] = s0;
            out[r + 1] = s1;
            out[r + 2] = s2;
            out[r + 3] = s3;
            r += 4;
        }
        while r < rows {
            out[r] = dot(query, std::slice::from_raw_parts(pd.add(r * dim), dim));
            r += 1;
        }
    }

    /// Blocked one-query-vs-many squared L2 (see [`dot_block`]).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn l2_sq_block(query: &[f32], data: &[f32], out: &mut [f32]) {
        let dim = query.len();
        let rows = out.len();
        let pq = query.as_ptr();
        let pd = data.as_ptr();
        let d8 = dim - dim % 8;
        let mut r = 0;
        while r + 4 <= rows {
            let (r0, r1, r2, r3) = (
                pd.add(r * dim),
                pd.add((r + 1) * dim),
                pd.add((r + 2) * dim),
                pd.add((r + 3) * dim),
            );
            let mut a0 = _mm256_setzero_ps();
            let mut a1 = _mm256_setzero_ps();
            let mut a2 = _mm256_setzero_ps();
            let mut a3 = _mm256_setzero_ps();
            let mut j = 0;
            while j < d8 {
                let q = _mm256_loadu_ps(pq.add(j));
                let d0 = _mm256_sub_ps(q, _mm256_loadu_ps(r0.add(j)));
                a0 = _mm256_fmadd_ps(d0, d0, a0);
                let d1 = _mm256_sub_ps(q, _mm256_loadu_ps(r1.add(j)));
                a1 = _mm256_fmadd_ps(d1, d1, a1);
                let d2 = _mm256_sub_ps(q, _mm256_loadu_ps(r2.add(j)));
                a2 = _mm256_fmadd_ps(d2, d2, a2);
                let d3 = _mm256_sub_ps(q, _mm256_loadu_ps(r3.add(j)));
                a3 = _mm256_fmadd_ps(d3, d3, a3);
                j += 8;
            }
            let mut s0 = hsum256(a0);
            let mut s1 = hsum256(a1);
            let mut s2 = hsum256(a2);
            let mut s3 = hsum256(a3);
            while j < dim {
                let q = *pq.add(j);
                let (e0, e1, e2, e3) = (
                    q - *r0.add(j),
                    q - *r1.add(j),
                    q - *r2.add(j),
                    q - *r3.add(j),
                );
                s0 += e0 * e0;
                s1 += e1 * e1;
                s2 += e2 * e2;
                s3 += e3 * e3;
                j += 1;
            }
            out[r] = s0;
            out[r + 1] = s1;
            out[r + 2] = s2;
            out[r + 3] = s3;
            r += 4;
        }
        while r < rows {
            out[r] = l2_sq(query, std::slice::from_raw_parts(pd.add(r * dim), dim));
            r += 1;
        }
    }

    #[inline]
    unsafe fn hsum256_epi32(v: __m256i) -> u32 {
        let lo = _mm256_castsi256_si128(v);
        let hi = _mm256_extracti128_si256(v, 1);
        let s = _mm_add_epi32(lo, hi);
        let s = _mm_add_epi32(s, _mm_unpackhi_epi64(s, s));
        let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0x55));
        _mm_cvtsi128_si32(s) as u32
    }

    /// Widen 8 u8 codes (at `p`) to a `__m256` of f32s.
    #[inline]
    unsafe fn load8_u8_ps(p: *const u8) -> __m256 {
        _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(_mm_loadl_epi64(p as *const __m128i)))
    }

    /// u8×u8 dot. `_mm256_maddubs_epi16` saturates for unsigned×unsigned
    /// (products reach 255² = 65025 > i16::MAX), so both sides widen to i16
    /// via `cvtepu8_epi16` first and `madd_epi16` pairs them into i32 lanes.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot_u8(a: &[u8], b: &[u8]) -> u32 {
        let n = a.len();
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut acc = _mm256_setzero_si256();
        let mut i = 0;
        while i + 16 <= n {
            let va = _mm256_cvtepu8_epi16(_mm_loadu_si128(pa.add(i) as *const __m128i));
            let vb = _mm256_cvtepu8_epi16(_mm_loadu_si128(pb.add(i) as *const __m128i));
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(va, vb));
            i += 16;
        }
        let mut s = hsum256_epi32(acc);
        while i < n {
            s += *pa.add(i) as u32 * *pb.add(i) as u32;
            i += 1;
        }
        s
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn dot_f32u8(q: &[f32], c: &[u8]) -> f32 {
        let n = q.len();
        let pq = q.as_ptr();
        let pc = c.as_ptr();
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut i = 0;
        while i + 16 <= n {
            acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(pq.add(i)), load8_u8_ps(pc.add(i)), acc0);
            acc1 = _mm256_fmadd_ps(
                _mm256_loadu_ps(pq.add(i + 8)),
                load8_u8_ps(pc.add(i + 8)),
                acc1,
            );
            i += 16;
        }
        if i + 8 <= n {
            acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(pq.add(i)), load8_u8_ps(pc.add(i)), acc0);
            i += 8;
        }
        let mut s = hsum256(_mm256_add_ps(acc0, acc1));
        while i < n {
            s += *pq.add(i) * *pc.add(i) as f32;
            i += 1;
        }
        s
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn l2_sq_f32u8(t: &[f32], s: &[f32], c: &[u8]) -> f32 {
        let n = t.len();
        let pt = t.as_ptr();
        let ps = s.as_ptr();
        let pc = c.as_ptr();
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut i = 0;
        while i + 16 <= n {
            // fnmadd(s, c, t) = t − s·c, the residual against the
            // dequantized coordinate.
            let d0 = _mm256_fnmadd_ps(
                _mm256_loadu_ps(ps.add(i)),
                load8_u8_ps(pc.add(i)),
                _mm256_loadu_ps(pt.add(i)),
            );
            acc0 = _mm256_fmadd_ps(d0, d0, acc0);
            let d1 = _mm256_fnmadd_ps(
                _mm256_loadu_ps(ps.add(i + 8)),
                load8_u8_ps(pc.add(i + 8)),
                _mm256_loadu_ps(pt.add(i + 8)),
            );
            acc1 = _mm256_fmadd_ps(d1, d1, acc1);
            i += 16;
        }
        if i + 8 <= n {
            let d = _mm256_fnmadd_ps(
                _mm256_loadu_ps(ps.add(i)),
                load8_u8_ps(pc.add(i)),
                _mm256_loadu_ps(pt.add(i)),
            );
            acc0 = _mm256_fmadd_ps(d, d, acc0);
            i += 8;
        }
        let mut sum = hsum256(_mm256_add_ps(acc0, acc1));
        while i < n {
            let d = *pt.add(i) - *ps.add(i) * *pc.add(i) as f32;
            sum += d * d;
            i += 1;
        }
        sum
    }

    /// Blocked one-query-vs-many f32×u8 dot (see [`dot_block`]).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn dot_f32u8_block(query: &[f32], codes: &[u8], out: &mut [f32]) {
        let dim = query.len();
        let rows = out.len();
        let pq = query.as_ptr();
        let pc = codes.as_ptr();
        let d8 = dim - dim % 8;
        let mut r = 0;
        while r + 4 <= rows {
            let (r0, r1, r2, r3) = (
                pc.add(r * dim),
                pc.add((r + 1) * dim),
                pc.add((r + 2) * dim),
                pc.add((r + 3) * dim),
            );
            let mut a0 = _mm256_setzero_ps();
            let mut a1 = _mm256_setzero_ps();
            let mut a2 = _mm256_setzero_ps();
            let mut a3 = _mm256_setzero_ps();
            let mut j = 0;
            while j < d8 {
                let q = _mm256_loadu_ps(pq.add(j));
                a0 = _mm256_fmadd_ps(q, load8_u8_ps(r0.add(j)), a0);
                a1 = _mm256_fmadd_ps(q, load8_u8_ps(r1.add(j)), a1);
                a2 = _mm256_fmadd_ps(q, load8_u8_ps(r2.add(j)), a2);
                a3 = _mm256_fmadd_ps(q, load8_u8_ps(r3.add(j)), a3);
                j += 8;
            }
            let mut s0 = hsum256(a0);
            let mut s1 = hsum256(a1);
            let mut s2 = hsum256(a2);
            let mut s3 = hsum256(a3);
            while j < dim {
                let q = *pq.add(j);
                s0 += q * *r0.add(j) as f32;
                s1 += q * *r1.add(j) as f32;
                s2 += q * *r2.add(j) as f32;
                s3 += q * *r3.add(j) as f32;
                j += 1;
            }
            out[r] = s0;
            out[r + 1] = s1;
            out[r + 2] = s2;
            out[r + 3] = s3;
            r += 4;
        }
        while r < rows {
            out[r] = dot_f32u8(query, std::slice::from_raw_parts(pc.add(r * dim), dim));
            r += 1;
        }
    }

    /// Blocked one-query-vs-many asymmetric squared L2 (see
    /// [`l2_sq_f32u8`]): 4 code rows share each `t`/`s` load.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn l2_sq_f32u8_block(t: &[f32], s: &[f32], codes: &[u8], out: &mut [f32]) {
        let dim = t.len();
        let rows = out.len();
        let pt = t.as_ptr();
        let ps = s.as_ptr();
        let pc = codes.as_ptr();
        let d8 = dim - dim % 8;
        let mut r = 0;
        while r + 4 <= rows {
            let (r0, r1, r2, r3) = (
                pc.add(r * dim),
                pc.add((r + 1) * dim),
                pc.add((r + 2) * dim),
                pc.add((r + 3) * dim),
            );
            let mut a0 = _mm256_setzero_ps();
            let mut a1 = _mm256_setzero_ps();
            let mut a2 = _mm256_setzero_ps();
            let mut a3 = _mm256_setzero_ps();
            let mut j = 0;
            while j < d8 {
                let vt = _mm256_loadu_ps(pt.add(j));
                let vs = _mm256_loadu_ps(ps.add(j));
                let d0 = _mm256_fnmadd_ps(vs, load8_u8_ps(r0.add(j)), vt);
                a0 = _mm256_fmadd_ps(d0, d0, a0);
                let d1 = _mm256_fnmadd_ps(vs, load8_u8_ps(r1.add(j)), vt);
                a1 = _mm256_fmadd_ps(d1, d1, a1);
                let d2 = _mm256_fnmadd_ps(vs, load8_u8_ps(r2.add(j)), vt);
                a2 = _mm256_fmadd_ps(d2, d2, a2);
                let d3 = _mm256_fnmadd_ps(vs, load8_u8_ps(r3.add(j)), vt);
                a3 = _mm256_fmadd_ps(d3, d3, a3);
                j += 8;
            }
            let mut s0 = hsum256(a0);
            let mut s1 = hsum256(a1);
            let mut s2 = hsum256(a2);
            let mut s3 = hsum256(a3);
            while j < dim {
                let tj = *pt.add(j);
                let sj = *ps.add(j);
                let (e0, e1, e2, e3) = (
                    tj - sj * *r0.add(j) as f32,
                    tj - sj * *r1.add(j) as f32,
                    tj - sj * *r2.add(j) as f32,
                    tj - sj * *r3.add(j) as f32,
                );
                s0 += e0 * e0;
                s1 += e1 * e1;
                s2 += e2 * e2;
                s3 += e3 * e3;
                j += 1;
            }
            out[r] = s0;
            out[r + 1] = s1;
            out[r + 2] = s2;
            out[r + 3] = s3;
            r += 4;
        }
        while r < rows {
            out[r] = l2_sq_f32u8(t, s, std::slice::from_raw_parts(pc.add(r * dim), dim));
            r += 1;
        }
    }
}

/// Dot product with an explicitly chosen kernel (parity tests; prefer
/// [`dot`] everywhere else).
#[inline]
pub fn dot_with(kernel: Kernel, a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    match kernel {
        Kernel::Scalar => scalar::dot(a, b),
        Kernel::Portable8 => portable::dot(a, b),
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 => unsafe { avx2::dot(a, b) },
        #[cfg(not(target_arch = "x86_64"))]
        Kernel::Avx2 => portable::dot(a, b),
    }
}

/// Squared L2 with an explicitly chosen kernel (parity tests).
#[inline]
pub fn l2_sq_with(kernel: Kernel, a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    match kernel {
        Kernel::Scalar => scalar::l2_sq(a, b),
        Kernel::Portable8 => portable::l2_sq(a, b),
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 => unsafe { avx2::l2_sq(a, b) },
        #[cfg(not(target_arch = "x86_64"))]
        Kernel::Avx2 => portable::l2_sq(a, b),
    }
}

/// Dot product (runtime-dispatched).
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    dot_with(active_kernel(), a, b)
}

/// Squared Euclidean distance (runtime-dispatched).
#[inline]
pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    l2_sq_with(active_kernel(), a, b)
}

/// Cosine similarity (0 when either vector is zero), built on the
/// dispatched dot product.
#[inline]
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let na = dot(a, a).sqrt();
    let nb = dot(b, b).sqrt();
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot(a, b) / (na * nb)
}

/// `acc[i] += s * x[i]` (runtime-dispatched).
#[inline]
pub fn axpy(acc: &mut [f32], x: &[f32], s: f32) {
    assert_eq!(acc.len(), x.len(), "dimension mismatch");
    match active_kernel() {
        Kernel::Scalar => scalar::axpy(acc, x, s),
        Kernel::Portable8 => portable::axpy(acc, x, s),
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 => unsafe { avx2::axpy(acc, x, s) },
        #[cfg(not(target_arch = "x86_64"))]
        Kernel::Avx2 => portable::axpy(acc, x, s),
    }
}

/// Score one query against `out.len()` contiguous row-major rows of `data`
/// with the dot product: `out[i] = query · data[i]`.
///
/// `data.len()` must equal `out.len() * query.len()`.
pub fn dot_block(query: &[f32], data: &[f32], out: &mut [f32]) {
    assert_eq!(
        data.len(),
        out.len() * query.len(),
        "row-major shape mismatch"
    );
    if query.is_empty() {
        out.fill(0.0);
        return;
    }
    match active_kernel() {
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 => unsafe { avx2::dot_block(query, data, out) },
        Kernel::Scalar => {
            for (o, row) in out.iter_mut().zip(data.chunks_exact(query.len())) {
                *o = scalar::dot(query, row);
            }
        }
        _ => {
            for (o, row) in out.iter_mut().zip(data.chunks_exact(query.len())) {
                *o = portable::dot(query, row);
            }
        }
    }
}

/// Score one query against `out.len()` contiguous row-major rows of `data`
/// with squared L2: `out[i] = ||query − data[i]||²`.
///
/// `data.len()` must equal `out.len() * query.len()`.
pub fn l2_sq_block(query: &[f32], data: &[f32], out: &mut [f32]) {
    assert_eq!(
        data.len(),
        out.len() * query.len(),
        "row-major shape mismatch"
    );
    if query.is_empty() {
        out.fill(0.0);
        return;
    }
    match active_kernel() {
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 => unsafe { avx2::l2_sq_block(query, data, out) },
        Kernel::Scalar => {
            for (o, row) in out.iter_mut().zip(data.chunks_exact(query.len())) {
                *o = scalar::l2_sq(query, row);
            }
        }
        _ => {
            for (o, row) in out.iter_mut().zip(data.chunks_exact(query.len())) {
                *o = portable::l2_sq(query, row);
            }
        }
    }
}

/// u8×u8 dot product with an explicitly chosen kernel (parity tests).
#[inline]
pub fn dot_u8_with(kernel: Kernel, a: &[u8], b: &[u8]) -> u32 {
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    match kernel {
        Kernel::Scalar => scalar::dot_u8(a, b),
        Kernel::Portable8 => portable::dot_u8(a, b),
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 => unsafe { avx2::dot_u8(a, b) },
        #[cfg(not(target_arch = "x86_64"))]
        Kernel::Avx2 => portable::dot_u8(a, b),
    }
}

/// f32×u8 dot product with an explicitly chosen kernel (parity tests).
#[inline]
pub fn dot_f32u8_with(kernel: Kernel, q: &[f32], c: &[u8]) -> f32 {
    assert_eq!(q.len(), c.len(), "dimension mismatch");
    match kernel {
        Kernel::Scalar => scalar::dot_f32u8(q, c),
        Kernel::Portable8 => portable::dot_f32u8(q, c),
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 => unsafe { avx2::dot_f32u8(q, c) },
        #[cfg(not(target_arch = "x86_64"))]
        Kernel::Avx2 => portable::dot_f32u8(q, c),
    }
}

/// Asymmetric squared L2 with an explicitly chosen kernel (parity tests).
#[inline]
pub fn l2_sq_f32u8_with(kernel: Kernel, t: &[f32], s: &[f32], c: &[u8]) -> f32 {
    assert_eq!(t.len(), c.len(), "dimension mismatch");
    assert_eq!(s.len(), c.len(), "dimension mismatch");
    match kernel {
        Kernel::Scalar => scalar::l2_sq_f32u8(t, s, c),
        Kernel::Portable8 => portable::l2_sq_f32u8(t, s, c),
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 => unsafe { avx2::l2_sq_f32u8(t, s, c) },
        #[cfg(not(target_arch = "x86_64"))]
        Kernel::Avx2 => portable::l2_sq_f32u8(t, s, c),
    }
}

/// Dot product of two u8 code rows (runtime-dispatched). Exact: the
/// accumulation is integer, so every kernel returns identical bits.
#[inline]
pub fn dot_u8(a: &[u8], b: &[u8]) -> u32 {
    dot_u8_with(active_kernel(), a, b)
}

/// Dot product of an f32 query against a u8 code row
/// (runtime-dispatched).
#[inline]
pub fn dot_f32u8(q: &[f32], c: &[u8]) -> f32 {
    dot_f32u8_with(active_kernel(), q, c)
}

/// Asymmetric squared L2 `Σ (t[i] − s[i]·c[i])²` between a prepared query
/// (`t = query − offset`, per-dim scales `s`) and a u8 code row
/// (runtime-dispatched). Equals the exact f32 squared distance between the
/// query and the dequantized row.
#[inline]
pub fn l2_sq_f32u8(t: &[f32], s: &[f32], c: &[u8]) -> f32 {
    l2_sq_f32u8_with(active_kernel(), t, s, c)
}

/// Score one f32 query against `out.len()` contiguous row-major u8 code
/// rows with the dot product: `out[i] = query · codes[i]`.
///
/// `codes.len()` must equal `out.len() * query.len()`.
pub fn dot_f32u8_block(query: &[f32], codes: &[u8], out: &mut [f32]) {
    assert_eq!(
        codes.len(),
        out.len() * query.len(),
        "row-major shape mismatch"
    );
    if query.is_empty() {
        out.fill(0.0);
        return;
    }
    match active_kernel() {
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 => unsafe { avx2::dot_f32u8_block(query, codes, out) },
        Kernel::Scalar => {
            for (o, row) in out.iter_mut().zip(codes.chunks_exact(query.len())) {
                *o = scalar::dot_f32u8(query, row);
            }
        }
        _ => {
            for (o, row) in out.iter_mut().zip(codes.chunks_exact(query.len())) {
                *o = portable::dot_f32u8(query, row);
            }
        }
    }
}

/// Score one prepared query (`t`, per-dim scales `s`) against `out.len()`
/// contiguous row-major u8 code rows with asymmetric squared L2:
/// `out[i] = Σ_d (t[d] − s[d]·codes[i][d])²`.
///
/// `codes.len()` must equal `out.len() * t.len()`; `s.len()` must equal
/// `t.len()`.
pub fn l2_sq_f32u8_block(t: &[f32], s: &[f32], codes: &[u8], out: &mut [f32]) {
    assert_eq!(s.len(), t.len(), "dimension mismatch");
    assert_eq!(codes.len(), out.len() * t.len(), "row-major shape mismatch");
    if t.is_empty() {
        out.fill(0.0);
        return;
    }
    match active_kernel() {
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 => unsafe { avx2::l2_sq_f32u8_block(t, s, codes, out) },
        Kernel::Scalar => {
            for (o, row) in out.iter_mut().zip(codes.chunks_exact(t.len())) {
                *o = scalar::l2_sq_f32u8(t, s, row);
            }
        }
        _ => {
            for (o, row) in out.iter_mut().zip(codes.chunks_exact(t.len())) {
                *o = portable::l2_sq_f32u8(t, s, row);
            }
        }
    }
}

/// The kernels available on this machine (always includes scalar and
/// portable; AVX2 only when detected).
pub fn available_kernels() -> Vec<Kernel> {
    let mut out = vec![Kernel::Scalar, Kernel::Portable8];
    if detect() == Kernel::Avx2 {
        out.push(Kernel::Avx2);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Lengths exercising every unroll boundary: empty, sub-lane, odd, the
    /// 8/16 block edges, and larger-than-block sizes.
    const LENS: &[usize] = &[0, 1, 2, 3, 5, 7, 8, 9, 13, 15, 16, 17, 24, 31, 33, 64, 100, 257];

    fn vecs(len: usize, seed: u64, scale: f32) -> (Vec<f32>, Vec<f32>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = (0..len).map(|_| rng.gen_range(-1.0f32..1.0) * scale).collect();
        let b = (0..len).map(|_| rng.gen_range(-1.0f32..1.0) * scale).collect();
        (a, b)
    }

    /// |got − want| ≤ 1e-5 · (magnitude of the summed terms), the right
    /// relative notion for reduction kernels (tolerant of reassociation and
    /// FMA, tight enough to catch indexing bugs).
    fn assert_close(got: f32, want: f64, terms_magnitude: f64, ctx: &str) {
        let tol = 1e-5 * terms_magnitude.max(1e-30);
        assert!(
            ((got as f64) - want).abs() <= tol,
            "{ctx}: got {got}, want {want}, tol {tol}"
        );
    }

    fn check_parity(scale: f32, seed: u64) {
        for &len in LENS {
            let (a, b) = vecs(len, seed ^ len as u64, scale);
            let dot_ref: f64 = a.iter().zip(&b).map(|(&x, &y)| x as f64 * y as f64).sum();
            let dot_mag: f64 = a
                .iter()
                .zip(&b)
                .map(|(&x, &y)| (x as f64 * y as f64).abs())
                .sum();
            let l2_ref: f64 = a
                .iter()
                .zip(&b)
                .map(|(&x, &y)| (x as f64 - y as f64).powi(2))
                .sum();
            for k in available_kernels() {
                let ctx = format!("kernel {} len {len} scale {scale}", k.name());
                assert_close(dot_with(k, &a, &b), dot_ref, dot_mag, &format!("dot {ctx}"));
                assert_close(l2_sq_with(k, &a, &b), l2_ref, l2_ref, &format!("l2 {ctx}"));
            }
        }
    }

    #[test]
    fn kernels_agree_on_random_inputs() {
        check_parity(1.0, 11);
        check_parity(1000.0, 12);
    }

    #[test]
    fn kernels_agree_on_denormal_adjacent_inputs() {
        // Products of ±1e-19 values land around 1e-38, the f32 denormal
        // boundary; sums must still agree relatively.
        check_parity(1e-19, 13);
    }

    #[test]
    fn blocks_match_per_row_kernels() {
        let mut rng = StdRng::seed_from_u64(21);
        for &dim in &[1usize, 3, 8, 17, 32, 64, 96] {
            for &rows in &[0usize, 1, 2, 3, 4, 5, 7, 9, 16] {
                let q: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
                let data: Vec<f32> = (0..rows * dim)
                    .map(|_| rng.gen_range(-1.0f32..1.0))
                    .collect();
                let mut got_d = vec![0f32; rows];
                let mut got_l = vec![0f32; rows];
                dot_block(&q, &data, &mut got_d);
                l2_sq_block(&q, &data, &mut got_l);
                for r in 0..rows {
                    let row = &data[r * dim..(r + 1) * dim];
                    let wd: f64 = q.iter().zip(row).map(|(&x, &y)| x as f64 * y as f64).sum();
                    let wl: f64 = q
                        .iter()
                        .zip(row)
                        .map(|(&x, &y)| (x as f64 - y as f64).powi(2))
                        .sum();
                    let mag: f64 = q
                        .iter()
                        .zip(row)
                        .map(|(&x, &y)| (x as f64 * y as f64).abs())
                        .sum();
                    assert_close(got_d[r], wd, mag, &format!("dot_block dim {dim} row {r}"));
                    assert_close(got_l[r], wl, wl.max(mag), &format!("l2_block dim {dim} row {r}"));
                }
            }
        }
    }

    #[test]
    fn axpy_matches_scalar() {
        let mut rng = StdRng::seed_from_u64(31);
        for &len in LENS {
            let x: Vec<f32> = (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let base: Vec<f32> = (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let s = rng.gen_range(-2.0f32..2.0);
            let mut want = base.clone();
            scalar::axpy(&mut want, &x, s);
            let mut got = base.clone();
            axpy(&mut got, &x, s);
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() <= 1e-6 * w.abs().max(1.0), "axpy len {len}");
            }
        }
    }

    #[test]
    fn cosine_basics() {
        assert!((cosine(&[1., 0., 0.], &[2., 0., 0.]) - 1.0).abs() < 1e-6);
        assert!(cosine(&[1., 0.], &[0., 1.]).abs() < 1e-6);
        assert_eq!(cosine(&[0., 0.], &[1., 1.]), 0.0);
    }

    fn codes(len: usize, seed: u64) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen_range(0..=255u32) as u8).collect()
    }

    #[test]
    fn u8_dot_kernels_are_bit_exact() {
        for &len in LENS {
            let a = codes(len, 41 ^ len as u64);
            let b = codes(len, 42 ^ len as u64);
            let want: u32 = a.iter().zip(&b).map(|(&x, &y)| x as u32 * y as u32).sum();
            for k in available_kernels() {
                assert_eq!(
                    dot_u8_with(k, &a, &b),
                    want,
                    "dot_u8 kernel {} len {len}",
                    k.name()
                );
            }
        }
    }

    /// The asymmetric kernels must agree with the dequantize-then-f32-kernel
    /// route: dequantize the codes (x̂ = off + s·c), run the f32 reference,
    /// and compare. This is the parity property the two-stage scan relies on.
    #[test]
    fn int8_kernels_match_dequantized_f32() {
        let mut rng = StdRng::seed_from_u64(51);
        for &len in LENS {
            let q: Vec<f32> = (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let c = codes(len, 52 ^ len as u64);
            let s: Vec<f32> = (0..len).map(|_| rng.gen_range(0.001f32..0.01)).collect();
            let off: Vec<f32> = (0..len).map(|_| rng.gen_range(-1.0f32..0.0)).collect();
            let deq: Vec<f32> = (0..len).map(|i| off[i] + s[i] * c[i] as f32).collect();
            // dot_f32u8 computes q·c (raw codes), reference in f64.
            let dot_ref: f64 = q.iter().zip(&c).map(|(&x, &y)| x as f64 * y as f64).sum();
            let dot_mag: f64 = q
                .iter()
                .zip(&c)
                .map(|(&x, &y)| (x as f64 * y as f64).abs())
                .sum();
            // l2_sq_f32u8 on t = q − off equals ‖q − deq‖².
            let t: Vec<f32> = q.iter().zip(&off).map(|(&x, &o)| x - o).collect();
            let l2_ref: f64 = q
                .iter()
                .zip(&deq)
                .map(|(&x, &y)| (x as f64 - y as f64).powi(2))
                .sum();
            for k in available_kernels() {
                let ctx = format!("kernel {} len {len}", k.name());
                assert_close(
                    dot_f32u8_with(k, &q, &c),
                    dot_ref,
                    dot_mag,
                    &format!("dot_f32u8 {ctx}"),
                );
                assert_close(
                    l2_sq_f32u8_with(k, &t, &s, &c),
                    l2_ref,
                    l2_ref.max(dot_mag * 0.02),
                    &format!("l2_sq_f32u8 {ctx}"),
                );
            }
        }
    }

    #[test]
    fn int8_blocks_match_per_row_kernels() {
        let mut rng = StdRng::seed_from_u64(61);
        for &dim in &[1usize, 3, 8, 17, 32, 64, 96] {
            for &rows in &[0usize, 1, 2, 3, 4, 5, 7, 9, 16] {
                let q: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
                let s: Vec<f32> = (0..dim).map(|_| rng.gen_range(0.001f32..0.01)).collect();
                let data = codes(rows * dim, (dim * 31 + rows) as u64);
                let mut got_d = vec![0f32; rows];
                let mut got_l = vec![0f32; rows];
                dot_f32u8_block(&q, &data, &mut got_d);
                l2_sq_f32u8_block(&q, &s, &data, &mut got_l);
                for r in 0..rows {
                    let row = &data[r * dim..(r + 1) * dim];
                    let wd: f64 = q.iter().zip(row).map(|(&x, &y)| x as f64 * y as f64).sum();
                    let wl: f64 = q
                        .iter()
                        .zip(&s)
                        .zip(row)
                        .map(|((&t, &sc), &cc)| (t as f64 - sc as f64 * cc as f64).powi(2))
                        .sum();
                    let mag: f64 = q
                        .iter()
                        .zip(row)
                        .map(|(&x, &y)| (x as f64 * y as f64).abs())
                        .sum();
                    assert_close(
                        got_d[r],
                        wd,
                        mag,
                        &format!("dot_f32u8_block dim {dim} row {r}"),
                    );
                    assert_close(
                        got_l[r],
                        wl,
                        wl.max(mag * 0.02),
                        &format!("l2_sq_f32u8_block dim {dim} row {r}"),
                    );
                }
            }
        }
    }

    #[test]
    fn forcing_kernels_is_reversible() {
        // Note: other tests in this file run concurrently, so only assert
        // on the explicit-kernel paths, not the dispatched ones.
        for k in available_kernels() {
            assert!(!k.name().is_empty());
        }
        force_kernel(None);
        let auto = active_kernel();
        assert!(available_kernels().contains(&auto));
    }
}
