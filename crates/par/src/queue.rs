//! A bounded MPMC queue for admission control.
//!
//! This is the load-shedding primitive the query server puts in front of
//! its worker pool: producers use a non-blocking [`Bounded::try_push`] that
//! fails *immediately* when the queue is at capacity (the caller turns that
//! into a structured `Overloaded` response instead of queueing without
//! bound), while consumers block in [`Bounded::pop`] until work arrives or
//! the queue is closed and drained.
//!
//! Closing is how graceful drain works: after [`Bounded::close`] no new
//! item is admitted, but `pop` keeps handing out the items already
//! accepted — consumers exit (receive `None`) only once the backlog is
//! empty, so every admitted request gets an answer.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why [`Bounded::try_push`] rejected an item. The item is handed back so
/// the caller can answer its originator.
#[derive(Debug, PartialEq, Eq)]
pub enum TryPushError<T> {
    /// The queue is at capacity; shed the item now rather than wait.
    Full(T),
    /// The queue was closed (drain in progress); no new work is admitted.
    Closed(T),
}

impl<T> TryPushError<T> {
    /// The rejected item.
    pub fn into_inner(self) -> T {
        match self {
            TryPushError::Full(t) | TryPushError::Closed(t) => t,
        }
    }
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity multi-producer multi-consumer queue.
pub struct Bounded<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> Bounded<T> {
    /// Queue admitting at most `capacity` pending items (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Pending items right now (racy by nature; for telemetry only).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue lock").items.len()
    }

    /// True when no items are pending (same caveat as [`Bounded::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Admit `item` if there is room, without ever blocking. Returns the
    /// item inside the error when the queue is full or closed.
    pub fn try_push(&self, item: T) -> Result<(), TryPushError<T>> {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.closed {
            return Err(TryPushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(TryPushError::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Take the oldest pending item, blocking while the queue is open and
    /// empty. Returns `None` only when the queue is closed **and** fully
    /// drained — the consumer-exit signal.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("queue lock");
        }
    }

    /// Stop admitting new items. Already-admitted items remain poppable;
    /// blocked consumers wake (and exit once the backlog drains).
    pub fn close(&self) {
        self.inner.lock().expect("queue lock").closed = true;
        self.not_empty.notify_all();
    }

    /// Whether [`Bounded::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().expect("queue lock").closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn push_pop_fifo() {
        let q = Bounded::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn full_queue_sheds_immediately_and_returns_the_item() {
        let q = Bounded::new(2);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        match q.try_push("c") {
            Err(TryPushError::Full(item)) => assert_eq!(item, "c"),
            other => panic!("expected Full, got {other:?}"),
        }
        // Popping one frees a slot.
        assert_eq!(q.pop(), Some("a"));
        q.try_push("c").unwrap();
    }

    #[test]
    fn closed_queue_rejects_pushes_but_drains_backlog() {
        let q = Bounded::new(4);
        q.try_push(10).unwrap();
        q.try_push(20).unwrap();
        q.close();
        assert!(q.is_closed());
        assert!(matches!(q.try_push(30), Err(TryPushError::Closed(30))));
        // Drain continues after close; None only once empty.
        assert_eq!(q.pop(), Some(10));
        assert_eq!(q.pop(), Some(20));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "stays terminal");
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(Bounded::<u32>::new(1));
        let q2 = q.clone();
        let t = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(30));
        q.close();
        assert_eq!(t.join().unwrap(), None);
    }

    #[test]
    fn concurrent_producers_and_consumers_deliver_each_item_once() {
        let q = Arc::new(Bounded::new(8));
        let produced = 4 * 200;
        let sum = Arc::new(AtomicUsize::new(0));
        let taken = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let q = q.clone();
            let sum = sum.clone();
            let taken = taken.clone();
            handles.push(std::thread::spawn(move || {
                while let Some(v) = q.pop() {
                    sum.fetch_add(v, Ordering::Relaxed);
                    taken.fetch_add(1, Ordering::Relaxed);
                }
            }));
        }
        let mut producers = Vec::new();
        for p in 0..4 {
            let q = q.clone();
            producers.push(std::thread::spawn(move || {
                for i in 0..200usize {
                    let v = p * 200 + i + 1;
                    // Spin on Full — producers in this test must not lose items.
                    let mut item = v;
                    loop {
                        match q.try_push(item) {
                            Ok(()) => break,
                            Err(TryPushError::Full(back)) => {
                                item = back;
                                std::thread::yield_now();
                            }
                            Err(TryPushError::Closed(_)) => panic!("closed early"),
                        }
                    }
                }
            }));
        }
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(taken.load(Ordering::Relaxed), produced);
        let want: usize = (1..=produced).sum();
        assert_eq!(sum.load(Ordering::Relaxed), want);
    }
}
