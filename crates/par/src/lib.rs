//! # deepjoin-par
//!
//! The shared parallelism substrate: a small scoped chunk-pool that turns
//! "apply this closure to every item of a contiguous range" into
//! cache-friendly parallel work with **deterministic results**.
//!
//! Design rules (DESIGN.md §"Performance"):
//!
//! * **Chunking is thread-count independent.** A range is partitioned into
//!   chunks whose boundaries depend only on the length and the caller's
//!   minimum chunk size — never on how many workers happen to run. Per-chunk
//!   results are collected *in chunk order* and reduced sequentially, so a
//!   1-thread and a 64-thread run produce bit-identical output even for
//!   non-associative `f32` reductions.
//! * **Workers are scoped.** Threads are spawned inside
//!   [`std::thread::scope`] for the duration of one parallel region, so
//!   closures may borrow the caller's data without `'static` gymnastics and
//!   a region can never leak threads.
//! * **Small inputs stay serial.** When the range fits in one chunk the
//!   closure runs on the calling thread — no spawn, no overhead — which is
//!   the fix for the old one-thread-per-chunk spawning in
//!   `deepjoin::batch` (it spawned even for 2-column batches).
//!
//! Chunks are handed to workers through an atomic cursor (dynamic
//! scheduling), which balances skewed per-item cost (e.g. long columns)
//! without affecting results.

#![warn(missing_docs)]

pub mod fair;
pub mod queue;

pub use fair::{FairPush, FairPushError, FairQueue};
pub use queue::{Bounded, TryPushError};

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Upper bound on chunks per region. A constant (not a function of the
/// worker count) so chunk boundaries — and therefore reduction grouping —
/// never depend on how many threads run.
const MAX_CHUNKS: usize = 64;

/// Process-wide thread budget override; 0 means "auto"
/// (`available_parallelism`). Set by `dj --threads`.
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// A data-parallel executor with a fixed thread budget.
///
/// `Pool` is a lightweight handle (one `usize`); the worker threads
/// themselves are scoped to each parallel region. Clone it freely.
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    threads: usize,
}

impl Default for Pool {
    fn default() -> Self {
        Self::auto()
    }
}

impl Pool {
    /// Pool with an explicit thread budget (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// Pool sized to `std::thread::available_parallelism()`.
    pub fn auto() -> Self {
        static AUTO: OnceLock<usize> = OnceLock::new();
        let n = *AUTO.get_or_init(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
        Self::new(n)
    }

    /// Strictly serial pool (useful as a determinism reference).
    pub fn serial() -> Self {
        Self::new(1)
    }

    /// The process-wide pool: honors [`Pool::set_global_threads`] if it was
    /// called (e.g. by `dj --threads N`), otherwise auto-sized.
    pub fn global() -> Self {
        match GLOBAL_THREADS.load(Ordering::Relaxed) {
            0 => Self::auto(),
            n => Self::new(n),
        }
    }

    /// Configure the process-wide thread budget (0 restores auto).
    pub fn set_global_threads(threads: usize) {
        GLOBAL_THREADS.store(threads, Ordering::Relaxed);
    }

    /// The thread budget of this pool.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Deterministic partition of `0..len`: contiguous chunks of equal size
    /// (±1 item), each at least `min_chunk` items, at most [`MAX_CHUNKS`]
    /// chunks. Independent of the pool's thread count.
    pub fn chunks(len: usize, min_chunk: usize) -> Vec<Range<usize>> {
        if len == 0 {
            return Vec::new();
        }
        let min_chunk = min_chunk.max(1);
        // Floor division so even the smallest chunk (`base`) meets
        // `min_chunk`; ranges shorter than `min_chunk` become one chunk.
        let n_chunks = (len / min_chunk).clamp(1, MAX_CHUNKS);
        let base = len / n_chunks;
        let extra = len % n_chunks;
        let mut out = Vec::with_capacity(n_chunks);
        let mut start = 0;
        for i in 0..n_chunks {
            let size = base + usize::from(i < extra);
            out.push(start..start + size);
            start += size;
        }
        debug_assert_eq!(start, len);
        out
    }

    /// Run `f` over every chunk of `0..len`. Chunks may execute on any
    /// worker in any order; use [`Pool::map`] when per-chunk results matter.
    pub fn run<F>(&self, len: usize, min_chunk: usize, f: F)
    where
        F: Fn(Range<usize>) + Sync,
    {
        let chunks = Self::chunks(len, min_chunk);
        let workers = self.threads.min(chunks.len());
        if workers <= 1 {
            for c in chunks {
                f(c);
            }
            return;
        }
        let cursor = AtomicUsize::new(0);
        let chunks = &chunks;
        let f = &f;
        std::thread::scope(|scope| {
            for _ in 0..workers - 1 {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(c) = chunks.get(i) else { break };
                    f(c.clone());
                });
            }
            // The calling thread is the last worker.
            loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(c) = chunks.get(i) else { break };
                f(c.clone());
            }
        });
    }

    /// Map every chunk of `0..len` through `f`, returning per-chunk results
    /// **in chunk order** — the deterministic-reduction entry point: reduce
    /// the returned vec left-to-right and the result is independent of the
    /// thread count.
    pub fn map<R, F>(&self, len: usize, min_chunk: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Range<usize>) -> R + Sync,
    {
        let chunks = Self::chunks(len, min_chunk);
        let slots: Vec<std::sync::Mutex<Option<R>>> =
            (0..chunks.len()).map(|_| std::sync::Mutex::new(None)).collect();
        {
            let chunks = &chunks;
            let slots = &slots;
            self.run(len, min_chunk, |range| {
                // Recover this range's chunk index from its start offset;
                // ranges come verbatim from the same partition.
                let i = chunks
                    .binary_search_by(|c| c.start.cmp(&range.start))
                    .expect("range from partition");
                *slots[i].lock().expect("slot lock") = Some(f(range));
            });
        }
        slots
            .into_iter()
            .map(|s| s.into_inner().expect("slot lock").expect("every chunk ran"))
            .collect()
    }

    /// Apply `f` to every chunk of `items` elements, handing each invocation
    /// the matching disjoint sub-slice of `out` (which must hold exactly
    /// `items * stride` elements, `stride` per item). This is the in-place
    /// scatter used by the batch encoders: chunk `r` writes
    /// `out[r.start*stride .. r.end*stride]`.
    pub fn for_each_chunk_mut<T, F>(
        &self,
        out: &mut [T],
        items: usize,
        min_chunk: usize,
        f: F,
    ) where
        T: Send,
        F: Fn(Range<usize>, &mut [T]) + Sync,
    {
        if items == 0 {
            assert!(out.is_empty(), "out must be empty when items == 0");
            return;
        }
        assert_eq!(out.len() % items, 0, "out length must be a multiple of items");
        let stride = out.len() / items;
        let chunks = Self::chunks(items, min_chunk);
        // Pre-split `out` into per-chunk slices (chunk order), then let
        // workers claim (range, slice) pairs through an atomic cursor.
        type Task<'a, T> = std::sync::Mutex<Option<(Range<usize>, &'a mut [T])>>;
        let mut tasks: Vec<Task<'_, T>> = Vec::with_capacity(chunks.len());
        let mut rest = out;
        for c in &chunks {
            let (head, tail) = rest.split_at_mut(c.len() * stride);
            tasks.push(std::sync::Mutex::new(Some((c.clone(), head))));
            rest = tail;
        }
        let workers = self.threads.min(tasks.len());
        let work = |i: usize| {
            let (range, slice) = tasks[i]
                .lock()
                .expect("task lock")
                .take()
                .expect("task claimed once");
            f(range, slice);
        };
        if workers <= 1 {
            for i in 0..tasks.len() {
                work(i);
            }
            return;
        }
        let cursor = AtomicUsize::new(0);
        let n = tasks.len();
        let work = &work;
        std::thread::scope(|scope| {
            for _ in 0..workers - 1 {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    work(i);
                });
            }
            loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                work(i);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_range_exactly() {
        for len in [0usize, 1, 2, 7, 63, 64, 65, 1000, 12345] {
            for min in [1usize, 4, 16, 100] {
                let cs = Pool::chunks(len, min);
                let mut next = 0;
                for c in &cs {
                    assert_eq!(c.start, next);
                    assert!(!c.is_empty());
                    next = c.end;
                }
                assert_eq!(next, len);
                assert!(cs.len() <= MAX_CHUNKS);
                if len >= min {
                    // No chunk may undercut the minimum except when the
                    // whole range is smaller than it.
                    assert!(cs.iter().all(|c| c.len() >= min.min(len)));
                }
            }
        }
    }

    #[test]
    fn chunking_is_thread_count_independent() {
        // The partition is a static function; pools of different sizes must
        // see identical chunk boundaries (this is what makes reductions
        // deterministic).
        assert_eq!(Pool::chunks(1000, 8), Pool::chunks(1000, 8));
    }

    #[test]
    fn map_preserves_chunk_order_and_determinism() {
        let data: Vec<f32> = (0..10_000).map(|i| (i as f32).sin()).collect();
        let sum = |pool: &Pool| -> f32 {
            pool.map(data.len(), 64, |r| data[r].iter().sum::<f32>())
                .into_iter()
                .fold(0f32, |a, b| a + b)
        };
        let s1 = sum(&Pool::serial());
        let s4 = sum(&Pool::new(4));
        let s9 = sum(&Pool::new(9));
        assert_eq!(s1.to_bits(), s4.to_bits(), "1 vs 4 threads");
        assert_eq!(s1.to_bits(), s9.to_bits(), "1 vs 9 threads");
    }

    #[test]
    fn run_visits_every_chunk_once() {
        let hits: Vec<AtomicUsize> = (0..500).map(|_| AtomicUsize::new(0)).collect();
        Pool::new(7).run(hits.len(), 3, |r| {
            for i in r {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn scatter_writes_disjoint_slices() {
        let items = 37;
        let stride = 3;
        let mut out = vec![0u32; items * stride];
        Pool::new(5).for_each_chunk_mut(&mut out, items, 2, |range, slice| {
            for (i, item) in range.clone().enumerate() {
                for s in 0..stride {
                    slice[i * stride + s] = (item * stride + s) as u32;
                }
            }
        });
        let want: Vec<u32> = (0..(items * stride) as u32).collect();
        assert_eq!(out, want);
    }

    #[test]
    fn small_inputs_run_serially() {
        // items < min_chunk ⇒ one chunk ⇒ calling-thread execution.
        let id = std::thread::current().id();
        let mut seen = None;
        Pool::new(8).run(3, 16, |_| {
            // Single chunk: must run here.
        });
        Pool::new(8)
            .map(3, 16, |r| {
                assert_eq!(std::thread::current().id(), id);
                r.len()
            })
            .iter()
            .for_each(|n| seen = Some(*n));
        assert_eq!(seen, Some(3));
    }

    #[test]
    fn global_pool_override() {
        Pool::set_global_threads(3);
        assert_eq!(Pool::global().threads(), 3);
        Pool::set_global_threads(0);
        assert!(Pool::global().threads() >= 1);
    }
}
