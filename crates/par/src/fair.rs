//! A deficit-weighted fair admission queue for multi-tenant load shedding.
//!
//! [`crate::Bounded`] sheds blindly: one flooding producer fills the queue
//! and everyone else's pushes bounce. [`FairQueue`] keeps one FIFO lane per
//! tenant and serves lanes by deficit round-robin — each occupied lane gets
//! `weight` pops per rotation — so a tenant sending 100× the traffic still
//! only gets its fair share of worker time, and the shedding falls on the
//! flooder:
//!
//! - While the queue has room, every push is admitted into its lane.
//! - At capacity, the push displaces the **newest** item of the **heaviest**
//!   lane (the tenant with the deepest backlog). The displaced item is
//!   handed back so the caller can answer its originator with a structured
//!   shed. If the pusher *is* the heaviest tenant, its own push is refused
//!   instead — a flooder can never displace anyone else.
//!
//! Every item carries its enqueue [`Instant`]; `pop` returns it so
//! consumers can measure queue sojourn (the signal a CoDel-style controller
//! needs). The close/drain contract matches [`crate::Bounded`]: after
//! [`FairQueue::close`] no new item is admitted, `pop` drains the backlog,
//! and consumers see `None` only once the queue is closed **and** empty.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// How [`FairQueue::try_push`] admitted an item.
#[derive(Debug, PartialEq, Eq)]
pub enum FairPush<T> {
    /// Admitted; the queue had room.
    Admitted,
    /// Admitted at capacity by displacing the newest item of the heaviest
    /// tenant; the displaced item is returned so the caller can answer it.
    Displaced(u64, T),
}

/// Why [`FairQueue::try_push`] rejected an item. The item is handed back so
/// the caller can answer its originator.
#[derive(Debug, PartialEq, Eq)]
pub enum FairPushError<T> {
    /// The queue is at capacity and the pusher is the heaviest tenant —
    /// it sheds at its own bucket rather than displacing anyone else.
    Full(T),
    /// The queue was closed (drain in progress); no new work is admitted.
    Closed(T),
}

impl<T> FairPushError<T> {
    /// The rejected item.
    pub fn into_inner(self) -> T {
        match self {
            FairPushError::Full(t) | FairPushError::Closed(t) => t,
        }
    }
}

struct Lane<T> {
    tenant: u64,
    weight: u32,
    /// Pops this lane may still take in the current rotation. Refreshed to
    /// `weight` when the rotation reaches an exhausted lane; reset when the
    /// lane empties (standard DRR: idle lanes don't bank credit).
    deficit: u32,
    items: VecDeque<(T, Instant)>,
}

struct Inner<T> {
    /// Occupied lanes only — a lane is created on first push and removed
    /// the moment it drains, so rotation never scans dead tenants.
    lanes: Vec<Lane<T>>,
    cursor: usize,
    total: usize,
    closed: bool,
}

impl<T> Inner<T> {
    fn lane_mut(&mut self, tenant: u64, weight: u32) -> &mut Lane<T> {
        if let Some(i) = self.lanes.iter().position(|l| l.tenant == tenant) {
            return &mut self.lanes[i];
        }
        self.lanes.push(Lane {
            tenant,
            weight: weight.max(1),
            deficit: 0,
            items: VecDeque::new(),
        });
        self.lanes.last_mut().expect("lane just pushed")
    }

    /// Index of the lane with the deepest backlog (first wins on ties).
    fn heaviest(&self) -> Option<usize> {
        self.lanes
            .iter()
            .enumerate()
            .max_by_key(|(i, l)| (l.items.len(), usize::MAX - i))
            .map(|(i, _)| i)
    }

    fn take(&mut self) -> (u64, T, Instant) {
        debug_assert!(self.total > 0);
        let n = self.lanes.len();
        let mut idx = self.cursor % n;
        loop {
            if self.lanes[idx].items.is_empty() {
                // Only transiently possible; occupied-lane invariant holds
                // between calls.
                idx = (idx + 1) % n;
                continue;
            }
            let lane = &mut self.lanes[idx];
            if lane.deficit == 0 {
                lane.deficit = lane.weight;
            }
            lane.deficit -= 1;
            let (item, at) = lane.items.pop_front().expect("non-empty lane");
            let tenant = lane.tenant;
            self.total -= 1;
            if lane.items.is_empty() {
                self.lanes.remove(idx);
                self.cursor = if self.lanes.is_empty() {
                    0
                } else {
                    idx % self.lanes.len()
                };
            } else if lane.deficit == 0 {
                self.cursor = (idx + 1) % n;
            } else {
                self.cursor = idx;
            }
            return (tenant, item, at);
        }
    }
}

/// A fixed-capacity MPMC queue with per-tenant fairness (see module docs).
pub struct FairQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> FairQueue<T> {
    /// Queue admitting at most `capacity` pending items across all tenants
    /// (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                lanes: Vec::new(),
                cursor: 0,
                total: 0,
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Pending items right now (racy by nature; for telemetry only).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue lock").total
    }

    /// True when no items are pending (same caveat as [`FairQueue::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Admit `item` for `tenant` with rotation weight 1.
    pub fn try_push(&self, tenant: u64, item: T) -> Result<FairPush<T>, FairPushError<T>> {
        self.try_push_weighted(tenant, 1, item)
    }

    /// Admit `item` for `tenant`, never blocking. `weight` sets the lane's
    /// pops-per-rotation share (only the first push for a tenant sets it).
    /// At capacity the newest item of the heaviest tenant is displaced and
    /// returned ([`FairPush::Displaced`]) — unless the pusher is itself the
    /// heaviest, in which case its push is refused ([`FairPushError::Full`]).
    pub fn try_push_weighted(
        &self,
        tenant: u64,
        weight: u32,
        item: T,
    ) -> Result<FairPush<T>, FairPushError<T>> {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.closed {
            return Err(FairPushError::Closed(item));
        }
        let mut displaced = None;
        if inner.total >= self.capacity {
            let heavy = inner.heaviest().expect("full queue has a lane");
            if inner.lanes[heavy].tenant == tenant {
                return Err(FairPushError::Full(item));
            }
            let lane = &mut inner.lanes[heavy];
            let victim_tenant = lane.tenant;
            let (victim, _) = lane.items.pop_back().expect("heaviest lane non-empty");
            inner.total -= 1;
            if inner.lanes[heavy].items.is_empty() {
                inner.lanes.remove(heavy);
                inner.cursor = if inner.lanes.is_empty() {
                    0
                } else {
                    inner.cursor % inner.lanes.len()
                };
            }
            displaced = Some((victim_tenant, victim));
        }
        inner
            .lane_mut(tenant, weight)
            .items
            .push_back((item, Instant::now()));
        inner.total += 1;
        drop(inner);
        self.not_empty.notify_one();
        match displaced {
            Some((t, victim)) => Ok(FairPush::Displaced(t, victim)),
            None => Ok(FairPush::Admitted),
        }
    }

    /// Take the next item under deficit round-robin, blocking while the
    /// queue is open and empty. Returns the owning tenant and the item's
    /// enqueue time (for sojourn measurement). `None` only when the queue
    /// is closed **and** fully drained — the consumer-exit signal.
    pub fn pop(&self) -> Option<(u64, T, Instant)> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if inner.total > 0 {
                return Some(inner.take());
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("queue lock");
        }
    }

    /// Take the next item if one is pending, never blocking — the wave-
    /// formation drain: a worker pops one job with [`FairQueue::pop`], then
    /// fills the rest of its wave with `try_pop` until the queue is
    /// momentarily empty or the wave is full. Uses the same deficit
    /// round-robin cursor as `pop`, so a drained wave sees items in exactly
    /// the order back-to-back `pop` calls would have.
    pub fn try_pop(&self) -> Option<(u64, T, Instant)> {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.total > 0 {
            Some(inner.take())
        } else {
            None
        }
    }

    /// Shed the newest item of the heaviest tenant right now, if any — the
    /// CoDel-style controller's pressure-relief action. Returns the owning
    /// tenant, the item (so the caller can answer it), and its enqueue time.
    pub fn shed_newest_of_heaviest(&self) -> Option<(u64, T, Instant)> {
        let mut inner = self.inner.lock().expect("queue lock");
        let heavy = inner.heaviest()?;
        let lane = &mut inner.lanes[heavy];
        let tenant = lane.tenant;
        let (item, at) = lane.items.pop_back()?;
        inner.total -= 1;
        if inner.lanes[heavy].items.is_empty() {
            inner.lanes.remove(heavy);
            inner.cursor = if inner.lanes.is_empty() {
                0
            } else {
                inner.cursor % inner.lanes.len()
            };
        }
        Some((tenant, item, at))
    }

    /// Stop admitting new items. Already-admitted items remain poppable;
    /// blocked consumers wake (and exit once the backlog drains).
    pub fn close(&self) {
        self.inner.lock().expect("queue lock").closed = true;
        self.not_empty.notify_all();
    }

    /// Whether [`FairQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().expect("queue lock").closed
    }

    /// Per-tenant backlog depths (racy; for telemetry and tests).
    pub fn depths(&self) -> Vec<(u64, usize)> {
        self.inner
            .lock()
            .expect("queue lock")
            .lanes
            .iter()
            .map(|l| (l.tenant, l.items.len()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn drain_tenants(q: &FairQueue<u32>) -> Vec<u64> {
        let mut order = Vec::new();
        q.close();
        while let Some((t, _, _)) = q.pop() {
            order.push(t);
        }
        order
    }

    #[test]
    fn single_tenant_is_fifo() {
        let q = FairQueue::new(8);
        for v in 0..4u32 {
            assert_eq!(q.try_push(7, v).unwrap(), FairPush::Admitted);
        }
        let vals: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, v, _)| v))
            .take(4)
            .collect();
        assert_eq!(vals, vec![0, 1, 2, 3]);
    }

    #[test]
    fn equal_weights_interleave_tenants_round_robin() {
        let q = FairQueue::new(16);
        // Tenant 1 floods before tenant 2 gets a word in.
        for v in 0..4u32 {
            q.try_push(1, v).unwrap();
        }
        for v in 0..2u32 {
            q.try_push(2, 100 + v).unwrap();
        }
        assert_eq!(drain_tenants(&q), vec![1, 2, 1, 2, 1, 1]);
    }

    #[test]
    fn weighted_lane_gets_its_share_per_rotation() {
        let q = FairQueue::new(16);
        for v in 0..4u32 {
            q.try_push_weighted(1, 2, v).unwrap();
        }
        for v in 0..4u32 {
            q.try_push_weighted(2, 1, 100 + v).unwrap();
        }
        // Weight 2 lane serves two items per visit, weight 1 lane one.
        assert_eq!(drain_tenants(&q), vec![1, 1, 2, 1, 1, 2, 2, 2]);
    }

    #[test]
    fn overflow_displaces_the_newest_item_of_the_heaviest_tenant() {
        let q = FairQueue::new(4);
        for v in 0..3u32 {
            q.try_push(1, v).unwrap();
        }
        q.try_push(2, 100).unwrap();
        // Queue full; tenant 2's push displaces tenant 1's newest (2).
        match q.try_push(2, 101).unwrap() {
            FairPush::Displaced(tenant, victim) => {
                assert_eq!(tenant, 1);
                assert_eq!(victim, 2);
            }
            other => panic!("expected displacement, got {other:?}"),
        }
        assert_eq!(q.len(), 4);
        let mut remaining: Vec<u32> = Vec::new();
        q.close();
        while let Some((_, v, _)) = q.pop() {
            remaining.push(v);
        }
        remaining.sort_unstable();
        assert_eq!(remaining, vec![0, 1, 100, 101]);
    }

    #[test]
    fn a_flooding_tenant_sheds_at_its_own_lane() {
        let q = FairQueue::new(3);
        for v in 0..3u32 {
            q.try_push(1, v).unwrap();
        }
        match q.try_push(1, 3) {
            Err(FairPushError::Full(item)) => assert_eq!(item, 3),
            other => panic!("expected Full, got {other:?}"),
        }
        // Another tenant still gets in (displacing the flooder).
        assert!(matches!(
            q.try_push(2, 100).unwrap(),
            FairPush::Displaced(1, 2)
        ));
    }

    #[test]
    fn shed_newest_of_heaviest_relieves_pressure() {
        let q = FairQueue::new(8);
        for v in 0..3u32 {
            q.try_push(1, v).unwrap();
        }
        q.try_push(2, 100).unwrap();
        let (tenant, victim, _) = q.shed_newest_of_heaviest().unwrap();
        assert_eq!((tenant, victim), (1, 2));
        assert_eq!(q.len(), 3);
        let empty = FairQueue::<u32>::new(2);
        assert!(empty.shed_newest_of_heaviest().is_none());
    }

    #[test]
    fn try_pop_matches_pop_order_and_never_blocks() {
        let q = FairQueue::new(16);
        for v in 0..4u32 {
            q.try_push(1, v).unwrap();
        }
        for v in 0..2u32 {
            q.try_push(2, 100 + v).unwrap();
        }
        // Same DRR interleaving the blocking drain test pins.
        let mut order = Vec::new();
        while let Some((t, _, _)) = q.try_pop() {
            order.push(t);
        }
        assert_eq!(order, vec![1, 2, 1, 2, 1, 1]);
        // Empty and still open: returns immediately instead of blocking.
        assert_eq!(q.try_pop(), None);
        // Mixing pop and try_pop keeps one shared cursor.
        q.try_push(1, 0).unwrap();
        q.try_push(1, 1).unwrap();
        q.try_push(2, 100).unwrap();
        assert_eq!(q.pop().map(|(t, _, _)| t), Some(1));
        assert_eq!(q.try_pop().map(|(t, _, _)| t), Some(2));
        assert_eq!(q.try_pop().map(|(t, _, _)| t), Some(1));
    }

    #[test]
    fn closed_queue_rejects_pushes_but_drains_backlog() {
        let q = FairQueue::new(4);
        q.try_push(1, 10).unwrap();
        q.try_push(2, 20).unwrap();
        q.close();
        assert!(q.is_closed());
        assert!(matches!(
            q.try_push(3, 30),
            Err(FairPushError::Closed(30))
        ));
        assert!(q.pop().is_some());
        assert!(q.pop().is_some());
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "stays terminal");
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(FairQueue::<u32>::new(1));
        let q2 = q.clone();
        let t = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(30));
        q.close();
        assert_eq!(t.join().unwrap(), None);
    }

    #[test]
    fn pop_reports_enqueue_time_for_sojourn_measurement() {
        let q = FairQueue::new(4);
        let before = Instant::now();
        q.try_push(1, 1u32).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(15));
        let (_, _, at) = q.pop().unwrap();
        assert!(at >= before);
        assert!(at.elapsed() >= std::time::Duration::from_millis(10));
    }

    #[test]
    fn concurrent_producers_and_consumers_deliver_each_item_once() {
        let q = Arc::new(FairQueue::new(8));
        let produced = 4 * 100;
        let sum = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let q = q.clone();
            let sum = sum.clone();
            consumers.push(std::thread::spawn(move || {
                while let Some((_, v, _)) = q.pop() {
                    sum.fetch_add(v, std::sync::atomic::Ordering::Relaxed);
                }
            }));
        }
        let mut producers = Vec::new();
        for p in 0..4u64 {
            let q = q.clone();
            let sum = sum.clone();
            producers.push(std::thread::spawn(move || {
                for i in 0..100usize {
                    let v = p as usize * 100 + i + 1;
                    let mut item = v;
                    // Spin on Full — this test must not lose items; real
                    // servers turn Full into a structured shed instead.
                    loop {
                        match q.try_push(p, item) {
                            Ok(FairPush::Admitted) => break,
                            Ok(FairPush::Displaced(_, back)) => {
                                // Displaced someone else's item: re-inject it
                                // under its producer's tenant is impossible
                                // here, so count it as ours to keep the sum.
                                sum.fetch_add(back, std::sync::atomic::Ordering::Relaxed);
                                break;
                            }
                            Err(FairPushError::Full(back)) => {
                                item = back;
                                std::thread::yield_now();
                            }
                            Err(FairPushError::Closed(_)) => panic!("closed early"),
                        }
                    }
                }
            }));
        }
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        for c in consumers {
            c.join().unwrap();
        }
        let want: usize = (1..=produced).sum();
        assert_eq!(
            sum.load(std::sync::atomic::Ordering::Relaxed),
            want,
            "every item is either consumed or returned as displaced, never lost"
        );
    }
}
