//! # deepjoin-metrics
//!
//! Retrieval-quality metrics used throughout the evaluation (paper §5.1):
//!
//! * **precision@k** — overlap between a model's top-k and the exact top-k;
//! * **NDCG@k** — `DCG_model / DCG_exact` with `DCG = Σ jn(Q, Xᵢ) / log₂(i+1)`;
//! * **pooled precision / recall / F1** — for expert-labeled evaluation
//!   (Table 7): the judged pool is the union of all compared methods'
//!   retrieved results, following Clarke & Willett (1997).

#![warn(missing_docs)]

use std::collections::HashSet;

/// precision@k: `|model_topk ∩ exact_topk| / k`.
///
/// `k` defaults to the exact list's length when the model returned fewer
/// results (both lists are truncated to `k`).
pub fn precision_at_k<T: Eq + std::hash::Hash + Copy>(model: &[T], exact: &[T], k: usize) -> f64 {
    if k == 0 {
        return 0.0;
    }
    let exact_set: HashSet<T> = exact.iter().take(k).copied().collect();
    if exact_set.is_empty() {
        return 0.0;
    }
    let hit = model
        .iter()
        .take(k)
        .filter(|id| exact_set.contains(id))
        .count();
    hit as f64 / k as f64
}

/// Discounted cumulative gain of a ranked list of relevance scores.
pub fn dcg(scores: &[f64]) -> f64 {
    scores
        .iter()
        .enumerate()
        .map(|(i, &s)| s / ((i + 2) as f64).log2())
        .sum()
}

/// NDCG@k as the paper defines it: `DCG_model / DCG_exact`, where both lists
/// carry *true joinability* scores of the retrieved columns, truncated to k.
/// Returns 1.0 when the exact DCG is zero (nothing joinable to find).
pub fn ndcg_at_k(model_scores: &[f64], exact_scores: &[f64], k: usize) -> f64 {
    let m: Vec<f64> = model_scores.iter().take(k).copied().collect();
    let e: Vec<f64> = exact_scores.iter().take(k).copied().collect();
    let denom = dcg(&e);
    if denom <= 0.0 {
        return 1.0;
    }
    (dcg(&m) / denom).min(1.0)
}

/// Precision / recall / F1 against binary relevance judgments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prf {
    /// (# retrieved ∧ relevant) / (# retrieved).
    pub precision: f64,
    /// (# retrieved ∧ relevant) / (# relevant in the pool).
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
}

impl Prf {
    /// Build from counts.
    pub fn from_counts(retrieved: usize, relevant_retrieved: usize, relevant_total: usize) -> Self {
        let precision = if retrieved == 0 {
            0.0
        } else {
            relevant_retrieved as f64 / retrieved as f64
        };
        let recall = if relevant_total == 0 {
            0.0
        } else {
            relevant_retrieved as f64 / relevant_total as f64
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        Self {
            precision,
            recall,
            f1,
        }
    }
}

/// Pooled evaluation for one query (Table 7 protocol): the judged pool is
/// the union of all methods' retrieved lists; recall is measured against the
/// relevant items *inside the pool*.
#[derive(Debug, Clone, Default)]
pub struct PooledEval<T: Eq + std::hash::Hash + Copy> {
    pool: HashSet<T>,
}

impl<T: Eq + std::hash::Hash + Copy> PooledEval<T> {
    /// Empty pool.
    pub fn new() -> Self {
        Self {
            pool: HashSet::new(),
        }
    }

    /// Add one method's retrieved list to the pool.
    pub fn add_retrieved(&mut self, retrieved: &[T]) {
        self.pool.extend(retrieved.iter().copied());
    }

    /// Pool size.
    pub fn pool_size(&self) -> usize {
        self.pool.len()
    }

    /// Score one method's retrieved list, judging relevance with `judge`
    /// (the expert stand-in).
    pub fn score<F: Fn(T) -> bool>(&self, retrieved: &[T], judge: F) -> Prf {
        let relevant_total = self.pool.iter().filter(|&&x| judge(x)).count();
        let dedup: HashSet<T> = retrieved.iter().copied().collect();
        let relevant_retrieved = dedup.iter().filter(|&&x| judge(x)).count();
        Prf::from_counts(dedup.len(), relevant_retrieved, relevant_total)
    }
}

/// Mean of a slice (0 for empty input).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_basics() {
        assert_eq!(precision_at_k(&[1, 2, 3], &[1, 2, 3], 3), 1.0);
        assert_eq!(precision_at_k(&[1, 9, 8], &[1, 2, 3], 3), 1.0 / 3.0);
        assert_eq!(precision_at_k(&[9, 8, 7], &[1, 2, 3], 3), 0.0);
        // Order within top-k does not matter for precision.
        assert_eq!(precision_at_k(&[3, 1, 2], &[1, 2, 3], 3), 1.0);
    }

    #[test]
    fn precision_truncates_to_k() {
        assert_eq!(precision_at_k(&[1, 2, 9, 9], &[1, 2, 3, 4], 2), 1.0);
        assert_eq!(precision_at_k::<u32>(&[], &[1, 2], 2), 0.0);
        assert_eq!(precision_at_k(&[1], &[1], 0), 0.0);
    }

    #[test]
    fn dcg_discounts_by_rank() {
        let d = dcg(&[1.0, 1.0]);
        assert!((d - (1.0 + 1.0 / 3f64.log2())).abs() < 1e-12);
        assert_eq!(dcg(&[]), 0.0);
    }

    #[test]
    fn ndcg_perfect_and_degraded() {
        let exact = [1.0, 0.8, 0.5];
        assert_eq!(ndcg_at_k(&exact, &exact, 3), 1.0);
        let worse = [0.5, 0.5, 0.2];
        let n = ndcg_at_k(&worse, &exact, 3);
        assert!(n > 0.0 && n < 1.0);
        // Zero exact gain -> defined as 1.
        assert_eq!(ndcg_at_k(&[0.0], &[0.0], 1), 1.0);
    }

    #[test]
    fn ndcg_clamps_at_one() {
        // Model can't legitimately beat exact, but protect against float dust.
        assert!(ndcg_at_k(&[1.0 + 1e-15], &[1.0], 1) <= 1.0);
    }

    #[test]
    fn prf_counts() {
        let p = Prf::from_counts(10, 5, 20);
        assert!((p.precision - 0.5).abs() < 1e-12);
        assert!((p.recall - 0.25).abs() < 1e-12);
        assert!((p.f1 - (2.0 * 0.5 * 0.25 / 0.75)).abs() < 1e-12);
        let zero = Prf::from_counts(0, 0, 0);
        assert_eq!(zero.f1, 0.0);
    }

    #[test]
    fn pooled_eval_protocol() {
        let mut pool = PooledEval::new();
        pool.add_retrieved(&[1u32, 2, 3]); // method A
        pool.add_retrieved(&[3u32, 4, 5]); // method B
        assert_eq!(pool.pool_size(), 5);
        // Relevant items: even ids {2, 4}.
        let judge = |x: u32| x.is_multiple_of(2);
        let a = pool.score(&[1, 2, 3], judge);
        assert!((a.precision - 1.0 / 3.0).abs() < 1e-12);
        assert!((a.recall - 0.5).abs() < 1e-12);
        let b = pool.score(&[3, 4, 5], judge);
        assert!((b.recall - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mean_works() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
    }
}
