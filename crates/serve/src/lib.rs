//! # deepjoin-serve
//!
//! A dependency-free TCP query server for a trained DeepJoin model
//! (DESIGN.md §11). The crate is deliberately *model-agnostic*: it serves
//! anything implementing [`ServeModel`], which is how it avoids a circular
//! dependency on the core crate (the core crate depends on this one and
//! provides the adapter).
//!
//! Robustness layers, outermost first:
//!
//! 1. **Admission control** — per-tenant token buckets feed a bounded
//!    deficit-weighted fair queue ([`deepjoin_par::FairQueue`]) in front
//!    of the worker pool. A full queue sheds the newest request of the
//!    heaviest tenant with a structured `Overloaded` error instead of
//!    queueing without bound, and a CoDel-style brownout controller
//!    ([`BrownoutController`]) steps a degradation ladder down when queue
//!    sojourn stays over target.
//! 2. **Deadlines** — every admitted query carries a
//!    [`deepjoin_ann::Budget`]; the index search loops poll it and stop
//!    mid-traversal when it expires, returning partial results marked
//!    `degraded`.
//! 3. **Degradation ladder** — an HNSW search that panics is caught and
//!    retried as a bounded flat scan; a flat scan that times out returns
//!    best-so-far top-k. Every response carries the snapshot's [`Health`].
//! 4. **Lifecycle** — snapshots hot-swap atomically on reload (the new
//!    snapshot is fully loaded before it becomes visible), and shutdown
//!    drains admitted work before exiting.

#![warn(missing_docs)]

pub mod brownout;
pub mod client;
pub mod cluster;
pub mod protocol;
pub mod replica;
pub mod server;
pub mod sync;

pub use brownout::{
    tenant_id, BrownoutConfig, BrownoutController, Pressure, TenantSnapshot, TenantTable,
    TokenBucket, DEFAULT_TENANT,
};
pub use client::{Client, ClientError, QueryResult, QuerySpec, RetryPolicy};
pub use cluster::{ClusterConfig, MultiClient, RoutedReply};
pub use protocol::{
    BatchQuery, ErrorCode, OverloadStats, QueryReply, ReplicationStats, Request, Response,
    StatsReply, SyncItem, TenantStats, WireError, WireHit, ROLE_PRIMARY, ROLE_REPLICA,
};
pub use replica::{bootstrap, run_sync_loop, ReplicaConfig, ReplicationState, TcpSyncSource};
pub use server::{Server, ServerConfig, ServerHandle};
pub use sync::{SyncExport, SyncReport, SyncSource, Syncer};

use deepjoin_ann::Budget;

/// Health of the index backing a snapshot, mirrored into every query
/// response so clients can tell exact-but-degraded answers from healthy
/// ANN answers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Health {
    /// The HNSW graph loaded and is serving.
    Hnsw,
    /// The graph section was unusable; an exact flat scan is serving.
    DegradedFlat {
        /// Why the graph was rejected (decode error text).
        reason: String,
    },
    /// No index is available at all.
    Missing,
}

impl Health {
    /// Stable wire code for this state.
    pub fn code(&self) -> u8 {
        match self {
            Health::Hnsw => 0,
            Health::DegradedFlat { .. } => 1,
            Health::Missing => 2,
        }
    }

    /// Human-readable label (carried on the wire next to the code).
    pub fn label(&self) -> String {
        match self {
            Health::Hnsw => "hnsw".to_string(),
            Health::DegradedFlat { reason } => format!("degraded-flat: {reason}"),
            Health::Missing => "missing".to_string(),
        }
    }

    /// True for every state other than a healthy HNSW graph.
    pub fn is_degraded(&self) -> bool {
        !matches!(self, Health::Hnsw)
    }
}

/// One search hit as produced by the model.
#[derive(Debug, Clone, PartialEq)]
pub struct Hit {
    /// Column id within the indexed lake.
    pub id: u32,
    /// Distance (smaller is closer), in the index's metric.
    pub score: f32,
    /// Human-readable column label (`table.column`).
    pub label: String,
}

/// Outcome of one model query, including enough context for the server to
/// report degradation honestly.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    /// Best hits found, closest first.
    pub hits: Vec<Hit>,
    /// False when the budget expired mid-search and `hits` is a partial
    /// best-effort top-k.
    pub complete: bool,
    /// Distance evaluations performed.
    pub visited: usize,
    /// True when the answer came from a fallback path (e.g. flat rescue
    /// after an HNSW failure) rather than the primary index.
    pub via_fallback: bool,
}

/// One member of a batched query wave (see [`ServeModel::query_batch`]):
/// the same inputs [`ServeModel::query`] takes, borrowed from the admitted
/// jobs so wave formation never copies query payloads.
#[derive(Debug, Clone, Copy)]
pub struct WaveQuery<'a> {
    /// Query column cells.
    pub cells: &'a [String],
    /// Query column name.
    pub name: &'a str,
    /// Neighbors requested (already clamped by the server).
    pub k: usize,
}

/// A mutation request against a live (writable) snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MutateOp {
    /// Ingest a new table of columns into the live lake.
    AddTable {
        /// Table title (provenance label, and the handle `DropTable` uses).
        title: String,
        /// `(column name, cells)` per column.
        columns: Vec<(String, Vec<String>)>,
    },
    /// Drop every column (base-indexed or live) belonging to a table.
    DropTable {
        /// Table title to drop.
        title: String,
    },
}

/// Acknowledgement of a durably journaled mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MutateReply {
    /// Journal sequence number of the committed record.
    pub seq: u64,
    /// Columns added, or ids tombstoned.
    pub applied: u64,
}

/// Live-lake gauges, reported through `stats` when the server was started
/// with live ingest enabled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LiveStats {
    /// Flushed segment files.
    pub segments: u32,
    /// Journal size on disk, bytes.
    pub wal_bytes: u64,
    /// Tombstoned ids awaiting physical reclamation by compaction.
    pub pending_tombstones: u64,
    /// Surviving live (non-base) rows.
    pub live_rows: u64,
}

/// What the server serves: a queryable snapshot of a trained model plus its
/// index. Implementations must be safe to query from many worker threads.
pub trait ServeModel: Send + Sync {
    /// Number of indexed columns (used to clamp `k`).
    fn indexed_len(&self) -> usize;

    /// Health of the backing index.
    fn health(&self) -> Health;

    /// Embed the query column (`cells` + `name`) and search for its `k`
    /// nearest indexed columns under `budget`.
    fn query(&self, cells: &[String], name: &str, k: usize, budget: &Budget) -> QueryOutcome;

    /// Answer a whole wave of queries under one `budget` (the min of the
    /// members' remaining deadlines), returning one outcome per member in
    /// wave order. The default implementation just loops
    /// [`ServeModel::query`]; real models override it to dedup identical
    /// members, batch the encoder forward passes, and run one batched
    /// search so SIMD row blocks amortize across the wave. Overrides must
    /// keep every member's answer bit-identical to the single-query path.
    fn query_batch(&self, wave: &[WaveQuery<'_>], budget: &Budget) -> Vec<QueryOutcome> {
        wave.iter()
            .map(|q| self.query(q.cells, q.name, q.k, budget))
            .collect()
    }

    /// `(hits, misses)` of the model's query-embedding cache. Models that
    /// serve without a cache report `(0, 0)`.
    fn cache_stats(&self) -> (u64, u64) {
        (0, 0)
    }

    /// Wave members answered by sharing another member's embedding and
    /// search (wave-level dedup). Models without dedup report 0.
    fn dedup_hits(&self) -> u64 {
        0
    }

    /// Apply a mutation. Read-only snapshots (the default) refuse.
    fn mutate(&self, _op: MutateOp) -> Result<MutateReply, String> {
        Err("server is read-only: started without live ingest (--live)".to_string())
    }

    /// Live-lake gauges, `None` for read-only snapshots.
    fn live_stats(&self) -> Option<LiveStats> {
        None
    }

    /// Flush any buffered live state to disk (called on graceful
    /// shutdown). Best-effort; read-only snapshots do nothing.
    fn drain(&self) {}
}

/// A freshly loaded snapshot: the model plus any non-fatal load warnings
/// (e.g. "HNSW section corrupt, degraded to flat scan").
pub struct LoadedSnapshot {
    /// The queryable model.
    pub model: Box<dyn ServeModel>,
    /// Non-fatal warnings emitted while loading.
    pub warnings: Vec<String>,
}

/// Loads a snapshot, at startup and again on every reload. `path` is
/// `None` to reload the original artifact or `Some` to switch to a new one.
/// Errors leave the previous snapshot serving.
pub type Loader = Box<dyn Fn(Option<&str>) -> Result<LoadedSnapshot, String> + Send + Sync>;
