//! Generation-pull snapshot sync (DESIGN.md §15): the primary-side file
//! export behind `SyncPoll`/`SyncFetch`, and the replica-side chunked,
//! CRC-gated, resumable install engine.
//!
//! The protocol is pull-only and stateless on the primary: a replica polls
//! for the primary's current generation and file list (name, length,
//! whole-file CRC-32), diffs that against what it has installed locally,
//! and fetches only the missing files in bounded chunks. Every chunk
//! carries its own CRC; every completed file is CRC-swept against the
//! polled whole-file CRC *before* it is installed with the store's
//! temp/fsync/rename discipline — so a torn or bit-flipped transfer can
//! never become a served artifact, and a replica that dies mid-transfer
//! resumes from its partial file instead of starting over.
//!
//! Exported items:
//!
//! * `"model"` — the base artifact (`dj train` output).
//! * `"live/manifest.djar"`, `"live/seg-NNNNNN.djar"` — the live lake's
//!   sealed state. The WAL is deliberately *not* shipped: replicas track
//!   mutations through flushed segments + manifest without re-embedding.
//!
//! Install ordering makes interrupted syncs safe: segments land before the
//! manifest that references them, and the manifest is the last file of a
//! batch — a crash in between leaves the old manifest serving the old
//! (consistent) live state, with the new segments sitting as orphans the
//! loader already knows how to sweep.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use deepjoin_store::crc32;
use deepjoin_store::SharedIo;

use crate::protocol::SyncItem;

/// Default transfer chunk length (256 KiB — comfortably under the 1 MiB
/// frame cap with headroom for frame overhead).
pub const DEFAULT_CHUNK_LEN: u32 = 256 * 1024;

/// Hard ceiling on a chunk, leaving room for the frame header and chunk
/// metadata under [`crate::protocol::MAX_FRAME`].
pub const MAX_CHUNK_LEN: u32 = (crate::protocol::MAX_FRAME - 256) as u32;

/// The live-lake files a primary exports (and a replica installs): the
/// manifest and sealed segments — never the WAL, never partials.
pub fn is_live_sync_file(name: &str) -> bool {
    name == "manifest.djar" || (name.starts_with("seg-") && name.ends_with(".djar"))
}

/// Validate a wire item name and resolve it against local paths. Item
/// names are logical (`"model"`, `"live/<file>"`), never filesystem
/// paths — anything else (absolute paths, `..`, unknown live files) is
/// rejected, which is what keeps `SyncFetch` from becoming a file server.
pub fn resolve_item_path(
    name: &str,
    model_path: &Path,
    live_dir: Option<&Path>,
) -> Result<PathBuf, String> {
    if name == "model" {
        return Ok(model_path.to_path_buf());
    }
    if let Some(base) = name.strip_prefix("live/") {
        if !base.contains(['/', '\\']) && is_live_sync_file(base) {
            if let Some(dir) = live_dir {
                return Ok(dir.join(base));
            }
            return Err(format!("no live directory configured for item {name:?}"));
        }
    }
    Err(format!("unknown sync item {name:?}"))
}

/// Fingerprint of a whole exported file set (FNV-1a over generation and
/// every item's name/len/crc). Changes whenever any file changes, so a
/// replica can detect a generation swap mid-transfer.
pub fn state_fingerprint(generation: u32, items: &[SyncItem]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(&generation.to_le_bytes());
    for item in items {
        eat(item.name.as_bytes());
        eat(&[0]);
        eat(&item.len.to_le_bytes());
        eat(&item.crc.to_le_bytes());
    }
    h
}

#[derive(Clone, Copy)]
struct CrcEntry {
    len: u64,
    crc: u32,
}

/// The primary side: answers `SyncPoll` with the current file set and
/// `SyncFetch` with bounded chunks.
///
/// Whole-file CRCs are cached so polls stay cheap: the model artifact's
/// CRC is invalidated on reload (and whenever its length changes), sealed
/// segments are immutable (cached by name + length; segment numbers are
/// never reused), and the manifest — small and rewritten on every flush —
/// is re-swept on every poll.
pub struct SyncExport {
    io: SharedIo,
    model_path: Mutex<PathBuf>,
    live_dir: Option<PathBuf>,
    cache: Mutex<HashMap<String, CrcEntry>>,
}

impl SyncExport {
    /// Export the artifact at `model_path` (plus, when `live_dir` is set,
    /// the live lake's manifest and sealed segments).
    pub fn new(io: SharedIo, model_path: PathBuf, live_dir: Option<PathBuf>) -> Self {
        SyncExport {
            io,
            model_path: Mutex::new(model_path),
            live_dir,
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// Point the export at a new artifact (after a reload with an explicit
    /// path) and drop the cached model CRC.
    pub fn set_model_path(&self, path: PathBuf) {
        *self.model_path.lock().expect("sync model path") = path;
        self.invalidate();
    }

    /// Drop the cached model CRC (call after any reload: the artifact may
    /// have been replaced in place).
    pub fn invalidate(&self) {
        self.cache.lock().expect("sync crc cache").remove("model");
    }

    fn item(&self, name: &str, path: &Path, cache_immutable: bool) -> Result<SyncItem, String> {
        let len = self
            .io
            .file_len(path)
            .map_err(|e| format!("stat {}: {e}", path.display()))?;
        {
            let cache = self.cache.lock().expect("sync crc cache");
            if let Some(entry) = cache.get(name) {
                if cache_immutable && entry.len == len {
                    return Ok(SyncItem {
                        name: name.to_string(),
                        len,
                        crc: entry.crc,
                    });
                }
            }
        }
        let bytes = self
            .io
            .read(path)
            .map_err(|e| format!("read {}: {e}", path.display()))?;
        let crc = crc32(&bytes);
        let len = bytes.len() as u64;
        self.cache
            .lock()
            .expect("sync crc cache")
            .insert(name.to_string(), CrcEntry { len, crc });
        Ok(SyncItem {
            name: name.to_string(),
            len,
            crc,
        })
    }

    /// The current exported file set and its fingerprint.
    pub fn state(&self, generation: u32) -> Result<(u64, Vec<SyncItem>), String> {
        let model_path = self.model_path.lock().expect("sync model path").clone();
        let mut items = vec![self.item("model", &model_path, false)?];
        if let Some(dir) = &self.live_dir {
            let names = self
                .io
                .list(dir)
                .map_err(|e| format!("list {}: {e}", dir.display()))?;
            for base in names {
                if !is_live_sync_file(&base) {
                    continue;
                }
                let cache_immutable = base != "manifest.djar";
                let name = format!("live/{base}");
                items.push(self.item(&name, &dir.join(&base), cache_immutable)?);
            }
        }
        Ok((state_fingerprint(generation, &items), items))
    }

    /// One chunk of an exported item. `want` is clamped to
    /// [`MAX_CHUNK_LEN`]; reading at or past end-of-file returns an empty
    /// chunk (the replica treats that as "length changed, restart").
    pub fn chunk(
        &self,
        name: &str,
        offset: u64,
        want: u32,
    ) -> Result<(u64, u32, Vec<u8>), String> {
        let model_path = self.model_path.lock().expect("sync model path").clone();
        let path = resolve_item_path(name, &model_path, self.live_dir.as_deref())?;
        let total_len = self
            .io
            .file_len(&path)
            .map_err(|e| format!("stat {}: {e}", path.display()))?;
        let want = want.clamp(1, MAX_CHUNK_LEN) as usize;
        let data = self
            .io
            .read_range(&path, offset, want)
            .map_err(|e| format!("read {}: {e}", path.display()))?;
        let crc = crc32(&data);
        Ok((total_len, crc, data))
    }
}

/// One fetched chunk, as the install engine consumes it.
#[derive(Debug, Clone)]
pub struct FetchedChunk {
    /// Byte offset the chunk starts at.
    pub offset: u64,
    /// The item's total length as of this fetch.
    pub total_len: u64,
    /// CRC-32 of `data`.
    pub crc: u32,
    /// The chunk bytes.
    pub data: Vec<u8>,
}

/// Where the install engine pulls generations from. The real
/// implementation speaks the wire protocol to a primary
/// ([`crate::replica::TcpSyncSource`]); chaos tests substitute in-process
/// sources that tear chunks, die mid-transfer, or serve garbage.
pub trait SyncSource {
    /// The primary's current generation, state fingerprint, and file set.
    fn poll(&mut self) -> Result<(u32, u64, Vec<SyncItem>), String>;

    /// Fetch one chunk of `item` starting at `offset`.
    fn fetch(&mut self, item: &str, offset: u64, len: u32) -> Result<FetchedChunk, String>;
}

/// A [`SyncSource`] reading straight from a [`SyncExport`] — the loopback
/// used by tests (no sockets, works against fault-injecting
/// [`deepjoin_store::FaultyIo`] backends).
pub struct LocalSyncSource<'a> {
    /// The export to read from.
    pub export: &'a SyncExport,
    /// The generation to report.
    pub generation: u32,
}

impl SyncSource for LocalSyncSource<'_> {
    fn poll(&mut self) -> Result<(u32, u64, Vec<SyncItem>), String> {
        let (fingerprint, items) = self.export.state(self.generation)?;
        Ok((self.generation, fingerprint, items))
    }

    fn fetch(&mut self, item: &str, offset: u64, len: u32) -> Result<FetchedChunk, String> {
        let (total_len, crc, data) = self.export.chunk(item, offset, len)?;
        Ok(FetchedChunk {
            offset,
            total_len,
            crc,
            data,
        })
    }
}

/// Outcome of one [`Syncer::sync_once`] round-trip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncReport {
    /// The primary generation this file set belongs to.
    pub generation: u32,
    /// Bytes fetched over the wire (0 when already in sync).
    pub bytes_transferred: u64,
    /// Files installed (fetched, CRC-gated, renamed into place).
    pub installed: usize,
    /// Files already current (local CRC matched the poll).
    pub skipped: usize,
    /// Stale local live files removed (segments compacted away upstream).
    pub removed: usize,
}

impl SyncReport {
    /// True when anything on disk changed (a reload is warranted).
    pub fn changed(&self) -> bool {
        self.installed > 0 || self.removed > 0
    }
}

/// Magic for the partial-transfer sidecar (`*.sync.meta`).
const PARTIAL_META_MAGIC: &[u8; 4] = b"DJSY";

/// The replica-side install engine. Owns a cache of local whole-file CRCs
/// so steady-state polls cost one `poll` round-trip and zero local reads.
pub struct Syncer {
    io: SharedIo,
    model_path: PathBuf,
    live_dir: Option<PathBuf>,
    chunk_len: u32,
    /// Verified local state: item name → (len, crc) of the installed file.
    local: HashMap<String, CrcEntry>,
}

impl Syncer {
    /// An engine installing into `model_path` / `live_dir`. `chunk_len` is
    /// the per-fetch size (clamped to [`MAX_CHUNK_LEN`]).
    pub fn new(
        io: SharedIo,
        model_path: PathBuf,
        live_dir: Option<PathBuf>,
        chunk_len: u32,
    ) -> Self {
        Syncer {
            io,
            model_path,
            live_dir,
            chunk_len: chunk_len.clamp(1, MAX_CHUNK_LEN),
            local: HashMap::new(),
        }
    }

    /// Whether the local file for `item` already matches (len + CRC). The
    /// first check per item hashes the file once; afterwards the cached
    /// verdict is keyed by length so unchanged files stay free.
    fn local_matches(&mut self, item: &SyncItem, path: &Path) -> bool {
        if !self.io.exists(path) {
            self.local.remove(&item.name);
            return false;
        }
        let Ok(len) = self.io.file_len(path) else {
            return false;
        };
        if len != item.len {
            self.local.remove(&item.name);
            return false;
        }
        if let Some(entry) = self.local.get(&item.name) {
            if entry.len == len {
                return entry.crc == item.crc;
            }
        }
        let Ok(bytes) = self.io.read(path) else {
            return false;
        };
        let crc = crc32(&bytes);
        self.local.insert(
            item.name.clone(),
            CrcEntry {
                len: bytes.len() as u64,
                crc,
            },
        );
        crc == item.crc && bytes.len() as u64 == item.len
    }

    fn partial_paths(path: &Path) -> (PathBuf, PathBuf) {
        let mut partial = path.as_os_str().to_os_string();
        partial.push(".sync");
        let mut meta = path.as_os_str().to_os_string();
        meta.push(".sync.meta");
        (PathBuf::from(partial), PathBuf::from(meta))
    }

    /// Read the partial-transfer sidecar: `Some((len, crc))` of the
    /// transfer it belongs to, `None` when absent or unreadable.
    fn read_meta(&self, meta: &Path) -> Option<(u64, u32)> {
        let bytes = self.io.read(meta).ok()?;
        if bytes.len() != 16 || &bytes[..4] != PARTIAL_META_MAGIC {
            return None;
        }
        let len = u64::from_le_bytes(bytes[4..12].try_into().ok()?);
        let crc = u32::from_le_bytes(bytes[12..16].try_into().ok()?);
        Some((len, crc))
    }

    fn write_meta(&self, meta: &Path, len: u64, crc: u32) -> Result<(), String> {
        let mut bytes = Vec::with_capacity(16);
        bytes.extend_from_slice(PARTIAL_META_MAGIC);
        bytes.extend_from_slice(&len.to_le_bytes());
        bytes.extend_from_slice(&crc.to_le_bytes());
        self.io
            .write_atomic(meta, &bytes)
            .map_err(|e| format!("write {}: {e}", meta.display()))
    }

    /// Fetch `item` chunk by chunk into a partial file (resuming any
    /// compatible partial left by a previous attempt), gate the result on
    /// the whole-file CRC, and rename it into place. Returns bytes fetched
    /// over the wire.
    fn fetch_and_install(
        &mut self,
        source: &mut dyn SyncSource,
        item: &SyncItem,
        path: &Path,
    ) -> Result<u64, String> {
        let (partial, meta) = Self::partial_paths(path);
        // Resume only a partial that provably belongs to this exact
        // transfer target (same length and whole-file CRC); anything else
        // is discarded.
        let mut offset = 0u64;
        if self.read_meta(&meta) == Some((item.len, item.crc)) {
            if let Ok(have) = self.io.file_len(&partial) {
                if have <= item.len {
                    offset = have;
                }
            }
        }
        if offset == 0 {
            let _ = self.io.remove(&partial);
            self.write_meta(&meta, item.len, item.crc)?;
        }

        let mut fetched = 0u64;
        while offset < item.len {
            let chunk = source.fetch(&item.name, offset, self.chunk_len)?;
            if chunk.total_len != item.len {
                return Err(format!(
                    "{}: length changed mid-transfer ({} -> {}); restarting sync",
                    item.name, item.len, chunk.total_len
                ));
            }
            if chunk.offset != offset {
                return Err(format!(
                    "{}: chunk at offset {} answered {}; restarting sync",
                    item.name, offset, chunk.offset
                ));
            }
            if chunk.data.is_empty() {
                return Err(format!(
                    "{}: empty chunk at offset {offset} of {}; restarting sync",
                    item.name, item.len
                ));
            }
            if crc32(&chunk.data) != chunk.crc {
                return Err(format!(
                    "{}: torn chunk at offset {offset} (crc mismatch); restarting sync",
                    item.name
                ));
            }
            self.io
                .append(&partial, &chunk.data)
                .map_err(|e| format!("append {}: {e}", partial.display()))?;
            offset += chunk.data.len() as u64;
            fetched += chunk.data.len() as u64;
        }

        // The install gate: the assembled file must hash to the CRC the
        // poll promised. A mismatch (bit rot in flight, a partial from a
        // hostile write, a primary swap we failed to notice) deletes the
        // partial so the next round starts clean — it never reaches the
        // served path.
        let bytes = self
            .io
            .read(&partial)
            .map_err(|e| format!("read {}: {e}", partial.display()))?;
        if bytes.len() as u64 != item.len || crc32(&bytes) != item.crc {
            let _ = self.io.remove(&partial);
            let _ = self.io.remove(&meta);
            return Err(format!(
                "{}: assembled file failed its CRC gate; transfer discarded",
                item.name
            ));
        }
        // temp/fsync/rename install: the served path flips atomically from
        // the old artifact to the verified new one. The rename gives the
        // file a new inode, which is exactly what voids a stale `.stamp`
        // sidecar from the artifact it replaced.
        self.io
            .write_atomic(path, &bytes)
            .map_err(|e| format!("install {}: {e}", path.display()))?;
        let _ = self.io.remove(&partial);
        let _ = self.io.remove(&meta);
        self.local.insert(
            item.name.clone(),
            CrcEntry {
                len: item.len,
                crc: item.crc,
            },
        );
        Ok(fetched)
    }

    /// Remove local live files (and orphaned partials) for items the
    /// primary no longer exports — segments compacted away upstream.
    fn remove_stale(&mut self, items: &[SyncItem]) -> usize {
        let Some(dir) = self.live_dir.clone() else {
            return 0;
        };
        let Ok(names) = self.io.list(&dir) else {
            return 0;
        };
        let mut removed = 0;
        for base in names {
            if !is_live_sync_file(&base) {
                continue;
            }
            let name = format!("live/{base}");
            if items.iter().any(|i| i.name == name) {
                continue;
            }
            let path = dir.join(&base);
            let (partial, meta) = Self::partial_paths(&path);
            let _ = self.io.remove(&partial);
            let _ = self.io.remove(&meta);
            if self.io.remove(&path).is_ok() {
                removed += 1;
                self.local.remove(&name);
            }
        }
        removed
    }

    /// One full sync round: poll, diff, fetch what differs (segments
    /// before the manifest), verify, install, sweep. Re-polls afterwards
    /// and repeats (bounded) if the primary's file set moved underneath
    /// the transfer, so the returned report always describes a *quiescent,
    /// internally consistent* installed set.
    pub fn sync_once(&mut self, source: &mut dyn SyncSource) -> Result<SyncReport, String> {
        let (mut generation, mut fingerprint, mut items) = source.poll()?;
        let mut report = SyncReport {
            generation,
            bytes_transferred: 0,
            installed: 0,
            skipped: 0,
            removed: 0,
        };
        // A moving primary (reload or flush racing the transfer) forces
        // another round; five moves in a row means something is churning
        // faster than we can copy, and the caller should back off.
        for _ in 0..5 {
            report.generation = generation;
            // Manifest last: every segment it references must already be
            // installed when it lands, so a crash between files leaves the
            // old manifest serving a consistent (if older) live state.
            let mut plan: Vec<&SyncItem> = items.iter().collect();
            plan.sort_by_key(|i| i.name == "live/manifest.djar");
            for item in plan {
                let model_path = self.model_path.clone();
                let live_dir = self.live_dir.clone();
                let path = resolve_item_path(&item.name, &model_path, live_dir.as_deref())?;
                if self.local_matches(item, &path) {
                    // A crash after a finished install but before its
                    // cleanup leaves an orphaned partial; sweep it here so
                    // it cannot linger forever on an in-sync replica.
                    let (partial, meta) = Self::partial_paths(&path);
                    let _ = self.io.remove(&partial);
                    let _ = self.io.remove(&meta);
                    report.skipped += 1;
                    continue;
                }
                report.bytes_transferred += self.fetch_and_install(source, item, &path)?;
                report.installed += 1;
            }
            report.removed += self.remove_stale(&items);

            let (next_generation, next_fingerprint, next_items) = source.poll()?;
            if next_fingerprint == fingerprint {
                return Ok(report);
            }
            generation = next_generation;
            fingerprint = next_fingerprint;
            items = next_items;
        }
        Err("primary kept changing during sync; backing off".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepjoin_store::MemIo;
    use std::sync::Arc;

    fn mem() -> SharedIo {
        Arc::new(MemIo::new())
    }

    fn export_with(io: &SharedIo, model: &[u8], live: &[(&str, &[u8])]) -> SyncExport {
        io.write_atomic(Path::new("p/model.djar"), model).unwrap();
        for (name, bytes) in live {
            io.write_atomic(&Path::new("p/live").join(name), bytes).unwrap();
        }
        SyncExport::new(
            io.clone(),
            PathBuf::from("p/model.djar"),
            Some(PathBuf::from("p/live")),
        )
    }

    #[test]
    fn item_names_never_escape_the_export() {
        let io = mem();
        let export = export_with(&io, b"model-bytes", &[]);
        for hostile in [
            "../etc/passwd",
            "/etc/passwd",
            "live/../../secret",
            "live/wal.djwl",
            "live/nested/seg-000001.djar",
            "wal.djwl",
            "",
        ] {
            assert!(export.chunk(hostile, 0, 64).is_err(), "{hostile:?} must be rejected");
        }
    }

    #[test]
    fn state_lists_model_and_sealed_live_files_only() {
        let io = mem();
        io.write_atomic(Path::new("p/live/wal.djwl"), b"journal").unwrap();
        io.write_atomic(Path::new("p/live/seg-000001.djar.sync"), b"partial").unwrap();
        let export = export_with(
            &io,
            b"model-bytes",
            &[("manifest.djar", b"mani"), ("seg-000001.djar", b"seg1")],
        );
        let (_, items) = export.state(3).unwrap();
        let names: Vec<&str> = items.iter().map(|i| i.name.as_str()).collect();
        assert_eq!(names, vec!["model", "live/manifest.djar", "live/seg-000001.djar"]);
        assert_eq!(items[0].len, 11);
        assert_eq!(items[0].crc, crc32(b"model-bytes"));
    }

    #[test]
    fn fingerprint_tracks_content_and_generation() {
        let io = mem();
        let export = export_with(&io, b"v1", &[]);
        let (fp1, _) = export.state(1).unwrap();
        let (fp1b, _) = export.state(1).unwrap();
        assert_eq!(fp1, fp1b);
        assert_ne!(fp1, export.state(2).unwrap().0, "generation is part of the fingerprint");
        io.write_atomic(Path::new("p/model.djar"), b"v2").unwrap();
        export.invalidate();
        assert_ne!(fp1, export.state(1).unwrap().0, "content is part of the fingerprint");
    }

    #[test]
    fn sync_roundtrip_installs_byte_identical_files() {
        let io = mem();
        let model: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        let export = export_with(
            &io,
            &model,
            &[("manifest.djar", b"manifest-v1"), ("seg-000001.djar", b"segment-one")],
        );
        let mut source = LocalSyncSource { export: &export, generation: 7 };
        let mut syncer = Syncer::new(
            io.clone(),
            PathBuf::from("r/model.djar"),
            Some(PathBuf::from("r/live")),
            1024,
        );
        let report = syncer.sync_once(&mut source).unwrap();
        assert_eq!(report.generation, 7);
        assert_eq!(report.installed, 3);
        assert!(report.changed());
        assert_eq!(io.read(Path::new("r/model.djar")).unwrap(), model);
        assert_eq!(io.read(Path::new("r/live/manifest.djar")).unwrap(), b"manifest-v1");
        assert_eq!(io.read(Path::new("r/live/seg-000001.djar")).unwrap(), b"segment-one");

        // Second round: nothing to do, zero bytes moved.
        let report = syncer.sync_once(&mut source).unwrap();
        assert_eq!(report.bytes_transferred, 0);
        assert_eq!(report.installed, 0);
        assert!(!report.changed());
    }

    #[test]
    fn compacted_away_segments_are_removed_on_the_replica() {
        let io = mem();
        let export = export_with(&io, b"m", &[("manifest.djar", b"v1"), ("seg-000001.djar", b"s1")]);
        let mut source = LocalSyncSource { export: &export, generation: 1 };
        let mut syncer = Syncer::new(
            io.clone(),
            PathBuf::from("r/model.djar"),
            Some(PathBuf::from("r/live")),
            64,
        );
        syncer.sync_once(&mut source).unwrap();
        assert!(io.exists(Path::new("r/live/seg-000001.djar")));

        // Upstream compaction: seg-1 replaced by seg-2, manifest rewritten.
        io.remove(Path::new("p/live/seg-000001.djar")).unwrap();
        io.write_atomic(Path::new("p/live/seg-000002.djar"), b"s2").unwrap();
        io.write_atomic(Path::new("p/live/manifest.djar"), b"v2").unwrap();
        let report = syncer.sync_once(&mut source).unwrap();
        assert_eq!(report.removed, 1);
        assert!(!io.exists(Path::new("r/live/seg-000001.djar")));
        assert_eq!(io.read(Path::new("r/live/seg-000002.djar")).unwrap(), b"s2");
    }
}
