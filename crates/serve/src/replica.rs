//! The replica side of replicated serving (DESIGN.md §15): the
//! generation-pull loop behind `dj serve --replica-of`, and the shared
//! [`ReplicationState`] gauges both roles report through `stats`.
//!
//! A replica is an ordinary server — same degradation ladder, same hot
//! reload — whose snapshot is written by a background loop instead of an
//! operator: poll the primary, install whatever changed (see
//! [`crate::sync`]), reload, repeat. Failure handling is entirely
//! passive: an unreachable primary simply stops the loop from making
//! progress, the replica keeps answering from its last good generation,
//! and once the silence exceeds `stale_after` every answer is flagged
//! `stale` (appended to the health label and reflected in `degraded`)
//! until the primary is heard from again.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use deepjoin_store::SharedIo;

use crate::client::{Client, ClientError};
use crate::protocol::{
    ReplicationStats, Request, Response, SyncItem, ROLE_PRIMARY, ROLE_REPLICA,
};
use crate::server::ServerHandle;
use crate::sync::{FetchedChunk, SyncSource, Syncer, DEFAULT_CHUNK_LEN};

/// Sentinel for "never been in sync yet" in [`ReplicationState`].
const NEVER: u64 = u64::MAX;

/// Replication gauges shared between the sync loop (writer), the server's
/// stats/query paths (readers), and any in-process multi-endpoint client
/// (hedge counters). All plain atomics — reading them never blocks a
/// query.
pub struct ReplicationState {
    role: u8,
    origin: Instant,
    stale_after: Duration,
    primary_generation: AtomicU32,
    synced_generation: AtomicU32,
    /// Milliseconds since `origin` of the last poll that confirmed the
    /// local files match the primary ([`NEVER`] until the first one).
    last_in_sync_ms: AtomicU64,
    last_sync_micros: AtomicU64,
    last_sync_bytes: AtomicU64,
    syncs: AtomicU64,
    hedges_fired: AtomicU64,
    hedges_won: AtomicU64,
    /// Latched stale flag so transitions can be logged exactly once.
    stale: AtomicBool,
}

impl ReplicationState {
    /// State for a primary (sync-exporting) server: always in sync with
    /// itself, never stale.
    pub fn primary() -> Arc<Self> {
        Arc::new(Self::new(ROLE_PRIMARY, Duration::MAX))
    }

    /// State for a replica flagging answers stale once the primary has
    /// been unreachable for `stale_after`.
    pub fn replica(stale_after: Duration) -> Arc<Self> {
        Arc::new(Self::new(ROLE_REPLICA, stale_after))
    }

    fn new(role: u8, stale_after: Duration) -> Self {
        ReplicationState {
            role,
            origin: Instant::now(),
            stale_after,
            primary_generation: AtomicU32::new(0),
            synced_generation: AtomicU32::new(0),
            last_in_sync_ms: AtomicU64::new(NEVER),
            last_sync_micros: AtomicU64::new(0),
            last_sync_bytes: AtomicU64::new(0),
            syncs: AtomicU64::new(0),
            hedges_fired: AtomicU64::new(0),
            hedges_won: AtomicU64::new(0),
            stale: AtomicBool::new(false),
        }
    }

    /// Record a poll that found (or made) the local files identical to the
    /// primary's generation `generation`.
    pub fn note_in_sync(&self, generation: u32) {
        self.primary_generation.store(generation, Ordering::Relaxed);
        self.synced_generation.store(generation, Ordering::Relaxed);
        self.last_in_sync_ms
            .store(self.origin.elapsed().as_millis() as u64, Ordering::Relaxed);
        self.stale.store(false, Ordering::Relaxed);
    }

    /// Record the primary's generation as observed by a poll whose install
    /// has not (yet) completed.
    pub fn note_primary_generation(&self, generation: u32) {
        self.primary_generation.store(generation, Ordering::Relaxed);
    }

    /// Record a completed sync transfer.
    pub fn note_sync(&self, took: Duration, bytes: u64) {
        self.last_sync_micros
            .store(took.as_micros() as u64, Ordering::Relaxed);
        self.last_sync_bytes.store(bytes, Ordering::Relaxed);
        self.syncs.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a hedged request being fired (second endpoint asked).
    pub fn note_hedge_fired(&self) {
        self.hedges_fired.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a hedged request whose second attempt answered first.
    pub fn note_hedge_won(&self) {
        self.hedges_won.fetch_add(1, Ordering::Relaxed);
    }

    /// Seconds since the replica last confirmed being in sync (counted
    /// from process start when it never has been). 0 for a primary.
    pub fn lag_seconds(&self) -> u32 {
        if self.role == ROLE_PRIMARY {
            return 0;
        }
        let now_ms = self.origin.elapsed().as_millis() as u64;
        let last = self.last_in_sync_ms.load(Ordering::Relaxed);
        let since_ms = if last == NEVER { now_ms } else { now_ms.saturating_sub(last) };
        (since_ms / 1000).min(u32::MAX as u64) as u32
    }

    /// True once the primary has been silent past the staleness threshold.
    /// Computed from the last-in-sync clock (not a flag the loop must
    /// remember to set), so a wedged sync thread cannot mask staleness.
    pub fn is_stale(&self) -> bool {
        if self.role == ROLE_PRIMARY {
            return false;
        }
        let now_ms = self.origin.elapsed().as_millis() as u64;
        let last = self.last_in_sync_ms.load(Ordering::Relaxed);
        let since = Duration::from_millis(if last == NEVER {
            now_ms
        } else {
            now_ms.saturating_sub(last)
        });
        let stale = since > self.stale_after;
        let was = self.stale.swap(stale, Ordering::Relaxed);
        if stale && !was {
            eprintln!(
                "warning: primary unreachable for {:?}; serving stale answers",
                since
            );
        }
        stale
    }

    /// The wire gauges, given the local serving generation.
    pub fn snapshot(&self, serving_generation: u32) -> ReplicationStats {
        if self.role == ROLE_PRIMARY {
            return ReplicationStats {
                role: ROLE_PRIMARY,
                primary_generation: serving_generation,
                synced_generation: serving_generation,
                lag_generations: 0,
                lag_seconds: 0,
                last_sync_micros: self.last_sync_micros.load(Ordering::Relaxed),
                last_sync_bytes: self.last_sync_bytes.load(Ordering::Relaxed),
                syncs: self.syncs.load(Ordering::Relaxed),
                hedges_fired: self.hedges_fired.load(Ordering::Relaxed),
                hedges_won: self.hedges_won.load(Ordering::Relaxed),
                stale: false,
            };
        }
        let primary = self.primary_generation.load(Ordering::Relaxed);
        let synced = self.synced_generation.load(Ordering::Relaxed);
        ReplicationStats {
            role: ROLE_REPLICA,
            primary_generation: primary,
            synced_generation: synced,
            lag_generations: primary.saturating_sub(synced),
            lag_seconds: self.lag_seconds(),
            last_sync_micros: self.last_sync_micros.load(Ordering::Relaxed),
            last_sync_bytes: self.last_sync_bytes.load(Ordering::Relaxed),
            syncs: self.syncs.load(Ordering::Relaxed),
            hedges_fired: self.hedges_fired.load(Ordering::Relaxed),
            hedges_won: self.hedges_won.load(Ordering::Relaxed),
            stale: self.is_stale(),
        }
    }
}

/// A [`SyncSource`] speaking the wire protocol to a primary over one
/// connection.
pub struct TcpSyncSource {
    client: Client,
}

impl TcpSyncSource {
    /// Connect to the primary at `addr`.
    pub fn connect(addr: &str, timeout: Duration) -> Result<Self, ClientError> {
        Ok(TcpSyncSource {
            client: Client::connect_with_timeout(addr, timeout)?,
        })
    }
}

impl SyncSource for TcpSyncSource {
    fn poll(&mut self) -> Result<(u32, u64, Vec<SyncItem>), String> {
        match self.client.call(&Request::SyncPoll) {
            Ok(Response::SyncState {
                generation,
                fingerprint,
                items,
            }) => Ok((generation, fingerprint, items)),
            Ok(Response::Error(e)) => Err(format!("primary refused sync poll: {e}")),
            Ok(other) => Err(format!("unexpected sync poll response: {other:?}")),
            Err(e) => Err(format!("sync poll: {e}")),
        }
    }

    fn fetch(&mut self, item: &str, offset: u64, len: u32) -> Result<FetchedChunk, String> {
        let req = Request::SyncFetch {
            item: item.to_string(),
            offset,
            len,
        };
        match self.client.call(&req) {
            Ok(Response::SyncChunk {
                offset,
                total_len,
                crc,
                data,
            }) => Ok(FetchedChunk {
                offset,
                total_len,
                crc,
                data,
            }),
            Ok(Response::Error(e)) => Err(format!("primary refused sync fetch: {e}")),
            Ok(other) => Err(format!("unexpected sync fetch response: {other:?}")),
            Err(e) => Err(format!("sync fetch: {e}")),
        }
    }
}

/// Tuning for one replica's sync loop.
pub struct ReplicaConfig {
    /// The primary's address (`host:port`).
    pub primary_addr: String,
    /// Where to install the synced model artifact.
    pub model_path: PathBuf,
    /// Where to install synced live-lake files (`None` disables live
    /// delta shipping).
    pub live_dir: Option<PathBuf>,
    /// Delay between sync polls.
    pub interval: Duration,
    /// Per-fetch chunk size.
    pub chunk_len: u32,
    /// Unreachable-primary threshold before answers are flagged stale
    /// (consumed by the [`ReplicationState`] the caller builds).
    pub stale_after: Duration,
    /// Connect/read timeout towards the primary.
    pub connect_timeout: Duration,
    /// How long [`bootstrap`] keeps retrying before giving up.
    pub bootstrap_timeout: Duration,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        ReplicaConfig {
            primary_addr: String::new(),
            model_path: PathBuf::new(),
            live_dir: None,
            interval: Duration::from_millis(500),
            chunk_len: DEFAULT_CHUNK_LEN,
            stale_after: Duration::from_secs(10),
            connect_timeout: Duration::from_secs(5),
            bootstrap_timeout: Duration::from_secs(30),
        }
    }
}

/// Blocking bootstrap: fetch a first complete generation before the
/// server starts (the loader needs an artifact on disk). Retries until it
/// succeeds or `deadline_after` elapses; a replica restarting with a
/// previously synced artifact on disk may skip this and serve (stale)
/// immediately.
pub fn bootstrap(
    io: SharedIo,
    cfg: &ReplicaConfig,
    state: &ReplicationState,
) -> Result<(), String> {
    let started = Instant::now();
    let mut syncer = Syncer::new(
        io,
        cfg.model_path.clone(),
        cfg.live_dir.clone(),
        cfg.chunk_len,
    );
    let mut last_err = String::new();
    while started.elapsed() < cfg.bootstrap_timeout {
        match TcpSyncSource::connect(&cfg.primary_addr, cfg.connect_timeout) {
            Ok(mut source) => {
                let sync_started = Instant::now();
                match syncer.sync_once(&mut source) {
                    Ok(report) => {
                        state.note_sync(sync_started.elapsed(), report.bytes_transferred);
                        state.note_in_sync(report.generation);
                        return Ok(());
                    }
                    Err(e) => last_err = e,
                }
            }
            Err(e) => last_err = format!("connect {}: {e}", cfg.primary_addr),
        }
        std::thread::sleep(cfg.interval.min(Duration::from_millis(500)));
    }
    Err(format!(
        "bootstrap sync from {} did not complete within {:?}: {last_err}",
        cfg.primary_addr, cfg.bootstrap_timeout
    ))
}

/// The replica's sync loop: poll the primary every `cfg.interval`,
/// install whatever changed, hot-reload the serving snapshot, update the
/// gauges. Runs until the server begins draining. An unreachable primary
/// is not an error — the loop keeps retrying while staleness accrues on
/// the clock [`ReplicationState::is_stale`] reads.
pub fn run_sync_loop(
    io: SharedIo,
    cfg: &ReplicaConfig,
    handle: &ServerHandle,
    state: &ReplicationState,
) {
    let mut syncer = Syncer::new(
        io,
        cfg.model_path.clone(),
        cfg.live_dir.clone(),
        cfg.chunk_len,
    );
    let mut source: Option<TcpSyncSource> = None;
    let mut last_logged = String::new();
    while !handle.is_shutting_down() {
        if source.is_none() {
            source = TcpSyncSource::connect(&cfg.primary_addr, cfg.connect_timeout).ok();
        }
        if let Some(src) = source.as_mut() {
            let sync_started = Instant::now();
            match syncer.sync_once(src) {
                Ok(report) => {
                    last_logged.clear();
                    state.note_primary_generation(report.generation);
                    if report.changed() {
                        state.note_sync(sync_started.elapsed(), report.bytes_transferred);
                        match handle.reload(None) {
                            Ok((local_generation, _warnings)) => {
                                state.note_in_sync(report.generation);
                                eprintln!(
                                    "replica: synced primary generation {} ({} bytes) -> serving generation {}",
                                    report.generation,
                                    report.bytes_transferred,
                                    local_generation
                                );
                            }
                            Err(e) => eprintln!(
                                "warning: synced generation {} failed to load ({e}); previous snapshot keeps serving",
                                report.generation
                            ),
                        }
                    } else {
                        state.note_in_sync(report.generation);
                    }
                }
                Err(e) => {
                    // One line per distinct failure, not one per poll.
                    if e != last_logged {
                        eprintln!("warning: sync from {} failed: {e}", cfg.primary_addr);
                        last_logged = e;
                    }
                    source = None;
                }
            }
        }
        // Refresh the stale flag even when unreachable (it logs its own
        // transition), then sleep in short slices so drain stays prompt.
        state.is_stale();
        let mut remaining = cfg.interval;
        while !remaining.is_zero() && !handle.is_shutting_down() {
            let slice = remaining.min(Duration::from_millis(50));
            std::thread::sleep(slice);
            remaining = remaining.saturating_sub(slice);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primary_state_is_never_stale_and_mirrors_its_generation() {
        let state = ReplicationState::primary();
        assert!(!state.is_stale());
        let s = state.snapshot(9);
        assert_eq!(s.role, ROLE_PRIMARY);
        assert_eq!(s.primary_generation, 9);
        assert_eq!(s.synced_generation, 9);
        assert_eq!(s.lag_generations, 0);
        assert!(!s.stale);
    }

    #[test]
    fn replica_goes_stale_after_the_threshold_and_recovers_on_contact() {
        let state = ReplicationState::replica(Duration::from_millis(40));
        // Fresh replica that has never synced: staleness counts from
        // process start.
        assert!(!state.is_stale());
        std::thread::sleep(Duration::from_millis(60));
        assert!(state.is_stale());
        let s = state.snapshot(1);
        assert!(s.stale);

        state.note_in_sync(4);
        assert!(!state.is_stale());
        let s = state.snapshot(1);
        assert!(!s.stale);
        assert_eq!(s.synced_generation, 4);
        assert_eq!(s.lag_generations, 0);
        assert_eq!(s.lag_seconds, 0);

        // Silence past the threshold flips it back.
        std::thread::sleep(Duration::from_millis(60));
        assert!(state.is_stale());
    }

    #[test]
    fn lag_generations_tracks_polls_that_outpace_installs() {
        let state = ReplicationState::replica(Duration::from_secs(60));
        state.note_in_sync(3);
        state.note_primary_generation(5);
        let s = state.snapshot(1);
        assert_eq!(s.lag_generations, 2);
        assert_eq!(s.primary_generation, 5);
        assert_eq!(s.synced_generation, 3);
    }

    #[test]
    fn sync_and_hedge_counters_accumulate() {
        let state = ReplicationState::replica(Duration::from_secs(60));
        state.note_sync(Duration::from_millis(12), 4096);
        state.note_sync(Duration::from_millis(8), 1024);
        state.note_hedge_fired();
        state.note_hedge_fired();
        state.note_hedge_won();
        let s = state.snapshot(1);
        assert_eq!(s.syncs, 2);
        assert_eq!(s.last_sync_micros, 8_000);
        assert_eq!(s.last_sync_bytes, 1024);
        assert_eq!(s.hedges_fired, 2);
        assert_eq!(s.hedges_won, 1);
    }
}
