//! The query server: accept loop, worker pool, admission control,
//! degradation reporting, hot reload, and graceful drain.
//!
//! Threading model (all scoped — the server can never leak threads):
//!
//! * the caller's thread runs the accept loop (non-blocking, polled so it
//!   can notice shutdown/reload signals between connections);
//! * one scoped thread per connection reads frames and answers cheap
//!   requests (ping/stats/reload/shutdown) inline;
//! * query requests pass their tenant's token bucket, then a
//!   deficit-weighted fair queue ([`deepjoin_par::FairQueue`]), and are
//!   answered by a fixed pool of scoped worker threads — at capacity the
//!   newest job of the heaviest tenant is shed with `Overloaded`, and a
//!   CoDel-style controller steps the answer-effort ladder down when
//!   queue sojourn stays over target.
//!
//! Connections use sliced reads (a short socket timeout looped up to the
//! configured per-frame budget) so a stalled client ties up its thread for
//! at most `read_timeout`, and a drain is never blocked behind a slow
//! reader.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use deepjoin_ann::{Budget, Effort};
use deepjoin_par::{FairPush, FairPushError, FairQueue};

use crate::brownout::{
    tenant_id, BrownoutConfig, BrownoutController, Pressure, TenantTable, DEFAULT_TENANT,
};
use crate::protocol::{
    self, ErrorCode, FrameError, OverloadStats, QueryReply, Request, Response, StatsReply,
    TenantStats, WireError, WireHit,
};
use crate::replica::ReplicationState;
use crate::sync::SyncExport;
use crate::{Loader, MutateOp, ServeModel, WaveQuery};

/// Tuning for one server instance.
pub struct ServerConfig {
    /// Listen address, e.g. `"127.0.0.1:7878"`. Port 0 picks a free port
    /// (read it back with [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads executing queries.
    pub workers: usize,
    /// Admission queue capacity: queries waiting for a worker beyond this
    /// bound are shed with `Overloaded`.
    pub max_inflight: usize,
    /// Per-query compute deadline. `None` means unbounded.
    pub deadline: Option<Duration>,
    /// Total time a connection may take to deliver one frame; stalled
    /// clients are disconnected after this.
    pub read_timeout: Duration,
    /// Maximum accepted frame payload size.
    pub max_frame: usize,
    /// Maximum simultaneous connections; excess connections are turned
    /// away with `Unavailable`.
    pub max_conns: usize,
    /// Install process-wide SIGTERM/SIGINT (drain) and SIGHUP (reload)
    /// handlers. Off by default so embedded/test servers don't touch
    /// process state.
    pub install_signal_handlers: bool,
    /// When set, this server answers `SyncPoll`/`SyncFetch` from the
    /// given export (i.e. it acts as a replication primary). `None`
    /// (the default) refuses sync requests with `Unavailable`.
    pub sync_export: Option<Arc<SyncExport>>,
    /// Replication gauges surfaced through `stats` and consulted for
    /// stale-marking of answers. `None` (the default) reports no
    /// replication tail at all — the standalone server of earlier
    /// releases.
    pub replication: Option<Arc<ReplicationState>>,
    /// Testing hook: sleep this long inside every query before answering.
    /// Lets the chaos suite fake a slow replica without touching the
    /// model. Never set in production.
    pub debug_stall: Option<Duration>,
    /// Per-tenant admission rate in queries/second. `None` (the default)
    /// disables token buckets: every query goes straight to the fair
    /// admission queue.
    pub tenant_rate: Option<f64>,
    /// Token-bucket burst capacity (tokens), used only with `tenant_rate`.
    pub tenant_burst: f64,
    /// CoDel-style brownout controller settings. `None` (the default)
    /// disables adaptive shedding and the degradation ladder: the server
    /// always answers at full effort.
    pub brownout: Option<BrownoutConfig>,
    /// Maximum queries a worker gathers into one batched wave: after
    /// blocking for the first admitted job it drains up to this many more
    /// without blocking, then answers the whole wave through one batched
    /// model call. 1 restores the pre-wave one-pop-one-search loop.
    pub wave_width: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            max_inflight: 32,
            deadline: None,
            read_timeout: Duration::from_secs(10),
            max_frame: protocol::MAX_FRAME,
            max_conns: 64,
            install_signal_handlers: false,
            sync_export: None,
            replication: None,
            debug_stall: None,
            tenant_rate: None,
            tenant_burst: 16.0,
            brownout: None,
            wave_width: 16,
        }
    }
}

/// An immutable loaded model generation. Queries clone the `Arc` once and
/// use that snapshot for their whole lifetime, so a concurrent reload can
/// never produce a torn read.
struct Snapshot {
    model: Box<dyn ServeModel>,
    generation: u32,
    warnings: Vec<String>,
}

/// A query waiting for a worker.
struct Job {
    name: String,
    cells: Vec<String>,
    k: u32,
    deadline: Option<Instant>,
    /// When the query was admitted (for per-tenant latency accounting).
    started: Instant,
    tenant: Arc<str>,
    sink: JobSink,
}

/// Where a job's answer goes.
enum JobSink {
    /// Untagged single query: the connection thread blocks on this channel
    /// and writes the plain `Query`/`Error` frame itself — the
    /// pre-pipelining wire behavior, byte-identical for old clients.
    Channel(mpsc::Sender<Response>),
    /// Pipelined or batched member: the worker writes a correlated
    /// `QueryFor` frame through the connection's shared writer, coalesced
    /// with the rest of its wave.
    Correlated {
        request_id: u64,
        writer: Arc<ConnWriter>,
    },
}

/// Serializes all frame writes on one connection. The connection thread's
/// inline replies (pong, stats, shed errors) and worker-written waves
/// interleave at frame granularity; a wave's answers for one connection
/// land in a single buffered write (see [`write_coalesced`]).
struct ConnWriter {
    stream: Mutex<TcpStream>,
}

impl ConnWriter {
    fn new(stream: TcpStream) -> Self {
        ConnWriter {
            stream: Mutex::new(stream),
        }
    }

    fn write_frame(&self, payload: &[u8]) -> io::Result<()> {
        protocol::write_frame(&mut *self.stream.lock().expect("conn writer lock"), payload)
    }

    fn write_frames(&self, payloads: &[Vec<u8>]) -> io::Result<()> {
        write_coalesced(&mut *self.stream.lock().expect("conn writer lock"), payloads)
    }
}

/// Write `payloads` as length-prefixed frames in **one** buffered write
/// (plus one flush): a wave answering D pipelined queries on a connection
/// costs one syscall, not 2·D header/body writes.
/// One connection's share of a wave: the writer identity (pointer keyed —
/// `Arc::ptr_eq` semantics without nested loops), the live handle, and the
/// encoded response payloads destined for it.
type WaveShare = (*const ConnWriter, Arc<ConnWriter>, Vec<Vec<u8>>);

fn write_coalesced(w: &mut impl Write, payloads: &[Vec<u8>]) -> io::Result<()> {
    let total: usize = payloads.iter().map(|p| 4 + p.len()).sum();
    let mut buf = Vec::with_capacity(total);
    for p in payloads {
        buf.extend_from_slice(&(p.len() as u32).to_le_bytes());
        buf.extend_from_slice(p);
    }
    w.write_all(&buf)?;
    w.flush()
}

#[derive(Default)]
struct Counters {
    accepted: AtomicU64,
    shed: AtomicU64,
    expired: AtomicU64,
    degraded_answers: AtomicU64,
    /// Sheds from per-tenant token buckets (subset of `shed`).
    bucket_shed: AtomicU64,
    /// Sheds where a full queue displaced the newest job of the heaviest
    /// tenant to admit a lighter one (subset of `shed`).
    displaced: AtomicU64,
    /// Sheds from the CoDel sojourn controller (subset of `shed`).
    codel_shed: AtomicU64,
    /// Answers produced at a brownout rung above `Full`.
    brownout_answers: AtomicU64,
}

struct Shared {
    current: Mutex<Arc<Snapshot>>,
    generation: AtomicU32,
    loader: Loader,
    queue: FairQueue<Job>,
    shutdown: AtomicBool,
    conns: AtomicUsize,
    counters: Counters,
    /// Serializes reloads; queries are *not* blocked by this (they only
    /// take the `current` lock for the duration of an `Arc::clone`).
    reload_lock: Mutex<()>,
    /// Microseconds the most recent (re)load took (0 until the first
    /// reload after startup completes).
    last_reload_micros: AtomicU64,
    /// Present when this server exports sync state (replication primary).
    sync_export: Option<Arc<SyncExport>>,
    /// Present when this server participates in replication (either role).
    replication: Option<Arc<ReplicationState>>,
    /// Per-tenant admission buckets and latency/shed accounting.
    tenants: TenantTable,
    /// CoDel-style sojourn controller; `None` disables brownout.
    brownout: Option<BrownoutController>,
    /// Histogram of formed wave sizes: slot `i` counts waves of `i + 1`
    /// members (in-process observability for the pipelined bench).
    wave_sizes: Box<[AtomicU64]>,
    config: ConfigBits,
}

/// The subset of [`ServerConfig`] needed after startup.
struct ConfigBits {
    deadline: Option<Duration>,
    read_timeout: Duration,
    max_frame: usize,
    max_conns: usize,
    debug_stall: Option<Duration>,
    wave_width: usize,
}

impl Shared {
    fn snapshot(&self) -> Arc<Snapshot> {
        self.current.lock().expect("snapshot lock").clone()
    }

    /// Load (startup) or reload (on request/SIGHUP) a snapshot. The new
    /// snapshot is fully constructed before it becomes visible; on error
    /// the previous one keeps serving. The wall-clock cost is recorded
    /// for `stats` — the gauge that shows a remap-and-swap reload of an
    /// unchanged mmap'd artifact staying O(ms) while a heap reload pays
    /// for the whole artifact.
    fn reload(&self, path: Option<&str>) -> Result<(u32, Vec<String>), String> {
        let _guard = self.reload_lock.lock().expect("reload lock");
        let started = Instant::now();
        let loaded = (self.loader)(path)?;
        let generation = self.generation.fetch_add(1, Ordering::SeqCst) + 1;
        let snap = Arc::new(Snapshot {
            model: loaded.model,
            generation,
            warnings: loaded.warnings.clone(),
        });
        *self.current.lock().expect("snapshot lock") = snap;
        self.last_reload_micros
            .store(started.elapsed().as_micros() as u64, Ordering::Relaxed);
        // The artifact under an explicit path switch (or an in-place
        // retrain) may differ from what replicas last fetched: drop the
        // export's cached CRC so the next SyncPoll re-sweeps it.
        if let Some(export) = &self.sync_export {
            if let Some(p) = path {
                export.set_model_path(std::path::PathBuf::from(p));
            }
            export.invalidate();
        }
        Ok((generation, loaded.warnings))
    }

    fn stats(&self) -> StatsReply {
        let snap = self.snapshot();
        let (cache_hits, cache_misses) = snap.model.cache_stats();
        StatsReply {
            generation: snap.generation,
            indexed: snap.model.indexed_len() as u64,
            health_label: snap.model.health().label(),
            accepted: self.counters.accepted.load(Ordering::Relaxed),
            shed: self.counters.shed.load(Ordering::Relaxed),
            expired: self.counters.expired.load(Ordering::Relaxed),
            degraded_answers: self.counters.degraded_answers.load(Ordering::Relaxed),
            queue_capacity: self.queue.capacity() as u32,
            cache_hits,
            cache_misses,
            live: snap.model.live_stats(),
            last_reload_micros: Some(self.last_reload_micros.load(Ordering::Relaxed)),
            replication: self
                .replication
                .as_ref()
                .map(|r| r.snapshot(snap.generation)),
            overload: Some(self.overload_stats()),
            dedup_hits: Some(snap.model.dedup_hits()),
        }
    }

    fn overload_stats(&self) -> OverloadStats {
        let (brownout_steps_down, brownout_steps_up) = self
            .brownout
            .as_ref()
            .map(|c| c.steps())
            .unwrap_or((0, 0));
        OverloadStats {
            brownout_rung: self.brownout.as_ref().map(|c| c.rung()).unwrap_or(0),
            brownout_steps_down,
            brownout_steps_up,
            brownout_answers: self.counters.brownout_answers.load(Ordering::Relaxed),
            bucket_shed: self.counters.bucket_shed.load(Ordering::Relaxed),
            displaced: self.counters.displaced.load(Ordering::Relaxed),
            codel_shed: self.counters.codel_shed.load(Ordering::Relaxed),
            tenants: self
                .tenants
                .snapshot()
                .into_iter()
                .map(|t| TenantStats {
                    name: t.name,
                    accepted: t.accepted,
                    shed: t.shed,
                    p50_micros: t.p50_micros,
                    p99_micros: t.p99_micros,
                })
                .collect(),
        }
    }
}

/// A handle for stopping or poking a running server from another thread
/// (the in-process equivalent of sending SIGTERM).
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Begin graceful drain: stop accepting, answer admitted work, return
    /// from [`Server::run`].
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// True once a drain has begun.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Current server counters.
    pub fn stats(&self) -> StatsReply {
        self.shared.stats()
    }

    /// Reload the snapshot in place (the in-process equivalent of SIGHUP
    /// or a `Reload` frame). `None` re-reads the original artifact. This
    /// is how a replica's sync loop publishes a freshly installed
    /// generation. On error the previous snapshot keeps serving.
    pub fn reload(&self, path: Option<&str>) -> Result<(u32, Vec<String>), String> {
        self.shared.reload(path)
    }

    /// Histogram of formed wave sizes: slot `i` counts waves of `i + 1`
    /// members, up to the configured wave width. In-process only (the
    /// pipelined bench reads its `wave_size_p50` from here); the wire
    /// stats stay unchanged.
    pub fn wave_size_histogram(&self) -> Vec<u64> {
        self.shared
            .wave_sizes
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }
}

/// A bound, loaded, ready-to-run server. Created by [`Server::start`];
/// serves until shutdown via [`Server::run`].
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    workers: usize,
    install_signals: bool,
}

impl Server {
    /// Bind `config.addr`, run the loader once (readiness gating: the
    /// socket only starts accepting inside [`Server::run`], after the model
    /// is live), and return the ready server.
    pub fn start(config: ServerConfig, loader: Loader) -> Result<Self, String> {
        let loaded = loader(None)?;
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| format!("bind {}: {e}", config.addr))?;
        let snap = Arc::new(Snapshot {
            model: loaded.model,
            generation: 1,
            warnings: loaded.warnings,
        });
        let shared = Arc::new(Shared {
            current: Mutex::new(snap),
            generation: AtomicU32::new(1),
            loader,
            queue: FairQueue::new(config.max_inflight),
            shutdown: AtomicBool::new(false),
            conns: AtomicUsize::new(0),
            counters: Counters::default(),
            reload_lock: Mutex::new(()),
            last_reload_micros: AtomicU64::new(0),
            sync_export: config.sync_export,
            replication: config.replication,
            tenants: TenantTable::new(config.tenant_rate.map(|r| (r, config.tenant_burst))),
            brownout: config.brownout.map(BrownoutController::new),
            wave_sizes: (0..config.wave_width.max(1))
                .map(|_| AtomicU64::new(0))
                .collect(),
            config: ConfigBits {
                deadline: config.deadline,
                read_timeout: config.read_timeout,
                max_frame: config.max_frame,
                max_conns: config.max_conns,
                debug_stall: config.debug_stall,
                wave_width: config.wave_width.max(1),
            },
        });
        Ok(Server {
            listener,
            shared,
            workers: config.workers.max(1),
            install_signals: config.install_signal_handlers,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Warnings from the initial load (e.g. degraded-index notices), for
    /// the operator's startup log.
    pub fn startup_warnings(&self) -> Vec<String> {
        self.shared.snapshot().warnings.clone()
    }

    /// A control handle usable from other threads.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: self.shared.clone(),
        }
    }

    /// Serve until a drain is requested (shutdown request, SIGTERM/SIGINT
    /// when signal handlers are installed, or [`ServerHandle::shutdown`]),
    /// then drain admitted work and return.
    pub fn run(&self) -> io::Result<()> {
        #[cfg(unix)]
        if self.install_signals {
            signals::install();
        }
        self.listener.set_nonblocking(true)?;
        let shared = &self.shared;
        std::thread::scope(|s| {
            // Fixed worker pool: the only threads that touch the model.
            for _ in 0..self.workers {
                s.spawn(|| worker_loop(shared));
            }
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                #[cfg(unix)]
                if self.install_signals {
                    if signals::take_term() {
                        shared.shutdown.store(true, Ordering::SeqCst);
                        break;
                    }
                    if signals::take_hup() {
                        // Best-effort live reload; a failure keeps serving
                        // the old snapshot.
                        if let Err(e) = shared.reload(None) {
                            eprintln!("warning: SIGHUP reload failed: {e}");
                        }
                    }
                }
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        if shared.conns.load(Ordering::Relaxed) >= shared.config.max_conns {
                            turn_away(stream);
                            continue;
                        }
                        shared.conns.fetch_add(1, Ordering::Relaxed);
                        s.spawn(move || {
                            let _ = handle_connection(shared, stream);
                            shared.conns.fetch_sub(1, Ordering::Relaxed);
                        });
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(25));
                    }
                    Err(e) => return Err(e),
                }
            }
            // Drain: no new work is admitted; workers finish the backlog
            // and exit; connection threads notice the flag at their next
            // read slice and close. The scope join is the drain barrier.
            shared.queue.close();
            Ok(())
        })?;
        // Graceful exit: give a live model the chance to flush its
        // memtable. Crash safety never depends on this (the journal
        // already holds everything), it just makes restarts cheaper.
        self.shared.snapshot().model.drain();
        Ok(())
    }
}

fn turn_away(mut stream: TcpStream) {
    let resp = Response::Error(WireError {
        code: ErrorCode::Unavailable,
        message: "connection limit reached".to_string(),
    });
    let _ = protocol::write_frame(&mut stream, &resp.encode());
}

/// Route a structured failure to a job's sink: a plain `Error` for a
/// channel job, a correlated `QueryFor` for a pipelined member (so one
/// member's failure never poisons the rest of its connection's window).
fn fail_job(job: &Job, code: ErrorCode, message: String) {
    let err = WireError { code, message };
    match &job.sink {
        JobSink::Channel(tx) => {
            let _ = tx.send(Response::Error(err));
        }
        JobSink::Correlated { request_id, writer } => {
            let _ = writer.write_frame(
                &Response::QueryFor {
                    request_id: *request_id,
                    reply: Err(err),
                }
                .encode(),
            );
        }
    }
}

/// Report one popped job's queue sojourn to the brownout controller
/// (CoDel-style: sustained sojourn over target steps the effort rung down
/// *and* sheds the newest job of the heaviest tenant, so the flooder pays
/// for the standing queue it built).
fn observe_sojourn(shared: &Shared, enqueued: Instant) {
    if let Some(ctl) = &shared.brownout {
        let sojourn = enqueued.elapsed();
        if ctl.observe(sojourn, Instant::now()) == Pressure::Shed {
            if let Some((_vid, victim, _)) = shared.queue.shed_newest_of_heaviest() {
                shared.counters.shed.fetch_add(1, Ordering::Relaxed);
                shared.counters.codel_shed.fetch_add(1, Ordering::Relaxed);
                shared.tenants.note_shed(&victim.tenant);
                fail_job(
                    &victim,
                    ErrorCode::Overloaded,
                    "queue delay over brownout target; shed to recover; retry with backoff"
                        .to_string(),
                );
            }
        }
    }
}

/// Pull queries off the admission queue until it is closed and drained.
/// Each blocking pop seeds a **wave**: the worker drains up to
/// `wave_width - 1` more already-admitted jobs without blocking (the
/// non-blocking drain walks the same deficit-round-robin cursor, so
/// fairness order is exactly what back-to-back pops would have produced),
/// then answers the whole wave through one batched model call — shared
/// encoder forward passes, deduped identical members, and row blocks
/// pulled through the cache once per wave instead of once per query.
fn worker_loop(shared: &Shared) {
    while let Some((_tenant, job, enqueued)) = shared.queue.pop() {
        observe_sojourn(shared, enqueued);
        let mut wave = vec![job];
        while wave.len() < shared.config.wave_width {
            match shared.queue.try_pop() {
                Some((_tenant, job, enqueued)) => {
                    observe_sojourn(shared, enqueued);
                    wave.push(job);
                }
                None => break,
            }
        }
        let slot = (wave.len() - 1).min(shared.wave_sizes.len() - 1);
        shared.wave_sizes[slot].fetch_add(1, Ordering::Relaxed);
        process_wave(shared, wave);
    }
}

/// Answer one formed wave: expire members that overslept in the queue,
/// run the rest through the model's batched entry point under the wave
/// budget (the tightest member deadline — a tighter budget can only stop
/// a member earlier, never change its complete answer), then deliver
/// responses with one coalesced write per connection.
fn process_wave(shared: &Shared, wave: Vec<Job>) {
    let now = Instant::now();
    // A member that sat in the queue past its whole deadline gets a
    // structured error instead of a zero-work "partial result".
    let mut live = Vec::with_capacity(wave.len());
    for job in wave {
        if let Some(d) = job.deadline {
            if now >= d {
                shared.counters.expired.fetch_add(1, Ordering::Relaxed);
                fail_job(
                    &job,
                    ErrorCode::DeadlineExceeded,
                    "deadline expired while queued; retry with backoff".to_string(),
                );
                continue;
            }
        }
        live.push(job);
    }
    if live.is_empty() {
        return;
    }
    if let Some(stall) = shared.config.debug_stall {
        // The testing stall models per-query work: a wave pays it once
        // per member, like the serial loop it replaces.
        std::thread::sleep(stall * live.len() as u32);
    }
    let snap = shared.snapshot();
    let indexed = snap.model.indexed_len();
    // Brownout: stamp the current effort rung onto the wave budget so the
    // search loops step down (reduced beam → surrogate-only scores →
    // truncated scans) without any signature change below this point.
    let rung = shared.brownout.as_ref().map(|c| c.rung()).unwrap_or(0);
    let deadline = live.iter().filter_map(|j| j.deadline).min();
    let budget = match deadline {
        Some(d) => Budget::with_deadline(d),
        None => Budget::unlimited(),
    }
    .with_effort(Effort::from_rung(rung));
    // Clamp k to the index size: asking for more neighbors than columns
    // is well-defined, not an error.
    let queries: Vec<WaveQuery<'_>> = live
        .iter()
        .map(|j| WaveQuery {
            cells: &j.cells,
            name: &j.name,
            k: (j.k as usize).min(indexed.max(1)),
        })
        .collect();
    let outcomes = match catch_unwind(AssertUnwindSafe(|| {
        snap.model.query_batch(&queries, &budget)
    })) {
        Ok(outcomes) if outcomes.len() == live.len() => outcomes,
        Ok(_) => {
            for job in &live {
                fail_job(
                    job,
                    ErrorCode::Internal,
                    "model answered a different wave size".to_string(),
                );
            }
            return;
        }
        Err(_) => {
            for job in &live {
                fail_job(
                    job,
                    ErrorCode::Internal,
                    "query processing failed; the worker recovered".to_string(),
                );
            }
            return;
        }
    };
    let health = snap.model.health();
    // A replica cut off from its primary past the staleness threshold
    // keeps answering (availability over consistency) but every answer
    // says so: the label grows a " (stale)" suffix and the reply is
    // marked degraded. QueryReply's strict decoder can't grow a field,
    // so staleness rides the existing degradation channel.
    let stale = shared
        .replication
        .as_ref()
        .map(|r| r.is_stale())
        .unwrap_or(false);
    let mut health_label = health.label();
    if stale {
        health_label.push_str(" (stale)");
    }
    // Like staleness, the brownout rung rides the label + degraded flag:
    // QueryReply's strict decoder cannot grow a field, and old clients
    // must keep parsing replies from a browned-out server.
    if rung > 0 {
        health_label.push_str(&format!(" (brownout-{rung})"));
        shared
            .counters
            .brownout_answers
            .fetch_add(live.len() as u64, Ordering::Relaxed);
    }
    // Deliver: channel jobs wake their connection thread; correlated jobs
    // are grouped by connection so each connection gets its whole share
    // of the wave in one buffered write.
    let mut coalesced: Vec<WaveShare> = Vec::new();
    for (job, outcome) in live.iter().zip(outcomes) {
        let degraded =
            !outcome.complete || outcome.via_fallback || health.is_degraded() || stale || rung > 0;
        if degraded {
            shared
                .counters
                .degraded_answers
                .fetch_add(1, Ordering::Relaxed);
        }
        let reply = QueryReply {
            health_code: health.code(),
            health_label: health_label.clone(),
            degraded,
            complete: outcome.complete,
            via_fallback: outcome.via_fallback,
            generation: snap.generation,
            indexed: indexed as u64,
            visited: outcome.visited as u64,
            hits: outcome
                .hits
                .into_iter()
                .map(|h| WireHit {
                    id: h.id,
                    score: h.score,
                    label: h.label,
                })
                .collect(),
        };
        match &job.sink {
            JobSink::Channel(tx) => {
                // A dead client (dropped receiver) is not an error.
                let _ = tx.send(Response::Query(reply));
            }
            JobSink::Correlated { request_id, writer } => {
                let frame = Response::QueryFor {
                    request_id: *request_id,
                    reply: Ok(reply),
                }
                .encode();
                let key = Arc::as_ptr(writer);
                match coalesced.iter_mut().find(|(p, _, _)| *p == key) {
                    Some((_, _, frames)) => frames.push(frame),
                    None => coalesced.push((key, writer.clone(), vec![frame])),
                }
                shared
                    .tenants
                    .note_latency(&job.tenant, job.started.elapsed().as_micros() as u64);
            }
        }
    }
    for (_, writer, frames) in coalesced {
        // A dead client (closed socket) is not an error.
        let _ = writer.write_frames(&frames);
    }
}

fn internal_error(msg: &str) -> Response {
    Response::Error(WireError {
        code: ErrorCode::Internal,
        message: msg.to_string(),
    })
}

/// Read frames off one connection until EOF, a fatal protocol error, a
/// stall, or server drain. Always answers with a structured error before
/// closing on a protocol violation. Untagged queries block this thread
/// until answered (the pre-pipelining behavior, byte-identical on the
/// wire); queries carrying a `request_id` — and every `QueryBatch`
/// member — return to the read loop immediately after admission, so the
/// client can keep its pipeline window full while worker waves write the
/// correlated answers back through the shared [`ConnWriter`].
fn handle_connection(shared: &Shared, mut stream: TcpStream) -> io::Result<()> {
    // Short slices let the loop observe drain and enforce the total
    // per-frame budget against slow-loris clients.
    stream.set_read_timeout(Some(Duration::from_millis(250)))?;
    stream.set_nodelay(true).ok();
    // All frame writes go through one serialized writer: the read loop's
    // inline replies and worker-written waves may otherwise interleave
    // mid-frame.
    let writer = Arc::new(ConnWriter::new(stream.try_clone()?));
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            let resp = Response::Error(WireError {
                code: ErrorCode::Unavailable,
                message: "server is draining".to_string(),
            });
            let _ = writer.write_frame(&resp.encode());
            return Ok(());
        }
        let payload = match read_frame_sliced(shared, &mut stream) {
            Ok(Some(p)) => p,
            Ok(None) => return Ok(()), // clean EOF
            Err(FrameError::TooLarge { announced, cap }) => {
                let resp = Response::Error(WireError {
                    code: ErrorCode::FrameTooLarge,
                    message: format!("frame of {announced} bytes exceeds cap of {cap} bytes"),
                });
                let _ = writer.write_frame(&resp.encode());
                return Ok(());
            }
            Err(FrameError::Io(e)) if e.kind() == io::ErrorKind::TimedOut => {
                // Either the client stalled past read_timeout or a drain
                // started mid-read; tell it which before closing.
                let resp = if shared.shutdown.load(Ordering::SeqCst) {
                    Response::Error(WireError {
                        code: ErrorCode::Unavailable,
                        message: "server is draining".to_string(),
                    })
                } else {
                    Response::Error(WireError {
                        code: ErrorCode::BadRequest,
                        message: "read timed out mid-frame".to_string(),
                    })
                };
                let _ = writer.write_frame(&resp.encode());
                return Ok(());
            }
            Err(FrameError::Io(e)) => return Err(e),
        };
        let request = match Request::decode(&payload) {
            Ok(r) => r,
            Err(e) => {
                let resp = Response::Error(WireError {
                    code: ErrorCode::BadRequest,
                    message: format!("bad request frame: {e}"),
                });
                let _ = writer.write_frame(&resp.encode());
                // A peer speaking garbage gets one diagnosis, then the
                // connection closes: framing can no longer be trusted.
                return Ok(());
            }
        };
        let response = match request {
            Request::Ping => Response::Pong,
            Request::Stats => Response::Stats(shared.stats()),
            Request::Shutdown => {
                shared.shutdown.store(true, Ordering::SeqCst);
                let _ = writer.write_frame(&Response::ShuttingDown.encode());
                return Ok(());
            }
            Request::Reload { ref path } => match shared.reload(path.as_deref()) {
                Ok((generation, warnings)) => Response::Reloaded {
                    generation,
                    warnings,
                },
                Err(e) => Response::Error(WireError {
                    code: ErrorCode::Unavailable,
                    message: format!("reload failed, previous snapshot still serving: {e}"),
                }),
            },
            Request::AddTable { title, columns } => {
                dispatch_mutation(shared, MutateOp::AddTable { title, columns })
            }
            Request::DropTable { title } => dispatch_mutation(shared, MutateOp::DropTable { title }),
            Request::SyncPoll => answer_sync_poll(shared),
            Request::SyncFetch { item, offset, len } => {
                answer_sync_fetch(shared, &item, offset, len)
            }
            Request::Query {
                name,
                cells,
                k,
                tenant,
                request_id: Some(request_id),
            } => {
                admit_pipelined(shared, &writer, request_id, name, cells, k, tenant)?;
                continue;
            }
            Request::QueryBatch { queries } => {
                for q in queries {
                    admit_pipelined(
                        shared,
                        &writer,
                        q.request_id,
                        q.name,
                        q.cells,
                        q.k,
                        q.tenant,
                    )?;
                }
                continue;
            }
            Request::Query { k: 0, .. } => Response::Error(WireError {
                code: ErrorCode::BadRequest,
                message: "k must be >= 1".to_string(),
            }),
            Request::Query {
                name,
                cells,
                k,
                tenant,
                request_id: None,
            } => dispatch_query(shared, name, cells, k, tenant),
        };
        writer.write_frame(&response.encode())?;
    }
}

/// Admit one pipelined (tagged or batched) query. An admission failure is
/// answered immediately with a correlated error frame; success returns to
/// the read loop with the job queued for a worker wave.
fn admit_pipelined(
    shared: &Shared,
    writer: &Arc<ConnWriter>,
    request_id: u64,
    name: String,
    cells: Vec<String>,
    k: u32,
    tenant: Option<String>,
) -> io::Result<()> {
    let refused = if k == 0 {
        Some(WireError {
            code: ErrorCode::BadRequest,
            message: "k must be >= 1".to_string(),
        })
    } else {
        let sink = JobSink::Correlated {
            request_id,
            writer: writer.clone(),
        };
        admit_query(shared, name, cells, k, tenant_arc(tenant.as_deref()), sink).err()
    };
    match refused {
        Some(err) => writer.write_frame(
            &Response::QueryFor {
                request_id,
                reply: Err(err),
            }
            .encode(),
        ),
        None => Ok(()),
    }
}

/// Apply a mutation on the connection thread. Mutations are serialized
/// inside the live lake (one lock) and are cheap relative to queries
/// (embedding a handful of columns + one journal append), so they do not
/// go through the admission queue.
fn dispatch_mutation(shared: &Shared, op: MutateOp) -> Response {
    let snap = shared.snapshot();
    match catch_unwind(AssertUnwindSafe(|| snap.model.mutate(op))) {
        Ok(Ok(reply)) => Response::Mutated {
            seq: reply.seq,
            applied: reply.applied,
        },
        Ok(Err(msg)) => Response::Error(WireError {
            code: ErrorCode::BadRequest,
            message: msg,
        }),
        Err(_) => internal_error("mutation failed; the server recovered"),
    }
}

/// Answer a `SyncPoll` on the connection thread: the current generation,
/// the fingerprint over the syncable file set, and its item list. Servers
/// without a sync export (replicas, standalone servers) refuse — a
/// replica must never be mistaken for a primary by another replica.
fn answer_sync_poll(shared: &Shared) -> Response {
    let Some(export) = &shared.sync_export else {
        return Response::Error(WireError {
            code: ErrorCode::Unavailable,
            message: "not a sync-exporting primary".to_string(),
        });
    };
    let generation = shared.generation.load(Ordering::SeqCst);
    match export.state(generation) {
        Ok((fingerprint, items)) => Response::SyncState {
            generation,
            fingerprint,
            items,
        },
        Err(e) => Response::Error(WireError {
            code: ErrorCode::Unavailable,
            message: format!("sync state unavailable: {e}"),
        }),
    }
}

/// Answer a `SyncFetch` on the connection thread (disk read + CRC, no
/// model work, so it does not go through the admission queue).
fn answer_sync_fetch(shared: &Shared, item: &str, offset: u64, len: u32) -> Response {
    let Some(export) = &shared.sync_export else {
        return Response::Error(WireError {
            code: ErrorCode::Unavailable,
            message: "not a sync-exporting primary".to_string(),
        });
    };
    match export.chunk(item, offset, len) {
        Ok((total_len, crc, data)) => Response::SyncChunk {
            offset,
            total_len,
            crc,
            data,
        },
        Err(e) => Response::Error(WireError {
            code: ErrorCode::BadRequest,
            message: format!("sync fetch failed: {e}"),
        }),
    }
}

/// The tenant a query bills to: the explicit tag, or the shared default.
fn tenant_arc(tenant: Option<&str>) -> Arc<str> {
    match tenant {
        Some(t) => Arc::from(t),
        None => Arc::from(DEFAULT_TENANT),
    }
}

/// Admit a query to the worker queue, or shed it with the returned error.
/// Admission is layered: the tenant's token bucket first (flooders shed
/// before touching shared state), then the deficit-weighted fair queue
/// (at capacity the newest job of the *heaviest* tenant is displaced, so
/// a flooder's own backlog absorbs the overload). A displaced victim is
/// failed through its own sink, whichever kind it is.
fn admit_query(
    shared: &Shared,
    name: String,
    cells: Vec<String>,
    k: u32,
    tenant: Arc<str>,
    sink: JobSink,
) -> Result<(), WireError> {
    let now = Instant::now();
    if !shared.tenants.admit(&tenant, now) {
        shared.counters.shed.fetch_add(1, Ordering::Relaxed);
        shared.counters.bucket_shed.fetch_add(1, Ordering::Relaxed);
        return Err(WireError {
            code: ErrorCode::Overloaded,
            message: format!("tenant '{tenant}' over admission rate; retry with backoff"),
        });
    }
    let deadline = shared.config.deadline.map(|d| now + d);
    let job = Job {
        name,
        cells,
        k,
        deadline,
        started: now,
        tenant: tenant.clone(),
        sink,
    };
    match shared.queue.try_push(tenant_id(&tenant), job) {
        Ok(FairPush::Admitted) => {
            shared.counters.accepted.fetch_add(1, Ordering::Relaxed);
            shared.tenants.note_accepted(&tenant);
            Ok(())
        }
        Ok(FairPush::Displaced(_vid, victim)) => {
            shared.counters.accepted.fetch_add(1, Ordering::Relaxed);
            shared.tenants.note_accepted(&tenant);
            shared.counters.shed.fetch_add(1, Ordering::Relaxed);
            shared.counters.displaced.fetch_add(1, Ordering::Relaxed);
            shared.tenants.note_shed(&victim.tenant);
            fail_job(
                &victim,
                ErrorCode::Overloaded,
                "displaced by fair admission at capacity; retry with backoff".to_string(),
            );
            Ok(())
        }
        Err(FairPushError::Full(_)) => {
            shared.counters.shed.fetch_add(1, Ordering::Relaxed);
            shared.tenants.note_shed(&tenant);
            Err(WireError {
                code: ErrorCode::Overloaded,
                message: format!(
                    "admission queue full ({} in flight); retry with backoff",
                    shared.queue.capacity()
                ),
            })
        }
        Err(FairPushError::Closed(_)) => Err(WireError {
            code: ErrorCode::Unavailable,
            message: "server is draining".to_string(),
        }),
    }
}

/// Admit an untagged single query and block the connection thread (not a
/// worker) until its wave answers — the pre-pipelining request/response
/// behavior old clients rely on.
fn dispatch_query(
    shared: &Shared,
    name: String,
    cells: Vec<String>,
    k: u32,
    tenant: Option<String>,
) -> Response {
    let started = Instant::now();
    let tenant = tenant_arc(tenant.as_deref());
    let (tx, rx) = mpsc::channel();
    if let Err(err) = admit_query(
        shared,
        name,
        cells,
        k,
        tenant.clone(),
        JobSink::Channel(tx),
    ) {
        return Response::Error(err);
    }
    // The worker sends exactly one response per admitted job; recv fails
    // only if the worker pool died, which is itself an internal error.
    let resp = match rx.recv() {
        Ok(resp) => resp,
        Err(_) => internal_error("worker pool unavailable"),
    };
    shared
        .tenants
        .note_latency(&tenant, started.elapsed().as_micros() as u64);
    resp
}

/// Read one frame with the 250 ms socket slices accumulated against the
/// connection's total `read_timeout`, checking the drain flag between
/// slices. Distinguishes a stall (TimedOut) from transport errors.
fn read_frame_sliced(shared: &Shared, stream: &mut TcpStream) -> Result<Option<Vec<u8>>, FrameError> {
    let start = Instant::now();
    let mut header = [0u8; 4];
    let mut have = 0usize;
    // Header phase: a clean EOF before any byte is a normal close.
    while have < 4 {
        check_stall(shared, start)?;
        match stream.read(&mut header[have..]) {
            Ok(0) if have == 0 => return Ok(None),
            Ok(0) => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside frame header",
                )))
            }
            Ok(n) => have += n,
            Err(e) if stall_kind(&e) => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > shared.config.max_frame {
        return Err(FrameError::TooLarge {
            announced: len,
            cap: shared.config.max_frame,
        });
    }
    let mut payload = vec![0u8; len];
    let mut have = 0usize;
    while have < len {
        check_stall(shared, start)?;
        match stream.read(&mut payload[have..]) {
            Ok(0) => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside frame body",
                )))
            }
            Ok(n) => have += n,
            Err(e) if stall_kind(&e) => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(Some(payload))
}

fn check_stall(shared: &Shared, start: Instant) -> Result<(), FrameError> {
    if shared.shutdown.load(Ordering::SeqCst) {
        return Err(FrameError::Io(io::Error::new(
            io::ErrorKind::TimedOut,
            "server draining during read",
        )));
    }
    if start.elapsed() >= shared.config.read_timeout {
        return Err(FrameError::Io(io::Error::new(
            io::ErrorKind::TimedOut,
            "client stalled mid-frame",
        )));
    }
    Ok(())
}

/// Socket-timeout error kinds (platform-dependent: WouldBlock on unix,
/// TimedOut on some platforms).
fn stall_kind(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut | io::ErrorKind::Interrupted
    )
}

/// Minimal async-signal-safe handlers. The libc `signal` symbol is linked
/// into every Rust binary, so no external crate is needed; handlers only
/// set atomics that the accept loop polls.
#[cfg(unix)]
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TERM: AtomicBool = AtomicBool::new(false);
    static HUP: AtomicBool = AtomicBool::new(false);

    const SIGHUP: i32 = 1;
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_term(_sig: i32) {
        TERM.store(true, Ordering::SeqCst);
    }

    extern "C" fn on_hup(_sig: i32) {
        HUP.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        unsafe {
            signal(SIGTERM, on_term as extern "C" fn(i32) as usize);
            signal(SIGINT, on_term as extern "C" fn(i32) as usize);
            signal(SIGHUP, on_hup as extern "C" fn(i32) as usize);
        }
    }

    pub fn take_term() -> bool {
        TERM.swap(false, Ordering::SeqCst)
    }

    pub fn take_hup() -> bool {
        HUP.swap(false, Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A stream that counts how many OS-level `write` calls it absorbs.
    #[derive(Default)]
    struct CountingStream {
        writes: usize,
        flushes: usize,
        bytes: Vec<u8>,
    }

    impl Write for CountingStream {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.writes += 1;
            self.bytes.extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> io::Result<()> {
            self.flushes += 1;
            Ok(())
        }
    }

    #[test]
    fn a_waves_responses_for_one_connection_are_one_buffered_write() {
        let payloads: Vec<Vec<u8>> = (0..4)
            .map(|i| {
                Response::QueryFor {
                    request_id: i,
                    reply: Err(WireError {
                        code: ErrorCode::Internal,
                        message: format!("m{i}"),
                    }),
                }
                .encode()
            })
            .collect();
        let mut stream = CountingStream::default();
        write_coalesced(&mut stream, &payloads).unwrap();
        // The pin: one write call for the whole wave share (not one or two
        // per frame), one flush.
        assert_eq!(stream.writes, 1);
        assert_eq!(stream.flushes, 1);
        // The coalesced bytes are still valid back-to-back frames.
        let mut cur = std::io::Cursor::new(stream.bytes);
        for i in 0..4 {
            let frame = protocol::read_frame(&mut cur, protocol::MAX_FRAME)
                .unwrap()
                .unwrap();
            match Response::decode(&frame).unwrap() {
                Response::QueryFor { request_id, .. } => assert_eq!(request_id, i),
                other => panic!("expected QueryFor, got {other:?}"),
            }
        }
        assert!(protocol::read_frame(&mut cur, protocol::MAX_FRAME)
            .unwrap()
            .is_none());
        // An empty share never touches the socket.
        let mut empty = CountingStream::default();
        write_coalesced(&mut empty, &[]).unwrap();
        assert_eq!(empty.writes, 0);
    }
}
