//! Overload control: token buckets, a CoDel-style sojourn controller, and
//! per-tenant serving stats.
//!
//! Three cooperating pieces keep an overloaded server predictable
//! (DESIGN.md §16):
//!
//! - [`TokenBucket`] — per-tenant rate limiting at admission. A flooding
//!   tenant drains its own bucket and sheds there, before it can touch the
//!   shared queue.
//! - [`BrownoutController`] — watches queue *sojourn* (how long an admitted
//!   query waited before a worker picked it up). Sojourn is the one signal
//!   that directly measures "are we keeping up": when it stays above a
//!   target for a sustained window, the controller steps the server down
//!   one degradation rung (see [`deepjoin_ann::Effort`]) and asks the
//!   caller to shed the newest item of the heaviest tenant; when sojourn
//!   stays comfortably below target, it hysteretically steps back up.
//! - [`TenantTable`] — per-tenant accepted/shed counters and a latency
//!   ring for the p50/p99 surfaced through `StatsReply` / `dj ctl stats`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The tenant name assumed for clients that don't send one (pre-PR-9
/// clients and callers that never opted in).
pub const DEFAULT_TENANT: &str = "default";

/// Hard cap on distinct tenants tracked per server. A hostile client
/// minting a fresh tenant name per request must not grow server memory
/// without bound; past the cap, traffic folds into one shared overflow
/// entry (which also means overflow tenants share one bucket — again the
/// conservative choice against cardinality attacks).
pub const MAX_TRACKED_TENANTS: usize = 64;
const OVERFLOW_TENANT: &str = "(other)";

/// Stable 64-bit FNV-1a over the tenant name: the fair queue's lane key.
pub fn tenant_id(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A classic leaky token bucket: `rate` tokens/second refill up to `burst`
/// capacity; each admitted query takes one token.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    tokens: f64,
    burst: f64,
    rate: f64,
    last: Instant,
}

impl TokenBucket {
    /// A bucket refilling at `rate` tokens/second with `burst` capacity.
    /// Both must be positive — the CLI rejects zero-capacity buckets
    /// before one can be built.
    pub fn new(rate: f64, burst: f64, now: Instant) -> Self {
        debug_assert!(rate > 0.0 && burst > 0.0, "zero-capacity bucket");
        Self {
            tokens: burst,
            burst,
            rate,
            last: now,
        }
    }

    /// Refill for the elapsed time and try to take one token.
    pub fn try_take(&mut self, now: Instant) -> bool {
        let dt = now.saturating_duration_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + dt * self.rate).min(self.burst);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// Sojourn-control parameters. `target` is the acceptable queue wait;
/// `window` is how long sojourn must stay above target before the server
/// reacts (and, doubled, how long it must stay calm before recovering).
#[derive(Debug, Clone, Copy)]
pub struct BrownoutConfig {
    /// Acceptable admission-queue sojourn.
    pub target: Duration,
    /// Sustained-overload interval before stepping down a rung.
    pub window: Duration,
}

/// What the caller should do after reporting a sojourn sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pressure {
    /// Keep serving.
    Steady,
    /// Sustained overload was just confirmed: the controller stepped down
    /// one rung and the caller should shed the newest item of the
    /// heaviest tenant to relieve the queue now.
    Shed,
}

struct ControlState {
    above_since: Option<Instant>,
    calm_since: Option<Instant>,
}

/// CoDel-style controller over admission-queue sojourn driving the
/// brownout rung (0 = full effort … 3 = flat-truncated).
pub struct BrownoutController {
    cfg: BrownoutConfig,
    rung: AtomicU8,
    steps_down: AtomicU64,
    steps_up: AtomicU64,
    state: Mutex<ControlState>,
}

impl BrownoutController {
    /// A controller starting at full effort (rung 0).
    pub fn new(cfg: BrownoutConfig) -> Self {
        Self {
            cfg,
            rung: AtomicU8::new(0),
            steps_down: AtomicU64::new(0),
            steps_up: AtomicU64::new(0),
            state: Mutex::new(ControlState {
                above_since: None,
                calm_since: None,
            }),
        }
    }

    /// The current degradation rung.
    pub fn rung(&self) -> u8 {
        self.rung.load(Ordering::Relaxed)
    }

    /// (rung step-downs, rung step-ups) so far.
    pub fn steps(&self) -> (u64, u64) {
        (
            self.steps_down.load(Ordering::Relaxed),
            self.steps_up.load(Ordering::Relaxed),
        )
    }

    /// Report one queue-sojourn sample (called by workers as they pick up
    /// jobs). Returns [`Pressure::Shed`] exactly when a sustained-overload
    /// window completes — the moment the rung steps down.
    pub fn observe(&self, sojourn: Duration, now: Instant) -> Pressure {
        let mut st = self.state.lock().expect("brownout lock");
        if sojourn > self.cfg.target {
            st.calm_since = None;
            match st.above_since {
                None => {
                    st.above_since = Some(now);
                    Pressure::Steady
                }
                Some(since) if now.saturating_duration_since(since) >= self.cfg.window => {
                    // Sustained overload confirmed: one rung down, timer
                    // restarts so the next step needs a fresh full window.
                    st.above_since = Some(now);
                    let r = self.rung.load(Ordering::Relaxed);
                    if r < 3 {
                        self.rung.store(r + 1, Ordering::Relaxed);
                    }
                    self.steps_down.fetch_add(1, Ordering::Relaxed);
                    Pressure::Shed
                }
                Some(_) => Pressure::Steady,
            }
        } else {
            st.above_since = None;
            // Hysteresis: recovery needs sojourn *comfortably* below target
            // (half) for twice the window — stepping up the instant load
            // dips would oscillate.
            if sojourn <= self.cfg.target / 2 && self.rung.load(Ordering::Relaxed) > 0 {
                match st.calm_since {
                    None => st.calm_since = Some(now),
                    Some(since)
                        if now.saturating_duration_since(since) >= self.cfg.window * 2 =>
                    {
                        st.calm_since = Some(now);
                        let r = self.rung.load(Ordering::Relaxed);
                        if r > 0 {
                            self.rung.store(r - 1, Ordering::Relaxed);
                            self.steps_up.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    Some(_) => {}
                }
            } else {
                st.calm_since = None;
            }
            Pressure::Steady
        }
    }
}

/// Fixed-size latency reservoir: enough samples for a stable p99 without
/// unbounded memory.
const LAT_RING: usize = 512;

struct LatRing {
    micros: Vec<u32>,
    idx: usize,
}

impl LatRing {
    fn new() -> Self {
        Self {
            micros: Vec::new(),
            idx: 0,
        }
    }

    fn push(&mut self, micros: u64) {
        let v = micros.min(u64::from(u32::MAX)) as u32;
        if self.micros.len() < LAT_RING {
            self.micros.push(v);
        } else {
            self.micros[self.idx] = v;
            self.idx = (self.idx + 1) % LAT_RING;
        }
    }

    fn percentile(sorted: &[u32], p: f64) -> u64 {
        if sorted.is_empty() {
            return 0;
        }
        let i = ((sorted.len() as f64 - 1.0) * p).round() as usize;
        u64::from(sorted[i.min(sorted.len() - 1)])
    }
}

struct TenantEntry {
    bucket: Option<TokenBucket>,
    accepted: u64,
    shed: u64,
    lat: LatRing,
}

/// One tenant's counters as surfaced through `StatsReply`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSnapshot {
    /// Tenant name (or `(other)` for folded overflow tenants).
    pub name: String,
    /// Queries admitted past bucket + fair queue.
    pub accepted: u64,
    /// Queries shed for this tenant (bucket, queue-full, displaced, CoDel).
    pub shed: u64,
    /// Median end-to-end latency over the recent window, microseconds.
    pub p50_micros: u64,
    /// 99th-percentile latency over the recent window, microseconds.
    pub p99_micros: u64,
}

/// Per-tenant buckets + counters behind one lock. Lookup cost is one hash
/// per query — negligible next to a search.
pub struct TenantTable {
    /// Bucket parameters; `None` disables rate limiting (every tenant
    /// admitted straight to the fair queue).
    bucket_cfg: Option<(f64, f64)>,
    inner: Mutex<HashMap<String, TenantEntry>>,
}

impl TenantTable {
    /// A table with per-tenant buckets of `rate` tokens/sec and `burst`
    /// capacity, or no rate limiting when `bucket_cfg` is `None`.
    pub fn new(bucket_cfg: Option<(f64, f64)>) -> Self {
        Self {
            bucket_cfg,
            inner: Mutex::new(HashMap::new()),
        }
    }

    /// Canonical tracked name: the tenant itself while under the cap, the
    /// shared overflow entry past it.
    fn tracked<'a>(map: &HashMap<String, TenantEntry>, name: &'a str) -> &'a str {
        if map.contains_key(name) || map.len() < MAX_TRACKED_TENANTS {
            name
        } else {
            OVERFLOW_TENANT
        }
    }

    fn entry<'m>(
        &self,
        map: &'m mut HashMap<String, TenantEntry>,
        name: &str,
        now: Instant,
    ) -> &'m mut TenantEntry {
        let key = Self::tracked(map, name).to_string();
        let cfg = self.bucket_cfg;
        map.entry(key).or_insert_with(|| TenantEntry {
            bucket: cfg.map(|(rate, burst)| TokenBucket::new(rate, burst, now)),
            accepted: 0,
            shed: 0,
            lat: LatRing::new(),
        })
    }

    /// Admission check: refill the tenant's bucket and try to take a
    /// token. `true` means proceed to the fair queue; `false` means shed
    /// now (the shed is already counted).
    pub fn admit(&self, name: &str, now: Instant) -> bool {
        let mut map = self.inner.lock().expect("tenant lock");
        let entry = self.entry(&mut map, name, now);
        let ok = match &mut entry.bucket {
            Some(b) => b.try_take(now),
            None => true,
        };
        if !ok {
            entry.shed += 1;
        }
        ok
    }

    /// Count a query accepted into the queue.
    pub fn note_accepted(&self, name: &str) {
        let now = Instant::now();
        let mut map = self.inner.lock().expect("tenant lock");
        self.entry(&mut map, name, now).accepted += 1;
    }

    /// Count a shed (queue-full, displacement, or CoDel) for `name`.
    pub fn note_shed(&self, name: &str) {
        let now = Instant::now();
        let mut map = self.inner.lock().expect("tenant lock");
        self.entry(&mut map, name, now).shed += 1;
    }

    /// Record one completed query's end-to-end latency.
    pub fn note_latency(&self, name: &str, micros: u64) {
        let now = Instant::now();
        let mut map = self.inner.lock().expect("tenant lock");
        self.entry(&mut map, name, now).lat.push(micros);
    }

    /// Current per-tenant counters, sorted by name for stable output.
    pub fn snapshot(&self) -> Vec<TenantSnapshot> {
        let map = self.inner.lock().expect("tenant lock");
        let mut out: Vec<TenantSnapshot> = map
            .iter()
            .map(|(name, e)| {
                let mut sorted = e.lat.micros.clone();
                sorted.sort_unstable();
                TenantSnapshot {
                    name: name.clone(),
                    accepted: e.accepted,
                    shed: e.shed,
                    p50_micros: LatRing::percentile(&sorted, 0.50),
                    p99_micros: LatRing::percentile(&sorted, 0.99),
                }
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_refills_at_rate_and_caps_at_burst() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(10.0, 2.0, t0);
        // Burst capacity: two immediate takes, then dry.
        assert!(b.try_take(t0));
        assert!(b.try_take(t0));
        assert!(!b.try_take(t0));
        // 100 ms at 10/s refills exactly one token.
        let t1 = t0 + Duration::from_millis(100);
        assert!(b.try_take(t1));
        assert!(!b.try_take(t1));
        // A long idle period refills to burst, not beyond.
        let t2 = t1 + Duration::from_secs(60);
        assert!(b.try_take(t2));
        assert!(b.try_take(t2));
        assert!(!b.try_take(t2));
    }

    #[test]
    fn sustained_over_target_sojourn_steps_down_and_sheds() {
        let c = BrownoutController::new(BrownoutConfig {
            target: Duration::from_millis(10),
            window: Duration::from_millis(100),
        });
        let t0 = Instant::now();
        let high = Duration::from_millis(50);
        assert_eq!(c.observe(high, t0), Pressure::Steady);
        assert_eq!(c.rung(), 0, "one bad sample is noise, not overload");
        // Still bad halfway through the window: no reaction yet.
        assert_eq!(
            c.observe(high, t0 + Duration::from_millis(50)),
            Pressure::Steady
        );
        // Window completes: rung steps down and the caller sheds.
        assert_eq!(
            c.observe(high, t0 + Duration::from_millis(120)),
            Pressure::Shed
        );
        assert_eq!(c.rung(), 1);
        // The next step needs a fresh full window.
        assert_eq!(
            c.observe(high, t0 + Duration::from_millis(150)),
            Pressure::Steady
        );
        assert_eq!(
            c.observe(high, t0 + Duration::from_millis(230)),
            Pressure::Shed
        );
        assert_eq!(c.rung(), 2);
        assert_eq!(c.steps(), (2, 0));
    }

    #[test]
    fn rung_never_steps_past_the_ladder_bottom() {
        let c = BrownoutController::new(BrownoutConfig {
            target: Duration::from_millis(1),
            window: Duration::from_millis(10),
        });
        let t0 = Instant::now();
        let high = Duration::from_millis(100);
        for i in 0..20u64 {
            c.observe(high, t0 + Duration::from_millis(11 * i));
        }
        assert_eq!(c.rung(), 3);
    }

    #[test]
    fn recovery_is_hysteretic_calm_for_two_windows_steps_up() {
        let c = BrownoutController::new(BrownoutConfig {
            target: Duration::from_millis(10),
            window: Duration::from_millis(100),
        });
        let t0 = Instant::now();
        let high = Duration::from_millis(50);
        c.observe(high, t0);
        c.observe(high, t0 + Duration::from_millis(110));
        assert_eq!(c.rung(), 1);
        // Sojourn just under target is not calm enough to recover.
        let meh = Duration::from_millis(8);
        for i in 0..5u64 {
            c.observe(meh, t0 + Duration::from_millis(200 + 100 * i));
        }
        assert_eq!(c.rung(), 1, "within hysteresis band: hold the rung");
        // Comfortably calm (≤ target/2) for 2× window: step back up.
        let calm = Duration::from_millis(2);
        c.observe(calm, t0 + Duration::from_millis(800));
        assert_eq!(c.rung(), 1);
        c.observe(calm, t0 + Duration::from_millis(1_050));
        assert_eq!(c.rung(), 0);
        assert_eq!(c.steps(), (1, 1));
        // A bad sample mid-calm restarts the recovery clock.
        c.observe(high, t0 + Duration::from_millis(1_100));
        assert_eq!(c.rung(), 0, "single spike doesn't re-enter brownout");
    }

    #[test]
    fn tenant_table_counts_and_percentiles() {
        let t = TenantTable::new(None);
        assert!(t.admit("a", Instant::now()), "no buckets: always admitted");
        t.note_accepted("a");
        t.note_accepted("a");
        t.note_shed("a");
        for i in 1..=100u64 {
            t.note_latency("a", i * 10);
        }
        let snap = t.snapshot();
        assert_eq!(snap.len(), 1);
        let a = &snap[0];
        assert_eq!((a.accepted, a.shed), (2, 1));
        assert!(a.p50_micros >= 400 && a.p50_micros <= 600, "{}", a.p50_micros);
        assert!(a.p99_micros >= 950, "{}", a.p99_micros);
        assert!(a.p50_micros <= a.p99_micros);
    }

    #[test]
    fn buckets_shed_the_flooder_without_touching_others() {
        let t = TenantTable::new(Some((1000.0, 2.0)));
        let now = Instant::now();
        // Flooder burns its burst...
        assert!(t.admit("hot", now));
        assert!(t.admit("hot", now));
        assert!(!t.admit("hot", now));
        // ...while another tenant's bucket is untouched.
        assert!(t.admit("cold", now));
        let snap = t.snapshot();
        let hot = snap.iter().find(|s| s.name == "hot").unwrap();
        assert_eq!(hot.shed, 1, "bucket shed is counted");
    }

    #[test]
    fn tenant_cardinality_is_capped_by_folding_into_overflow() {
        let t = TenantTable::new(None);
        for i in 0..(MAX_TRACKED_TENANTS + 40) {
            t.note_accepted(&format!("tenant-{i}"));
        }
        let snap = t.snapshot();
        assert!(snap.len() <= MAX_TRACKED_TENANTS + 1);
        let other = snap.iter().find(|s| s.name == OVERFLOW_TENANT).unwrap();
        assert!(other.accepted >= 40, "overflow traffic folds together");
    }

    #[test]
    fn tenant_id_is_stable_and_distinct_enough() {
        assert_eq!(tenant_id("alpha"), tenant_id("alpha"));
        assert_ne!(tenant_id("alpha"), tenant_id("beta"));
        assert_ne!(tenant_id(""), tenant_id("a"));
    }
}
