//! The multi-endpoint, failure-aware client (DESIGN.md §15): health
//! probes with per-endpoint breaker state, automatic failover of reads to
//! the freshest healthy replica, and hedged requests.
//!
//! Failure handling is layered:
//!
//! 1. **Probes** — a background thread pings every endpoint and reads its
//!    stats on a fixed interval, keeping a local view of liveness,
//!    serving generation, and staleness. Failover happens within one
//!    probe interval of an endpoint dying, without a query paying for the
//!    discovery.
//! 2. **Breakers** — consecutive failures (probe or query) past a
//!    threshold open a per-endpoint breaker for a cool-off period;
//!    open endpoints are skipped by routing (but retried by probes, which
//!    is what closes the breaker again). If *every* breaker is open the
//!    client falls back to trying all endpoints anyway — a wrong breaker
//!    must degrade to slower answers, never to refusing service.
//! 3. **Ranking** — reads go to non-stale endpoints first, then to the
//!    highest serving generation, then by configured order.
//! 4. **Hedging** — after an adaptive delay derived from observed query
//!    latencies (~p99, clamped), the same query is issued to the
//!    next-ranked endpoint and the first answer wins. A single slow or
//!    wedged replica then costs roughly the hedge delay, not its stall.
//! 5. **Retries** — the whole routed attempt (including failover across
//!    endpoints) is wrapped in the existing [`RetryPolicy`] backoff for
//!    `Overloaded` sheds and transient transport failures.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::client::{Client, ClientError, QueryResult, QuerySpec, RetryPolicy};
use crate::protocol::{ErrorCode, QueryReply, StatsReply};
use crate::replica::ReplicationState;

/// Tuning for a [`MultiClient`].
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Endpoints in preference order (ties in ranking keep this order, so
    /// put the primary first).
    pub endpoints: Vec<String>,
    /// Delay between background probe rounds.
    pub probe_interval: Duration,
    /// Read timeout for probe connections (kept short: a probe that
    /// cannot answer quickly is as good as down).
    pub probe_timeout: Duration,
    /// Read timeout for query connections.
    pub read_timeout: Duration,
    /// Consecutive failures that open an endpoint's breaker.
    pub breaker_threshold: u32,
    /// How long an open breaker skips its endpoint before the next try.
    pub breaker_cooloff: Duration,
    /// Enable hedged queries.
    pub hedge: bool,
    /// Floor on the adaptive hedge delay.
    pub hedge_min: Duration,
    /// Ceiling on the adaptive hedge delay.
    pub hedge_max: Duration,
    /// Backoff for `Overloaded` sheds and transient transport failures
    /// around the whole routed attempt.
    pub retry: RetryPolicy,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            endpoints: Vec::new(),
            probe_interval: Duration::from_millis(500),
            probe_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(30),
            breaker_threshold: 2,
            breaker_cooloff: Duration::from_secs(2),
            hedge: true,
            hedge_min: Duration::from_millis(20),
            hedge_max: Duration::from_millis(500),
            retry: RetryPolicy::default(),
        }
    }
}

/// What the prober (and query outcomes) know about one endpoint.
#[derive(Debug, Clone)]
struct EndpointState {
    consecutive_failures: u32,
    open_until: Option<Instant>,
    /// Last serving generation observed by a probe.
    generation: u32,
    /// Last staleness flag observed by a probe.
    stale: bool,
    /// Whether the last contact (probe or query) succeeded.
    healthy: bool,
}

impl EndpointState {
    fn new() -> Self {
        EndpointState {
            consecutive_failures: 0,
            open_until: None,
            generation: 0,
            stale: false,
            healthy: false,
        }
    }

    fn available(&self, now: Instant) -> bool {
        self.open_until.is_none_or(|until| now >= until)
    }
}

/// Sliding window of recent query latencies (micros) feeding the adaptive
/// hedge delay.
struct LatencyRing {
    samples: Vec<u64>,
    next: usize,
}

const LATENCY_RING: usize = 64;

impl LatencyRing {
    fn new() -> Self {
        LatencyRing {
            samples: Vec::with_capacity(LATENCY_RING),
            next: 0,
        }
    }

    fn push(&mut self, micros: u64) {
        if self.samples.len() < LATENCY_RING {
            self.samples.push(micros);
        } else {
            self.samples[self.next] = micros;
            self.next = (self.next + 1) % LATENCY_RING;
        }
    }

    /// ~p99 of the window (`None` until there are samples).
    fn p99_micros(&self) -> Option<u64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        Some(sorted[(sorted.len() - 1) * 99 / 100])
    }
}

struct ClusterInner {
    cfg: ClusterConfig,
    states: Mutex<Vec<EndpointState>>,
    latencies: Mutex<LatencyRing>,
    hedges_fired: AtomicU64,
    hedges_won: AtomicU64,
    /// Optional server-side gauge sink, so an embedding process surfaces
    /// its hedge fire rate through `dj ctl stats`.
    replication: Mutex<Option<Arc<ReplicationState>>>,
}

impl ClusterInner {
    fn note_ok(&self, idx: usize) {
        let mut states = self.states.lock().expect("cluster states");
        let s = &mut states[idx];
        s.consecutive_failures = 0;
        s.open_until = None;
        s.healthy = true;
    }

    fn note_failure(&self, idx: usize) {
        let mut states = self.states.lock().expect("cluster states");
        let s = &mut states[idx];
        s.consecutive_failures += 1;
        s.healthy = false;
        if s.consecutive_failures >= self.cfg.breaker_threshold {
            s.open_until = Some(Instant::now() + self.cfg.breaker_cooloff);
        }
    }

    /// Endpoint indices in routing order: available (breaker closed)
    /// endpoints ranked non-stale first, freshest generation next,
    /// configured order last; if every breaker is open, all endpoints in
    /// configured order (degrade, never refuse).
    fn ranked(&self) -> Vec<usize> {
        let now = Instant::now();
        let states = self.states.lock().expect("cluster states");
        let mut open: Vec<usize> = (0..states.len())
            .filter(|&i| states[i].available(now))
            .collect();
        if open.is_empty() {
            return (0..states.len()).collect();
        }
        open.sort_by_key(|&i| (states[i].stale, std::cmp::Reverse(states[i].generation), i));
        open
    }

    fn probe_round(&self) {
        for idx in 0..self.cfg.endpoints.len() {
            let addr = self.cfg.endpoints[idx].clone();
            let outcome = Client::connect_with_timeout(&addr, self.cfg.probe_timeout)
                .and_then(|mut c| c.stats());
            match outcome {
                Ok(stats) => {
                    {
                        let mut states = self.states.lock().expect("cluster states");
                        let s = &mut states[idx];
                        s.generation = stats.generation;
                        s.stale = stats.replication.map(|r| r.stale).unwrap_or(false);
                    }
                    self.note_ok(idx);
                }
                // Only transport failures mean the endpoint is gone. A
                // structured error (e.g. an `Overloaded` shed) came from a
                // live server doing its job — counting it toward the
                // breaker would amplify overload into false failover.
                Err(ClientError::Io(_)) => self.note_failure(idx),
                Err(_) => self.note_ok(idx),
            }
        }
    }

    fn hedge_delay(&self) -> Duration {
        let p99 = self
            .latencies
            .lock()
            .expect("latency ring")
            .p99_micros()
            .map(Duration::from_micros)
            .unwrap_or(Duration::from_millis(100));
        p99.clamp(self.cfg.hedge_min, self.cfg.hedge_max)
    }

    fn query_endpoint(
        &self,
        idx: usize,
        name: &str,
        cells: &[String],
        k: u32,
    ) -> Result<QueryReply, ClientError> {
        let addr = &self.cfg.endpoints[idx];
        let mut client = Client::connect_with_timeout(addr, self.cfg.read_timeout)?;
        client.query(name, cells, k)
    }

    fn note_hedge_fired(&self) {
        self.hedges_fired.fetch_add(1, Ordering::Relaxed);
        if let Some(rep) = self.replication.lock().expect("replication sink").as_ref() {
            rep.note_hedge_fired();
        }
    }

    fn note_hedge_won(&self) {
        self.hedges_won.fetch_add(1, Ordering::Relaxed);
        if let Some(rep) = self.replication.lock().expect("replication sink").as_ref() {
            rep.note_hedge_won();
        }
    }
}

/// The answer to a routed query: the reply plus where it came from.
#[derive(Debug, Clone)]
pub struct RoutedReply {
    /// The server's answer.
    pub reply: QueryReply,
    /// The endpoint that answered.
    pub endpoint: String,
    /// True when this answer came from a hedge (the second endpoint
    /// answered before the first).
    pub hedged: bool,
}

/// A failure-aware client over a set of replicated `dj serve` endpoints.
///
/// Owns a background probe thread for its whole lifetime (stopped and
/// joined on drop).
pub struct MultiClient {
    inner: Arc<ClusterInner>,
    stop: Arc<AtomicBool>,
    prober: Option<JoinHandle<()>>,
}

impl MultiClient {
    /// Build a client over `cfg.endpoints` (at least one) and run one
    /// synchronous probe round so the first query routes on real health
    /// data, then start the background prober.
    pub fn new(cfg: ClusterConfig) -> Result<Self, String> {
        if cfg.endpoints.is_empty() {
            return Err("MultiClient needs at least one endpoint".to_string());
        }
        let states = (0..cfg.endpoints.len()).map(|_| EndpointState::new()).collect();
        let inner = Arc::new(ClusterInner {
            cfg,
            states: Mutex::new(states),
            latencies: Mutex::new(LatencyRing::new()),
            hedges_fired: AtomicU64::new(0),
            hedges_won: AtomicU64::new(0),
            replication: Mutex::new(None),
        });
        inner.probe_round();
        let stop = Arc::new(AtomicBool::new(false));
        let prober = {
            let inner = inner.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let mut remaining = inner.cfg.probe_interval;
                    while !remaining.is_zero() && !stop.load(Ordering::Relaxed) {
                        let slice = remaining.min(Duration::from_millis(50));
                        std::thread::sleep(slice);
                        remaining = remaining.saturating_sub(slice);
                    }
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    inner.probe_round();
                }
            })
        };
        Ok(MultiClient {
            inner,
            stop,
            prober: Some(prober),
        })
    }

    /// Mirror hedge counters into a server's [`ReplicationState`] so they
    /// surface through that server's `stats`.
    pub fn wire_replication_state(&self, state: Arc<ReplicationState>) {
        *self.inner.replication.lock().expect("replication sink") = Some(state);
    }

    /// `(hedges fired, hedges won)` since this client was built.
    pub fn hedge_counters(&self) -> (u64, u64) {
        (
            self.inner.hedges_fired.load(Ordering::Relaxed),
            self.inner.hedges_won.load(Ordering::Relaxed),
        )
    }

    /// The configured endpoints.
    pub fn endpoints(&self) -> &[String] {
        &self.inner.cfg.endpoints
    }

    /// Route one query: ranked endpoints, hedging (when enabled and a
    /// second endpoint exists), failover on transport failure, and the
    /// retry policy's backoff around the whole routed attempt.
    pub fn query(
        &self,
        name: &str,
        cells: &[String],
        k: u32,
    ) -> Result<RoutedReply, ClientError> {
        let policy = self.inner.cfg.retry.clone();
        let attempts = policy.max_attempts.max(1);
        let mut last: Option<ClientError> = None;
        for retry in 0..attempts {
            if retry > 0 {
                std::thread::sleep(policy.delay(retry - 1));
            }
            match self.routed_attempt(name, cells, k) {
                Ok(routed) => return Ok(routed),
                // Overloaded sheds and transport failures clear on their
                // own (backlog drains, endpoint restarts, probe marks a
                // peer healthy again) — those retry. Anything structured
                // (bad request, protocol violation) does not.
                Err(e) if retryable(&e) => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(last.expect("at least one attempt"))
    }

    /// Route a whole set of queries down **one pipelined connection** to
    /// the best-ranked endpoint, with up to `depth` requests in flight
    /// (DESIGN.md §17). Results come back in input order. A transport
    /// failure mid-pipeline fails over to the next ranked endpoint and
    /// replays the whole set (queries are idempotent reads), wrapped in
    /// the retry policy's backoff like [`MultiClient::query`].
    ///
    /// Hedging is deliberately skipped here: a pipelined set amortizes
    /// connection cost across many queries, and duplicating the whole set
    /// on a second endpoint would double cluster load for tail latency on
    /// one member.
    pub fn query_many(
        &self,
        queries: &[QuerySpec<'_>],
        depth: usize,
    ) -> Result<(Vec<QueryResult>, String), ClientError> {
        if queries.is_empty() {
            return Ok((Vec::new(), String::new()));
        }
        let policy = self.inner.cfg.retry.clone();
        let attempts = policy.max_attempts.max(1);
        let mut last: Option<ClientError> = None;
        for retry in 0..attempts {
            if retry > 0 {
                std::thread::sleep(policy.delay(retry - 1));
            }
            match self.routed_many(queries, depth) {
                Ok(out) => return Ok(out),
                Err(e) if retryable(&e) => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(last.expect("at least one attempt"))
    }

    /// One pass over the ranked endpoints for a pipelined set: sequential
    /// failover, no hedging (see [`MultiClient::query_many`]).
    fn routed_many(
        &self,
        queries: &[QuerySpec<'_>],
        depth: usize,
    ) -> Result<(Vec<QueryResult>, String), ClientError> {
        let mut last: Option<ClientError> = None;
        for idx in self.inner.ranked() {
            let addr = self.inner.cfg.endpoints[idx].clone();
            let started = Instant::now();
            let outcome = Client::connect_with_timeout(&addr, self.inner.cfg.read_timeout)
                .and_then(|mut c| c.query_pipelined(queries, depth));
            match outcome {
                Ok(results) => {
                    self.inner.note_ok(idx);
                    // One latency sample per answered query, so the hedge
                    // delay for single queries keeps tracking per-query
                    // cost rather than whole-set cost.
                    let per_query =
                        started.elapsed().as_micros() as u64 / queries.len().max(1) as u64;
                    let mut ring = self.inner.latencies.lock().expect("latency ring");
                    for _ in 0..queries.len().min(8) {
                        ring.push(per_query);
                    }
                    return Ok((results, addr));
                }
                Err(e) => {
                    if matches!(e, ClientError::Io(_)) {
                        self.inner.note_failure(idx);
                    }
                    last = Some(e);
                }
            }
        }
        Err(last.unwrap_or_else(|| {
            ClientError::Protocol("no endpoints configured".to_string())
        }))
    }

    /// Latest stats from the freshest healthy endpoint.
    pub fn stats(&self) -> Result<(StatsReply, String), ClientError> {
        let mut last: Option<ClientError> = None;
        for idx in self.inner.ranked() {
            let addr = self.inner.cfg.endpoints[idx].clone();
            match Client::connect_with_timeout(&addr, self.inner.cfg.probe_timeout)
                .and_then(|mut c| c.stats())
            {
                Ok(s) => {
                    self.inner.note_ok(idx);
                    return Ok((s, addr));
                }
                Err(e) => {
                    // Same rule as probes: only transport errors open the
                    // breaker; a structured refusal proves liveness.
                    if matches!(e, ClientError::Io(_)) {
                        self.inner.note_failure(idx);
                    } else {
                        self.inner.note_ok(idx);
                    }
                    last = Some(e);
                }
            }
        }
        Err(last.unwrap_or_else(|| {
            ClientError::Protocol("no endpoints configured".to_string())
        }))
    }

    /// One pass over the ranked endpoints: hedged attempt on the top two,
    /// then sequential failover over the rest.
    fn routed_attempt(
        &self,
        name: &str,
        cells: &[String],
        k: u32,
    ) -> Result<RoutedReply, ClientError> {
        let ranked = self.inner.ranked();
        let mut last: Option<ClientError> = None;
        let mut first = true;
        let mut rest = ranked.iter();
        while let Some(&idx) = rest.next() {
            if first && self.inner.cfg.hedge && ranked.len() > 1 {
                first = false;
                let hedge_idx = ranked[1];
                match self.hedged_pair(idx, hedge_idx, name, cells, k) {
                    Ok(routed) => return Ok(routed),
                    Err(e) => {
                        last = Some(e);
                        // Both hedge legs failed; skip the hedge endpoint
                        // in the sequential sweep (it was already tried).
                        rest.next();
                        continue;
                    }
                }
            }
            first = false;
            let started = Instant::now();
            match self.inner.query_endpoint(idx, name, cells, k) {
                Ok(reply) => {
                    self.inner.note_ok(idx);
                    self.inner
                        .latencies
                        .lock()
                        .expect("latency ring")
                        .push(started.elapsed().as_micros() as u64);
                    return Ok(RoutedReply {
                        reply,
                        endpoint: self.inner.cfg.endpoints[idx].clone(),
                        hedged: false,
                    });
                }
                Err(e) => {
                    if matches!(e, ClientError::Io(_)) {
                        self.inner.note_failure(idx);
                    }
                    last = Some(e);
                }
            }
        }
        Err(last.unwrap_or_else(|| {
            ClientError::Protocol("no endpoints configured".to_string())
        }))
    }

    /// Issue the query to `primary_idx`; if no answer lands within the
    /// adaptive hedge delay, issue it to `hedge_idx` too and take the
    /// first answer.
    fn hedged_pair(
        &self,
        primary_idx: usize,
        hedge_idx: usize,
        name: &str,
        cells: &[String],
        k: u32,
    ) -> Result<RoutedReply, ClientError> {
        let (tx, rx) = mpsc::channel::<(usize, Result<QueryReply, ClientError>, Duration)>();
        let spawn_leg = |idx: usize, tx: mpsc::Sender<_>| {
            let inner = self.inner.clone();
            let name = name.to_string();
            let cells = cells.to_vec();
            std::thread::spawn(move || {
                let started = Instant::now();
                let result = inner.query_endpoint(idx, &name, &cells, k);
                let _ = tx.send((idx, result, started.elapsed()));
            })
        };
        spawn_leg(primary_idx, tx.clone());
        let delay = self.inner.hedge_delay();

        let mut fired = false;
        let mut outcomes = 0usize;
        let expected; // how many legs will eventually answer
        let first = match rx.recv_timeout(delay) {
            Ok(outcome) => {
                expected = 1;
                Some(outcome)
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                // Primary leg is slow: fire the hedge.
                self.inner.note_hedge_fired();
                fired = true;
                spawn_leg(hedge_idx, tx.clone());
                expected = 2;
                None
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                return Err(ClientError::Protocol("hedge leg vanished".to_string()));
            }
        };
        drop(tx);

        let mut last: Option<ClientError> = None;
        let mut pending = first;
        loop {
            let (idx, result, took) = match pending.take() {
                Some(o) => o,
                None => match rx.recv() {
                    Ok(o) => o,
                    Err(_) => {
                        return Err(last.unwrap_or_else(|| {
                            ClientError::Protocol("hedge legs vanished".to_string())
                        }))
                    }
                },
            };
            outcomes += 1;
            match result {
                Ok(reply) => {
                    self.inner.note_ok(idx);
                    self.inner
                        .latencies
                        .lock()
                        .expect("latency ring")
                        .push(took.as_micros() as u64);
                    let hedged = fired && idx == hedge_idx;
                    if hedged {
                        self.inner.note_hedge_won();
                    }
                    return Ok(RoutedReply {
                        reply,
                        endpoint: self.inner.cfg.endpoints[idx].clone(),
                        hedged,
                    });
                }
                Err(e) => {
                    if matches!(e, ClientError::Io(_)) {
                        self.inner.note_failure(idx);
                    }
                    last = Some(e);
                    if outcomes >= expected {
                        return Err(last.expect("at least one outcome"));
                    }
                }
            }
        }
    }
}

impl Drop for MultiClient {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.prober.take() {
            let _ = handle.join();
        }
    }
}

/// Failures expected to clear on their own: `Overloaded` sheds and
/// transport-level errors (the server died mid-frame, the connection was
/// refused while it restarts, ...).
fn retryable(e: &ClientError) -> bool {
    match e {
        ClientError::Server(e) => e.code == ErrorCode::Overloaded,
        ClientError::Io(_) => true,
        ClientError::Protocol(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranking_prefers_fresh_then_generation_then_order() {
        let inner = ClusterInner {
            cfg: ClusterConfig {
                endpoints: vec!["a".into(), "b".into(), "c".into()],
                ..ClusterConfig::default()
            },
            states: Mutex::new(vec![
                EndpointState {
                    generation: 5,
                    stale: true,
                    ..EndpointState::new()
                },
                EndpointState {
                    generation: 3,
                    stale: false,
                    ..EndpointState::new()
                },
                EndpointState {
                    generation: 4,
                    stale: false,
                    ..EndpointState::new()
                },
            ]),
            latencies: Mutex::new(LatencyRing::new()),
            hedges_fired: AtomicU64::new(0),
            hedges_won: AtomicU64::new(0),
            replication: Mutex::new(None),
        };
        // Non-stale first (c beats b on generation), stale endpoint last
        // even with the highest generation.
        assert_eq!(inner.ranked(), vec![2, 1, 0]);
    }

    #[test]
    fn open_breakers_are_skipped_until_cooloff_but_never_strand_the_client() {
        let inner = ClusterInner {
            cfg: ClusterConfig {
                endpoints: vec!["a".into(), "b".into()],
                breaker_threshold: 2,
                breaker_cooloff: Duration::from_millis(40),
                ..ClusterConfig::default()
            },
            states: Mutex::new(vec![EndpointState::new(), EndpointState::new()]),
            latencies: Mutex::new(LatencyRing::new()),
            hedges_fired: AtomicU64::new(0),
            hedges_won: AtomicU64::new(0),
            replication: Mutex::new(None),
        };
        inner.note_failure(0);
        assert_eq!(inner.ranked(), vec![0, 1], "below threshold: still routable");
        inner.note_failure(0);
        assert_eq!(inner.ranked(), vec![1], "breaker open: endpoint 0 skipped");
        inner.note_failure(1);
        inner.note_failure(1);
        // Every breaker open: fall back to all endpoints, never refuse.
        assert_eq!(inner.ranked(), vec![0, 1]);
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(inner.ranked(), vec![0, 1], "cool-off over: both routable again");
        inner.note_ok(0);
        let states = inner.states.lock().unwrap();
        assert_eq!(states[0].consecutive_failures, 0);
        assert!(states[0].open_until.is_none());
    }

    #[test]
    fn hedge_delay_adapts_to_observed_latency_within_bounds() {
        let inner = ClusterInner {
            cfg: ClusterConfig {
                endpoints: vec!["a".into()],
                hedge_min: Duration::from_millis(10),
                hedge_max: Duration::from_millis(200),
                ..ClusterConfig::default()
            },
            states: Mutex::new(vec![EndpointState::new()]),
            latencies: Mutex::new(LatencyRing::new()),
            hedges_fired: AtomicU64::new(0),
            hedges_won: AtomicU64::new(0),
            replication: Mutex::new(None),
        };
        // No samples yet: the 100 ms default, clamped.
        assert_eq!(inner.hedge_delay(), Duration::from_millis(100));
        // Fast cluster: delay floors at hedge_min.
        for _ in 0..50 {
            inner.latencies.lock().unwrap().push(500); // 0.5 ms
        }
        assert_eq!(inner.hedge_delay(), Duration::from_millis(10));
        // One pathological outlier dominates p99 and is capped by
        // hedge_max.
        for _ in 0..64 {
            inner.latencies.lock().unwrap().push(5_000_000); // 5 s
        }
        assert_eq!(inner.hedge_delay(), Duration::from_millis(200));
    }

    #[test]
    fn overloaded_sheds_never_open_the_breaker_but_dead_transport_does() {
        use crate::protocol::{self, Request, Response, WireError};
        use std::io::Read as _;
        use std::net::TcpListener;
        use std::sync::atomic::AtomicBool;

        // A live server that sheds everything: structurally Overloaded on
        // every frame. Liveness, not failure.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let stop = Arc::new(AtomicBool::new(false));
        let server = {
            let stop = stop.clone();
            listener.set_nonblocking(true).unwrap();
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((mut s, _)) => {
                            let mut header = [0u8; 4];
                            if s.read_exact(&mut header).is_err() {
                                continue;
                            }
                            let len = u32::from_le_bytes(header) as usize;
                            let mut body = vec![0u8; len];
                            if s.read_exact(&mut body).is_err() {
                                continue;
                            }
                            let _ = Request::decode(&body);
                            let resp = Response::Error(WireError {
                                code: ErrorCode::Overloaded,
                                message: "shedding".to_string(),
                            });
                            let _ = protocol::write_frame(&mut s, &resp.encode());
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(5)),
                    }
                }
            })
        };

        let inner = ClusterInner {
            cfg: ClusterConfig {
                endpoints: vec![addr],
                breaker_threshold: 1,
                probe_timeout: Duration::from_secs(2),
                ..ClusterConfig::default()
            },
            states: Mutex::new(vec![EndpointState::new()]),
            latencies: Mutex::new(LatencyRing::new()),
            hedges_fired: AtomicU64::new(0),
            hedges_won: AtomicU64::new(0),
            replication: Mutex::new(None),
        };
        // Repeated probe rounds against a shedding server: the breaker
        // must stay closed and the endpoint must read as healthy.
        for _ in 0..3 {
            inner.probe_round();
        }
        {
            let states = inner.states.lock().unwrap();
            assert_eq!(states[0].consecutive_failures, 0, "sheds counted as failures");
            assert!(states[0].open_until.is_none(), "shed opened the breaker");
            assert!(states[0].healthy, "a shedding server is still alive");
        }
        stop.store(true, Ordering::Relaxed);
        server.join().unwrap();

        // The port is dead now: transport failure must trip the breaker.
        inner.probe_round();
        let states = inner.states.lock().unwrap();
        assert!(states[0].consecutive_failures >= 1);
        assert!(states[0].open_until.is_some(), "dead transport must open the breaker");
    }

    #[test]
    fn latency_ring_p99_tracks_the_tail() {
        let mut ring = LatencyRing::new();
        assert_eq!(ring.p99_micros(), None);
        for i in 1..=64u64 {
            ring.push(i * 100);
        }
        let p99 = ring.p99_micros().unwrap();
        assert!(p99 >= 6_000, "p99 {p99} should sit near the top of the window");
    }
}
