//! A small blocking client for the serve protocol, used by `dj query` /
//! `dj ctl` and by the integration tests (it doubles as the reference
//! implementation for anyone writing a client in another language).

use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{
    self, FrameError, QueryReply, Request, Response, StatsReply, WireError, MAX_FRAME,
};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, or unexpected close).
    Io(io::Error),
    /// The server sent bytes that don't decode as a response, or a
    /// response of the wrong type for the request.
    Protocol(String),
    /// The server answered with a structured error.
    Server(WireError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(e) => ClientError::Io(e),
            other => ClientError::Protocol(other.to_string()),
        }
    }
}

/// One connection to a `dj serve` instance. Requests are strictly
/// sequential per connection (one frame out, one frame in).
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect with a 30 s read timeout (covers slow queries without
    /// hanging forever on a dead server).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        Self::connect_with_timeout(addr, Duration::from_secs(30))
    }

    /// Connect with an explicit per-call read timeout.
    pub fn connect_with_timeout(
        addr: impl ToSocketAddrs,
        timeout: Duration,
    ) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_nodelay(true).ok();
        Ok(Client { stream })
    }

    /// Send one request, read one response.
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        protocol::write_frame(&mut self.stream, &request.encode())?;
        let payload = protocol::read_frame(&mut self.stream, MAX_FRAME)?.ok_or_else(|| {
            ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection without answering",
            ))
        })?;
        Response::decode(&payload).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            Response::Error(e) => Err(ClientError::Server(e)),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Search for the `k` nearest indexed columns. Server-side errors
    /// (including `Overloaded` sheds) surface as [`ClientError::Server`].
    pub fn query(
        &mut self,
        name: &str,
        cells: &[String],
        k: u32,
    ) -> Result<QueryReply, ClientError> {
        let req = Request::Query {
            name: name.to_string(),
            cells: cells.to_vec(),
            k,
        };
        match self.call(&req)? {
            Response::Query(reply) => Ok(reply),
            Response::Error(e) => Err(ClientError::Server(e)),
            other => Err(unexpected("Query", &other)),
        }
    }

    /// Hot-swap the server's snapshot. Returns the new generation and any
    /// non-fatal load warnings.
    pub fn reload(&mut self, path: Option<&str>) -> Result<(u32, Vec<String>), ClientError> {
        let req = Request::Reload {
            path: path.map(str::to_string),
        };
        match self.call(&req)? {
            Response::Reloaded {
                generation,
                warnings,
            } => Ok((generation, warnings)),
            Response::Error(e) => Err(ClientError::Server(e)),
            other => Err(unexpected("Reloaded", &other)),
        }
    }

    /// Server counters.
    pub fn stats(&mut self) -> Result<StatsReply, ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            Response::Error(e) => Err(ClientError::Server(e)),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// Ask the server to drain and exit.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            Response::Error(e) => Err(ClientError::Server(e)),
            other => Err(unexpected("ShuttingDown", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> ClientError {
    ClientError::Protocol(format!("expected {wanted}, got {got:?}"))
}
