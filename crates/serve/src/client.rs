//! A small blocking client for the serve protocol, used by `dj query` /
//! `dj ctl` and by the integration tests (it doubles as the reference
//! implementation for anyone writing a client in another language).

use std::io::{self, Read as _};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use crate::protocol::{
    self, BatchQuery, ErrorCode, FrameError, QueryReply, Request, Response, StatsReply, WireError,
    MAX_FRAME,
};

/// One query in a pipelined or batched call — the borrowed form of the
/// [`Request::Query`] fields.
#[derive(Debug, Clone, Copy)]
pub struct QuerySpec<'a> {
    /// Query column name (`table.column` or free text).
    pub name: &'a str,
    /// Query column cell values.
    pub cells: &'a [String],
    /// Neighbors requested.
    pub k: u32,
}

/// Per-query outcome of a pipelined or batched call: the reply, or the
/// structured error that shed this one query (the rest of the window is
/// unaffected).
pub type QueryResult = Result<QueryReply, WireError>;

/// Client-side correlation state for pipelined windows: which request ids
/// are in flight (in send order, for the in-order fallback) and where each
/// answer lands. Rejects duplicate ids and surfaces orphan ids as
/// structured protocol errors instead of mis-filing answers.
struct Correlator {
    results: Vec<Option<QueryResult>>,
    /// Ids awaiting an answer, in send order.
    inflight: Vec<u64>,
    /// Whether a plain (uncorrelated) `Query`/`Error` response may be
    /// matched to the oldest in-flight id. True for pipelined tagged
    /// queries — an old server ignores the id tail and answers in order —
    /// and false for batch frames, which old servers reject whole.
    inorder_fallback: bool,
}

impl Correlator {
    fn new(n: usize, inorder_fallback: bool) -> Self {
        Correlator {
            results: (0..n).map(|_| None).collect(),
            inflight: Vec::new(),
            inorder_fallback,
        }
    }

    fn note_sent(&mut self, id: u64) {
        self.inflight.push(id);
    }

    fn outstanding(&self) -> usize {
        self.inflight.len()
    }

    /// File one response. A correlated answer may arrive in any order; a
    /// plain answer (old server) must arrive in send order.
    fn absorb(&mut self, resp: Response) -> Result<(), ClientError> {
        match resp {
            Response::QueryFor { request_id, reply } => {
                match self.inflight.iter().position(|&id| id == request_id) {
                    Some(pos) => {
                        self.inflight.remove(pos);
                        self.results[request_id as usize] = Some(reply);
                        Ok(())
                    }
                    None => {
                        let slot = request_id as usize;
                        let msg = if slot < self.results.len() && self.results[slot].is_some() {
                            format!("duplicate response for request id {request_id}")
                        } else {
                            format!("response for unknown request id {request_id}")
                        };
                        Err(ClientError::Protocol(msg))
                    }
                }
            }
            Response::Query(reply) if self.inorder_fallback => {
                // An old server ignored the id tails and answers untagged,
                // strictly in order: file against the oldest in flight.
                if self.inflight.is_empty() {
                    return Err(ClientError::Protocol(
                        "unsolicited query response".to_string(),
                    ));
                }
                let id = self.inflight.remove(0);
                self.results[id as usize] = Some(Ok(reply));
                Ok(())
            }
            Response::Error(e) if self.inorder_fallback && !self.inflight.is_empty() => {
                // Old servers shed individual queries with a plain error,
                // still in order.
                let id = self.inflight.remove(0);
                self.results[id as usize] = Some(Err(e));
                Ok(())
            }
            Response::Error(e) => Err(ClientError::Server(e)),
            other => Err(unexpected("QueryFor", &other)),
        }
    }

    fn finish(self) -> Result<Vec<QueryResult>, ClientError> {
        self.results
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                r.ok_or_else(|| {
                    ClientError::Protocol(format!("request id {i} was never answered"))
                })
            })
            .collect()
    }
}

/// Bounded exponential backoff with deterministic jitter, used by
/// [`Client::connect_with_retry`] (transient connect failures) and
/// [`Client::query_with_retry`] (`Overloaded` sheds). Retries are capped
/// both per-attempt and in total delay, so a permanently-down server fails
/// fast instead of hanging a caller.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts (the first try counts; `1` means no retries).
    pub max_attempts: u32,
    /// Delay before the first retry; doubles each subsequent retry.
    pub base_delay: Duration,
    /// Ceiling on any single delay.
    pub max_delay: Duration,
    /// Seed for the deterministic jitter stream (vary per process to
    /// decorrelate clients; fix in tests for reproducibility).
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(2),
            jitter_seed: 0x5eed_cafe_f00d_beef,
        }
    }
}

impl RetryPolicy {
    /// Delay before retry number `retry` (0-based): `base * 2^retry`,
    /// capped at `max_delay`, with up to +50% deterministic jitter so a
    /// fleet of clients does not retry in lockstep.
    pub fn delay(&self, retry: u32) -> Duration {
        let base = self.base_delay.saturating_mul(1u32 << retry.min(16));
        let capped = base.min(self.max_delay);
        // xorshift64: the serve crate is dependency-free, so the jitter
        // stream is hand-rolled rather than pulled from a rand crate.
        let mut x = self.jitter_seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(retry as u64 + 1));
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let jitter_num = x % 51; // 0..=50 percent
        capped + capped.mul_f64(jitter_num as f64 / 100.0)
    }

    fn transient_connect(e: &ClientError) -> bool {
        match e {
            ClientError::Io(e) => matches!(
                e.kind(),
                io::ErrorKind::ConnectionRefused
                    | io::ErrorKind::ConnectionReset
                    | io::ErrorKind::ConnectionAborted
                    | io::ErrorKind::TimedOut
            ),
            _ => false,
        }
    }

    /// Transport failures on an *established* connection that a reconnect
    /// can heal: the server died mid-response (EOF inside a frame, reset,
    /// aborted, broken pipe on write) or refuses connections while it
    /// restarts. Distinct from [`RetryPolicy::transient_connect`] in
    /// including `UnexpectedEof` and `BrokenPipe`, which only exist once a
    /// connection was up.
    fn transient_transport(e: &ClientError) -> bool {
        match e {
            ClientError::Io(e) => matches!(
                e.kind(),
                io::ErrorKind::UnexpectedEof
                    | io::ErrorKind::ConnectionRefused
                    | io::ErrorKind::ConnectionReset
                    | io::ErrorKind::ConnectionAborted
                    | io::ErrorKind::BrokenPipe
            ),
            _ => false,
        }
    }
}

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, or unexpected close).
    Io(io::Error),
    /// The server sent bytes that don't decode as a response, or a
    /// response of the wrong type for the request.
    Protocol(String),
    /// The server answered with a structured error.
    Server(WireError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(e) => ClientError::Io(e),
            other => ClientError::Protocol(other.to_string()),
        }
    }
}

/// One connection to a `dj serve` instance. Requests are strictly
/// sequential per connection (one frame out, one frame in).
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    /// The resolved peer, kept so retry paths can reconnect after the
    /// server dies mid-response.
    peer: std::net::SocketAddr,
    read_timeout: Duration,
    /// Tenant tag stamped onto every query this client sends. `None`
    /// (the default) lets the server fold the query into its default
    /// admission lane.
    tenant: Option<String>,
}

/// Socket slice for client-side reads. The socket timeout is this short
/// slice, looped up to the configured total `read_timeout` — so a server
/// (or an attacker in its place) trickling one byte per slice cannot hold
/// the caller past the total budget the way a per-read timeout, which
/// resets on every byte, would.
const READ_SLICE: Duration = Duration::from_millis(250);

impl Client {
    /// Connect with a 30 s read timeout (covers slow queries without
    /// hanging forever on a dead server).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        Self::connect_with_timeout(addr, Duration::from_secs(30))
    }

    /// Connect with an explicit *total* per-response read timeout.
    pub fn connect_with_timeout(
        addr: impl ToSocketAddrs,
        timeout: Duration,
    ) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(READ_SLICE.min(timeout).max(Duration::from_millis(1))))?;
        stream.set_nodelay(true).ok();
        let peer = stream.peer_addr()?;
        Ok(Client {
            stream,
            peer,
            read_timeout: timeout,
            tenant: None,
        })
    }

    /// Tag every subsequent query from this client with `tenant` for the
    /// server's per-tenant admission control. `None` reverts to the
    /// server's default lane.
    pub fn set_tenant(&mut self, tenant: Option<&str>) {
        self.tenant = tenant.map(str::to_string);
    }

    /// Replace a dead connection with a fresh one to the same peer.
    fn reconnect(&mut self) -> Result<(), ClientError> {
        let stream = TcpStream::connect(self.peer)?;
        stream.set_read_timeout(Some(
            READ_SLICE.min(self.read_timeout).max(Duration::from_millis(1)),
        ))?;
        stream.set_nodelay(true).ok();
        self.stream = stream;
        Ok(())
    }

    /// Connect, retrying transient failures (refused / reset / aborted /
    /// timed out) with bounded exponential backoff. A permanently-down
    /// server costs at most `policy.max_attempts` tries and the summed
    /// (capped) delays — it never hangs. Non-transient errors (e.g. an
    /// unresolvable address) fail on the first attempt.
    pub fn connect_with_retry(
        addr: impl ToSocketAddrs,
        timeout: Duration,
        policy: &RetryPolicy,
    ) -> Result<Self, ClientError> {
        let attempts = policy.max_attempts.max(1);
        let mut last = None;
        for retry in 0..attempts {
            if retry > 0 {
                std::thread::sleep(policy.delay(retry - 1));
            }
            match Self::connect_with_timeout(&addr, timeout) {
                Ok(c) => return Ok(c),
                Err(e) if RetryPolicy::transient_connect(&e) => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(last.expect("at least one attempt"))
    }

    /// Send one request, read one response. The read enforces the total
    /// `read_timeout` across slices (slow-loris defense on the client
    /// side — this also covers the replica `SyncFetch` path, which calls
    /// through here).
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        protocol::write_frame(&mut self.stream, &request.encode())?;
        self.read_response()
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            Response::Error(e) => Err(ClientError::Server(e)),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Search for the `k` nearest indexed columns. Server-side errors
    /// (including `Overloaded` sheds) surface as [`ClientError::Server`].
    pub fn query(
        &mut self,
        name: &str,
        cells: &[String],
        k: u32,
    ) -> Result<QueryReply, ClientError> {
        let req = Request::Query {
            name: name.to_string(),
            cells: cells.to_vec(),
            k,
            tenant: self.tenant.clone(),
            request_id: None,
        };
        match self.call(&req)? {
            Response::Query(reply) => Ok(reply),
            Response::Error(e) => Err(ClientError::Server(e)),
            other => Err(unexpected("Query", &other)),
        }
    }

    /// Send `queries` pipelined on this connection, keeping up to `depth`
    /// requests in flight, and return one result per query in input
    /// order. Each request carries a correlation id, so a new server may
    /// answer out of order (a whole worker wave lands in one coalesced
    /// burst); an old server ignores the id tails and answers in order,
    /// which the correlation logic accepts transparently — pipelining
    /// degrades to a send window, never to a wrong answer. Duplicate and
    /// orphan ids from a confused server surface as
    /// [`ClientError::Protocol`].
    pub fn query_pipelined(
        &mut self,
        queries: &[QuerySpec<'_>],
        depth: usize,
    ) -> Result<Vec<QueryResult>, ClientError> {
        let depth = depth.max(1);
        let mut corr = Correlator::new(queries.len(), true);
        let mut next = 0usize;
        while next < queries.len() || corr.outstanding() > 0 {
            // Fill the window.
            while next < queries.len() && corr.outstanding() < depth {
                let q = &queries[next];
                let req = Request::Query {
                    name: q.name.to_string(),
                    cells: q.cells.to_vec(),
                    k: q.k,
                    tenant: self.tenant.clone(),
                    request_id: Some(next as u64),
                };
                protocol::write_frame(&mut self.stream, &req.encode())?;
                corr.note_sent(next as u64);
                next += 1;
            }
            // Drain one answer (whichever request it belongs to).
            corr.absorb(self.read_response()?)?;
        }
        corr.finish()
    }

    /// Send `queries` as one [`Request::QueryBatch`] frame and collect the
    /// correlated answers, returned in input order. Old servers reject the
    /// unknown frame tag with `BadRequest` (surfaced as
    /// [`ClientError::Server`]) — use [`Client::query_pipelined`] when the
    /// peer version is unknown, or fall back to it on that error.
    pub fn query_batch(
        &mut self,
        queries: &[QuerySpec<'_>],
    ) -> Result<Vec<QueryResult>, ClientError> {
        if queries.is_empty() {
            return Ok(Vec::new());
        }
        let req = Request::QueryBatch {
            queries: queries
                .iter()
                .enumerate()
                .map(|(i, q)| BatchQuery {
                    request_id: i as u64,
                    name: q.name.to_string(),
                    cells: q.cells.to_vec(),
                    k: q.k,
                    tenant: self.tenant.clone(),
                })
                .collect(),
        };
        protocol::write_frame(&mut self.stream, &req.encode())?;
        let mut corr = Correlator::new(queries.len(), false);
        for i in 0..queries.len() {
            corr.note_sent(i as u64);
        }
        while corr.outstanding() > 0 {
            corr.absorb(self.read_response()?)?;
        }
        corr.finish()
    }

    /// Read and decode one response frame.
    fn read_response(&mut self) -> Result<Response, ClientError> {
        let payload = read_frame_sliced(&mut self.stream, MAX_FRAME, self.read_timeout)?
            .ok_or_else(|| {
                ClientError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection without answering",
                ))
            })?;
        Response::decode(&payload).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// [`Client::query`] with bounded backoff on failures that are
    /// *expected* to clear on their own: `Overloaded` sheds (the backlog
    /// drains) and transport failures on the established connection — the
    /// server dying mid-response (EOF inside a frame, reset, broken pipe)
    /// or refusing connections while it restarts. Transport failures get
    /// a reconnect before the next try; queries are idempotent, so a
    /// retried half-answered query is safe. Every other error — and
    /// exhaustion — surfaces as-is.
    pub fn query_with_retry(
        &mut self,
        name: &str,
        cells: &[String],
        k: u32,
        policy: &RetryPolicy,
    ) -> Result<QueryReply, ClientError> {
        let attempts = policy.max_attempts.max(1);
        let mut last = None;
        let mut dead_connection = false;
        for retry in 0..attempts {
            if retry > 0 {
                std::thread::sleep(policy.delay(retry - 1));
            }
            if dead_connection {
                match self.reconnect() {
                    Ok(()) => dead_connection = false,
                    Err(e) if RetryPolicy::transient_transport(&e) => {
                        // Still restarting; burn this attempt and back off.
                        last = Some(e);
                        continue;
                    }
                    Err(e) => return Err(e),
                }
            }
            match self.query(name, cells, k) {
                Ok(reply) => return Ok(reply),
                Err(ClientError::Server(e)) if e.code == ErrorCode::Overloaded => {
                    last = Some(ClientError::Server(e));
                }
                Err(e) if RetryPolicy::transient_transport(&e) => {
                    last = Some(e);
                    dead_connection = true;
                }
                Err(e) => return Err(e),
            }
        }
        Err(last.expect("at least one attempt"))
    }

    /// Ingest a new table into a live server. Returns `(seq, applied)` of
    /// the durably journaled mutation.
    pub fn add_table(
        &mut self,
        title: &str,
        columns: &[(String, Vec<String>)],
    ) -> Result<(u64, u64), ClientError> {
        let req = Request::AddTable {
            title: title.to_string(),
            columns: columns.to_vec(),
        };
        match self.call(&req)? {
            Response::Mutated { seq, applied } => Ok((seq, applied)),
            Response::Error(e) => Err(ClientError::Server(e)),
            other => Err(unexpected("Mutated", &other)),
        }
    }

    /// Drop every column belonging to a table on a live server. Returns
    /// `(seq, ids tombstoned)`.
    pub fn drop_table(&mut self, title: &str) -> Result<(u64, u64), ClientError> {
        let req = Request::DropTable {
            title: title.to_string(),
        };
        match self.call(&req)? {
            Response::Mutated { seq, applied } => Ok((seq, applied)),
            Response::Error(e) => Err(ClientError::Server(e)),
            other => Err(unexpected("Mutated", &other)),
        }
    }

    /// Hot-swap the server's snapshot. Returns the new generation and any
    /// non-fatal load warnings.
    pub fn reload(&mut self, path: Option<&str>) -> Result<(u32, Vec<String>), ClientError> {
        let req = Request::Reload {
            path: path.map(str::to_string),
        };
        match self.call(&req)? {
            Response::Reloaded {
                generation,
                warnings,
            } => Ok((generation, warnings)),
            Response::Error(e) => Err(ClientError::Server(e)),
            other => Err(unexpected("Reloaded", &other)),
        }
    }

    /// Server counters.
    pub fn stats(&mut self) -> Result<StatsReply, ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            Response::Error(e) => Err(ClientError::Server(e)),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// Ask the server to drain and exit.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            Response::Error(e) => Err(ClientError::Server(e)),
            other => Err(unexpected("ShuttingDown", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> ClientError {
    ClientError::Protocol(format!("expected {wanted}, got {got:?}"))
}

/// Read one frame, accumulating short socket slices against a total
/// deadline. Mirrors the server's sliced read: progress (bytes arriving)
/// does not extend the budget, so a peer trickling bytes is cut off at
/// `total` no matter how alive it looks.
fn read_frame_sliced(
    stream: &mut TcpStream,
    max_frame: usize,
    total: Duration,
) -> Result<Option<Vec<u8>>, FrameError> {
    let start = Instant::now();
    let mut header = [0u8; 4];
    let mut have = 0usize;
    while have < 4 {
        check_deadline(start, total)?;
        match stream.read(&mut header[have..]) {
            Ok(0) if have == 0 => return Ok(None),
            Ok(0) => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside frame header",
                )))
            }
            Ok(n) => have += n,
            Err(e) if stall_kind(&e) => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > max_frame {
        return Err(FrameError::TooLarge {
            announced: len,
            cap: max_frame,
        });
    }
    let mut payload = vec![0u8; len];
    let mut have = 0usize;
    while have < len {
        check_deadline(start, total)?;
        match stream.read(&mut payload[have..]) {
            Ok(0) => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside frame body",
                )))
            }
            Ok(n) => have += n,
            Err(e) if stall_kind(&e) => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(Some(payload))
}

fn check_deadline(start: Instant, total: Duration) -> Result<(), FrameError> {
    if start.elapsed() >= total {
        return Err(FrameError::Io(io::Error::new(
            io::ErrorKind::TimedOut,
            "server stalled mid-response past the read timeout",
        )));
    }
    Ok(())
}

/// Socket-timeout error kinds (platform-dependent: WouldBlock on unix,
/// TimedOut on some platforms).
fn stall_kind(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut | io::ErrorKind::Interrupted
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::time::Instant;

    #[test]
    fn backoff_is_deterministic_capped_and_monotone_before_the_cap() {
        let policy = RetryPolicy {
            max_attempts: 8,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(200),
            jitter_seed: 42,
        };
        let a: Vec<Duration> = (0..8).map(|r| policy.delay(r)).collect();
        let b: Vec<Duration> = (0..8).map(|r| policy.delay(r)).collect();
        assert_eq!(a, b, "same seed, same schedule");
        for (r, d) in a.iter().enumerate() {
            // Never more than cap + 50% jitter.
            assert!(
                *d <= Duration::from_millis(300),
                "retry {r} delay {d:?} exceeds jittered cap"
            );
            assert!(*d >= Duration::from_millis(10), "retry {r} below base");
        }
        // A different seed produces a different (decorrelated) schedule.
        let other = RetryPolicy {
            jitter_seed: 43,
            ..policy
        };
        assert_ne!(
            a,
            (0..8).map(|r| other.delay(r)).collect::<Vec<_>>(),
            "jitter must depend on the seed"
        );
    }

    #[test]
    fn permanently_down_server_fails_fast() {
        // Bind a port, learn it, and free it: nothing listens there now.
        let dead_addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let policy = RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(20),
            jitter_seed: 7,
        };
        let start = Instant::now();
        let err = Client::connect_with_retry(dead_addr, Duration::from_secs(1), &policy)
            .expect_err("nothing is listening");
        let elapsed = start.elapsed();
        assert!(matches!(err, ClientError::Io(_)), "got {err}");
        // 3 attempts with capped delays (≤ 30ms + 50% jitter each) must be
        // well under a second: bounded, not hanging.
        assert!(
            elapsed < Duration::from_secs(5),
            "connect_with_retry took {elapsed:?}; retries are unbounded"
        );
    }

    #[test]
    fn a_server_dying_mid_response_is_retried_against_its_replacement() {
        use crate::protocol::QueryReply;
        use std::io::Write as _;

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            // First connection: read the request, then die mid-response —
            // a frame header announcing 64 bytes followed by only 8.
            let (mut s, _) = listener.accept().unwrap();
            read_request_frame(&mut s);
            s.write_all(&64u32.to_le_bytes()).unwrap();
            s.write_all(&[0xAB; 8]).unwrap();
            drop(s); // EOF inside the frame body
                     // "Restarted" server on the same port: answer properly.
            let (mut s, _) = listener.accept().unwrap();
            read_request_frame(&mut s);
            let reply = Response::Query(QueryReply {
                health_code: 0,
                health_label: "hnsw".to_string(),
                degraded: false,
                complete: true,
                via_fallback: false,
                generation: 1,
                indexed: 1,
                visited: 1,
                hits: Vec::new(),
            });
            protocol::write_frame(&mut s, &reply.encode()).unwrap();
        });

        let mut client = Client::connect(addr).unwrap();
        let policy = RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(20),
            jitter_seed: 9,
        };
        let reply = client
            .query_with_retry("q", &["a".to_string()], 1, &policy)
            .expect("mid-frame death must be retried, not surfaced");
        assert_eq!(reply.generation, 1);
        assert!(reply.complete);
        server.join().unwrap();
    }

    fn read_request_frame(s: &mut std::net::TcpStream) {
        use std::io::Read as _;
        let mut header = [0u8; 4];
        s.read_exact(&mut header).unwrap();
        let len = u32::from_le_bytes(header) as usize;
        let mut body = vec![0u8; len];
        s.read_exact(&mut body).unwrap();
    }

    #[test]
    fn a_server_trickling_bytes_is_cut_off_at_the_total_read_timeout() {
        use std::io::Write as _;

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            read_request_frame(&mut s);
            // Announce a 64-byte body, deliver one byte, then go silent
            // while keeping the connection open: a per-read timeout that
            // resets on every byte would wait forever for the rest.
            s.write_all(&64u32.to_le_bytes()).unwrap();
            s.write_all(&[0x01]).unwrap();
            let _ = done_rx.recv_timeout(Duration::from_secs(30));
        });

        let mut client = Client::connect_with_timeout(addr, Duration::from_millis(600)).unwrap();
        let start = Instant::now();
        let err = client.ping().expect_err("a stalled response must time out");
        let elapsed = start.elapsed();
        assert!(
            matches!(&err, ClientError::Io(e) if e.kind() == io::ErrorKind::TimedOut),
            "expected a total-timeout cutoff, got {err}"
        );
        assert!(
            elapsed < Duration::from_secs(10),
            "cutoff took {elapsed:?}; the total budget is not being enforced"
        );
        done_tx.send(()).unwrap();
        server.join().unwrap();
    }

    #[test]
    fn zero_attempts_is_clamped_to_one_try() {
        let dead_addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let policy = RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::default()
        };
        assert!(Client::connect_with_retry(dead_addr, Duration::from_secs(1), &policy).is_err());
    }
}
