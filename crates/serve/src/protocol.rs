//! The wire protocol: length-prefixed binary frames (DESIGN.md §11).
//!
//! Every message is one frame: a `u32` little-endian payload length
//! followed by the payload. The payload starts with a version byte, then a
//! message tag, then tag-specific fields encoded with the bounded
//! [`deepjoin_store::codec`] reader/writer — the same
//! validate-before-allocate codec the artifact store uses, so a hostile
//! length prefix is rejected before it can become an allocation.
//!
//! The frame length itself is checked against a cap *before* the body is
//! read: an oversized header costs the server 4 bytes of I/O, not memory.

use std::io::{self, Read, Write};

use deepjoin_store::codec::{DecodeError, DecodeErrorKind, Reader, Writer};

/// Protocol version carried in every payload.
pub const PROTOCOL_VERSION: u8 = 1;

/// Default cap on a single frame's payload size (1 MiB). Queries are a few
/// hundred cells of text; anything near this cap is hostile or corrupt.
pub const MAX_FRAME: usize = 1 << 20;

/// Request tags.
const REQ_PING: u8 = 1;
const REQ_QUERY: u8 = 2;
const REQ_RELOAD: u8 = 3;
const REQ_SHUTDOWN: u8 = 4;
const REQ_STATS: u8 = 5;
const REQ_ADD_TABLE: u8 = 6;
const REQ_DROP_TABLE: u8 = 7;

/// Response tags.
const RESP_PONG: u8 = 1;
const RESP_QUERY: u8 = 2;
const RESP_RELOADED: u8 = 3;
const RESP_SHUTTING_DOWN: u8 = 4;
const RESP_STATS: u8 = 5;
const RESP_ERROR: u8 = 6;
const RESP_MUTATED: u8 = 7;

/// Structured error codes. Stable across releases; clients switch on these,
/// not on message text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// Admission queue full: the request was shed without being started.
    /// Retry with backoff.
    Overloaded = 1,
    /// The request's deadline passed before any work could start.
    DeadlineExceeded = 2,
    /// The request was malformed (bad frame, bad field, k = 0, ...).
    BadRequest = 3,
    /// The frame header announced a payload larger than the server accepts.
    FrameTooLarge = 4,
    /// The server hit an internal failure processing the request; the
    /// worker survived and the connection stays usable.
    Internal = 5,
    /// The server is draining (shutdown in progress) or a reload failed.
    Unavailable = 6,
}

impl ErrorCode {
    /// Decode a wire byte.
    pub fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            1 => ErrorCode::Overloaded,
            2 => ErrorCode::DeadlineExceeded,
            3 => ErrorCode::BadRequest,
            4 => ErrorCode::FrameTooLarge,
            5 => ErrorCode::Internal,
            6 => ErrorCode::Unavailable,
            _ => return None,
        })
    }
}

/// A structured error response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Machine-readable code.
    pub code: ErrorCode,
    /// Human-readable context.
    pub message: String,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}: {}", self.code, self.message)
    }
}

/// Client → server messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness check.
    Ping,
    /// Search for the `k` columns most joinable with the query column.
    Query {
        /// Query column name (`table.column` or free text).
        name: String,
        /// Query column cell values.
        cells: Vec<String>,
        /// Neighbors requested (clamped server-side to the index size).
        k: u32,
    },
    /// Swap in a fresh snapshot; `None` re-reads the artifact the server
    /// was started with.
    Reload {
        /// Optional new artifact path.
        path: Option<String>,
    },
    /// Begin graceful drain: admitted requests finish, then the server
    /// exits.
    Shutdown,
    /// Server counters and snapshot info.
    Stats,
    /// Ingest a new table into the live lake (live servers only).
    AddTable {
        /// Table title.
        title: String,
        /// `(column name, cells)` per column.
        columns: Vec<(String, Vec<String>)>,
    },
    /// Drop every column belonging to a table (live servers only).
    DropTable {
        /// Table title.
        title: String,
    },
}

/// One hit on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireHit {
    /// Indexed column id.
    pub id: u32,
    /// Distance (smaller is closer).
    pub score: f32,
    /// Column label (`table.column`).
    pub label: String,
}

/// A query answer, including the degradation report.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryReply {
    /// Index health code ([`crate::Health::code`]).
    pub health_code: u8,
    /// Index health label ([`crate::Health::label`]).
    pub health_label: String,
    /// True when this answer is in any way less than a healthy, complete
    /// HNSW answer (partial scan, fallback path, or degraded index).
    pub degraded: bool,
    /// False when the deadline expired mid-search and `hits` is partial.
    pub complete: bool,
    /// True when the answer came from a fallback (flat rescue) path.
    pub via_fallback: bool,
    /// Snapshot generation that answered (bumps on every reload).
    pub generation: u32,
    /// Indexed column count in that snapshot.
    pub indexed: u64,
    /// Distance evaluations performed.
    pub visited: u64,
    /// The hits, closest first.
    pub hits: Vec<WireHit>,
}

/// Server counters (all since process start).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsReply {
    /// Current snapshot generation.
    pub generation: u32,
    /// Indexed column count in the current snapshot.
    pub indexed: u64,
    /// Current health label.
    pub health_label: String,
    /// Queries admitted to the queue.
    pub accepted: u64,
    /// Queries shed with `Overloaded`.
    pub shed: u64,
    /// Queries whose deadline expired before work started.
    pub expired: u64,
    /// Answers that used a fallback path or returned partial results.
    pub degraded_answers: u64,
    /// Admission queue capacity.
    pub queue_capacity: u32,
    /// Query-embedding cache hits in the current snapshot (0 when the
    /// model serves without a cache).
    pub cache_hits: u64,
    /// Query-embedding cache misses in the current snapshot.
    pub cache_misses: u64,
    /// Live-lake gauges, present when the server runs with live ingest.
    /// Encoded as a versioned optional tail: servers predating live
    /// ingest simply end the message here, and old clients ignore the
    /// tail — both directions stay compatible.
    pub live: Option<crate::LiveStats>,
    /// Wall-clock microseconds the last snapshot (re)load took, present
    /// on servers that track it. The headline mmap observability gauge:
    /// a remap-and-swap reload of an unchanged aligned artifact is
    /// O(ms), a heap reload is O(artifact size). Second optional tail
    /// after `live` — same compatibility story.
    pub last_reload_micros: Option<u64>,
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Liveness ack.
    Pong,
    /// Query answer.
    Query(QueryReply),
    /// Reload succeeded; the new snapshot is serving.
    Reloaded {
        /// New snapshot generation.
        generation: u32,
        /// Non-fatal load warnings.
        warnings: Vec<String>,
    },
    /// Drain has begun.
    ShuttingDown,
    /// Counter snapshot.
    Stats(StatsReply),
    /// Structured failure.
    Error(WireError),
    /// A mutation was durably journaled.
    Mutated {
        /// Journal sequence number of the committed record.
        seq: u64,
        /// Columns added, or ids tombstoned.
        applied: u64,
    },
}

impl Request {
    /// Encode to a frame payload (no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u8(PROTOCOL_VERSION);
        match self {
            Request::Ping => w.put_u8(REQ_PING),
            Request::Query { name, cells, k } => {
                w.put_u8(REQ_QUERY);
                w.put_str(name);
                w.put_u32_le(*k);
                w.put_u32_le(cells.len() as u32);
                for c in cells {
                    w.put_str(c);
                }
            }
            Request::Reload { path } => {
                w.put_u8(REQ_RELOAD);
                match path {
                    Some(p) => {
                        w.put_u8(1);
                        w.put_str(p);
                    }
                    None => w.put_u8(0),
                }
            }
            Request::Shutdown => w.put_u8(REQ_SHUTDOWN),
            Request::Stats => w.put_u8(REQ_STATS),
            Request::AddTable { title, columns } => {
                w.put_u8(REQ_ADD_TABLE);
                w.put_str(title);
                w.put_u32_le(columns.len() as u32);
                for (name, cells) in columns {
                    w.put_str(name);
                    w.put_u32_le(cells.len() as u32);
                    for c in cells {
                        w.put_str(c);
                    }
                }
            }
            Request::DropTable { title } => {
                w.put_u8(REQ_DROP_TABLE);
                w.put_str(title);
            }
        }
        w.into_vec()
    }

    /// Decode a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(payload, "request");
        r.expect_version(PROTOCOL_VERSION)?;
        let tag = r.u8()?;
        let req = match tag {
            REQ_PING => Request::Ping,
            REQ_QUERY => {
                let name = r.str_prefixed()?;
                let k = r.u32_le()?;
                // Each cell costs at least its 4-byte length prefix, so the
                // count is validated against the bytes actually present.
                let n = r.count_u32(4)?;
                let mut cells = Vec::with_capacity(n);
                for _ in 0..n {
                    cells.push(r.str_prefixed()?);
                }
                Request::Query { name, cells, k }
            }
            REQ_RELOAD => {
                let has_path = r.u8()?;
                let path = match has_path {
                    0 => None,
                    1 => Some(r.str_prefixed()?),
                    _ => return Err(r.error(DecodeErrorKind::BadMagic)),
                };
                Request::Reload { path }
            }
            REQ_SHUTDOWN => Request::Shutdown,
            REQ_STATS => Request::Stats,
            REQ_ADD_TABLE => {
                let title = r.str_prefixed()?;
                // Each column costs at least a name prefix + cell count.
                let n = r.count_u32(8)?;
                let mut columns = Vec::with_capacity(n);
                for _ in 0..n {
                    let name = r.str_prefixed()?;
                    let cells_n = r.count_u32(4)?;
                    let mut cells = Vec::with_capacity(cells_n);
                    for _ in 0..cells_n {
                        cells.push(r.str_prefixed()?);
                    }
                    columns.push((name, cells));
                }
                Request::AddTable { title, columns }
            }
            REQ_DROP_TABLE => Request::DropTable {
                title: r.str_prefixed()?,
            },
            other => return Err(r.error(DecodeErrorKind::BadDiscriminant(other))),
        };
        if !r.is_empty() {
            return Err(r.error(DecodeErrorKind::Invalid("trailing bytes after message")));
        }
        Ok(req)
    }
}

impl Response {
    /// Encode to a frame payload (no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u8(PROTOCOL_VERSION);
        match self {
            Response::Pong => w.put_u8(RESP_PONG),
            Response::Query(q) => {
                w.put_u8(RESP_QUERY);
                w.put_u8(q.health_code);
                w.put_str(&q.health_label);
                w.put_u8(q.degraded as u8);
                w.put_u8(q.complete as u8);
                w.put_u8(q.via_fallback as u8);
                w.put_u32_le(q.generation);
                w.put_u64_le(q.indexed);
                w.put_u64_le(q.visited);
                w.put_u32_le(q.hits.len() as u32);
                for h in &q.hits {
                    w.put_u32_le(h.id);
                    w.put_f32_le(h.score);
                    w.put_str(&h.label);
                }
            }
            Response::Reloaded {
                generation,
                warnings,
            } => {
                w.put_u8(RESP_RELOADED);
                w.put_u32_le(*generation);
                w.put_u32_le(warnings.len() as u32);
                for s in warnings {
                    w.put_str(s);
                }
            }
            Response::ShuttingDown => w.put_u8(RESP_SHUTTING_DOWN),
            Response::Stats(s) => {
                w.put_u8(RESP_STATS);
                w.put_u32_le(s.generation);
                w.put_u64_le(s.indexed);
                w.put_str(&s.health_label);
                w.put_u64_le(s.accepted);
                w.put_u64_le(s.shed);
                w.put_u64_le(s.expired);
                w.put_u64_le(s.degraded_answers);
                w.put_u32_le(s.queue_capacity);
                w.put_u64_le(s.cache_hits);
                w.put_u64_le(s.cache_misses);
                // Versioned optional tail (see `StatsReply::live`): a
                // presence flag, then the live gauges.
                match &s.live {
                    None => w.put_u8(0),
                    Some(live) => {
                        w.put_u8(1);
                        w.put_u32_le(live.segments);
                        w.put_u64_le(live.wal_bytes);
                        w.put_u64_le(live.pending_tombstones);
                        w.put_u64_le(live.live_rows);
                    }
                }
                // Second optional tail: last reload duration.
                match s.last_reload_micros {
                    None => w.put_u8(0),
                    Some(us) => {
                        w.put_u8(1);
                        w.put_u64_le(us);
                    }
                }
            }
            Response::Error(e) => {
                w.put_u8(RESP_ERROR);
                w.put_u8(e.code as u8);
                w.put_str(&e.message);
            }
            Response::Mutated { seq, applied } => {
                w.put_u8(RESP_MUTATED);
                w.put_u64_le(*seq);
                w.put_u64_le(*applied);
            }
        }
        w.into_vec()
    }

    /// Decode a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(payload, "response");
        r.expect_version(PROTOCOL_VERSION)?;
        let tag = r.u8()?;
        let resp = match tag {
            RESP_PONG => Response::Pong,
            RESP_QUERY => {
                let health_code = r.u8()?;
                let health_label = r.str_prefixed()?;
                let degraded = r.u8()? != 0;
                let complete = r.u8()? != 0;
                let via_fallback = r.u8()? != 0;
                let generation = r.u32_le()?;
                let indexed = r.u64_le()?;
                let visited = r.u64_le()?;
                // A hit is at least id + score + label-length = 12 bytes.
                let n = r.count_u32(12)?;
                let mut hits = Vec::with_capacity(n);
                for _ in 0..n {
                    hits.push(WireHit {
                        id: r.u32_le()?,
                        score: r.f32_le()?,
                        label: r.str_prefixed()?,
                    });
                }
                Response::Query(QueryReply {
                    health_code,
                    health_label,
                    degraded,
                    complete,
                    via_fallback,
                    generation,
                    indexed,
                    visited,
                    hits,
                })
            }
            RESP_RELOADED => {
                let generation = r.u32_le()?;
                let n = r.count_u32(4)?;
                let mut warnings = Vec::with_capacity(n);
                for _ in 0..n {
                    warnings.push(r.str_prefixed()?);
                }
                Response::Reloaded {
                    generation,
                    warnings,
                }
            }
            RESP_SHUTTING_DOWN => Response::ShuttingDown,
            RESP_STATS => {
                let mut s = StatsReply {
                    generation: r.u32_le()?,
                    indexed: r.u64_le()?,
                    health_label: r.str_prefixed()?,
                    accepted: r.u64_le()?,
                    shed: r.u64_le()?,
                    expired: r.u64_le()?,
                    degraded_answers: r.u64_le()?,
                    queue_capacity: r.u32_le()?,
                    cache_hits: r.u64_le()?,
                    cache_misses: r.u64_le()?,
                    live: None,
                    last_reload_micros: None,
                };
                // Versioned optional tails: a server predating live ingest
                // ends the message after `cache_misses`, one predating
                // reload timing ends it after the live gauges. After the
                // known tails, tolerate (and ignore) bytes a *newer*
                // server may append — the Stats message alone is
                // forward-extensible, so this early return intentionally
                // skips the trailing-bytes check.
                if !r.is_empty() && r.u8()? != 0 {
                    s.live = Some(crate::LiveStats {
                        segments: r.u32_le()?,
                        wal_bytes: r.u64_le()?,
                        pending_tombstones: r.u64_le()?,
                        live_rows: r.u64_le()?,
                    });
                }
                if !r.is_empty() && r.u8()? != 0 {
                    s.last_reload_micros = Some(r.u64_le()?);
                }
                return Ok(Response::Stats(s));
            }
            RESP_ERROR => {
                let code_byte = r.u8()?;
                let code = ErrorCode::from_code(code_byte)
                    .ok_or_else(|| r.error(DecodeErrorKind::BadDiscriminant(code_byte)))?;
                Response::Error(WireError {
                    code,
                    message: r.str_prefixed()?,
                })
            }
            RESP_MUTATED => Response::Mutated {
                seq: r.u64_le()?,
                applied: r.u64_le()?,
            },
            other => return Err(r.error(DecodeErrorKind::BadDiscriminant(other))),
        };
        if !r.is_empty() {
            return Err(r.error(DecodeErrorKind::Invalid("trailing bytes after message")));
        }
        Ok(resp)
    }
}

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying transport failed (includes mid-frame EOF and read
    /// timeouts).
    Io(io::Error),
    /// The header announced a payload bigger than the configured cap. The
    /// body was *not* read.
    TooLarge {
        /// Announced payload size.
        announced: usize,
        /// Configured cap.
        cap: usize,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o: {e}"),
            FrameError::TooLarge { announced, cap } => {
                write!(f, "frame of {announced} bytes exceeds cap of {cap} bytes")
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Write one frame: `u32`-le payload length, then the payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame. Returns `Ok(None)` on a clean EOF at a frame boundary
/// (the peer closed between messages); EOF mid-frame is an error. A header
/// announcing more than `max_frame` bytes fails *before* the body is read.
pub fn read_frame(r: &mut impl Read, max_frame: usize) -> Result<Option<Vec<u8>>, FrameError> {
    let mut len_buf = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut len_buf[got..])? {
            0 if got == 0 => return Ok(None),
            0 => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside frame header",
                )))
            }
            n => got += n,
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > max_frame {
        return Err(FrameError::TooLarge {
            announced: len,
            cap: max_frame,
        });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let enc = req.encode();
        assert_eq!(Request::decode(&enc).unwrap(), req);
    }

    fn roundtrip_response(resp: Response) {
        let enc = resp.encode();
        assert_eq!(Response::decode(&enc).unwrap(), resp);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_request(Request::Ping);
        roundtrip_request(Request::Query {
            name: "orders.customer_id".into(),
            cells: vec!["a".into(), "b".into(), String::new()],
            k: 25,
        });
        roundtrip_request(Request::Reload { path: None });
        roundtrip_request(Request::Reload {
            path: Some("/tmp/model.djar".into()),
        });
        roundtrip_request(Request::Shutdown);
        roundtrip_request(Request::Stats);
        roundtrip_request(Request::AddTable {
            title: "orders".into(),
            columns: vec![
                ("id".into(), vec!["1".into(), "2".into()]),
                ("sku".into(), vec![]),
            ],
        });
        roundtrip_request(Request::DropTable {
            title: "orders".into(),
        });
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_response(Response::Pong);
        roundtrip_response(Response::Query(QueryReply {
            health_code: 1,
            health_label: "degraded-flat: checksum".into(),
            degraded: true,
            complete: false,
            via_fallback: true,
            generation: 3,
            indexed: 1000,
            visited: 512,
            hits: vec![
                WireHit {
                    id: 7,
                    score: 0.25,
                    label: "t.c".into(),
                },
                WireHit {
                    id: 9,
                    score: 0.5,
                    label: "u.d".into(),
                },
            ],
        }));
        roundtrip_response(Response::Reloaded {
            generation: 2,
            warnings: vec!["hnsw section corrupt".into()],
        });
        roundtrip_response(Response::ShuttingDown);
        roundtrip_response(Response::Stats(StatsReply {
            generation: 1,
            indexed: 42,
            health_label: "hnsw".into(),
            accepted: 10,
            shed: 2,
            expired: 1,
            degraded_answers: 3,
            queue_capacity: 32,
            cache_hits: 12,
            cache_misses: 5,
            live: None,
            last_reload_micros: None,
        }));
        roundtrip_response(Response::Stats(StatsReply {
            generation: 1,
            indexed: 42,
            health_label: "hnsw".into(),
            accepted: 10,
            shed: 2,
            expired: 1,
            degraded_answers: 3,
            queue_capacity: 32,
            cache_hits: 12,
            cache_misses: 5,
            live: Some(crate::LiveStats {
                segments: 3,
                wal_bytes: 1024,
                pending_tombstones: 7,
                live_rows: 99,
            }),
            last_reload_micros: Some(2_500),
        }));
        roundtrip_response(Response::Error(WireError {
            code: ErrorCode::Overloaded,
            message: "queue full".into(),
        }));
        roundtrip_response(Response::Mutated {
            seq: 12,
            applied: 4,
        });
    }

    #[test]
    fn stats_from_an_old_server_still_parses() {
        // An old server ends the Stats message right after cache_misses —
        // no presence flag at all. New clients must read that as live: None.
        let full = Response::Stats(StatsReply {
            generation: 1,
            indexed: 42,
            health_label: "hnsw".into(),
            accepted: 10,
            shed: 2,
            expired: 1,
            degraded_answers: 3,
            queue_capacity: 32,
            cache_hits: 12,
            cache_misses: 5,
            live: None,
            last_reload_micros: None,
        })
        .encode();
        // Strip the presence flags this encoder appends: the old wire image.
        let old_wire = &full[..full.len() - 2];
        match Response::decode(old_wire).unwrap() {
            Response::Stats(s) => assert_eq!(s.live, None),
            other => panic!("expected Stats, got {other:?}"),
        }
        // A middle-generation server: live gauges but no reload timing.
        let mid_wire = &full[..full.len() - 1];
        match Response::decode(mid_wire).unwrap() {
            Response::Stats(s) => assert_eq!(s.last_reload_micros, None),
            other => panic!("expected Stats, got {other:?}"),
        }
    }

    #[test]
    fn stats_with_an_unknown_future_tail_still_parses() {
        // A future server may append more optional fields after the live
        // gauges; today's client must ignore them rather than reject.
        let mut enc = Response::Stats(StatsReply {
            generation: 1,
            indexed: 42,
            health_label: "hnsw".into(),
            accepted: 10,
            shed: 2,
            expired: 1,
            degraded_answers: 3,
            queue_capacity: 32,
            cache_hits: 12,
            cache_misses: 5,
            live: Some(crate::LiveStats::default()),
            last_reload_micros: Some(900),
        })
        .encode();
        enc.extend_from_slice(&[1, 2, 3, 4]);
        match Response::decode(&enc).unwrap() {
            Response::Stats(s) => assert!(s.live.is_some()),
            other => panic!("expected Stats, got {other:?}"),
        }
    }

    #[test]
    fn truncated_payload_is_a_decode_error_not_a_panic() {
        let enc = Request::Query {
            name: "n".into(),
            cells: vec!["x".into()],
            k: 3,
        }
        .encode();
        for cut in 0..enc.len() {
            assert!(Request::decode(&enc[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn hostile_cell_count_is_rejected_before_allocation() {
        // A query frame claiming u32::MAX cells but carrying none.
        let mut w = Writer::new();
        w.put_u8(PROTOCOL_VERSION);
        w.put_u8(REQ_QUERY);
        w.put_str("q");
        w.put_u32_le(5);
        w.put_u32_le(u32::MAX); // hostile count
        let err = Request::decode(&w.into_vec()).unwrap_err();
        let msg = err.to_string();
        assert!(!msg.is_empty());
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut enc = Request::Ping.encode();
        enc.push(0xAB);
        assert!(Request::decode(&enc).is_err());
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut enc = Request::Ping.encode();
        enc[0] = 99;
        assert!(Request::decode(&enc).is_err());
    }

    #[test]
    fn frame_roundtrip_and_eof_semantics() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cur = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cur, MAX_FRAME).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut cur, MAX_FRAME).unwrap().unwrap(), b"");
        // Clean EOF at a frame boundary.
        assert!(read_frame(&mut cur, MAX_FRAME).unwrap().is_none());
    }

    #[test]
    fn eof_inside_header_or_body_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        // Truncate inside the body.
        let mut cur = std::io::Cursor::new(&buf[..6]);
        assert!(matches!(
            read_frame(&mut cur, MAX_FRAME),
            Err(FrameError::Io(_))
        ));
        // Truncate inside the header.
        let mut cur = std::io::Cursor::new(&buf[..2]);
        assert!(matches!(
            read_frame(&mut cur, MAX_FRAME),
            Err(FrameError::Io(_))
        ));
    }

    #[test]
    fn oversized_header_fails_without_reading_the_body() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        // No body bytes at all: the cap check must fire first.
        let mut cur = std::io::Cursor::new(buf);
        match read_frame(&mut cur, 1024) {
            Err(FrameError::TooLarge { announced, cap }) => {
                assert_eq!(announced, u32::MAX as usize);
                assert_eq!(cap, 1024);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }
}
