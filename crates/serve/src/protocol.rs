//! The wire protocol: length-prefixed binary frames (DESIGN.md §11).
//!
//! Every message is one frame: a `u32` little-endian payload length
//! followed by the payload. The payload starts with a version byte, then a
//! message tag, then tag-specific fields encoded with the bounded
//! [`deepjoin_store::codec`] reader/writer — the same
//! validate-before-allocate codec the artifact store uses, so a hostile
//! length prefix is rejected before it can become an allocation.
//!
//! The frame length itself is checked against a cap *before* the body is
//! read: an oversized header costs the server 4 bytes of I/O, not memory.

use std::io::{self, Read, Write};

use deepjoin_store::codec::{DecodeError, DecodeErrorKind, Reader, Writer};

/// Protocol version carried in every payload.
pub const PROTOCOL_VERSION: u8 = 1;

/// Default cap on a single frame's payload size (1 MiB). Queries are a few
/// hundred cells of text; anything near this cap is hostile or corrupt.
pub const MAX_FRAME: usize = 1 << 20;

/// Request tags.
const REQ_PING: u8 = 1;
const REQ_QUERY: u8 = 2;
const REQ_RELOAD: u8 = 3;
const REQ_SHUTDOWN: u8 = 4;
const REQ_STATS: u8 = 5;
const REQ_ADD_TABLE: u8 = 6;
const REQ_DROP_TABLE: u8 = 7;
const REQ_SYNC_POLL: u8 = 8;
const REQ_SYNC_FETCH: u8 = 9;
const REQ_QUERY_BATCH: u8 = 10;

/// Response tags.
const RESP_PONG: u8 = 1;
const RESP_QUERY: u8 = 2;
const RESP_RELOADED: u8 = 3;
const RESP_SHUTTING_DOWN: u8 = 4;
const RESP_STATS: u8 = 5;
const RESP_ERROR: u8 = 6;
const RESP_MUTATED: u8 = 7;
const RESP_SYNC_STATE: u8 = 8;
const RESP_SYNC_CHUNK: u8 = 9;
const RESP_QUERY_FOR: u8 = 10;

/// [`ReplicationStats::role`] value for a primary (sync-exporting) server.
pub const ROLE_PRIMARY: u8 = 0;
/// [`ReplicationStats::role`] value for a replica (sync-pulling) server.
pub const ROLE_REPLICA: u8 = 1;

/// Structured error codes. Stable across releases; clients switch on these,
/// not on message text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// Admission queue full: the request was shed without being started.
    /// Retry with backoff.
    Overloaded = 1,
    /// The request's deadline passed before any work could start.
    DeadlineExceeded = 2,
    /// The request was malformed (bad frame, bad field, k = 0, ...).
    BadRequest = 3,
    /// The frame header announced a payload larger than the server accepts.
    FrameTooLarge = 4,
    /// The server hit an internal failure processing the request; the
    /// worker survived and the connection stays usable.
    Internal = 5,
    /// The server is draining (shutdown in progress) or a reload failed.
    Unavailable = 6,
}

impl ErrorCode {
    /// Decode a wire byte.
    pub fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            1 => ErrorCode::Overloaded,
            2 => ErrorCode::DeadlineExceeded,
            3 => ErrorCode::BadRequest,
            4 => ErrorCode::FrameTooLarge,
            5 => ErrorCode::Internal,
            6 => ErrorCode::Unavailable,
            _ => return None,
        })
    }
}

/// A structured error response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Machine-readable code.
    pub code: ErrorCode,
    /// Human-readable context.
    pub message: String,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}: {}", self.code, self.message)
    }
}

/// Client → server messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness check.
    Ping,
    /// Search for the `k` columns most joinable with the query column.
    Query {
        /// Query column name (`table.column` or free text).
        name: String,
        /// Query column cell values.
        cells: Vec<String>,
        /// Neighbors requested (clamped server-side to the index size).
        k: u32,
        /// Tenant this query bills to, for fair admission. Encoded as an
        /// optional tail: `None` produces the exact pre-tenant wire image
        /// (old servers keep accepting it), and new servers treat a
        /// missing tail as the default tenant.
        tenant: Option<String>,
        /// Client-assigned correlation id for pipelined requests. Encoded
        /// as a second optional tail after `tenant` (forcing an explicit
        /// `tenant` presence byte when set): old servers skip it, answer
        /// in order, and the client falls back to in-order correlation.
        /// New servers answer a tagged request with
        /// [`Response::QueryFor`] carrying the same id; `None` keeps the
        /// single-query wire image — and the reply tag — byte-identical
        /// to the pre-pipelining protocol.
        request_id: Option<u64>,
    },
    /// A batch of queries in one frame. Answered with one
    /// [`Response::QueryFor`] per member, correlated by `request_id` —
    /// possibly interleaved with replies to other pipelined frames on the
    /// same connection, in any order. Old servers reject the unknown tag
    /// with `BadRequest`.
    QueryBatch {
        /// The member queries, admission-controlled individually.
        queries: Vec<BatchQuery>,
    },
    /// Swap in a fresh snapshot; `None` re-reads the artifact the server
    /// was started with.
    Reload {
        /// Optional new artifact path.
        path: Option<String>,
    },
    /// Begin graceful drain: admitted requests finish, then the server
    /// exits.
    Shutdown,
    /// Server counters and snapshot info.
    Stats,
    /// Ingest a new table into the live lake (live servers only).
    AddTable {
        /// Table title.
        title: String,
        /// `(column name, cells)` per column.
        columns: Vec<(String, Vec<String>)>,
    },
    /// Drop every column belonging to a table (live servers only).
    DropTable {
        /// Table title.
        title: String,
    },
    /// Replication: ask a sync-exporting primary which generation it
    /// serves and what files make it up.
    SyncPoll,
    /// Replication: fetch one chunk of a named sync item.
    SyncFetch {
        /// Item name, as listed by the last [`Response::SyncState`].
        item: String,
        /// Byte offset to read from.
        offset: u64,
        /// Maximum bytes wanted (the server may clamp it further to keep
        /// the response under its frame cap).
        len: u32,
    },
}

/// One member of a [`Request::QueryBatch`] frame: the same fields as
/// [`Request::Query`] plus a mandatory correlation id (batched members are
/// always answered out-of-band, so the id is not optional here).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchQuery {
    /// Client-assigned correlation id, unique among this connection's
    /// in-flight requests.
    pub request_id: u64,
    /// Query column name (`table.column` or free text).
    pub name: String,
    /// Query column cell values.
    pub cells: Vec<String>,
    /// Neighbors requested (clamped server-side to the index size).
    pub k: u32,
    /// Tenant this member bills to, for fair admission.
    pub tenant: Option<String>,
}

/// One file of a primary's exported generation, as listed by
/// [`Response::SyncState`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyncItem {
    /// Logical name: `"model"` for the base artifact, `"live/<file>"` for
    /// live-lake manifest and sealed segments. Never a filesystem path.
    pub name: String,
    /// Total byte length.
    pub len: u64,
    /// CRC-32 of the whole file — the replica's install gate.
    pub crc: u32,
}

/// Replication gauges, the third versioned optional tail of
/// [`StatsReply`] (see [`StatsReply::live`] for the compatibility story).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplicationStats {
    /// [`ROLE_PRIMARY`] or [`ROLE_REPLICA`].
    pub role: u8,
    /// Last generation observed on the primary (the primary reports its
    /// own serving generation here).
    pub primary_generation: u32,
    /// Generation fully installed and serving locally.
    pub synced_generation: u32,
    /// `primary_generation - synced_generation` (0 on a primary).
    pub lag_generations: u32,
    /// Seconds since the replica last confirmed being in sync with a
    /// reachable primary (0 on a primary).
    pub lag_seconds: u32,
    /// Wall-clock microseconds the last completed sync took.
    pub last_sync_micros: u64,
    /// Bytes transferred by the last completed sync.
    pub last_sync_bytes: u64,
    /// Completed syncs since process start.
    pub syncs: u64,
    /// Hedged requests fired by an in-process multi-endpoint client wired
    /// to this server's replication state (0 otherwise).
    pub hedges_fired: u64,
    /// Hedged requests whose second attempt answered first.
    pub hedges_won: u64,
    /// True once the primary has been unreachable past the staleness
    /// threshold: answers may lag committed mutations.
    pub stale: bool,
}

/// One tenant's serving counters, carried inside [`OverloadStats`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TenantStats {
    /// Tenant name (`default` for untagged clients, `(other)` for folded
    /// overflow tenants past the server's tracking cap).
    pub name: String,
    /// Queries admitted past the bucket and fair queue.
    pub accepted: u64,
    /// Queries shed for this tenant (bucket, queue-full, displacement, or
    /// CoDel), all counted at the tenant that paid for them.
    pub shed: u64,
    /// Median end-to-end latency over the recent window, microseconds.
    pub p50_micros: u64,
    /// 99th-percentile end-to-end latency, microseconds.
    pub p99_micros: u64,
}

/// Overload-control gauges, the fourth versioned optional tail of
/// [`StatsReply`] (see [`StatsReply::live`] for the compatibility story).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OverloadStats {
    /// Current brownout rung (0 = full effort … 3 = flat-truncated).
    pub brownout_rung: u8,
    /// Rung step-downs since process start.
    pub brownout_steps_down: u64,
    /// Rung step-ups (recoveries) since process start.
    pub brownout_steps_up: u64,
    /// Answers served at a degraded rung (> 0).
    pub brownout_answers: u64,
    /// Queries shed at a tenant's token bucket.
    pub bucket_shed: u64,
    /// Queued queries displaced by another tenant's push at capacity.
    pub displaced: u64,
    /// Queued queries shed by the sojourn controller (CoDel action).
    pub codel_shed: u64,
    /// Per-tenant counters, sorted by name.
    pub tenants: Vec<TenantStats>,
}

/// One hit on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireHit {
    /// Indexed column id.
    pub id: u32,
    /// Distance (smaller is closer).
    pub score: f32,
    /// Column label (`table.column`).
    pub label: String,
}

/// A query answer, including the degradation report.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryReply {
    /// Index health code ([`crate::Health::code`]).
    pub health_code: u8,
    /// Index health label ([`crate::Health::label`]).
    pub health_label: String,
    /// True when this answer is in any way less than a healthy, complete
    /// HNSW answer (partial scan, fallback path, or degraded index).
    pub degraded: bool,
    /// False when the deadline expired mid-search and `hits` is partial.
    pub complete: bool,
    /// True when the answer came from a fallback (flat rescue) path.
    pub via_fallback: bool,
    /// Snapshot generation that answered (bumps on every reload).
    pub generation: u32,
    /// Indexed column count in that snapshot.
    pub indexed: u64,
    /// Distance evaluations performed.
    pub visited: u64,
    /// The hits, closest first.
    pub hits: Vec<WireHit>,
}

/// Server counters (all since process start).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsReply {
    /// Current snapshot generation.
    pub generation: u32,
    /// Indexed column count in the current snapshot.
    pub indexed: u64,
    /// Current health label.
    pub health_label: String,
    /// Queries admitted to the queue.
    pub accepted: u64,
    /// Queries shed with `Overloaded`.
    pub shed: u64,
    /// Queries whose deadline expired before work started.
    pub expired: u64,
    /// Answers that used a fallback path or returned partial results.
    pub degraded_answers: u64,
    /// Admission queue capacity.
    pub queue_capacity: u32,
    /// Query-embedding cache hits in the current snapshot (0 when the
    /// model serves without a cache).
    pub cache_hits: u64,
    /// Query-embedding cache misses in the current snapshot.
    pub cache_misses: u64,
    /// Live-lake gauges, present when the server runs with live ingest.
    /// Encoded as a versioned optional tail: servers predating live
    /// ingest simply end the message here, and old clients ignore the
    /// tail — both directions stay compatible.
    pub live: Option<crate::LiveStats>,
    /// Wall-clock microseconds the last snapshot (re)load took, present
    /// on servers that track it. The headline mmap observability gauge:
    /// a remap-and-swap reload of an unchanged aligned artifact is
    /// O(ms), a heap reload is O(artifact size). Second optional tail
    /// after `live` — same compatibility story.
    pub last_reload_micros: Option<u64>,
    /// Replication gauges, present on servers that participate in
    /// replication (primary with sync export, or replica). Third optional
    /// tail — same compatibility story.
    pub replication: Option<ReplicationStats>,
    /// Overload-control gauges (brownout rung, shed breakdown, per-tenant
    /// counters). Fourth optional tail — same compatibility story.
    pub overload: Option<OverloadStats>,
    /// Wave members answered by sharing another member's embedding and
    /// search (batched-wave dedup), present on servers that form waves.
    /// Fifth optional tail — same compatibility story.
    pub dedup_hits: Option<u64>,
}

/// Server → client messages.
// Stats dominates the enum size, but it is a cold control-plane reply
// built once per `ctl stats` call — boxing it would complicate every
// compat test for no hot-path win.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Liveness ack.
    Pong,
    /// Query answer.
    Query(QueryReply),
    /// Reload succeeded; the new snapshot is serving.
    Reloaded {
        /// New snapshot generation.
        generation: u32,
        /// Non-fatal load warnings.
        warnings: Vec<String>,
    },
    /// Drain has begun.
    ShuttingDown,
    /// Counter snapshot.
    Stats(StatsReply),
    /// Structured failure.
    Error(WireError),
    /// A mutation was durably journaled.
    Mutated {
        /// Journal sequence number of the committed record.
        seq: u64,
        /// Columns added, or ids tombstoned.
        applied: u64,
    },
    /// Replication: the primary's current exported generation.
    SyncState {
        /// Serving generation on the primary (bumps on every reload).
        generation: u32,
        /// Fingerprint of the whole exported file set — changes whenever
        /// any item changes, so a replica can detect a generation swap
        /// mid-transfer and restart its poll.
        fingerprint: u64,
        /// The files making up the generation.
        items: Vec<SyncItem>,
    },
    /// A correlated query answer for a pipelined or batched request:
    /// either the reply or a structured per-request failure, tagged with
    /// the id the client assigned. Only sent for requests that carried a
    /// `request_id`, so untagged single-query traffic never sees this tag.
    QueryFor {
        /// The client-assigned id being answered.
        request_id: u64,
        /// The answer, or why this one request failed (other requests on
        /// the connection are unaffected).
        reply: Result<QueryReply, WireError>,
    },
    /// Replication: one chunk of a sync item.
    SyncChunk {
        /// Byte offset of this chunk within the item.
        offset: u64,
        /// The item's total length *right now* — a replica aborts the
        /// transfer early when this no longer matches its poll.
        total_len: u64,
        /// CRC-32 of `data` alone (the whole-file CRC from the poll gates
        /// the final install; this one catches a torn chunk immediately).
        crc: u32,
        /// The chunk bytes.
        data: Vec<u8>,
    },
}

impl Request {
    /// Encode to a frame payload (no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u8(PROTOCOL_VERSION);
        match self {
            Request::Ping => w.put_u8(REQ_PING),
            Request::Query {
                name,
                cells,
                k,
                tenant,
                request_id,
            } => {
                w.put_u8(REQ_QUERY);
                w.put_str(name);
                w.put_u32_le(*k);
                w.put_u32_le(cells.len() as u32);
                for c in cells {
                    w.put_str(c);
                }
                // Versioned optional tails: only written when set, so the
                // default wire image is identical to the pre-tenant
                // protocol and old servers (which reject trailing bytes)
                // keep accepting untagged queries. A request id rides as a
                // second tail, which forces an explicit tenant presence
                // byte in front of it.
                match (tenant, request_id) {
                    (None, None) => {}
                    (Some(t), None) => {
                        w.put_u8(1);
                        w.put_str(t);
                    }
                    (tenant, Some(id)) => {
                        match tenant {
                            Some(t) => {
                                w.put_u8(1);
                                w.put_str(t);
                            }
                            None => w.put_u8(0),
                        }
                        w.put_u8(1);
                        w.put_u64_le(*id);
                    }
                }
            }
            Request::QueryBatch { queries } => {
                w.put_u8(REQ_QUERY_BATCH);
                w.put_u32_le(queries.len() as u32);
                for q in queries {
                    w.put_u64_le(q.request_id);
                    w.put_str(&q.name);
                    w.put_u32_le(q.k);
                    w.put_u32_le(q.cells.len() as u32);
                    for c in &q.cells {
                        w.put_str(c);
                    }
                    // The batch frame is new, so the tenant needs no
                    // optional-tail dance: an explicit presence byte.
                    match &q.tenant {
                        Some(t) => {
                            w.put_u8(1);
                            w.put_str(t);
                        }
                        None => w.put_u8(0),
                    }
                }
            }
            Request::Reload { path } => {
                w.put_u8(REQ_RELOAD);
                match path {
                    Some(p) => {
                        w.put_u8(1);
                        w.put_str(p);
                    }
                    None => w.put_u8(0),
                }
            }
            Request::Shutdown => w.put_u8(REQ_SHUTDOWN),
            Request::Stats => w.put_u8(REQ_STATS),
            Request::AddTable { title, columns } => {
                w.put_u8(REQ_ADD_TABLE);
                w.put_str(title);
                w.put_u32_le(columns.len() as u32);
                for (name, cells) in columns {
                    w.put_str(name);
                    w.put_u32_le(cells.len() as u32);
                    for c in cells {
                        w.put_str(c);
                    }
                }
            }
            Request::DropTable { title } => {
                w.put_u8(REQ_DROP_TABLE);
                w.put_str(title);
            }
            Request::SyncPoll => w.put_u8(REQ_SYNC_POLL),
            Request::SyncFetch { item, offset, len } => {
                w.put_u8(REQ_SYNC_FETCH);
                w.put_str(item);
                w.put_u64_le(*offset);
                w.put_u32_le(*len);
            }
        }
        w.into_vec()
    }

    /// Decode a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(payload, "request");
        r.expect_version(PROTOCOL_VERSION)?;
        let tag = r.u8()?;
        let req = match tag {
            REQ_PING => Request::Ping,
            REQ_QUERY => {
                let name = r.str_prefixed()?;
                let k = r.u32_le()?;
                // Each cell costs at least its 4-byte length prefix, so the
                // count is validated against the bytes actually present.
                let n = r.count_u32(4)?;
                let mut cells = Vec::with_capacity(n);
                for _ in 0..n {
                    cells.push(r.str_prefixed()?);
                }
                // Optional tenant and request-id tails. Like the Stats
                // tails, bytes past the known tails are tolerated (a newer
                // client may append more), so Query requests are
                // forward-extensible and this early return intentionally
                // skips the trailing-bytes check.
                let mut tenant = None;
                let mut request_id = None;
                if !r.is_empty() {
                    if r.u8()? != 0 {
                        tenant = Some(r.str_prefixed()?);
                    }
                    if !r.is_empty() && r.u8()? != 0 {
                        request_id = Some(r.u64_le()?);
                    }
                }
                return Ok(Request::Query {
                    name,
                    cells,
                    k,
                    tenant,
                    request_id,
                });
            }
            REQ_QUERY_BATCH => {
                // A member costs at least id + name prefix + k + cell
                // count + tenant presence = 21 bytes.
                let n = r.count_u32(21)?;
                let mut queries = Vec::with_capacity(n);
                for _ in 0..n {
                    let request_id = r.u64_le()?;
                    let name = r.str_prefixed()?;
                    let k = r.u32_le()?;
                    let cells_n = r.count_u32(4)?;
                    let mut cells = Vec::with_capacity(cells_n);
                    for _ in 0..cells_n {
                        cells.push(r.str_prefixed()?);
                    }
                    let tenant = match r.u8()? {
                        0 => None,
                        1 => Some(r.str_prefixed()?),
                        _ => return Err(r.error(DecodeErrorKind::BadMagic)),
                    };
                    queries.push(BatchQuery {
                        request_id,
                        name,
                        cells,
                        k,
                        tenant,
                    });
                }
                Request::QueryBatch { queries }
            }
            REQ_RELOAD => {
                let has_path = r.u8()?;
                let path = match has_path {
                    0 => None,
                    1 => Some(r.str_prefixed()?),
                    _ => return Err(r.error(DecodeErrorKind::BadMagic)),
                };
                Request::Reload { path }
            }
            REQ_SHUTDOWN => Request::Shutdown,
            REQ_STATS => Request::Stats,
            REQ_ADD_TABLE => {
                let title = r.str_prefixed()?;
                // Each column costs at least a name prefix + cell count.
                let n = r.count_u32(8)?;
                let mut columns = Vec::with_capacity(n);
                for _ in 0..n {
                    let name = r.str_prefixed()?;
                    let cells_n = r.count_u32(4)?;
                    let mut cells = Vec::with_capacity(cells_n);
                    for _ in 0..cells_n {
                        cells.push(r.str_prefixed()?);
                    }
                    columns.push((name, cells));
                }
                Request::AddTable { title, columns }
            }
            REQ_DROP_TABLE => Request::DropTable {
                title: r.str_prefixed()?,
            },
            REQ_SYNC_POLL => Request::SyncPoll,
            REQ_SYNC_FETCH => Request::SyncFetch {
                item: r.str_prefixed()?,
                offset: r.u64_le()?,
                len: r.u32_le()?,
            },
            other => return Err(r.error(DecodeErrorKind::BadDiscriminant(other))),
        };
        if !r.is_empty() {
            return Err(r.error(DecodeErrorKind::Invalid("trailing bytes after message")));
        }
        Ok(req)
    }
}

/// Encode a [`QueryReply`] body (shared by `Query` and `QueryFor`, so a
/// correlated reply carries the exact same fields as a plain one).
fn put_query_reply(w: &mut Writer, q: &QueryReply) {
    w.put_u8(q.health_code);
    w.put_str(&q.health_label);
    w.put_u8(q.degraded as u8);
    w.put_u8(q.complete as u8);
    w.put_u8(q.via_fallback as u8);
    w.put_u32_le(q.generation);
    w.put_u64_le(q.indexed);
    w.put_u64_le(q.visited);
    w.put_u32_le(q.hits.len() as u32);
    for h in &q.hits {
        w.put_u32_le(h.id);
        w.put_f32_le(h.score);
        w.put_str(&h.label);
    }
}

/// Decode a [`QueryReply`] body (counterpart of [`put_query_reply`]).
fn read_query_reply(r: &mut Reader<'_>) -> Result<QueryReply, DecodeError> {
    let health_code = r.u8()?;
    let health_label = r.str_prefixed()?;
    let degraded = r.u8()? != 0;
    let complete = r.u8()? != 0;
    let via_fallback = r.u8()? != 0;
    let generation = r.u32_le()?;
    let indexed = r.u64_le()?;
    let visited = r.u64_le()?;
    // A hit is at least id + score + label-length = 12 bytes.
    let n = r.count_u32(12)?;
    let mut hits = Vec::with_capacity(n);
    for _ in 0..n {
        hits.push(WireHit {
            id: r.u32_le()?,
            score: r.f32_le()?,
            label: r.str_prefixed()?,
        });
    }
    Ok(QueryReply {
        health_code,
        health_label,
        degraded,
        complete,
        via_fallback,
        generation,
        indexed,
        visited,
        hits,
    })
}

impl Response {
    /// Encode to a frame payload (no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u8(PROTOCOL_VERSION);
        match self {
            Response::Pong => w.put_u8(RESP_PONG),
            Response::Query(q) => {
                w.put_u8(RESP_QUERY);
                put_query_reply(&mut w, q);
            }
            Response::QueryFor { request_id, reply } => {
                w.put_u8(RESP_QUERY_FOR);
                w.put_u64_le(*request_id);
                match reply {
                    Ok(q) => {
                        w.put_u8(1);
                        put_query_reply(&mut w, q);
                    }
                    Err(e) => {
                        w.put_u8(0);
                        w.put_u8(e.code as u8);
                        w.put_str(&e.message);
                    }
                }
            }
            Response::Reloaded {
                generation,
                warnings,
            } => {
                w.put_u8(RESP_RELOADED);
                w.put_u32_le(*generation);
                w.put_u32_le(warnings.len() as u32);
                for s in warnings {
                    w.put_str(s);
                }
            }
            Response::ShuttingDown => w.put_u8(RESP_SHUTTING_DOWN),
            Response::Stats(s) => {
                w.put_u8(RESP_STATS);
                w.put_u32_le(s.generation);
                w.put_u64_le(s.indexed);
                w.put_str(&s.health_label);
                w.put_u64_le(s.accepted);
                w.put_u64_le(s.shed);
                w.put_u64_le(s.expired);
                w.put_u64_le(s.degraded_answers);
                w.put_u32_le(s.queue_capacity);
                w.put_u64_le(s.cache_hits);
                w.put_u64_le(s.cache_misses);
                // Versioned optional tail (see `StatsReply::live`): a
                // presence flag, then the live gauges.
                match &s.live {
                    None => w.put_u8(0),
                    Some(live) => {
                        w.put_u8(1);
                        w.put_u32_le(live.segments);
                        w.put_u64_le(live.wal_bytes);
                        w.put_u64_le(live.pending_tombstones);
                        w.put_u64_le(live.live_rows);
                    }
                }
                // Second optional tail: last reload duration.
                match s.last_reload_micros {
                    None => w.put_u8(0),
                    Some(us) => {
                        w.put_u8(1);
                        w.put_u64_le(us);
                    }
                }
                // Third optional tail: replication gauges.
                match &s.replication {
                    None => w.put_u8(0),
                    Some(rep) => {
                        w.put_u8(1);
                        w.put_u8(rep.role);
                        w.put_u32_le(rep.primary_generation);
                        w.put_u32_le(rep.synced_generation);
                        w.put_u32_le(rep.lag_generations);
                        w.put_u32_le(rep.lag_seconds);
                        w.put_u64_le(rep.last_sync_micros);
                        w.put_u64_le(rep.last_sync_bytes);
                        w.put_u64_le(rep.syncs);
                        w.put_u64_le(rep.hedges_fired);
                        w.put_u64_le(rep.hedges_won);
                        w.put_u8(rep.stale as u8);
                    }
                }
                // Fourth optional tail: overload-control gauges.
                match &s.overload {
                    None => w.put_u8(0),
                    Some(ov) => {
                        w.put_u8(1);
                        w.put_u8(ov.brownout_rung);
                        w.put_u64_le(ov.brownout_steps_down);
                        w.put_u64_le(ov.brownout_steps_up);
                        w.put_u64_le(ov.brownout_answers);
                        w.put_u64_le(ov.bucket_shed);
                        w.put_u64_le(ov.displaced);
                        w.put_u64_le(ov.codel_shed);
                        w.put_u32_le(ov.tenants.len() as u32);
                        for t in &ov.tenants {
                            w.put_str(&t.name);
                            w.put_u64_le(t.accepted);
                            w.put_u64_le(t.shed);
                            w.put_u64_le(t.p50_micros);
                            w.put_u64_le(t.p99_micros);
                        }
                    }
                }
                // Fifth optional tail: batched-wave dedup hits.
                match s.dedup_hits {
                    None => w.put_u8(0),
                    Some(d) => {
                        w.put_u8(1);
                        w.put_u64_le(d);
                    }
                }
            }
            Response::Error(e) => {
                w.put_u8(RESP_ERROR);
                w.put_u8(e.code as u8);
                w.put_str(&e.message);
            }
            Response::Mutated { seq, applied } => {
                w.put_u8(RESP_MUTATED);
                w.put_u64_le(*seq);
                w.put_u64_le(*applied);
            }
            Response::SyncState {
                generation,
                fingerprint,
                items,
            } => {
                w.put_u8(RESP_SYNC_STATE);
                w.put_u32_le(*generation);
                w.put_u64_le(*fingerprint);
                w.put_u32_le(items.len() as u32);
                for item in items {
                    w.put_str(&item.name);
                    w.put_u64_le(item.len);
                    w.put_u32_le(item.crc);
                }
            }
            Response::SyncChunk {
                offset,
                total_len,
                crc,
                data,
            } => {
                w.put_u8(RESP_SYNC_CHUNK);
                w.put_u64_le(*offset);
                w.put_u64_le(*total_len);
                w.put_u32_le(*crc);
                w.put_u32_le(data.len() as u32);
                w.put_slice(data);
            }
        }
        w.into_vec()
    }

    /// Decode a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(payload, "response");
        r.expect_version(PROTOCOL_VERSION)?;
        let tag = r.u8()?;
        let resp = match tag {
            RESP_PONG => Response::Pong,
            RESP_QUERY => Response::Query(read_query_reply(&mut r)?),
            RESP_QUERY_FOR => {
                let request_id = r.u64_le()?;
                let reply = match r.u8()? {
                    1 => Ok(read_query_reply(&mut r)?),
                    0 => {
                        let code_byte = r.u8()?;
                        let code = ErrorCode::from_code(code_byte).ok_or_else(|| {
                            r.error(DecodeErrorKind::BadDiscriminant(code_byte))
                        })?;
                        Err(WireError {
                            code,
                            message: r.str_prefixed()?,
                        })
                    }
                    _ => return Err(r.error(DecodeErrorKind::BadMagic)),
                };
                Response::QueryFor { request_id, reply }
            }
            RESP_RELOADED => {
                let generation = r.u32_le()?;
                let n = r.count_u32(4)?;
                let mut warnings = Vec::with_capacity(n);
                for _ in 0..n {
                    warnings.push(r.str_prefixed()?);
                }
                Response::Reloaded {
                    generation,
                    warnings,
                }
            }
            RESP_SHUTTING_DOWN => Response::ShuttingDown,
            RESP_STATS => {
                let mut s = StatsReply {
                    generation: r.u32_le()?,
                    indexed: r.u64_le()?,
                    health_label: r.str_prefixed()?,
                    accepted: r.u64_le()?,
                    shed: r.u64_le()?,
                    expired: r.u64_le()?,
                    degraded_answers: r.u64_le()?,
                    queue_capacity: r.u32_le()?,
                    cache_hits: r.u64_le()?,
                    cache_misses: r.u64_le()?,
                    live: None,
                    last_reload_micros: None,
                    replication: None,
                    overload: None,
                    dedup_hits: None,
                };
                // Versioned optional tails: a server predating live ingest
                // ends the message after `cache_misses`, one predating
                // reload timing ends it after the live gauges. After the
                // known tails, tolerate (and ignore) bytes a *newer*
                // server may append — the Stats message alone is
                // forward-extensible, so this early return intentionally
                // skips the trailing-bytes check.
                if !r.is_empty() && r.u8()? != 0 {
                    s.live = Some(crate::LiveStats {
                        segments: r.u32_le()?,
                        wal_bytes: r.u64_le()?,
                        pending_tombstones: r.u64_le()?,
                        live_rows: r.u64_le()?,
                    });
                }
                if !r.is_empty() && r.u8()? != 0 {
                    s.last_reload_micros = Some(r.u64_le()?);
                }
                if !r.is_empty() && r.u8()? != 0 {
                    s.replication = Some(ReplicationStats {
                        role: r.u8()?,
                        primary_generation: r.u32_le()?,
                        synced_generation: r.u32_le()?,
                        lag_generations: r.u32_le()?,
                        lag_seconds: r.u32_le()?,
                        last_sync_micros: r.u64_le()?,
                        last_sync_bytes: r.u64_le()?,
                        syncs: r.u64_le()?,
                        hedges_fired: r.u64_le()?,
                        hedges_won: r.u64_le()?,
                        stale: r.u8()? != 0,
                    });
                }
                if !r.is_empty() && r.u8()? != 0 {
                    let brownout_rung = r.u8()?;
                    let brownout_steps_down = r.u64_le()?;
                    let brownout_steps_up = r.u64_le()?;
                    let brownout_answers = r.u64_le()?;
                    let bucket_shed = r.u64_le()?;
                    let displaced = r.u64_le()?;
                    let codel_shed = r.u64_le()?;
                    // A tenant entry is at least a name prefix + 4 × u64.
                    let n = r.count_u32(36)?;
                    let mut tenants = Vec::with_capacity(n);
                    for _ in 0..n {
                        tenants.push(TenantStats {
                            name: r.str_prefixed()?,
                            accepted: r.u64_le()?,
                            shed: r.u64_le()?,
                            p50_micros: r.u64_le()?,
                            p99_micros: r.u64_le()?,
                        });
                    }
                    s.overload = Some(OverloadStats {
                        brownout_rung,
                        brownout_steps_down,
                        brownout_steps_up,
                        brownout_answers,
                        bucket_shed,
                        displaced,
                        codel_shed,
                        tenants,
                    });
                }
                if !r.is_empty() && r.u8()? != 0 {
                    s.dedup_hits = Some(r.u64_le()?);
                }
                return Ok(Response::Stats(s));
            }
            RESP_ERROR => {
                let code_byte = r.u8()?;
                let code = ErrorCode::from_code(code_byte)
                    .ok_or_else(|| r.error(DecodeErrorKind::BadDiscriminant(code_byte)))?;
                Response::Error(WireError {
                    code,
                    message: r.str_prefixed()?,
                })
            }
            RESP_MUTATED => Response::Mutated {
                seq: r.u64_le()?,
                applied: r.u64_le()?,
            },
            RESP_SYNC_STATE => {
                let generation = r.u32_le()?;
                let fingerprint = r.u64_le()?;
                // An item is at least name-length + len + crc = 16 bytes.
                let n = r.count_u32(16)?;
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    items.push(SyncItem {
                        name: r.str_prefixed()?,
                        len: r.u64_le()?,
                        crc: r.u32_le()?,
                    });
                }
                Response::SyncState {
                    generation,
                    fingerprint,
                    items,
                }
            }
            RESP_SYNC_CHUNK => {
                let offset = r.u64_le()?;
                let total_len = r.u64_le()?;
                let crc = r.u32_le()?;
                // The count is validated against the bytes actually present
                // before the allocation happens.
                let n = r.count_u32(1)?;
                let data = r.bytes(n)?.to_vec();
                Response::SyncChunk {
                    offset,
                    total_len,
                    crc,
                    data,
                }
            }
            other => return Err(r.error(DecodeErrorKind::BadDiscriminant(other))),
        };
        if !r.is_empty() {
            return Err(r.error(DecodeErrorKind::Invalid("trailing bytes after message")));
        }
        Ok(resp)
    }
}

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying transport failed (includes mid-frame EOF and read
    /// timeouts).
    Io(io::Error),
    /// The header announced a payload bigger than the configured cap. The
    /// body was *not* read.
    TooLarge {
        /// Announced payload size.
        announced: usize,
        /// Configured cap.
        cap: usize,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o: {e}"),
            FrameError::TooLarge { announced, cap } => {
                write!(f, "frame of {announced} bytes exceeds cap of {cap} bytes")
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Write one frame: `u32`-le payload length, then the payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame. Returns `Ok(None)` on a clean EOF at a frame boundary
/// (the peer closed between messages); EOF mid-frame is an error. A header
/// announcing more than `max_frame` bytes fails *before* the body is read.
pub fn read_frame(r: &mut impl Read, max_frame: usize) -> Result<Option<Vec<u8>>, FrameError> {
    let mut len_buf = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut len_buf[got..])? {
            0 if got == 0 => return Ok(None),
            0 => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside frame header",
                )))
            }
            n => got += n,
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > max_frame {
        return Err(FrameError::TooLarge {
            announced: len,
            cap: max_frame,
        });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let enc = req.encode();
        assert_eq!(Request::decode(&enc).unwrap(), req);
    }

    fn roundtrip_response(resp: Response) {
        let enc = resp.encode();
        assert_eq!(Response::decode(&enc).unwrap(), resp);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_request(Request::Ping);
        roundtrip_request(Request::Query {
            name: "orders.customer_id".into(),
            cells: vec!["a".into(), "b".into(), String::new()],
            k: 25,
            tenant: None,
            request_id: None,
        });
        roundtrip_request(Request::Query {
            name: "orders.customer_id".into(),
            cells: vec!["a".into()],
            k: 5,
            tenant: Some("analytics-team".into()),
            request_id: None,
        });
        roundtrip_request(Request::Query {
            name: "orders.customer_id".into(),
            cells: vec!["a".into()],
            k: 5,
            tenant: None,
            request_id: Some(77),
        });
        roundtrip_request(Request::Query {
            name: "orders.customer_id".into(),
            cells: vec!["a".into()],
            k: 5,
            tenant: Some("analytics-team".into()),
            request_id: Some(u64::MAX),
        });
        roundtrip_request(Request::QueryBatch { queries: vec![] });
        roundtrip_request(Request::QueryBatch {
            queries: vec![
                BatchQuery {
                    request_id: 1,
                    name: "orders.id".into(),
                    cells: vec!["a".into(), "b".into()],
                    k: 10,
                    tenant: None,
                },
                BatchQuery {
                    request_id: 2,
                    name: "users.id".into(),
                    cells: vec![],
                    k: 3,
                    tenant: Some("analytics-team".into()),
                },
            ],
        });
        roundtrip_request(Request::Reload { path: None });
        roundtrip_request(Request::Reload {
            path: Some("/tmp/model.djar".into()),
        });
        roundtrip_request(Request::Shutdown);
        roundtrip_request(Request::Stats);
        roundtrip_request(Request::AddTable {
            title: "orders".into(),
            columns: vec![
                ("id".into(), vec!["1".into(), "2".into()]),
                ("sku".into(), vec![]),
            ],
        });
        roundtrip_request(Request::DropTable {
            title: "orders".into(),
        });
        roundtrip_request(Request::SyncPoll);
        roundtrip_request(Request::SyncFetch {
            item: "live/seg-000003.djar".into(),
            offset: 262_144,
            len: 65_536,
        });
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_response(Response::Pong);
        roundtrip_response(Response::Query(QueryReply {
            health_code: 1,
            health_label: "degraded-flat: checksum".into(),
            degraded: true,
            complete: false,
            via_fallback: true,
            generation: 3,
            indexed: 1000,
            visited: 512,
            hits: vec![
                WireHit {
                    id: 7,
                    score: 0.25,
                    label: "t.c".into(),
                },
                WireHit {
                    id: 9,
                    score: 0.5,
                    label: "u.d".into(),
                },
            ],
        }));
        roundtrip_response(Response::Reloaded {
            generation: 2,
            warnings: vec!["hnsw section corrupt".into()],
        });
        roundtrip_response(Response::ShuttingDown);
        roundtrip_response(Response::Stats(StatsReply {
            generation: 1,
            indexed: 42,
            health_label: "hnsw".into(),
            accepted: 10,
            shed: 2,
            expired: 1,
            degraded_answers: 3,
            queue_capacity: 32,
            cache_hits: 12,
            cache_misses: 5,
            live: None,
            last_reload_micros: None,
            replication: None,
            overload: None,
            dedup_hits: None,
        }));
        roundtrip_response(Response::Stats(StatsReply {
            generation: 1,
            indexed: 42,
            health_label: "hnsw".into(),
            accepted: 10,
            shed: 2,
            expired: 1,
            degraded_answers: 3,
            queue_capacity: 32,
            cache_hits: 12,
            cache_misses: 5,
            live: Some(crate::LiveStats {
                segments: 3,
                wal_bytes: 1024,
                pending_tombstones: 7,
                live_rows: 99,
            }),
            last_reload_micros: Some(2_500),
            replication: None,
            overload: None,
            dedup_hits: None,
        }));
        roundtrip_response(Response::Error(WireError {
            code: ErrorCode::Overloaded,
            message: "queue full".into(),
        }));
        roundtrip_response(Response::Mutated {
            seq: 12,
            applied: 4,
        });
        roundtrip_response(Response::SyncState {
            generation: 9,
            fingerprint: 0xDEAD_BEEF_F00D_CAFE,
            items: vec![
                SyncItem {
                    name: "model".into(),
                    len: 1_048_576,
                    crc: 0x1234_5678,
                },
                SyncItem {
                    name: "live/manifest.djar".into(),
                    len: 256,
                    crc: 42,
                },
            ],
        });
        roundtrip_response(Response::SyncState {
            generation: 1,
            fingerprint: 0,
            items: vec![],
        });
        roundtrip_response(Response::SyncChunk {
            offset: 131_072,
            total_len: 1_048_576,
            crc: 0xCAFE_BABE,
            data: vec![7u8; 512],
        });
    }

    #[test]
    fn stats_with_replication_gauges_roundtrips_and_tolerates_future_tails() {
        let reply = StatsReply {
            generation: 4,
            indexed: 100,
            health_label: "hnsw".into(),
            accepted: 1,
            shed: 0,
            expired: 0,
            degraded_answers: 0,
            queue_capacity: 32,
            cache_hits: 0,
            cache_misses: 0,
            live: None,
            last_reload_micros: Some(777),
            replication: Some(ReplicationStats {
                role: ROLE_REPLICA,
                primary_generation: 6,
                synced_generation: 4,
                lag_generations: 2,
                lag_seconds: 31,
                last_sync_micros: 12_000,
                last_sync_bytes: 4_096,
                syncs: 5,
                hedges_fired: 3,
                hedges_won: 1,
                stale: true,
            }),
            overload: None,
            dedup_hits: None,
        };
        roundtrip_response(Response::Stats(reply.clone()));
        // A yet-newer server appends a sixth tail: ignored, not rejected.
        let mut enc = Response::Stats(reply.clone()).encode();
        enc.extend_from_slice(&[1, 9, 9, 9]);
        match Response::decode(&enc).unwrap() {
            Response::Stats(s) => assert_eq!(s.replication, reply.replication),
            other => panic!("expected Stats, got {other:?}"),
        }
    }

    #[test]
    fn hostile_sync_chunk_length_is_rejected_before_allocation() {
        let mut w = Writer::new();
        w.put_u8(PROTOCOL_VERSION);
        w.put_u8(RESP_SYNC_CHUNK);
        w.put_u64_le(0);
        w.put_u64_le(1 << 40);
        w.put_u32_le(0);
        w.put_u32_le(u32::MAX); // hostile data length, no data bytes
        assert!(Response::decode(&w.into_vec()).is_err());
    }

    #[test]
    fn stats_from_an_old_server_still_parses() {
        // An old server ends the Stats message right after cache_misses —
        // no presence flag at all. New clients must read that as live: None.
        let full = Response::Stats(StatsReply {
            generation: 1,
            indexed: 42,
            health_label: "hnsw".into(),
            accepted: 10,
            shed: 2,
            expired: 1,
            degraded_answers: 3,
            queue_capacity: 32,
            cache_hits: 12,
            cache_misses: 5,
            live: None,
            last_reload_micros: None,
            replication: None,
            overload: None,
            dedup_hits: None,
        })
        .encode();
        // Strip the presence flags this encoder appends: the old wire image.
        let old_wire = &full[..full.len() - 5];
        match Response::decode(old_wire).unwrap() {
            Response::Stats(s) => assert_eq!(s.live, None),
            other => panic!("expected Stats, got {other:?}"),
        }
        // A middle-generation server: live gauges but no reload timing.
        let mid_wire = &full[..full.len() - 4];
        match Response::decode(mid_wire).unwrap() {
            Response::Stats(s) => {
                assert_eq!(s.last_reload_micros, None);
                assert_eq!(s.replication, None);
            }
            other => panic!("expected Stats, got {other:?}"),
        }
        // A pre-replication server: the two earlier tails, nothing after.
        let pre_replication_wire = &full[..full.len() - 3];
        match Response::decode(pre_replication_wire).unwrap() {
            Response::Stats(s) => assert_eq!(s.replication, None),
            other => panic!("expected Stats, got {other:?}"),
        }
        // A pre-overload (PR 8) server: three tails, no overload gauges.
        let pre_overload_wire = &full[..full.len() - 2];
        match Response::decode(pre_overload_wire).unwrap() {
            Response::Stats(s) => assert_eq!(s.overload, None),
            other => panic!("expected Stats, got {other:?}"),
        }
        // A pre-pipelining (PR 9) server: four tails, no dedup counter.
        let pre_dedup_wire = &full[..full.len() - 1];
        match Response::decode(pre_dedup_wire).unwrap() {
            Response::Stats(s) => assert_eq!(s.dedup_hits, None),
            other => panic!("expected Stats, got {other:?}"),
        }
    }

    #[test]
    fn stats_with_an_unknown_future_tail_still_parses() {
        // A future server may append more optional fields after the live
        // gauges; today's client must ignore them rather than reject.
        let mut enc = Response::Stats(StatsReply {
            generation: 1,
            indexed: 42,
            health_label: "hnsw".into(),
            accepted: 10,
            shed: 2,
            expired: 1,
            degraded_answers: 3,
            queue_capacity: 32,
            cache_hits: 12,
            cache_misses: 5,
            live: Some(crate::LiveStats::default()),
            last_reload_micros: Some(900),
            replication: Some(ReplicationStats::default()),
            overload: Some(OverloadStats::default()),
            dedup_hits: Some(4),
        })
        .encode();
        enc.extend_from_slice(&[1, 2, 3, 4]);
        match Response::decode(&enc).unwrap() {
            Response::Stats(s) => {
                assert!(s.live.is_some());
                assert!(s.overload.is_some());
            }
            other => panic!("expected Stats, got {other:?}"),
        }
    }

    #[test]
    fn query_without_tenant_matches_the_pre_tenant_wire_image() {
        // An old client's frame ends right after the cells. New servers
        // must parse it (tenant: None → default tenant), and a new client
        // that sets no tenant must emit byte-identical frames so old
        // servers (which reject trailing bytes) keep accepting them.
        let mut w = Writer::new();
        w.put_u8(PROTOCOL_VERSION);
        w.put_u8(REQ_QUERY);
        w.put_str("orders.id");
        w.put_u32_le(7);
        w.put_u32_le(2);
        w.put_str("a");
        w.put_str("b");
        let old_wire = w.into_vec();
        let new_wire = Request::Query {
            name: "orders.id".into(),
            cells: vec!["a".into(), "b".into()],
            k: 7,
            tenant: None,
            request_id: None,
        }
        .encode();
        assert_eq!(old_wire, new_wire, "untagged queries keep the old image");
        match Request::decode(&old_wire).unwrap() {
            Request::Query { tenant, .. } => assert_eq!(tenant, None),
            other => panic!("expected Query, got {other:?}"),
        }
    }

    #[test]
    fn query_tenant_tail_roundtrips_and_tolerates_future_bytes() {
        let req = Request::Query {
            name: "q".into(),
            cells: vec!["x".into()],
            k: 3,
            tenant: Some("team-a".into()),
            request_id: None,
        };
        let enc = req.encode();
        assert_eq!(Request::decode(&enc).unwrap(), req);
        // Truncating inside the tenant string is an error, not a panic;
        // truncating the whole tail back to the cells boundary parses as
        // an untagged query.
        let tail_len = 1 + 4 + "team-a".len();
        let cells_end = enc.len() - tail_len;
        for cut in cells_end + 1..enc.len() {
            assert!(Request::decode(&enc[..cut]).is_err(), "cut at {cut}");
        }
        match Request::decode(&enc[..cells_end]).unwrap() {
            Request::Query { tenant, .. } => assert_eq!(tenant, None),
            other => panic!("expected Query, got {other:?}"),
        }
    }

    #[test]
    fn query_request_id_tail_rides_behind_the_tenant_tail() {
        // A yet-newer client appends bytes past the request-id tail:
        // ignored, not rejected — exactly how a PR 9 server ignores the
        // request-id tail itself today.
        let req = Request::Query {
            name: "q".into(),
            cells: vec!["x".into()],
            k: 3,
            tenant: Some("team-a".into()),
            request_id: Some(42),
        };
        let mut future = req.encode();
        future.extend_from_slice(&[1, 2, 3]);
        match Request::decode(&future).unwrap() {
            Request::Query {
                tenant, request_id, ..
            } => {
                assert_eq!(tenant.as_deref(), Some("team-a"));
                assert_eq!(request_id, Some(42));
            }
            other => panic!("expected Query, got {other:?}"),
        }
        // With no tenant set, the id tail still forces an explicit absent
        // tenant flag in front so old servers skip the right bytes. The
        // frame is exactly the untagged image + [0, 1, id]: a PR 9 server
        // (whose decode stops at the cells and tolerates trailing bytes)
        // parses it as a plain untagged query.
        let untagged = Request::Query {
            name: "q".into(),
            cells: vec!["x".into()],
            k: 3,
            tenant: None,
            request_id: None,
        }
        .encode();
        let tagged = Request::Query {
            name: "q".into(),
            cells: vec!["x".into()],
            k: 3,
            tenant: None,
            request_id: Some(42),
        }
        .encode();
        let mut expected = untagged.clone();
        expected.push(0); // tenant absent
        expected.push(1); // request id present
        expected.extend_from_slice(&42u64.to_le_bytes());
        assert_eq!(tagged, expected);
        // Truncating inside the id tail is an error, not a panic. (A cut
        // right after the tenant-absent byte is NOT in this range: that
        // prefix is a legal tenant-less query on its own.)
        for cut in untagged.len() + 2..tagged.len() {
            assert!(Request::decode(&tagged[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn hostile_batch_member_count_is_rejected_before_allocation() {
        let mut w = Writer::new();
        w.put_u8(PROTOCOL_VERSION);
        w.put_u8(REQ_QUERY_BATCH);
        w.put_u32_le(u32::MAX); // hostile member count, no members
        assert!(Request::decode(&w.into_vec()).is_err());
    }

    #[test]
    fn trailing_garbage_after_a_batch_is_rejected() {
        // Unlike Query (whose tail must stay open for future extensions),
        // the batch frame is new and strict: no trailing bytes.
        let mut enc = Request::QueryBatch {
            queries: vec![BatchQuery {
                request_id: 9,
                name: "q".into(),
                cells: vec!["x".into()],
                k: 1,
                tenant: None,
            }],
        }
        .encode();
        enc.push(0xAB);
        assert!(Request::decode(&enc).is_err());
    }

    #[test]
    fn query_for_roundtrips_both_kinds_and_rejects_a_bad_kind_byte() {
        let reply = QueryReply {
            health_code: 0,
            health_label: "hnsw".into(),
            degraded: false,
            complete: true,
            via_fallback: false,
            generation: 2,
            indexed: 50,
            visited: 50,
            hits: vec![WireHit {
                id: 3,
                score: 0.125,
                label: "t.c".into(),
            }],
        };
        roundtrip_response(Response::QueryFor {
            request_id: 7,
            reply: Ok(reply.clone()),
        });
        roundtrip_response(Response::QueryFor {
            request_id: u64::MAX,
            reply: Err(WireError {
                code: ErrorCode::Overloaded,
                message: "queue full".into(),
            }),
        });
        // The correlated reply body is byte-identical to the plain Query
        // reply body: only the tag, id, and kind byte differ in front.
        let plain = Response::Query(reply.clone()).encode();
        let tagged = Response::QueryFor {
            request_id: 7,
            reply: Ok(reply),
        }
        .encode();
        assert_eq!(&tagged[2 + 8 + 1..], &plain[2..]);
        // A kind byte other than 0/1 is a decode error, not a panic.
        let mut bad = tagged.clone();
        bad[2 + 8] = 9;
        assert!(Response::decode(&bad).is_err());
    }

    #[test]
    fn overload_stats_tail_roundtrips_with_tenants() {
        let reply = StatsReply {
            generation: 2,
            indexed: 10,
            health_label: "hnsw".into(),
            accepted: 100,
            shed: 9,
            expired: 0,
            degraded_answers: 4,
            queue_capacity: 32,
            cache_hits: 1,
            cache_misses: 2,
            live: None,
            last_reload_micros: None,
            replication: None,
            dedup_hits: None,
            overload: Some(OverloadStats {
                brownout_rung: 2,
                brownout_steps_down: 5,
                brownout_steps_up: 3,
                brownout_answers: 40,
                bucket_shed: 6,
                displaced: 2,
                codel_shed: 1,
                tenants: vec![
                    TenantStats {
                        name: "default".into(),
                        accepted: 60,
                        shed: 1,
                        p50_micros: 900,
                        p99_micros: 4_000,
                    },
                    TenantStats {
                        name: "hot".into(),
                        accepted: 40,
                        shed: 8,
                        p50_micros: 1_200,
                        p99_micros: 9_000,
                    },
                ],
            }),
        };
        roundtrip_response(Response::Stats(reply));
    }

    #[test]
    fn hostile_tenant_count_in_overload_tail_is_rejected_before_allocation() {
        let mut enc = Response::Stats(StatsReply {
            generation: 1,
            indexed: 1,
            health_label: "hnsw".into(),
            accepted: 0,
            shed: 0,
            expired: 0,
            degraded_answers: 0,
            queue_capacity: 1,
            cache_hits: 0,
            cache_misses: 0,
            live: None,
            last_reload_micros: None,
            replication: None,
            overload: None,
            dedup_hits: None,
        })
        .encode();
        // Replace the absent fourth tail with a hostile one: present, all
        // counters zero, then a tenant count far beyond the bytes present
        // (the absent fifth tail behind it goes too).
        enc.pop();
        enc.pop();
        enc.push(1);
        enc.push(0); // rung
        enc.extend_from_slice(&[0u8; 48]); // six u64 counters
        enc.extend_from_slice(&u32::MAX.to_le_bytes()); // hostile count
        assert!(Response::decode(&enc).is_err());
    }

    #[test]
    fn truncated_payload_is_a_decode_error_not_a_panic() {
        let enc = Request::Query {
            name: "n".into(),
            cells: vec!["x".into()],
            k: 3,
            tenant: None,
            request_id: None,
        }
        .encode();
        for cut in 0..enc.len() {
            assert!(Request::decode(&enc[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn hostile_cell_count_is_rejected_before_allocation() {
        // A query frame claiming u32::MAX cells but carrying none.
        let mut w = Writer::new();
        w.put_u8(PROTOCOL_VERSION);
        w.put_u8(REQ_QUERY);
        w.put_str("q");
        w.put_u32_le(5);
        w.put_u32_le(u32::MAX); // hostile count
        let err = Request::decode(&w.into_vec()).unwrap_err();
        let msg = err.to_string();
        assert!(!msg.is_empty());
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut enc = Request::Ping.encode();
        enc.push(0xAB);
        assert!(Request::decode(&enc).is_err());
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut enc = Request::Ping.encode();
        enc[0] = 99;
        assert!(Request::decode(&enc).is_err());
    }

    #[test]
    fn frame_roundtrip_and_eof_semantics() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cur = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cur, MAX_FRAME).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut cur, MAX_FRAME).unwrap().unwrap(), b"");
        // Clean EOF at a frame boundary.
        assert!(read_frame(&mut cur, MAX_FRAME).unwrap().is_none());
    }

    #[test]
    fn eof_inside_header_or_body_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        // Truncate inside the body.
        let mut cur = std::io::Cursor::new(&buf[..6]);
        assert!(matches!(
            read_frame(&mut cur, MAX_FRAME),
            Err(FrameError::Io(_))
        ));
        // Truncate inside the header.
        let mut cur = std::io::Cursor::new(&buf[..2]);
        assert!(matches!(
            read_frame(&mut cur, MAX_FRAME),
            Err(FrameError::Io(_))
        ));
    }

    #[test]
    fn oversized_header_fails_without_reading_the_body() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        // No body bytes at all: the cap check must fire first.
        let mut cur = std::io::Cursor::new(buf);
        match read_frame(&mut cur, 1024) {
            Err(FrameError::TooLarge { announced, cap }) => {
                assert_eq!(announced, u32::MAX as usize);
                assert_eq!(cap, 1024);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }
}
