//! Chaos suite for generation-pull snapshot sync (DESIGN.md §15).
//!
//! The invariant under every injected failure — a source dying at any
//! chunk boundary, torn or forged chunks, garbage frame metadata, a
//! replica process killed at any local-write boundary: the replica's
//! *served* files are always either the old complete artifact or the new
//! complete artifact, never a torn hybrid, and a restarted sync always
//! converges to byte-identical copies of the primary's files.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use deepjoin_serve::sync::{FetchedChunk, LocalSyncSource, SyncExport, SyncSource, Syncer};
use deepjoin_serve::SyncItem;
use deepjoin_store::{crc32, ArtifactIo, KillPointIo, MemIo, SharedIo};

/// What a hostile or dying source does to one fetched chunk.
#[derive(Clone, Copy, PartialEq)]
enum Tamper {
    /// Flip one data bit, leaving the chunk CRC stale (torn transfer).
    FlipBit,
    /// Answer for a different offset than was asked.
    WrongOffset,
    /// Claim a different total file length.
    WrongTotalLen,
    /// Send an empty chunk mid-file.
    Empty,
    /// Substitute different bytes with a *recomputed* (valid) chunk CRC —
    /// only the whole-file gate can catch this one.
    ForgedChunk,
}

/// A [`SyncSource`] that proxies a [`LocalSyncSource`] while injecting
/// failure: dying after a set number of fetches, or tampering with the
/// first chunk it serves.
struct ChaosSource<'a> {
    inner: LocalSyncSource<'a>,
    /// Fetches remaining before the source "dies" (every later call errors).
    die_after: Option<usize>,
    /// Applied to the next chunk, once.
    tamper: Option<Tamper>,
    fetches: usize,
    bytes_delivered: u64,
}

impl<'a> ChaosSource<'a> {
    fn new(export: &'a SyncExport, generation: u32) -> Self {
        ChaosSource {
            inner: LocalSyncSource { export, generation },
            die_after: None,
            tamper: None,
            fetches: 0,
            bytes_delivered: 0,
        }
    }
}

impl SyncSource for ChaosSource<'_> {
    fn poll(&mut self) -> Result<(u32, u64, Vec<SyncItem>), String> {
        if self.die_after == Some(0) {
            return Err("source died".to_string());
        }
        self.inner.poll()
    }

    fn fetch(&mut self, item: &str, offset: u64, len: u32) -> Result<FetchedChunk, String> {
        if let Some(left) = self.die_after {
            if self.fetches >= left {
                return Err("source died mid-transfer".to_string());
            }
        }
        self.fetches += 1;
        let mut chunk = self.inner.fetch(item, offset, len)?;
        match self.tamper.take() {
            Some(Tamper::FlipBit) => chunk.data[0] ^= 0x40,
            Some(Tamper::WrongOffset) => chunk.offset = chunk.offset.wrapping_add(7),
            Some(Tamper::WrongTotalLen) => chunk.total_len += 1,
            Some(Tamper::Empty) => chunk.data.clear(),
            Some(Tamper::ForgedChunk) => {
                chunk.data = vec![0x5A; chunk.data.len()];
                chunk.crc = crc32(&chunk.data);
            }
            None => {}
        }
        self.bytes_delivered += chunk.data.len() as u64;
        Ok(chunk)
    }
}

const CHUNK: u32 = 512;

fn model_bytes(version: u8) -> Vec<u8> {
    (0..10_000u32)
        .map(|i| ((i % 251) as u8).wrapping_add(version))
        .collect()
}

/// A primary export over its own in-memory store: the model artifact plus
/// a small live lake (one sealed segment + manifest).
fn primary() -> (SharedIo, SyncExport) {
    let io: SharedIo = Arc::new(MemIo::new());
    io.write_atomic(Path::new("p/model.djar"), &model_bytes(1)).unwrap();
    io.write_atomic(Path::new("p/live/seg-000001.djar"), b"segment-one-bytes").unwrap();
    io.write_atomic(Path::new("p/live/manifest.djar"), b"manifest-v1").unwrap();
    let export = SyncExport::new(
        io.clone(),
        PathBuf::from("p/model.djar"),
        Some(PathBuf::from("p/live")),
    );
    (io, export)
}

fn replica_syncer(io: SharedIo) -> Syncer {
    Syncer::new(
        io,
        PathBuf::from("r/model.djar"),
        Some(PathBuf::from("r/live")),
        CHUNK,
    )
}

fn assert_converged(replica_io: &SharedIo, primary_io: &SharedIo) {
    for (replica, primary) in [
        ("r/model.djar", "p/model.djar"),
        ("r/live/seg-000001.djar", "p/live/seg-000001.djar"),
        ("r/live/manifest.djar", "p/live/manifest.djar"),
    ] {
        assert_eq!(
            replica_io.read(Path::new(replica)).unwrap(),
            primary_io.read(Path::new(primary)).unwrap(),
            "{replica} must be byte-identical to {primary}"
        );
    }
}

#[test]
fn source_death_at_every_chunk_boundary_resumes_without_refetching() {
    let (primary_io, export) = primary();
    // Clean run to learn the fetch count and total transfer size.
    let (total_fetches, total_bytes) = {
        let scratch: SharedIo = Arc::new(MemIo::new());
        let mut source = ChaosSource::new(&export, 1);
        replica_syncer(scratch).sync_once(&mut source).unwrap();
        (source.fetches, source.bytes_delivered)
    };
    assert!(total_fetches > 5, "test wants several chunk boundaries, got {total_fetches}");

    for die_after in 0..total_fetches {
        let replica_io: SharedIo = Arc::new(MemIo::new());
        // First attempt: the source dies after `die_after` fetches.
        let mut dying = ChaosSource::new(&export, 1);
        dying.die_after = Some(die_after);
        let err = replica_syncer(replica_io.clone())
            .sync_once(&mut dying)
            .expect_err("a dead source must surface an error");
        assert!(err.contains("died"), "boundary {die_after}: {err}");

        // Restarted replica (fresh Syncer = fresh process, cold caches):
        // it must converge, fetching only what the first attempt did not
        // durably land — the partial-resume proof.
        let mut healthy = ChaosSource::new(&export, 1);
        let report = replica_syncer(replica_io.clone())
            .sync_once(&mut healthy)
            .unwrap_or_else(|e| panic!("boundary {die_after}: resume failed: {e}"));
        assert_eq!(
            report.bytes_transferred,
            total_bytes - dying.bytes_delivered,
            "boundary {die_after}: resume must not refetch delivered chunks"
        );
        assert_converged(&replica_io, &primary_io);
    }
}

#[test]
fn torn_and_garbage_chunks_never_touch_the_served_files() {
    let (primary_io, export) = primary();
    let replica_io: SharedIo = Arc::new(MemIo::new());
    // Install v1 cleanly, then move the primary to v2.
    replica_syncer(replica_io.clone())
        .sync_once(&mut ChaosSource::new(&export, 1))
        .unwrap();
    let v1 = model_bytes(1);
    primary_io.write_atomic(Path::new("p/model.djar"), &model_bytes(2)).unwrap();
    export.invalidate();

    for tamper in [
        Tamper::FlipBit,
        Tamper::WrongOffset,
        Tamper::WrongTotalLen,
        Tamper::Empty,
        Tamper::ForgedChunk,
    ] {
        let mut hostile = ChaosSource::new(&export, 2);
        hostile.tamper = Some(tamper);
        let err = replica_syncer(replica_io.clone())
            .sync_once(&mut hostile)
            .expect_err("a tampered transfer must fail");
        // The forged chunk passes its per-chunk CRC; only the whole-file
        // gate stops it, and the gate must discard the poisoned partial.
        if tamper == Tamper::ForgedChunk {
            assert!(err.contains("CRC gate"), "forged chunk: {err}");
            assert!(
                !replica_io.exists(Path::new("r/model.djar.sync")),
                "a partial that failed the gate must not survive to poison a resume"
            );
        }
        assert_eq!(
            replica_io.read(Path::new("r/model.djar")).unwrap(),
            v1,
            "served model must still be complete v1 after a tampered transfer"
        );
    }

    // A clean source converges to v2 afterwards.
    replica_syncer(replica_io.clone())
        .sync_once(&mut ChaosSource::new(&export, 2))
        .unwrap();
    assert_converged(&replica_io, &primary_io);
}

#[test]
fn a_stale_partial_from_a_different_generation_is_discarded_not_resumed() {
    // Model-only export so bytes_transferred is exactly the model bytes.
    let primary_io: SharedIo = Arc::new(MemIo::new());
    primary_io.write_atomic(Path::new("p/model.djar"), &model_bytes(1)).unwrap();
    let export = SyncExport::new(primary_io.clone(), PathBuf::from("p/model.djar"), None);
    let replica_io: SharedIo = Arc::new(MemIo::new());
    let syncer_for = |io: SharedIo| Syncer::new(io, PathBuf::from("r/model.djar"), None, CHUNK);
    // Die mid-model-transfer of v1, leaving a genuine partial + sidecar.
    let mut dying = ChaosSource::new(&export, 1);
    dying.die_after = Some(3);
    let _ = syncer_for(replica_io.clone()).sync_once(&mut dying);
    assert!(replica_io.exists(Path::new("r/model.djar.sync")));

    // The primary retrains while the replica is down: same name, new bytes.
    primary_io.write_atomic(Path::new("p/model.djar"), &model_bytes(9)).unwrap();
    export.invalidate();

    // The restarted replica must notice the sidecar no longer matches the
    // polled (len, crc) and start the model transfer from scratch —
    // resuming v1 bytes into a v2 file would fail the gate every round.
    let mut healthy = ChaosSource::new(&export, 2);
    let report = syncer_for(replica_io.clone()).sync_once(&mut healthy).unwrap();
    assert_eq!(
        report.bytes_transferred,
        model_bytes(9).len() as u64,
        "the stale partial must be discarded, not resumed"
    );
    assert_eq!(
        replica_io.read(Path::new("r/model.djar")).unwrap(),
        model_bytes(9)
    );
}

#[test]
fn replica_killed_at_every_local_write_boundary_serves_old_or_new_never_torn() {
    // Model-only export (the per-file invariant is what matters here).
    let primary_io: SharedIo = Arc::new(MemIo::new());
    let v1 = model_bytes(1);
    let v2 = model_bytes(2);
    primary_io.write_atomic(Path::new("p/model.djar"), &v2).unwrap();
    let export = SyncExport::new(primary_io.clone(), PathBuf::from("p/model.djar"), None);

    let seeded = |kill_at: Option<usize>| {
        let inner = MemIo::new();
        inner.write_atomic(Path::new("r/model.djar"), &v1).unwrap();
        Arc::new(KillPointIo::new(inner, kill_at))
    };
    let sync_v2 = |io: SharedIo| {
        Syncer::new(io, PathBuf::from("r/model.djar"), None, CHUNK)
            .sync_once(&mut ChaosSource::new(&export, 2))
    };

    // Counting run: same seeded state, no kill.
    let total = {
        let kio = seeded(None);
        sync_v2(kio.clone()).unwrap();
        kio.points_used()
    };
    assert!(total > 10, "expected many kill points, got {total}");

    for kill in 0..total {
        let kio = seeded(Some(kill));
        let res = sync_v2(kio.clone());
        assert!(kio.crashed(), "kill point {kill} must fire");
        // Kills landing in the best-effort cleanup (partial/meta removal
        // after the install) legitimately report success — the new model
        // is already durable; everything earlier must abort.
        if res.is_ok() {
            assert_eq!(
                kio.inner().read(Path::new("r/model.djar")).unwrap(),
                v2,
                "kill point {kill}: a sync reporting success must have installed v2"
            );
        }

        // The served path on the surviving "disk" is old or new, complete.
        let served = kio.inner().read(Path::new("r/model.djar")).unwrap();
        assert!(
            served == v1 || served == v2,
            "kill point {kill}: served model is a torn hybrid ({} bytes)",
            served.len()
        );

        // Restart: copy the surviving disk into a fresh store and re-sync;
        // it must converge to v2 regardless of where the crash landed.
        let revived = MemIo::new();
        for name in ["r/model.djar", "r/model.djar.sync", "r/model.djar.sync.meta"] {
            if let Ok(bytes) = kio.inner().read(Path::new(name)) {
                revived.write_atomic(Path::new(name), &bytes).unwrap();
            }
        }
        let revived: SharedIo = Arc::new(revived);
        sync_v2(revived.clone()).unwrap_or_else(|e| panic!("kill point {kill}: recovery failed: {e}"));
        assert_eq!(revived.read(Path::new("r/model.djar")).unwrap(), v2);
        assert!(
            !revived.exists(Path::new("r/model.djar.sync")),
            "kill point {kill}: partial must be cleaned up after install"
        );
    }
}
