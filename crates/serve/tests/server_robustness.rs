//! In-process robustness tests: a toy [`ServeModel`] with controllable
//! latency, panics, and per-generation answers exercises every layer of the
//! ladder — admission control, deadlines, panic recovery, protocol fault
//! handling, hot reload consistency, and graceful drain — deterministically
//! and without artifacts on disk.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use deepjoin_ann::Budget;
use deepjoin_serve::{
    BrownoutConfig, Client, ClientError, ErrorCode, Health, Hit, LoadedSnapshot, QueryOutcome,
    Response, RetryPolicy, ServeModel, Server, ServerConfig, ServerHandle,
};

/// A model whose answers encode its own identity: hit ids start at
/// `gen * 1000`, so any response mixing two generations is detectable.
struct ToyModel {
    generation_tag: u32,
    n: usize,
    delay: Duration,
    health: Health,
}

impl ServeModel for ToyModel {
    fn indexed_len(&self) -> usize {
        self.n
    }

    fn health(&self) -> Health {
        self.health.clone()
    }

    fn query(&self, _cells: &[String], name: &str, k: usize, budget: &Budget) -> QueryOutcome {
        if name == "panic-now" {
            panic!("injected model failure");
        }
        // Sleep in small slices so the deadline is honored cooperatively,
        // like the real budgeted index search.
        let start = Instant::now();
        let mut complete = true;
        while start.elapsed() < self.delay {
            if budget.expired() {
                complete = false;
                break;
            }
            thread::sleep(Duration::from_millis(5));
        }
        let take = if complete { k.min(self.n) } else { k.min(1) };
        QueryOutcome {
            hits: (0..take)
                .map(|i| Hit {
                    id: self.generation_tag * 1000 + i as u32,
                    score: i as f32,
                    label: format!("gen{}.col{i}", self.generation_tag),
                })
                .collect(),
            complete,
            visited: take,
            via_fallback: false,
        }
    }
}

/// Loader producing a fresh generation tag on every (re)load.
fn toy_loader(delay: Duration, n: usize) -> deepjoin_serve::Loader {
    let loads = AtomicU32::new(0);
    Box::new(move |_path| {
        let tag = loads.fetch_add(1, Ordering::SeqCst) + 1;
        Ok(LoadedSnapshot {
            model: Box::new(ToyModel {
                generation_tag: tag,
                n,
                delay,
                health: Health::Hnsw,
            }),
            warnings: vec![],
        })
    })
}

/// Start a server on a free port in a background thread; returns the
/// address, a control handle, and the join handle.
fn spawn_server(
    config: ServerConfig,
    loader: deepjoin_serve::Loader,
) -> (String, ServerHandle, thread::JoinHandle<()>) {
    let server = Server::start(config, loader).expect("server start");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = server.handle();
    let join = thread::spawn(move || {
        server.run().expect("server run");
    });
    (addr, handle, join)
}

fn stop(handle: &ServerHandle, join: thread::JoinHandle<()>) {
    handle.shutdown();
    join.join().expect("server thread");
}

fn cells(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("cell{i}")).collect()
}

#[test]
fn ping_query_stats_roundtrip() {
    let (addr, handle, join) = spawn_server(
        ServerConfig::default(),
        toy_loader(Duration::ZERO, 10),
    );
    let mut c = Client::connect(&addr).unwrap();
    c.ping().unwrap();
    let reply = c.query("orders.id", &cells(3), 5).unwrap();
    assert_eq!(reply.generation, 1);
    assert_eq!(reply.hits.len(), 5);
    assert_eq!(reply.hits[0].id, 1000);
    assert_eq!(reply.hits[0].label, "gen1.col0");
    assert!(reply.complete);
    assert!(!reply.degraded);
    assert_eq!(reply.indexed, 10);
    let stats = c.stats().unwrap();
    assert_eq!(stats.accepted, 1);
    assert_eq!(stats.shed, 0);
    stop(&handle, join);
}

#[test]
fn k_is_clamped_to_index_size() {
    let (addr, handle, join) = spawn_server(
        ServerConfig::default(),
        toy_loader(Duration::ZERO, 4),
    );
    let mut c = Client::connect(&addr).unwrap();
    let reply = c.query("q", &cells(2), 999).unwrap();
    assert_eq!(reply.hits.len(), 4, "k must clamp to the index size");
    // k = 0 is rejected before admission, not clamped.
    match c.query("q", &cells(2), 0) {
        Err(ClientError::Server(e)) => assert_eq!(e.code, ErrorCode::BadRequest),
        other => panic!("expected BadRequest for k=0, got {other:?}"),
    }
    stop(&handle, join);
}

#[test]
fn overload_sheds_with_structured_error() {
    // One worker, one queue slot, slow model: concurrent clients must see
    // at least one Overloaded shed and at least one success — and nobody
    // gets a connection reset.
    let (addr, handle, join) = spawn_server(
        ServerConfig {
            workers: 1,
            max_inflight: 1,
            ..ServerConfig::default()
        },
        toy_loader(Duration::from_millis(150), 10),
    );
    let shed = Arc::new(AtomicU32::new(0));
    let ok = Arc::new(AtomicU32::new(0));
    let mut threads = Vec::new();
    for _ in 0..8 {
        let addr = addr.clone();
        let shed = shed.clone();
        let ok = ok.clone();
        threads.push(thread::spawn(move || {
            let mut c = Client::connect(&addr).unwrap();
            match c.query("q", &["x".to_string()], 3) {
                Ok(_) => {
                    ok.fetch_add(1, Ordering::SeqCst);
                }
                Err(ClientError::Server(e)) if e.code == ErrorCode::Overloaded => {
                    shed.fetch_add(1, Ordering::SeqCst);
                }
                Err(other) => panic!("expected success or Overloaded, got {other}"),
            }
        }));
    }
    for t in threads {
        t.join().unwrap();
    }
    assert!(ok.load(Ordering::SeqCst) >= 1, "someone must be served");
    assert!(
        shed.load(Ordering::SeqCst) >= 1,
        "an 8-way burst against capacity 2 must shed"
    );
    let mut c = Client::connect(&addr).unwrap();
    let stats = c.stats().unwrap();
    assert_eq!(stats.shed as u32, shed.load(Ordering::SeqCst));
    stop(&handle, join);
}

#[test]
fn deadline_produces_partial_degraded_answer_within_bound() {
    let deadline = Duration::from_millis(60);
    let (addr, handle, join) = spawn_server(
        ServerConfig {
            deadline: Some(deadline),
            ..ServerConfig::default()
        },
        toy_loader(Duration::from_secs(30), 10), // model would take 30 s
    );
    let mut c = Client::connect(&addr).unwrap();
    let start = Instant::now();
    let reply = c.query("slow", &cells(2), 5).unwrap();
    let took = start.elapsed();
    assert!(!reply.complete, "deadline must cut the query short");
    assert!(reply.degraded, "partial answers must be flagged degraded");
    assert!(
        took < deadline * 4 + Duration::from_millis(250),
        "answer took {took:?}, far past the {deadline:?} deadline"
    );
    stop(&handle, join);
}

#[test]
fn model_panic_returns_internal_error_and_worker_survives() {
    let (addr, handle, join) = spawn_server(
        ServerConfig {
            workers: 1, // the one worker must survive the panic
            ..ServerConfig::default()
        },
        toy_loader(Duration::ZERO, 5),
    );
    let mut c = Client::connect(&addr).unwrap();
    match c.query("panic-now", &cells(1), 3) {
        Err(ClientError::Server(e)) => assert_eq!(e.code, ErrorCode::Internal),
        other => panic!("expected Internal, got {other:?}"),
    }
    // Same single worker, next query: still alive.
    let reply = c.query("fine", &cells(1), 3).unwrap();
    assert_eq!(reply.hits.len(), 3);
    stop(&handle, join);
}

#[test]
fn reload_during_queries_never_tears_a_snapshot() {
    // Hammer queries from several threads while reloading continuously.
    // Every response must be internally consistent: hit ids and labels
    // must all belong to the generation the response claims.
    let (addr, handle, join) = spawn_server(
        ServerConfig {
            workers: 4,
            ..ServerConfig::default()
        },
        toy_loader(Duration::from_millis(2), 10),
    );
    let stop_flag = Arc::new(AtomicU32::new(0));
    let mut threads = Vec::new();
    for _ in 0..4 {
        let addr = addr.clone();
        let stop_flag = stop_flag.clone();
        threads.push(thread::spawn(move || {
            let mut c = Client::connect(&addr).unwrap();
            let mut checked = 0u32;
            while stop_flag.load(Ordering::SeqCst) == 0 {
                let reply = match c.query("q", &["x".to_string()], 5) {
                    Ok(r) => r,
                    // A drain racing the loop end is fine.
                    Err(ClientError::Server(e)) if e.code == ErrorCode::Unavailable => break,
                    Err(other) => panic!("query failed: {other}"),
                };
                // The toy model tags every hit with its generation; the
                // reply's generation field is the server snapshot's. The
                // loader bumps both in lockstep, so any mix is a torn read.
                let tag = reply.hits[0].id / 1000;
                for h in &reply.hits {
                    assert_eq!(h.id / 1000, tag, "hits from two snapshots in one reply");
                    assert!(
                        h.label.starts_with(&format!("gen{tag}.")),
                        "label {} does not match generation {tag}",
                        h.label
                    );
                }
                assert_eq!(
                    reply.generation, tag,
                    "reply claims generation {} but hits came from {tag}",
                    reply.generation
                );
                checked += 1;
            }
            assert!(checked > 0, "thread never completed a query");
        }));
    }
    let mut reloader = Client::connect(&addr).unwrap();
    let mut last_gen = 1;
    for _ in 0..25 {
        let (generation, _warnings) = reloader.reload(None).unwrap();
        assert!(generation > last_gen);
        last_gen = generation;
        thread::sleep(Duration::from_millis(5));
    }
    stop_flag.store(1, Ordering::SeqCst);
    for t in threads {
        t.join().unwrap();
    }
    stop(&handle, join);
}

// ---- protocol fault injection: the server must answer with a structured
// ---- error or time the peer out; it must never panic, and it must keep
// ---- serving well-formed clients afterwards.

fn assert_still_serving(addr: &str) {
    let mut c = Client::connect(addr).expect("connect after fault");
    c.ping().expect("ping after fault");
}

fn read_one_frame(stream: &mut TcpStream) -> Option<Vec<u8>> {
    let mut header = [0u8; 4];
    stream.read_exact(&mut header).ok()?;
    let len = u32::from_le_bytes(header) as usize;
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload).ok()?;
    Some(payload)
}

#[test]
fn garbage_bytes_get_a_structured_bad_request() {
    let (addr, handle, join) = spawn_server(
        ServerConfig::default(),
        toy_loader(Duration::ZERO, 5),
    );
    let mut raw = TcpStream::connect(&addr).unwrap();
    // A well-framed payload of garbage.
    let garbage = [0xDE, 0xAD, 0xBE, 0xEF, 0x42];
    raw.write_all(&(garbage.len() as u32).to_le_bytes()).unwrap();
    raw.write_all(&garbage).unwrap();
    let payload = read_one_frame(&mut raw).expect("server must answer, not reset");
    match Response::decode(&payload).unwrap() {
        Response::Error(e) => assert_eq!(e.code, ErrorCode::BadRequest),
        other => panic!("expected BadRequest, got {other:?}"),
    }
    assert_still_serving(&addr);
    stop(&handle, join);
}

#[test]
fn oversized_frame_header_is_rejected_before_body() {
    let (addr, handle, join) = spawn_server(
        ServerConfig {
            max_frame: 1024,
            ..ServerConfig::default()
        },
        toy_loader(Duration::ZERO, 5),
    );
    let mut raw = TcpStream::connect(&addr).unwrap();
    // Header claims 512 MiB; no body follows. The server must reject from
    // the header alone.
    raw.write_all(&(512u32 << 20).to_le_bytes()).unwrap();
    let payload = read_one_frame(&mut raw).expect("server must answer, not reset");
    match Response::decode(&payload).unwrap() {
        Response::Error(e) => assert_eq!(e.code, ErrorCode::FrameTooLarge),
        other => panic!("expected FrameTooLarge, got {other:?}"),
    }
    assert_still_serving(&addr);
    stop(&handle, join);
}

#[test]
fn truncated_frame_then_close_does_not_leak_a_worker() {
    let (addr, handle, join) = spawn_server(
        ServerConfig::default(),
        toy_loader(Duration::ZERO, 5),
    );
    {
        let mut raw = TcpStream::connect(&addr).unwrap();
        // Announce 100 bytes, send 3, slam the connection.
        raw.write_all(&100u32.to_le_bytes()).unwrap();
        raw.write_all(&[1, 2, 3]).unwrap();
    } // dropped: EOF mid-frame on the server side
    assert_still_serving(&addr);
    stop(&handle, join);
}

#[test]
fn stalling_client_is_timed_out_not_waited_on_forever() {
    let (addr, handle, join) = spawn_server(
        ServerConfig {
            read_timeout: Duration::from_millis(400),
            ..ServerConfig::default()
        },
        toy_loader(Duration::ZERO, 5),
    );
    let mut raw = TcpStream::connect(&addr).unwrap();
    // Announce a frame, send half the header's promise, then stall.
    raw.write_all(&16u32.to_le_bytes()).unwrap();
    raw.write_all(&[0u8; 4]).unwrap();
    let start = Instant::now();
    let payload = read_one_frame(&mut raw).expect("stall must end in a structured error");
    let took = start.elapsed();
    match Response::decode(&payload).unwrap() {
        Response::Error(e) => assert_eq!(e.code, ErrorCode::BadRequest),
        other => panic!("expected BadRequest timeout, got {other:?}"),
    }
    assert!(
        took >= Duration::from_millis(300),
        "timed out suspiciously fast: {took:?}"
    );
    assert!(
        took < Duration::from_secs(5),
        "stall held the connection too long: {took:?}"
    );
    assert_still_serving(&addr);
    stop(&handle, join);
}

#[test]
fn shutdown_request_drains_and_run_returns() {
    let (addr, handle, join) = spawn_server(
        ServerConfig::default(),
        toy_loader(Duration::from_millis(20), 5),
    );
    // Park one query in flight, then ask for shutdown from another
    // connection; the in-flight query must still be answered.
    let addr2 = addr.clone();
    let inflight = thread::spawn(move || {
        let mut c = Client::connect(&addr2).unwrap();
        c.query("q", &["x".to_string()], 2)
    });
    thread::sleep(Duration::from_millis(5));
    let mut c = Client::connect(&addr).unwrap();
    c.shutdown().unwrap();
    let reply = inflight.join().unwrap();
    assert!(
        reply.is_ok(),
        "in-flight query must be answered during drain: {reply:?}"
    );
    join.join().expect("run() must return after drain");
    drop(handle);
}

// ---- overload layer: per-tenant admission, fair queueing, brownout.

#[test]
fn token_bucket_sheds_a_flooding_tenant_but_not_a_fresh_one() {
    let (addr, handle, join) = spawn_server(
        ServerConfig {
            tenant_rate: Some(1.0), // 1 query/s refill
            tenant_burst: 2.0,      // 2 queries of burst headroom
            ..ServerConfig::default()
        },
        toy_loader(Duration::ZERO, 5),
    );
    let mut flood = Client::connect(&addr).unwrap();
    flood.set_tenant(Some("flood"));
    let mut ok = 0u32;
    let mut shed = 0u32;
    for _ in 0..6 {
        match flood.query("q", &cells(1), 2) {
            Ok(_) => ok += 1,
            Err(ClientError::Server(e)) if e.code == ErrorCode::Overloaded => {
                assert!(
                    e.message.contains("rate"),
                    "bucket shed must name the cause, got: {}",
                    e.message
                );
                shed += 1;
            }
            Err(other) => panic!("expected success or Overloaded, got {other}"),
        }
    }
    assert_eq!(ok, 2, "burst capacity admits exactly two back-to-back queries");
    assert_eq!(shed, 4, "everything past the burst is shed");
    // A different tenant has its own bucket: not collateral damage.
    let mut quiet = Client::connect(&addr).unwrap();
    quiet.set_tenant(Some("quiet"));
    quiet.query("q", &cells(1), 2).expect("fresh tenant must be admitted");
    let stats = quiet.stats().unwrap();
    let overload = stats.overload.expect("new server always reports the overload tail");
    assert_eq!(overload.bucket_shed, 4);
    let flood_row = overload
        .tenants
        .iter()
        .find(|t| t.name == "flood")
        .expect("flood tenant tracked");
    assert_eq!(flood_row.accepted, 2);
    assert_eq!(flood_row.shed, 4);
    stop(&handle, join);
}

#[test]
fn a_hot_tenant_cannot_starve_a_light_tenant_at_capacity() {
    // One slow worker and a short queue: the hog keeps the queue full the
    // whole time. Fair admission must still serve every one of the light
    // tenant's (retried) queries, displacing the hog's own backlog instead.
    let (addr, handle, join) = spawn_server(
        ServerConfig {
            workers: 1,
            max_inflight: 4,
            ..ServerConfig::default()
        },
        toy_loader(Duration::from_millis(25), 5),
    );
    let stop_flag = Arc::new(AtomicU32::new(0));
    let mut hogs = Vec::new();
    for _ in 0..6 {
        let addr = addr.clone();
        let stop_flag = stop_flag.clone();
        hogs.push(thread::spawn(move || {
            let mut c = Client::connect(&addr).unwrap();
            c.set_tenant(Some("hog"));
            while stop_flag.load(Ordering::SeqCst) == 0 {
                match c.query("q", &cells(1), 2) {
                    Ok(_) => {}
                    Err(ClientError::Server(e)) if e.code == ErrorCode::Overloaded => {}
                    Err(ClientError::Server(e)) if e.code == ErrorCode::Unavailable => break,
                    Err(other) => panic!("hog hit {other}"),
                }
            }
        }));
    }
    thread::sleep(Duration::from_millis(50)); // let the hogs saturate
    let mut quiet = Client::connect(&addr).unwrap();
    quiet.set_tenant(Some("quiet"));
    let policy = RetryPolicy {
        max_attempts: 10,
        base_delay: Duration::from_millis(10),
        max_delay: Duration::from_millis(80),
        jitter_seed: 11,
    };
    for i in 0..5 {
        quiet
            .query_with_retry("q", &cells(1), 2, &policy)
            .unwrap_or_else(|e| panic!("light tenant starved on query {i}: {e}"));
    }
    stop_flag.store(1, Ordering::SeqCst);
    for h in hogs {
        h.join().unwrap();
    }
    let stats = quiet.stats().unwrap();
    let overload = stats.overload.expect("overload tail");
    let quiet_row = overload
        .tenants
        .iter()
        .find(|t| t.name == "quiet")
        .expect("quiet tenant tracked");
    assert_eq!(quiet_row.accepted, 5, "every light-tenant query must land");
    assert!(
        quiet_row.p99_micros > 0,
        "per-tenant latency must be recorded"
    );
    stop(&handle, join);
}

#[test]
fn sustained_queue_delay_steps_brownout_down_and_flags_answers() {
    let (addr, handle, join) = spawn_server(
        ServerConfig {
            workers: 1,
            max_inflight: 16,
            brownout: Some(BrownoutConfig {
                target: Duration::from_millis(5),
                window: Duration::from_millis(20),
            }),
            ..ServerConfig::default()
        },
        toy_loader(Duration::from_millis(30), 5),
    );
    // Sustained overload: enough concurrent clients that jobs always queue
    // well past the 5 ms sojourn target.
    let browned = Arc::new(AtomicU32::new(0));
    let mut threads = Vec::new();
    for _ in 0..6 {
        let addr = addr.clone();
        let browned = browned.clone();
        threads.push(thread::spawn(move || {
            let mut c = Client::connect(&addr).unwrap();
            for _ in 0..4 {
                match c.query("q", &cells(1), 2) {
                    Ok(reply) => {
                        if reply.health_label.contains("(brownout-") {
                            assert!(
                                reply.degraded,
                                "browned-out answers must be flagged degraded"
                            );
                            browned.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                    Err(ClientError::Server(e)) if e.code == ErrorCode::Overloaded => {}
                    Err(other) => panic!("expected answer or Overloaded, got {other}"),
                }
            }
        }));
    }
    for t in threads {
        t.join().unwrap();
    }
    assert!(
        browned.load(Ordering::SeqCst) >= 1,
        "sustained sojourn over target must step the effort ladder down"
    );
    let mut c = Client::connect(&addr).unwrap();
    let overload = c.stats().unwrap().overload.expect("overload tail");
    assert!(
        overload.brownout_steps_down >= 1,
        "controller must record the step down"
    );
    assert!(overload.brownout_answers >= 1);
    stop(&handle, join);
}

#[test]
fn degraded_health_is_mirrored_into_responses() {
    let loader: deepjoin_serve::Loader = Box::new(|_| {
        Ok(LoadedSnapshot {
            model: Box::new(ToyModel {
                generation_tag: 1,
                n: 5,
                delay: Duration::ZERO,
                health: Health::DegradedFlat {
                    reason: "HNSW checksum mismatch".to_string(),
                },
            }),
            warnings: vec!["index degraded".to_string()],
        })
    });
    let (addr, handle, join) = spawn_server(ServerConfig::default(), loader);
    let mut c = Client::connect(&addr).unwrap();
    let reply = c.query("q", &cells(1), 3).unwrap();
    assert!(reply.degraded, "degraded index must flag every answer");
    assert_eq!(reply.health_code, 1);
    assert!(reply.health_label.contains("checksum"));
    assert!(reply.complete, "degraded is about the index, not the scan");
    stop(&handle, join);
}
