//! Pipelined serving end-to-end: multi-query windows over one connection,
//! out-of-order correlation, wave formation on the server, and wire
//! compatibility in both directions (an old single-query client against
//! the new server, and the new pipelined client against an emulated old
//! server that predates request ids).

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use deepjoin_ann::Budget;
use deepjoin_serve::{
    Client, ClientError, ErrorCode, Health, Hit, LoadedSnapshot, QueryOutcome, QuerySpec, Request,
    Response, ServeModel, Server, ServerConfig, ServerHandle, WaveQuery, WireError,
};

/// A deterministic model whose answer encodes the query name, so replies
/// filed to the wrong request id are detectable. Tracks the largest wave
/// it was asked to answer.
struct EchoModel {
    n: usize,
    delay: Duration,
    max_wave: Arc<AtomicUsize>,
}

fn echo_outcome(name: &str, k: usize, n: usize) -> QueryOutcome {
    // Hit id = hash of the name, stable per query text.
    let tag: u32 = name.bytes().fold(7u32, |h, b| h.wrapping_mul(31).wrapping_add(b as u32));
    QueryOutcome {
        hits: (0..k.min(n))
            .map(|i| Hit {
                id: tag.wrapping_add(i as u32),
                score: i as f32,
                label: format!("{name}#{i}"),
            })
            .collect(),
        complete: true,
        visited: k,
        via_fallback: false,
    }
}

impl ServeModel for EchoModel {
    fn indexed_len(&self) -> usize {
        self.n
    }

    fn health(&self) -> Health {
        Health::Hnsw
    }

    fn query(&self, _cells: &[String], name: &str, k: usize, _budget: &Budget) -> QueryOutcome {
        if !self.delay.is_zero() {
            thread::sleep(self.delay);
        }
        echo_outcome(name, k, self.n)
    }

    fn query_batch(&self, wave: &[WaveQuery<'_>], _budget: &Budget) -> Vec<QueryOutcome> {
        self.max_wave.fetch_max(wave.len(), Ordering::SeqCst);
        if !self.delay.is_zero() {
            thread::sleep(self.delay);
        }
        wave.iter().map(|q| echo_outcome(q.name, q.k, self.n)).collect()
    }
}

fn echo_server(
    config: ServerConfig,
    delay: Duration,
) -> (String, ServerHandle, thread::JoinHandle<()>, Arc<AtomicUsize>) {
    let max_wave = Arc::new(AtomicUsize::new(0));
    let loader: deepjoin_serve::Loader = {
        let max_wave = max_wave.clone();
        Box::new(move |_path| {
            Ok(LoadedSnapshot {
                model: Box::new(EchoModel {
                    n: 64,
                    delay,
                    max_wave: max_wave.clone(),
                }),
                warnings: vec![],
            })
        })
    };
    let server = Server::start(config, loader).expect("server start");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = server.handle();
    let join = thread::spawn(move || server.run().expect("server run"));
    (addr, handle, join, max_wave)
}

fn stop(handle: &ServerHandle, join: thread::JoinHandle<()>) {
    handle.shutdown();
    join.join().expect("server thread");
}

#[test]
fn pipelined_queries_return_in_input_order_and_match_single_queries() {
    let (addr, handle, join, max_wave) = echo_server(
        ServerConfig {
            workers: 2,
            wave_width: 8,
            ..ServerConfig::default()
        },
        Duration::from_millis(2),
    );
    let cells = vec!["x".to_string(), "y".to_string()];
    let names: &[&str] = &["alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"];

    // Reference answers over the plain single-query path.
    let mut reference = Vec::new();
    {
        let mut c = Client::connect(&addr).unwrap();
        for name in names {
            reference.push(c.query(name, &cells, 5).unwrap());
        }
    }

    let mut c = Client::connect(&addr).unwrap();
    let queries: Vec<QuerySpec<'_>> = names
        .iter()
        .map(|name| QuerySpec { name, cells: &cells, k: 5 })
        .collect();
    let results = c.query_pipelined(&queries, 8).unwrap();
    assert_eq!(results.len(), names.len());
    for (i, r) in results.iter().enumerate() {
        let reply = r.as_ref().expect("pipelined member answered");
        assert_eq!(
            reply.hits, reference[i].hits,
            "pipelined answer for '{}' must be bit-identical to the single-query answer",
            names[i]
        );
    }
    // With 8 queries racing 2 workers, at least one wave must have packed
    // more than one member.
    assert!(
        max_wave.load(Ordering::SeqCst) > 1,
        "pipelined window never formed a multi-member wave"
    );
    stop(&handle, join);
}

#[test]
fn batch_frame_round_trips_and_respects_per_member_k() {
    let (addr, handle, join, _max_wave) = echo_server(
        ServerConfig {
            workers: 1,
            wave_width: 16,
            ..ServerConfig::default()
        },
        Duration::ZERO,
    );
    let cells = vec!["x".to_string()];
    let mut c = Client::connect(&addr).unwrap();
    let queries = vec![
        QuerySpec { name: "one", cells: &cells, k: 1 },
        QuerySpec { name: "two", cells: &cells, k: 2 },
        QuerySpec { name: "three", cells: &cells, k: 3 },
    ];
    let results = c.query_batch(&queries).unwrap();
    assert_eq!(results.len(), 3);
    for (i, r) in results.iter().enumerate() {
        let reply = r.as_ref().expect("batch member answered");
        assert_eq!(reply.hits.len(), i + 1, "member {i} must honor its own k");
        assert!(reply.hits[0].label.starts_with(queries[i].name));
    }
    // A k=0 member is shed individually with a structured error; the rest
    // of the batch still answers.
    let queries = vec![
        QuerySpec { name: "good", cells: &cells, k: 2 },
        QuerySpec { name: "bad", cells: &cells, k: 0 },
    ];
    let results = c.query_batch(&queries).unwrap();
    assert!(results[0].is_ok(), "healthy member must not be collateral damage");
    match &results[1] {
        Err(e) => assert_eq!(e.code, ErrorCode::BadRequest),
        other => panic!("k=0 member must shed with BadRequest, got {other:?}"),
    }
    stop(&handle, join);
}

// ---- wire compatibility: old client against the new server. The "old
// ---- client" is raw frames exactly as a PR 9 client encodes them (the
// ---- protocol tests pin that `request_id: None` is byte-identical).

fn read_one_frame(stream: &mut TcpStream) -> Option<Vec<u8>> {
    let mut header = [0u8; 4];
    stream.read_exact(&mut header).ok()?;
    let len = u32::from_le_bytes(header) as usize;
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload).ok()?;
    Some(payload)
}

#[test]
fn old_single_query_client_sees_unchanged_response_frames() {
    let (addr, handle, join, _max_wave) = echo_server(
        ServerConfig {
            wave_width: 8,
            ..ServerConfig::default()
        },
        Duration::ZERO,
    );
    let mut raw = TcpStream::connect(&addr).unwrap();

    // Ping: response must stay tag RESP_PONG (1).
    let ping = Request::Ping.encode();
    raw.write_all(&(ping.len() as u32).to_le_bytes()).unwrap();
    raw.write_all(&ping).unwrap();
    let payload = read_one_frame(&mut raw).expect("pong");
    assert_eq!(payload[1], 1, "Ping response tag changed");

    // An untagged query (no tenant tail, no id tail — the PR 9 image) must
    // come back as a plain tag-2 Query response, never a QueryFor.
    let query = Request::Query {
        name: "compat".to_string(),
        cells: vec!["x".to_string()],
        k: 3,
        tenant: None,
        request_id: None,
    }
    .encode();
    raw.write_all(&(query.len() as u32).to_le_bytes()).unwrap();
    raw.write_all(&query).unwrap();
    let payload = read_one_frame(&mut raw).expect("query answer");
    assert_eq!(payload[1], 2, "untagged queries must keep the plain Query response tag");
    match Response::decode(&payload).unwrap() {
        Response::Query(reply) => assert_eq!(reply.hits.len(), 3),
        other => panic!("expected plain Query reply, got {other:?}"),
    }

    // Stats: tag 5, and the new dedup tail is optional — an old decoder
    // that stops before it still parses (pinned by protocol tests); here we
    // check the frame decodes and carries the tail for new decoders.
    let stats = Request::Stats.encode();
    raw.write_all(&(stats.len() as u32).to_le_bytes()).unwrap();
    raw.write_all(&stats).unwrap();
    let payload = read_one_frame(&mut raw).expect("stats answer");
    assert_eq!(payload[1], 5, "Stats response tag changed");
    match Response::decode(&payload).unwrap() {
        Response::Stats(s) => assert_eq!(s.dedup_hits, Some(0)),
        other => panic!("expected Stats, got {other:?}"),
    }
    stop(&handle, join);
}

#[test]
fn interleaved_old_and_pipelined_traffic_on_one_connection() {
    // A connection may mix untagged queries (answered inline, in order)
    // with tagged pipelined windows. The untagged reply must arrive as a
    // plain Query frame even while tagged work is in flight elsewhere.
    let (addr, handle, join, _max_wave) = echo_server(
        ServerConfig {
            workers: 2,
            wave_width: 8,
            ..ServerConfig::default()
        },
        Duration::from_millis(1),
    );
    let cells = vec!["x".to_string()];
    let mut tagged = Client::connect(&addr).unwrap();
    let mut plain = Client::connect(&addr).unwrap();
    let t = thread::spawn(move || {
        let cells = vec!["x".to_string()];
        let queries: Vec<QuerySpec<'_>> = (0..16)
            .map(|_| QuerySpec { name: "pipelined", cells: &cells, k: 4 })
            .collect();
        tagged.query_pipelined(&queries, 16).unwrap()
    });
    for _ in 0..8 {
        let reply = plain.query("interleaved", &cells, 4).unwrap();
        assert_eq!(reply.hits.len(), 4);
    }
    let results = t.join().unwrap();
    assert!(results.iter().all(|r| r.is_ok()));
    stop(&handle, join);
}

// ---- wire compatibility: new client against an emulated OLD server.

/// An "old" (PR 9) server: decodes queries while ignoring any tail bytes
/// past the cells it knows about, and answers strictly in order with plain
/// `Response::Query` frames. Rejects the unknown batch tag (10) the way
/// the old request decoder does: a structured BadRequest.
fn spawn_old_server() -> (String, Arc<AtomicU32>, thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let served = Arc::new(AtomicU32::new(0));
    let served2 = served.clone();
    let join = thread::spawn(move || {
        // One connection is enough for these tests.
        let (mut s, _) = listener.accept().unwrap();
        while let Some(payload) = read_one_frame(&mut s) {
            // Old decoder: version byte, tag byte.
            let resp = if payload.len() < 2 || payload[0] != 1 {
                Response::Error(WireError {
                    code: ErrorCode::BadRequest,
                    message: "bad version".to_string(),
                })
            } else if payload[1] == 2 {
                // A query. The old decoder reads name/cells/k and ignores
                // everything after — including the request-id tail. Answer
                // in order with a plain reply. Reuse the real decoder
                // (which tolerates the tails the same way) to pull the
                // fields out, then drop the id on the floor like old code.
                match Request::decode(&payload) {
                    Ok(Request::Query { name, k, .. }) => {
                        served2.fetch_add(1, Ordering::SeqCst);
                        Response::Query(deepjoin_serve::QueryReply {
                            generation: 1,
                            indexed: 64,
                            health_code: 0,
                            health_label: "hnsw".to_string(),
                            complete: true,
                            degraded: false,
                            via_fallback: false,
                            visited: k as u64,
                            hits: echo_outcome(&name, k as usize, 64)
                                .hits
                                .into_iter()
                                .map(|h| deepjoin_serve::WireHit {
                                    id: h.id,
                                    score: h.score,
                                    label: h.label,
                                })
                                .collect(),
                        })
                    }
                    _ => Response::Error(WireError {
                        code: ErrorCode::BadRequest,
                        message: "malformed query".to_string(),
                    }),
                }
            } else {
                // Unknown tag (e.g. the batch frame): old servers reject.
                Response::Error(WireError {
                    code: ErrorCode::BadRequest,
                    message: format!("unknown request tag {}", payload[1]),
                })
            };
            let enc = resp.encode();
            if s.write_all(&(enc.len() as u32).to_le_bytes()).is_err()
                || s.write_all(&enc).is_err()
            {
                break;
            }
        }
    });
    (addr, served, join)
}

#[test]
fn pipelined_client_against_an_old_server_falls_back_to_in_order() {
    let (addr, served, join) = spawn_old_server();
    let cells = vec!["x".to_string()];
    let mut c = Client::connect(&addr).unwrap();
    let queries = vec![
        QuerySpec { name: "first", cells: &cells, k: 2 },
        QuerySpec { name: "second", cells: &cells, k: 3 },
        QuerySpec { name: "third", cells: &cells, k: 4 },
    ];
    let results = c.query_pipelined(&queries, 3).unwrap();
    assert_eq!(served.load(Ordering::SeqCst), 3);
    for (i, r) in results.iter().enumerate() {
        let reply = r.as_ref().expect("old server answered in order");
        assert_eq!(reply.hits.len(), i + 2, "answer {i} mis-correlated");
        assert!(reply.hits[0].label.starts_with(queries[i].name));
    }
    drop(c);
    join.join().unwrap();
}

#[test]
fn batch_against_an_old_server_surfaces_the_rejection_for_fallback() {
    let (addr, _served, join) = spawn_old_server();
    let cells = vec!["x".to_string()];
    let mut c = Client::connect(&addr).unwrap();
    let queries = vec![QuerySpec { name: "q", cells: &cells, k: 2 }];
    match c.query_batch(&queries) {
        Err(ClientError::Server(e)) => {
            assert_eq!(e.code, ErrorCode::BadRequest);
            // The caller can now fall back to query_pipelined on the same
            // connection (tagged queries ride the compatible image).
        }
        other => panic!("old server must reject the batch frame whole, got {other:?}"),
    }
    let results = c.query_pipelined(&queries, 1).unwrap();
    assert!(results[0].is_ok(), "fallback after batch rejection must work");
    drop(c);
    join.join().unwrap();
}

// ---- out-of-order correlation: shuffled answers, duplicate ids, orphans.

/// A server that reads `expect` tagged queries off one connection, then
/// answers them as QueryFor frames in the order given by `order` (indices
/// into arrival order), with optional duplicate/orphan injections.
fn scripted_server(
    expect: usize,
    reorder: impl Fn(Vec<u64>) -> Vec<u64> + Send + 'static,
) -> (String, thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let join = thread::spawn(move || {
        let (mut s, _) = listener.accept().unwrap();
        let mut ids = Vec::new();
        let mut names = std::collections::HashMap::new();
        while ids.len() < expect {
            let payload = match read_one_frame(&mut s) {
                Some(p) => p,
                None => return,
            };
            match Request::decode(&payload) {
                Ok(Request::Query { name, request_id: Some(id), k, .. }) => {
                    ids.push(id);
                    names.insert(id, (name, k));
                }
                other => panic!("scripted server expected tagged queries, got {other:?}"),
            }
        }
        for id in reorder(ids) {
            let resp = match names.get(&id) {
                Some((name, k)) => Response::QueryFor {
                    request_id: id,
                    reply: Ok(deepjoin_serve::QueryReply {
                        generation: 1,
                        indexed: 64,
                        health_code: 0,
                        health_label: "hnsw".to_string(),
                        complete: true,
                        degraded: false,
                        via_fallback: false,
                        visited: *k as u64,
                        hits: echo_outcome(name, *k as usize, 64)
                            .hits
                            .into_iter()
                            .map(|h| deepjoin_serve::WireHit {
                                id: h.id,
                                score: h.score,
                                label: h.label,
                            })
                            .collect(),
                    }),
                },
                // An id the client never sent: an orphan.
                None => Response::QueryFor {
                    request_id: id,
                    reply: Ok(deepjoin_serve::QueryReply {
                        generation: 1,
                        indexed: 0,
                        health_code: 0,
                        health_label: "hnsw".to_string(),
                        complete: true,
                        degraded: false,
                        via_fallback: false,
                        visited: 0,
                        hits: vec![],
                    }),
                },
            };
            let enc = resp.encode();
            if s.write_all(&(enc.len() as u32).to_le_bytes()).is_err()
                || s.write_all(&enc).is_err()
            {
                return;
            }
        }
        // Hold the connection open until the client hangs up, so the
        // client never sees an EOF race while draining.
        let mut buf = [0u8; 64];
        while matches!(s.read(&mut buf), Ok(n) if n > 0) {}
    });
    (addr, join)
}

#[test]
fn shuffled_responses_correlate_back_to_input_order() {
    // Deterministic shuffle: reverse, then swap the middle pair.
    let (addr, join) = scripted_server(6, |mut ids| {
        ids.reverse();
        ids.swap(2, 3);
        ids
    });
    let cells = vec!["x".to_string()];
    let mut c = Client::connect(&addr).unwrap();
    let names = ["a", "b", "c", "d", "e", "f"];
    let queries: Vec<QuerySpec<'_>> = names
        .iter()
        .enumerate()
        .map(|(i, name)| QuerySpec { name, cells: &cells, k: (i + 1) as u32 })
        .collect();
    let results = c.query_pipelined(&queries, 6).unwrap();
    for (i, r) in results.iter().enumerate() {
        let reply = r.as_ref().expect("answered");
        assert_eq!(reply.hits.len(), i + 1, "result {i} mis-correlated after shuffle");
        assert!(reply.hits[0].label.starts_with(names[i]));
    }
    drop(c);
    join.join().unwrap();
}

#[test]
fn duplicate_response_ids_are_rejected_as_protocol_errors() {
    let (addr, join) = scripted_server(2, |ids| vec![ids[0], ids[0], ids[1]]);
    let cells = vec!["x".to_string()];
    let mut c = Client::connect(&addr).unwrap();
    let queries = vec![
        QuerySpec { name: "a", cells: &cells, k: 1 },
        QuerySpec { name: "b", cells: &cells, k: 2 },
    ];
    match c.query_pipelined(&queries, 2) {
        Err(ClientError::Protocol(msg)) => {
            assert!(msg.contains("duplicate"), "error must name the duplicate, got: {msg}");
        }
        other => panic!("duplicate id must be a protocol error, got {other:?}"),
    }
    drop(c);
    join.join().unwrap();
}

#[test]
fn orphan_response_ids_are_rejected_as_protocol_errors() {
    let (addr, join) = scripted_server(2, |ids| vec![9999, ids[0], ids[1]]);
    let cells = vec!["x".to_string()];
    let mut c = Client::connect(&addr).unwrap();
    let queries = vec![
        QuerySpec { name: "a", cells: &cells, k: 1 },
        QuerySpec { name: "b", cells: &cells, k: 2 },
    ];
    match c.query_pipelined(&queries, 2) {
        Err(ClientError::Protocol(msg)) => {
            assert!(
                msg.contains("unknown") || msg.contains("9999"),
                "error must flag the orphan id, got: {msg}"
            );
        }
        other => panic!("orphan id must be a protocol error, got {other:?}"),
    }
    drop(c);
    join.join().unwrap();
}

#[test]
fn correlation_fuzz_many_windows_survive_xorshift_shuffles() {
    // Deterministic pseudo-random shuffles over several window sizes: the
    // correlator must file every answer correctly regardless of order.
    for (round, &n) in [1usize, 2, 3, 5, 8, 13, 21].iter().enumerate() {
        let seed = 0x9E3779B97F4A7C15u64.wrapping_mul(round as u64 + 1);
        let (addr, join) = scripted_server(n, move |mut ids| {
            // Fisher–Yates with an xorshift64 stream.
            let mut s = seed | 1;
            for i in (1..ids.len()).rev() {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                let j = (s % (i as u64 + 1)) as usize;
                ids.swap(i, j);
            }
            ids
        });
        let cells = vec!["x".to_string()];
        let names: Vec<String> = (0..n).map(|i| format!("q{i}")).collect();
        let mut c = Client::connect(&addr).unwrap();
        let queries: Vec<QuerySpec<'_>> = names
            .iter()
            .enumerate()
            .map(|(i, name)| QuerySpec { name, cells: &cells, k: (i % 7 + 1) as u32 })
            .collect();
        let results = c.query_pipelined(&queries, n).unwrap();
        for (i, r) in results.iter().enumerate() {
            let reply = r.as_ref().expect("answered");
            assert!(
                reply.hits[0].label.starts_with(&names[i]),
                "window {n} result {i} mis-correlated"
            );
        }
        drop(c);
        join.join().unwrap();
    }
}
