//! Small dense-vector helpers shared by the embedding code.
//!
//! These are deliberately plain `&[f32]` functions (no vector newtype): the
//! perf guide favours slices for flexibility, and every consumer (`ann`,
//! `nn`, `pexeso`) stores its own contiguous buffers. The heavy reductions
//! (`dot`, `l2_sq`, `cosine`, `add_scaled`) are re-exports of — or thin
//! wrappers over — the runtime-dispatched kernels in `deepjoin-simd`, so
//! every crate shares one set of vetted implementations.

pub use deepjoin_simd::{dot, l2_sq};

/// Euclidean distance.
#[inline]
pub fn l2(a: &[f32], b: &[f32]) -> f32 {
    l2_sq(a, b).sqrt()
}

/// Euclidean norm of `a`.
#[inline]
pub fn norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

/// Normalize `a` to unit length in place. Zero vectors are left unchanged.
#[inline]
pub fn normalize(a: &mut [f32]) {
    let n = norm(a);
    if n > 0.0 {
        let inv = 1.0 / n;
        for x in a {
            *x *= inv;
        }
    }
}

/// Cosine similarity; 0 when either vector is zero.
#[inline]
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    deepjoin_simd::cosine(a, b)
}

/// `acc += x` element-wise.
#[inline]
pub fn add_assign(acc: &mut [f32], x: &[f32]) {
    debug_assert_eq!(acc.len(), x.len());
    for (a, v) in acc.iter_mut().zip(x) {
        *a += v;
    }
}

/// `acc += s * x` element-wise.
#[inline]
pub fn add_scaled(acc: &mut [f32], x: &[f32], s: f32) {
    deepjoin_simd::axpy(acc, x, s);
}

/// `a *= s` element-wise.
#[inline]
pub fn scale(a: &mut [f32], s: f32) {
    for x in a {
        *x *= s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
    }

    #[test]
    fn l2_matches_manual() {
        assert!((l2(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-6);
        assert_eq!(l2_sq(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn normalize_unit_length() {
        let mut v = vec![3.0, 4.0];
        normalize(&mut v);
        assert!((norm(&v) - 1.0).abs() < 1e-6);
        let mut z = vec![0.0, 0.0];
        normalize(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn cosine_properties() {
        assert!((cosine(&[1.0, 0.0], &[2.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!(cosine(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
        assert_eq!(cosine(&[0.0], &[1.0]), 0.0);
    }

    #[test]
    fn accumulators() {
        let mut acc = vec![1.0, 1.0];
        add_assign(&mut acc, &[1.0, 2.0]);
        assert_eq!(acc, vec![2.0, 3.0]);
        add_scaled(&mut acc, &[1.0, 1.0], 0.5);
        assert_eq!(acc, vec![2.5, 3.5]);
        scale(&mut acc, 2.0);
        assert_eq!(acc, vec![5.0, 7.0]);
    }

    #[test]
    fn cosine_euclidean_relation_on_unit_vectors() {
        // For unit vectors: d² = 2 - 2·cos.
        let mut a = vec![0.6, 0.8, 0.0];
        let mut b = vec![0.0, 0.6, 0.8];
        normalize(&mut a);
        normalize(&mut b);
        let d2 = l2_sq(&a, &b);
        let c = cosine(&a, &b);
        assert!((d2 - (2.0 - 2.0 * c)).abs() < 1e-5);
    }
}
