//! # deepjoin-embed
//!
//! Static embedding substrate for the DeepJoin reproduction:
//!
//! * [`ngram`] — character-n-gram hashing embeddings, the deterministic
//!   stand-in for fastText (used for the semantic-join vector space 𝒱, the
//!   `fastText` baseline, and the MLP baseline's features);
//! * [`sgns`] — from-scratch skip-gram-negative-sampling pre-training of
//!   token embeddings over the lake's own text (the stand-in for the PLMs'
//!   pre-training, and the un-fine-tuned `BERT`/`MPNet` baselines);
//! * [`cell_space`] — the metric space of Definition 2.2 plus the reference
//!   brute-force semantic-joinability evaluator of Definition 2.3;
//! * [`vector`] — small dense-vector helpers.

#![warn(missing_docs)]

pub mod cell_space;
pub mod ngram;
pub mod sgns;
pub mod vector;

pub use cell_space::{CellSpace, ColumnVectors, EmbeddedRepository};
pub use ngram::{NgramConfig, NgramEmbedder};
pub use sgns::{train_sgns, SgnsConfig, SgnsState, SgnsTrainer, TokenEmbeddings};
