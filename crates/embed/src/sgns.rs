//! Skip-gram with negative sampling (word2vec) — the "pre-training" pass.
//!
//! The paper's PLMs arrive pre-trained on large text corpora; DeepJoin then
//! fine-tunes them. Our encoder substitutes that pre-training with an SGNS
//! pass over the (synthetic) lake's own text: column contents, titles and
//! context sentences. The resulting token embeddings initialize the encoder
//! (`deepjoin-nn`), and — averaged without fine-tuning — they also serve as
//! the paper's un-fine-tuned `BERT`/`MPNet` baselines.
//!
//! Classic SGNS (Mikolov et al. 2013): for each (center, context) pair drawn
//! from a sliding window, maximize `log σ(u_c · v_w)` plus `k` negative terms
//! `log σ(−u_n · v_w)` with negatives drawn from the unigram distribution
//! raised to the 3/4 power.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use deepjoin_lake::tokenizer::{TokenId, Vocabulary};

/// SGNS hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SgnsConfig {
    /// Embedding dimensionality.
    pub dim: usize,
    /// Sliding-window radius.
    pub window: usize,
    /// Negatives per positive pair.
    pub negatives: usize,
    /// Epochs over the corpus.
    pub epochs: usize,
    /// Initial learning rate (linearly decayed to 10%).
    pub lr: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SgnsConfig {
    fn default() -> Self {
        Self {
            dim: 64,
            window: 4,
            negatives: 5,
            epochs: 3,
            lr: 0.05,
            seed: 0x30D5,
        }
    }
}

/// Trained token embeddings: a dense `vocab x dim` table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TokenEmbeddings {
    /// Dimensionality.
    pub dim: usize,
    /// Row-major table, one row per token id.
    pub table: Vec<f32>,
}

impl TokenEmbeddings {
    /// Vector for token `t`. Panics on out-of-range ids.
    #[inline]
    pub fn get(&self, t: TokenId) -> &[f32] {
        let i = t as usize * self.dim;
        &self.table[i..i + self.dim]
    }

    /// Number of rows.
    pub fn vocab_size(&self) -> usize {
        self.table.len() / self.dim
    }

    /// Average the embeddings of `tokens`, L2-normalized. Returns a zero
    /// vector when `tokens` is empty.
    pub fn mean_pool(&self, tokens: &[TokenId]) -> Vec<f32> {
        let mut acc = vec![0f32; self.dim];
        if tokens.is_empty() {
            return acc;
        }
        for &t in tokens {
            crate::vector::add_assign(&mut acc, self.get(t));
        }
        crate::vector::scale(&mut acc, 1.0 / tokens.len() as f32);
        crate::vector::normalize(&mut acc);
        acc
    }
}

#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Negative-sampling table: cumulative unigram^0.75 distribution.
struct NegativeTable {
    cdf: Vec<f64>,
}

impl NegativeTable {
    fn build(vocab: &Vocabulary) -> Self {
        let n = vocab.len();
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for id in 0..n as TokenId {
            // Smooth zero counts (e.g. <unk>) so every id is reachable.
            let w = (vocab.count(id) as f64 + 1.0).powf(0.75);
            acc += w;
            cdf.push(acc);
        }
        for v in &mut cdf {
            *v /= acc;
        }
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Self { cdf }
    }

    #[inline]
    fn sample(&self, rng: &mut StdRng) -> TokenId {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1) as TokenId
    }
}

/// A snapshot of an [`SgnsTrainer`] at an epoch boundary, sufficient to
/// resume pre-training bit-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct SgnsState {
    /// Completed epochs.
    pub epoch: u64,
    /// Sliding-window steps taken (drives the LR decay schedule).
    pub step: u64,
    /// Input (center-word) vectors, `vocab * dim`.
    pub input: Vec<f32>,
    /// Output (context-word) vectors, `vocab * dim`.
    pub output: Vec<f32>,
}

/// Epoch-stepwise SGNS trainer.
///
/// Instead of one `StdRng` mutated across the whole run, every epoch draws
/// from its own counter-based stream `stream_rng(seed, 1 + epoch)` (stream 0
/// initializes the tables). Together with [`SgnsState`] snapshots at epoch
/// boundaries this makes pre-training resumable: restore the state, run the
/// remaining epochs, and the final table is bit-identical to an
/// uninterrupted run.
pub struct SgnsTrainer {
    config: SgnsConfig,
    input: Vec<f32>,
    output: Vec<f32>,
    negatives: NegativeTable,
    total_steps: usize,
    step: usize,
    epoch: usize,
}

impl SgnsTrainer {
    /// Initialize tables (input uniform in `[-0.5/dim, 0.5/dim]`, the
    /// word2vec convention; output zero) from RNG stream 0.
    pub fn new(vocab: &Vocabulary, sentences: &[Vec<TokenId>], config: SgnsConfig) -> Self {
        let vocab_size = vocab.len();
        let dim = config.dim;
        let mut rng = rand::stream::stream_rng(config.seed, 0);
        let input: Vec<f32> = (0..vocab_size * dim)
            .map(|_| (rng.gen::<f32>() - 0.5) / dim as f32)
            .collect();
        let output = vec![0.0f32; vocab_size * dim];
        let total_steps =
            (config.epochs * sentences.iter().map(Vec::len).sum::<usize>()).max(1);
        Self {
            config,
            input,
            output,
            negatives: NegativeTable::build(vocab),
            total_steps,
            step: 0,
            epoch: 0,
        }
    }

    /// Completed epochs.
    pub fn epoch(&self) -> usize {
        self.epoch
    }

    /// Whether all configured epochs have run.
    pub fn is_done(&self) -> bool {
        self.epoch >= self.config.epochs
    }

    /// Snapshot the mutable state at the current epoch boundary.
    pub fn state(&self) -> SgnsState {
        SgnsState {
            epoch: self.epoch as u64,
            step: self.step as u64,
            input: self.input.clone(),
            output: self.output.clone(),
        }
    }

    /// Restore a trainer from an epoch-boundary snapshot. Rejects tables
    /// whose shape does not match the vocabulary and config.
    pub fn restore(
        vocab: &Vocabulary,
        sentences: &[Vec<TokenId>],
        config: SgnsConfig,
        state: SgnsState,
    ) -> Result<Self, &'static str> {
        let n = vocab.len() * config.dim;
        if state.input.len() != n || state.output.len() != n {
            return Err("SGNS table shape does not match the vocabulary");
        }
        if state.epoch as usize > config.epochs {
            return Err("SGNS snapshot is ahead of the configured epochs");
        }
        let total_steps =
            (config.epochs * sentences.iter().map(Vec::len).sum::<usize>()).max(1);
        Ok(Self {
            config,
            input: state.input,
            output: state.output,
            negatives: NegativeTable::build(vocab),
            total_steps,
            step: state.step as usize,
            epoch: state.epoch as usize,
        })
    }

    /// Run one epoch over `sentences` with this epoch's RNG stream. No-op
    /// once [`Self::is_done`].
    pub fn run_epoch(&mut self, sentences: &[Vec<TokenId>]) {
        if self.is_done() {
            return;
        }
        let dim = self.config.dim;
        let mut rng = rand::stream::stream_rng(self.config.seed, 1 + self.epoch as u64);
        let mut grad = vec![0f32; dim];
        for sent in sentences {
            for (pos, &center) in sent.iter().enumerate() {
                self.step += 1;
                let progress = self.step as f32 / self.total_steps as f32;
                let lr = self.config.lr * (1.0 - 0.9 * progress.min(1.0));
                let win = 1 + (rng.gen::<u64>() as usize % self.config.window);
                let lo = pos.saturating_sub(win);
                let hi = (pos + win + 1).min(sent.len());
                for ctx_pos in lo..hi {
                    if ctx_pos == pos {
                        continue;
                    }
                    let context = sent[ctx_pos];
                    let v = center as usize * dim;
                    grad.iter_mut().for_each(|g| *g = 0.0);
                    // Positive pair + k negatives.
                    for neg in 0..=self.config.negatives {
                        let (target, label) = if neg == 0 {
                            (context, 1.0f32)
                        } else {
                            (self.negatives.sample(&mut rng), 0.0f32)
                        };
                        if neg > 0 && target == context {
                            continue;
                        }
                        let u = target as usize * dim;
                        let score: f32 = self.input[v..v + dim]
                            .iter()
                            .zip(&self.output[u..u + dim])
                            .map(|(a, b)| a * b)
                            .sum();
                        let g = (label - sigmoid(score)) * lr;
                        for i in 0..dim {
                            grad[i] += g * self.output[u + i];
                            self.output[u + i] += g * self.input[v + i];
                        }
                    }
                    for i in 0..dim {
                        self.input[v + i] += grad[i];
                    }
                }
            }
        }
        self.epoch += 1;
    }

    /// Consume the trainer, yielding the input table as the embeddings.
    pub fn finish(self) -> TokenEmbeddings {
        TokenEmbeddings {
            dim: self.config.dim,
            table: self.input,
        }
    }
}

/// Train SGNS embeddings over `sentences` (sequences of token ids) — the
/// closed-loop convenience wrapper over [`SgnsTrainer`].
pub fn train_sgns(
    vocab: &Vocabulary,
    sentences: &[Vec<TokenId>],
    config: SgnsConfig,
) -> TokenEmbeddings {
    let mut trainer = SgnsTrainer::new(vocab, sentences, config);
    while !trainer.is_done() {
        trainer.run_epoch(sentences);
    }
    trainer.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::cosine;

    /// A corpus where `a`/`b` always co-occur and `x`/`y` always co-occur.
    fn toy() -> (Vocabulary, Vec<Vec<TokenId>>) {
        let mut texts = Vec::new();
        for _ in 0..200 {
            texts.push("apple banana apple banana apple banana");
            texts.push("xylo yonder xylo yonder xylo yonder");
        }
        let vocab = Vocabulary::build(texts.iter().copied(), 1);
        let sentences = texts.iter().map(|t| vocab.encode(t)).collect();
        (vocab, sentences)
    }

    #[test]
    fn cooccurring_tokens_become_similar() {
        let (vocab, sentences) = toy();
        let emb = train_sgns(
            &vocab,
            &sentences,
            SgnsConfig {
                dim: 16,
                epochs: 5,
                ..SgnsConfig::default()
            },
        );
        let a = emb.get(vocab.id("apple"));
        let b = emb.get(vocab.id("banana"));
        let x = emb.get(vocab.id("xylo"));
        let sim_ab = cosine(a, b);
        let sim_ax = cosine(a, x);
        assert!(
            sim_ab > sim_ax,
            "co-occurring pair should be closer: ab={sim_ab:.3} ax={sim_ax:.3}"
        );
    }

    #[test]
    fn deterministic_training() {
        let (vocab, sentences) = toy();
        let cfg = SgnsConfig {
            dim: 8,
            epochs: 1,
            ..SgnsConfig::default()
        };
        let e1 = train_sgns(&vocab, &sentences, cfg);
        let e2 = train_sgns(&vocab, &sentences, cfg);
        assert_eq!(e1.table, e2.table);
    }

    #[test]
    fn mean_pool_normalizes() {
        let (vocab, sentences) = toy();
        let emb = train_sgns(
            &vocab,
            &sentences,
            SgnsConfig {
                dim: 8,
                epochs: 1,
                ..SgnsConfig::default()
            },
        );
        let ids = vocab.encode("apple banana");
        let v = emb.mean_pool(&ids);
        assert!((crate::vector::norm(&v) - 1.0).abs() < 1e-5);
        assert!(emb.mean_pool(&[]).iter().all(|&x| x == 0.0));
    }

    /// Stop after one epoch, snapshot, restore into a fresh trainer, run the
    /// rest — the final table must be bit-identical to an uninterrupted run.
    #[test]
    fn interrupted_training_resumes_bit_identically() {
        let (vocab, sentences) = toy();
        let cfg = SgnsConfig {
            dim: 8,
            epochs: 3,
            ..SgnsConfig::default()
        };
        let oracle = train_sgns(&vocab, &sentences, cfg);

        let mut first = SgnsTrainer::new(&vocab, &sentences, cfg);
        first.run_epoch(&sentences);
        let snap = first.state();
        assert_eq!(snap.epoch, 1);
        drop(first); // the "crash"

        let mut resumed =
            SgnsTrainer::restore(&vocab, &sentences, cfg, snap).expect("valid snapshot");
        while !resumed.is_done() {
            resumed.run_epoch(&sentences);
        }
        assert_eq!(resumed.finish().table, oracle.table);
    }

    #[test]
    fn restore_rejects_mismatched_tables() {
        let (vocab, sentences) = toy();
        let cfg = SgnsConfig {
            dim: 8,
            epochs: 2,
            ..SgnsConfig::default()
        };
        let trainer = SgnsTrainer::new(&vocab, &sentences, cfg);
        let mut bad = trainer.state();
        bad.input.pop();
        assert!(SgnsTrainer::restore(&vocab, &sentences, cfg, bad).is_err());
        let mut ahead = trainer.state();
        ahead.epoch = 99;
        assert!(SgnsTrainer::restore(&vocab, &sentences, cfg, ahead).is_err());
    }

    #[test]
    fn table_shape() {
        let (vocab, sentences) = toy();
        let emb = train_sgns(
            &vocab,
            &sentences,
            SgnsConfig {
                dim: 8,
                epochs: 1,
                ..SgnsConfig::default()
            },
        );
        assert_eq!(emb.vocab_size(), vocab.len());
        assert_eq!(emb.get(0).len(), 8);
    }
}
