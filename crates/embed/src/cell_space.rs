//! The metric space 𝒱 of Definition 2.2 and semantic joinability (Def 2.3).
//!
//! Cells are embedded with the n-gram embedder ([`crate::ngram`]) to unit
//! vectors; two cells *match* when their Euclidean distance is at most τ.
//! This module provides the reference (brute force) semantic-joinability
//! evaluator used to label training data and to verify PEXESO.
//!
//! Following the equi-join convention (Definition 2.1 deduplicates cells),
//! we evaluate semantic joinability over each column's **distinct** cell
//! values: `jn(Q,X) = |{q ∈ D(Q) : ∃x ∈ D(X), d(q,x) ≤ τ}| / |D(Q)|`.
//! This keeps the two join types directly comparable and makes repeated
//! values cost nothing extra.

use deepjoin_lake::column::Column;
use deepjoin_lake::joinability::{rank_and_truncate, ScoredColumn};
use deepjoin_lake::repository::Repository;

use crate::ngram::NgramEmbedder;
use crate::vector::l2_sq;

/// A column embedded into 𝒱: one unit vector per distinct cell.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnVectors {
    /// Dimensionality of the space.
    pub dim: usize,
    /// Row-major matrix: `len x dim` vectors.
    pub data: Vec<f32>,
}

impl ColumnVectors {
    /// Number of vectors.
    pub fn len(&self) -> usize {
        self.data.len().checked_div(self.dim).unwrap_or(0)
    }

    /// True when there are no vectors.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The `i`-th vector.
    #[inline]
    pub fn vector(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Iterate vectors.
    pub fn iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.dim)
    }
}

/// The cell-embedding space shared by semantic-join components.
#[derive(Debug, Clone, Copy)]
pub struct CellSpace {
    embedder: NgramEmbedder,
}

impl CellSpace {
    /// Build a space around an embedder.
    pub fn new(embedder: NgramEmbedder) -> Self {
        Self { embedder }
    }

    /// Dimensionality of 𝒱.
    pub fn dim(&self) -> usize {
        self.embedder.dim()
    }

    /// The underlying embedder.
    pub fn embedder(&self) -> &NgramEmbedder {
        &self.embedder
    }

    /// Embed one cell value.
    pub fn embed_cell(&self, cell: &str) -> Vec<f32> {
        self.embedder.embed_cell(cell)
    }

    /// Embed a column's distinct cells (first-occurrence order).
    pub fn embed_column(&self, column: &Column) -> ColumnVectors {
        let distinct = column.distinct_in_order();
        let dim = self.dim();
        let mut data = Vec::with_capacity(distinct.len() * dim);
        for cell in distinct {
            data.extend_from_slice(&self.embedder.embed_cell(cell));
        }
        ColumnVectors { dim, data }
    }

    /// `M_τ^d(v1, v2)` — vector matching under Euclidean distance
    /// (Definition 2.2).
    #[inline]
    pub fn matches(v1: &[f32], v2: &[f32], tau: f64) -> bool {
        (l2_sq(v1, v2) as f64) <= tau * tau
    }

    /// Semantic joinability from `q` to `x` (Definition 2.3), brute force:
    /// O(|q| · |x| · dim).
    pub fn semantic_joinability(q: &ColumnVectors, x: &ColumnVectors, tau: f64) -> f64 {
        if q.is_empty() {
            return 0.0;
        }
        let tau_sq = (tau * tau) as f32;
        let mut matched = 0usize;
        for qv in q.iter() {
            if x.iter().any(|xv| l2_sq(qv, xv) <= tau_sq) {
                matched += 1;
            }
        }
        matched as f64 / q.len() as f64
    }
}

/// Pre-embedded repository for repeated brute-force evaluation.
#[derive(Debug, Clone)]
pub struct EmbeddedRepository {
    /// One vector set per repository column, in id order.
    pub columns: Vec<ColumnVectors>,
}

impl EmbeddedRepository {
    /// Embed every column of `repo` under `space`.
    pub fn build(space: &CellSpace, repo: &Repository) -> Self {
        let columns = repo.columns().iter().map(|c| space.embed_column(c)).collect();
        Self { columns }
    }

    /// Exact top-k semantic-joinable columns by brute force.
    pub fn brute_force_topk(
        &self,
        query: &ColumnVectors,
        tau: f64,
        k: usize,
    ) -> Vec<ScoredColumn> {
        let scored = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, x)| ScoredColumn {
                id: deepjoin_lake::column::ColumnId(i as u32),
                score: CellSpace::semantic_joinability(query, x, tau),
            })
            .collect();
        rank_and_truncate(scored, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ngram::NgramConfig;

    fn space() -> CellSpace {
        CellSpace::new(NgramEmbedder::new(NgramConfig::default()))
    }

    fn col(cells: &[&str]) -> Column {
        Column::from_cells(cells.iter().copied())
    }

    #[test]
    fn identical_columns_fully_joinable() {
        let s = space();
        let q = s.embed_column(&col(&["paris", "tokyo", "lima"]));
        assert_eq!(CellSpace::semantic_joinability(&q, &q, 0.1), 1.0);
    }

    #[test]
    fn misspellings_match_at_loose_tau_only() {
        let s = space();
        let q = s.embed_column(&col(&["montevideo"]));
        let x = s.embed_column(&col(&["montevdeo"]));
        let jn_loose = CellSpace::semantic_joinability(&q, &x, 0.9);
        let jn_tight = CellSpace::semantic_joinability(&q, &x, 0.05);
        assert_eq!(jn_loose, 1.0);
        assert_eq!(jn_tight, 0.0);
    }

    #[test]
    fn unrelated_columns_do_not_match() {
        let s = space();
        let q = s.embed_column(&col(&["quarterly revenue"]));
        let x = s.embed_column(&col(&["zx-00412"]));
        assert_eq!(CellSpace::semantic_joinability(&q, &x, 0.9), 0.0);
    }

    #[test]
    fn joinability_monotone_in_tau() {
        let s = space();
        let q = s.embed_column(&col(&["alpha one", "beta two", "gamma three"]));
        let x = s.embed_column(&col(&["alpha one", "beta twoo", "delta nine"]));
        let mut prev = 0.0;
        for tau in [0.1, 0.3, 0.5, 0.7, 0.9, 1.2] {
            let jn = CellSpace::semantic_joinability(&q, &x, tau);
            assert!(jn >= prev, "jn must grow with tau");
            prev = jn;
        }
    }

    #[test]
    fn distinct_cells_drive_the_score() {
        let s = space();
        // Duplicates in the query shouldn't change jn (we use distinct cells).
        let q1 = s.embed_column(&col(&["paris", "paris", "tokyo"]));
        let q2 = s.embed_column(&col(&["paris", "tokyo"]));
        let x = s.embed_column(&col(&["paris"]));
        assert_eq!(
            CellSpace::semantic_joinability(&q1, &x, 0.2),
            CellSpace::semantic_joinability(&q2, &x, 0.2)
        );
    }

    #[test]
    fn brute_force_topk_ranks_by_joinability() {
        let s = space();
        let repo = Repository::from_columns(vec![
            col(&["paris", "tokyo", "lima", "oslo", "cairo"]),
            col(&["paris", "tokyo", "rome", "bonn", "kiev"]),
            col(&["zz-1", "zz-2", "zz-3", "zz-4", "zz-5"]),
        ]);
        let er = EmbeddedRepository::build(&s, &repo);
        let q = s.embed_column(&col(&["paris", "tokyo", "lima", "oslo", "cairo"]));
        let top = er.brute_force_topk(&q, 0.3, 2);
        assert_eq!(top[0].id.0, 0);
        assert_eq!(top[0].score, 1.0);
        assert_eq!(top[1].id.0, 1);
        assert!(top[1].score < 1.0 && top[1].score >= 0.4);
    }

    #[test]
    fn column_vectors_accessors() {
        let s = space();
        let cv = s.embed_column(&col(&["a1", "b2"]));
        assert_eq!(cv.len(), 2);
        assert_eq!(cv.vector(0).len(), s.dim());
        assert_eq!(cv.iter().count(), 2);
    }
}
