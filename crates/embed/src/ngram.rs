//! Character-n-gram hashing embeddings — the fastText stand-in.
//!
//! fastText represents a word as the average of embeddings of its character
//! n-grams (plus the word itself), which is what makes it robust to
//! misspellings. We reproduce exactly that construction, but derive each
//! n-gram's embedding *deterministically from its hash* instead of from a
//! trained table: component `i` of bucket `b` is a pseudo-random value in
//! `[-1, 1]` computed by hashing `(b, i)`. Averaging many n-grams gives
//! nearby strings nearby vectors (shared n-grams dominate), which is the
//! only property the paper needs from fastText (DESIGN.md §1).
//!
//! The embedding is L2-normalized, so Euclidean distance and cosine
//! similarity are monotonically related (`d² = 2 − 2·cos`).

use serde::{Deserialize, Serialize};

use deepjoin_lake::fxhash::hash_u64;

/// Configuration of the n-gram embedder.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct NgramConfig {
    /// Output dimensionality.
    pub dim: usize,
    /// Minimum n-gram length.
    pub min_n: usize,
    /// Maximum n-gram length (inclusive).
    pub max_n: usize,
    /// Number of hash buckets n-grams are mapped into.
    pub buckets: u64,
    /// Seed mixed into every hash, so two embedders with different seeds
    /// define different (incompatible) spaces.
    pub seed: u64,
}

impl Default for NgramConfig {
    fn default() -> Self {
        Self {
            dim: 64,
            min_n: 2,
            max_n: 4,
            buckets: 1 << 20,
            seed: 0x5EED,
        }
    }
}

/// The embedder. Stateless apart from its config; embedding is a pure
/// function of the input string.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct NgramEmbedder {
    config: NgramConfig,
}

impl NgramEmbedder {
    /// Create an embedder.
    pub fn new(config: NgramConfig) -> Self {
        assert!(config.dim > 0, "dim must be positive");
        assert!(
            config.min_n >= 1 && config.min_n <= config.max_n,
            "need 1 <= min_n <= max_n"
        );
        Self { config }
    }

    /// Output dimensionality.
    pub fn dim(&self) -> usize {
        self.config.dim
    }

    /// Config accessor.
    pub fn config(&self) -> &NgramConfig {
        &self.config
    }

    /// Embed a string to a unit-length vector. Empty strings map to zero.
    ///
    /// Boundary markers `<`/`>` are added (as in fastText) so prefixes and
    /// suffixes hash differently from inner substrings.
    pub fn embed(&self, text: &str) -> Vec<f32> {
        let mut acc = vec![0f32; self.config.dim];
        if text.is_empty() {
            return acc;
        }
        let mut count = 0usize;
        // fastText treats the word with boundary markers.
        let bounded: Vec<char> = std::iter::once('<')
            .chain(text.chars())
            .chain(std::iter::once('>'))
            .collect();
        for n in self.config.min_n..=self.config.max_n {
            if bounded.len() < n {
                break;
            }
            for window in bounded.windows(n) {
                let mut s = String::with_capacity(n * 2);
                s.extend(window.iter());
                let bucket =
                    (deepjoin_lake::fxhash::hash_bytes(s.as_bytes()) ^ self.config.seed)
                        % self.config.buckets;
                self.add_bucket(&mut acc, bucket);
                count += 1;
            }
        }
        if count > 0 {
            crate::vector::scale(&mut acc, 1.0 / count as f32);
            crate::vector::normalize(&mut acc);
        }
        acc
    }

    /// Embed a multi-word cell: average of per-word embeddings, normalized.
    /// This matches how fastText-based pipelines embed short phrases.
    pub fn embed_cell(&self, cell: &str) -> Vec<f32> {
        let words: Vec<&str> = cell.split_whitespace().collect();
        if words.len() <= 1 {
            return self.embed(cell);
        }
        let mut acc = vec![0f32; self.config.dim];
        for w in &words {
            let v = self.embed(w);
            crate::vector::add_assign(&mut acc, &v);
        }
        crate::vector::scale(&mut acc, 1.0 / words.len() as f32);
        crate::vector::normalize(&mut acc);
        acc
    }

    /// Add bucket `b`'s pseudo-random unit-scale pattern into `acc`.
    #[inline]
    fn add_bucket(&self, acc: &mut [f32], bucket: u64) {
        // Derive dim pseudo-random components by counter-mode hashing; two
        // rounds of fx-mixing per component are enough for our purposes.
        for (i, a) in acc.iter_mut().enumerate() {
            let h = hash_u64(bucket.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (i as u64));
            // Map the top 24 bits to [-1, 1).
            let unit = ((h >> 40) as f32) / ((1u64 << 23) as f32) - 1.0;
            *a += unit;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::{cosine, l2, norm};

    fn embedder() -> NgramEmbedder {
        NgramEmbedder::new(NgramConfig::default())
    }

    #[test]
    fn embeddings_are_unit_length() {
        let e = embedder();
        for s in ["paris", "tokyo", "a", "new york city"] {
            let v = e.embed(s);
            assert!((norm(&v) - 1.0).abs() < 1e-5, "norm of '{s}'");
        }
    }

    #[test]
    fn empty_string_is_zero() {
        let e = embedder();
        // "<>" is a 2-char sequence; min_n=3 yields no n-grams... except
        // windows of len >= 3 don't exist, so the vector must be zero.
        let v = e.embed("");
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn deterministic() {
        let e = embedder();
        assert_eq!(e.embed("granada"), e.embed("granada"));
    }

    #[test]
    fn misspelling_is_near_original() {
        let e = embedder();
        let a = e.embed("montevideo");
        let b = e.embed("montevdeo"); // deletion
        let c = e.embed("quarterly report");
        assert!(
            cosine(&a, &b) > 0.5,
            "misspelling should stay close: {}",
            cosine(&a, &b)
        );
        assert!(
            cosine(&a, &c) < 0.3,
            "unrelated strings should be far: {}",
            cosine(&a, &c)
        );
        // And in Euclidean terms (both unit): near pair << far pair.
        assert!(l2(&a, &b) < l2(&a, &c));
    }

    #[test]
    fn cell_embedding_shares_words() {
        let e = embedder();
        let a = e.embed_cell("alice bennett 12");
        let b = e.embed_cell("alice chen 300");
        let c = e.embed_cell("swift widget 950");
        assert!(cosine(&a, &b) > cosine(&a, &c));
    }

    #[test]
    fn different_seeds_give_different_spaces() {
        let e1 = NgramEmbedder::new(NgramConfig {
            seed: 1,
            ..NgramConfig::default()
        });
        let e2 = NgramEmbedder::new(NgramConfig {
            seed: 2,
            ..NgramConfig::default()
        });
        assert_ne!(e1.embed("paris"), e2.embed("paris"));
    }

    #[test]
    fn identical_strings_match_under_any_threshold() {
        let e = embedder();
        let a = e.embed_cell("fort kelso 123");
        let b = e.embed_cell("fort kelso 123");
        assert!(l2(&a, &b) < 1e-6);
    }
}
