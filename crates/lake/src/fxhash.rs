//! A small, fast, non-cryptographic hasher (the rustc `FxHash` algorithm).
//!
//! The data-lake code hashes millions of short strings and integer ids in hot
//! loops (token universes, inverted indexes, MinHash shingling). The standard
//! library's SipHash 1-3 is DoS-resistant but slow for such keys; following
//! the Rust Performance Book's guidance we provide a local FxHash
//! implementation instead of pulling in an extra dependency.
//!
//! HashDoS resistance is irrelevant here: every key is produced by our own
//! generator or derived from trusted corpus data.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant used by the Firefox/rustc Fx hash.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Hasher state. One `u64` that is rotated, xored and multiplied per word.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Mix the length in first so zero-padding of the tail cannot make
        // e.g. "" and "\0" collide.
        self.add_to_hash(bytes.len() as u64);
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            // Unwrap is fine: chunks_exact guarantees 8 bytes.
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// splitmix64 finalizer: full avalanche, so *all* output bits (including the
/// low bits used for `% buckets`) depend on all input bits. Raw Fx output
/// must not be bucketed by modulo — its multiply never propagates high-bit
/// differences downward.
#[inline]
fn finalize(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hash a byte slice in one call (used for shingling and bucketing). The
/// result is finalized and safe to reduce with `%`.
#[inline]
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    finalize(h.finish())
}

/// Hash a `u64` in one call. Finalized; safe to reduce with `%`.
#[inline]
pub fn hash_u64(x: u64) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(x);
    finalize(h.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_calls() {
        assert_eq!(hash_bytes(b"hello"), hash_bytes(b"hello"));
        assert_eq!(hash_u64(42), hash_u64(42));
    }

    #[test]
    fn distinguishes_nearby_inputs() {
        assert_ne!(hash_bytes(b"hello"), hash_bytes(b"hellp"));
        assert_ne!(hash_u64(1), hash_u64(2));
        assert_ne!(hash_bytes(b""), hash_bytes(b"\0"));
    }

    #[test]
    fn handles_unaligned_tails() {
        // Lengths around the 8-byte chunk boundary must all hash distinctly.
        let inputs: Vec<Vec<u8>> = (0..20).map(|n| vec![7u8; n]).collect();
        let hashes: Vec<u64> = inputs.iter().map(|b| hash_bytes(b)).collect();
        for i in 0..hashes.len() {
            for j in (i + 1)..hashes.len() {
                assert_ne!(hashes[i], hashes[j], "lengths {i} and {j} collided");
            }
        }
    }

    #[test]
    fn map_and_set_usable() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        m.insert("a".into(), 1);
        assert_eq!(m.get("a"), Some(&1));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(9);
        assert!(s.contains(&9));
    }

    #[test]
    fn spread_is_reasonable() {
        // Sequential integers should not collapse into few buckets.
        let mut buckets = [0usize; 16];
        for i in 0..10_000u64 {
            buckets[(hash_u64(i) % 16) as usize] += 1;
        }
        for &b in &buckets {
            assert!(b > 300, "bucket too empty: {b}");
        }
    }
}
