//! Domain catalogs: the "ground truth" vocabulary behind the synthetic lake.
//!
//! A *domain* is a universe of entities (countries, person names, product
//! codes, …). Every generated column samples entities from exactly one
//! domain; two columns are genuinely joinable only when they share a domain
//! and overlapping entities. The catalog is the substitute for the real-world
//! structure of the WDC/Wikipedia corpora (see DESIGN.md §1).
//!
//! Entity strings are composed from shared word lists, so *different* domains
//! still share surface words (e.g. first names appear in many person
//! domains). That makes the embedding task non-trivial: the encoder must
//! learn that joinability depends on whole-cell identity/ similarity, not on
//! bag-of-words overlap alone.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// What kind of values a domain contains. Determines the string pattern of
/// its entities and the metadata vocabulary of tables built on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EntityKind {
    /// Geographic names, often multi-word ("port victoria east").
    Place,
    /// Person names: "first last".
    Person,
    /// Organizations: "word word inc".
    Company,
    /// Product names: "adjective noun NNN".
    Product,
    /// Opaque identifiers: "AB-1234-XY".
    Code,
    /// ISO-ish dates.
    Date,
    /// Email-like strings (first.last@word.tld).
    Email,
}

impl EntityKind {
    /// All kinds, in the order the catalog cycles through them.
    pub const ALL: [EntityKind; 7] = [
        EntityKind::Place,
        EntityKind::Person,
        EntityKind::Company,
        EntityKind::Product,
        EntityKind::Code,
        EntityKind::Date,
        EntityKind::Email,
    ];

    /// A human-readable label used in table titles and column names.
    pub fn label(self) -> &'static str {
        match self {
            EntityKind::Place => "location",
            EntityKind::Person => "person",
            EntityKind::Company => "company",
            EntityKind::Product => "product",
            EntityKind::Code => "code",
            EntityKind::Date => "date",
            EntityKind::Email => "email",
        }
    }
}

// ---------------------------------------------------------------------------
// Shared word lists.
// ---------------------------------------------------------------------------

pub(crate) const PLACE_STEMS: &[&str] = &[
    "aurora", "belmont", "caldera", "delphi", "everton", "fairview", "granada", "halston",
    "iverness", "juniper", "kelso", "lorient", "madrona", "norwood", "ostia", "pinehurst",
    "quarry", "ravenna", "solace", "tiverton", "umbria", "valmont", "westlake", "xenia",
    "yarrow", "zephyr", "arden", "brookfield", "clearwater", "dunmore",
];

pub(crate) const PLACE_AFFIXES: &[&str] = &[
    "north", "south", "east", "west", "upper", "lower", "new", "old", "port", "lake",
    "mount", "fort", "saint", "grand", "little",
];

pub(crate) const FIRST_NAMES: &[&str] = &[
    "alice", "bruno", "carla", "dmitri", "elena", "farid", "greta", "hiro", "ines", "jonas",
    "keiko", "luca", "mara", "nadia", "omar", "priya", "quentin", "rosa", "sami", "tara",
    "ulrich", "vera", "wei", "ximena", "yusuf", "zoe", "amara", "boris", "chloe", "diego",
];

pub(crate) const LAST_NAMES: &[&str] = &[
    "alvarez", "bennett", "chen", "dubois", "eriksen", "fontaine", "garcia", "hansen",
    "ivanov", "jensen", "kumar", "larsen", "moreau", "nakamura", "okafor", "petrov",
    "quinn", "rossi", "suzuki", "tanaka", "ueda", "vargas", "weber", "xu", "yamada",
    "zhang", "almeida", "becker", "costa", "dias",
];

pub(crate) const COMPANY_STEMS: &[&str] = &[
    "acme", "borealis", "cinder", "dynamo", "ember", "fulcrum", "gantry", "helix",
    "ion", "junction", "keystone", "lattice", "meridian", "nimbus", "orbital", "paragon",
    "quasar", "ridgeline", "summit", "tundra", "umbra", "vertex", "wavelength", "xylem",
    "yield", "zenith",
];

pub(crate) const COMPANY_SUFFIXES: &[&str] =
    &["inc", "ltd", "corp", "group", "labs", "systems", "partners", "holdings"];

pub(crate) const PRODUCT_ADJECTIVES: &[&str] = &[
    "swift", "quiet", "bold", "prime", "ultra", "nano", "mega", "turbo", "eco", "smart",
    "rapid", "solid", "clear", "deep", "bright", "fresh", "pure", "agile", "sharp", "cool",
];

pub(crate) const PRODUCT_NOUNS: &[&str] = &[
    "widget", "gadget", "sensor", "module", "panel", "drive", "router", "beacon", "valve",
    "turbine", "coupler", "filter", "lens", "battery", "antenna", "bracket", "hinge",
    "gasket", "rotor", "spindle",
];


/// Words used to build table titles / context sentences around a domain.
pub(crate) const CONTEXT_WORDS: &[&str] = &[
    "report", "annual", "survey", "directory", "listing", "inventory", "summary",
    "statistics", "records", "registry", "catalog", "overview", "archive", "dataset",
    "index", "digest", "bulletin", "census", "ledger", "roster",
];

// ---------------------------------------------------------------------------
// Domains.
// ---------------------------------------------------------------------------

/// A universe of entity strings with a kind and a name.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Domain {
    /// Dense id in the catalog.
    pub id: u32,
    /// Human-readable name used in titles ("ravenna locations").
    pub name: String,
    /// Kind of entities.
    pub kind: EntityKind,
    /// Canonical entity strings. Index into this vec is the *entity id*
    /// recorded by the ground-truth oracle.
    pub entities: Vec<String>,
}

impl Domain {
    /// Number of entities in the universe.
    pub fn len(&self) -> usize {
        self.entities.len()
    }

    /// True when the domain has no entities (never produced by the catalog).
    pub fn is_empty(&self) -> bool {
        self.entities.is_empty()
    }
}

/// Pick a small per-domain subset of a word list. Real domains are
/// internally homogeneous — a "locations of X" table reuses few stems — so
/// entities *within* a domain look alike. That homogeneity is what makes a
/// fixed vector-matching threshold confuse distinct entities (the τ false
/// positives behind Table 7).
fn pick_pool<'w>(words: &[&'w str], n: usize, rng: &mut StdRng) -> Vec<&'w str> {
    let mut idx: Vec<usize> = (0..words.len()).collect();
    idx.shuffle(rng);
    idx.truncate(n.min(words.len()));
    idx.into_iter().map(|i| words[i]).collect()
}

/// Generate one entity string of `kind` from the domain's restricted word
/// pools. `tag` deterministically differentiates domains of the same kind
/// (so their universes are disjoint).
fn make_entity(kind: EntityKind, tag: u32, pool: &[&str], pool2: &[&str], rng: &mut StdRng) -> String {
    match kind {
        EntityKind::Place => {
            let stem = pool.choose(rng).unwrap();
            let affix = pool2.choose(rng).unwrap();
            // The numeric district key makes universes across domains disjoint.
            let district = rng.gen_range(0..500) + tag * 500;
            match rng.gen_range(0..3) {
                0 => format!("{affix} {stem} {district}"),
                1 => format!("{stem} {affix} {district}"),
                _ => format!("{stem} {district}"),
            }
        }
        EntityKind::Person => {
            let first = pool2.choose(rng).unwrap();
            let last = pool.choose(rng).unwrap();
            let n = rng.gen_range(0..400) + tag * 400;
            format!("{first} {last} {n}")
        }
        EntityKind::Company => {
            let stem = pool.choose(rng).unwrap();
            let suffix = pool2.choose(rng).unwrap();
            let n = rng.gen_range(0..300) + tag * 300;
            format!("{stem} {n} {suffix}")
        }
        EntityKind::Product => {
            let adj = pool2.choose(rng).unwrap();
            let noun = pool.choose(rng).unwrap();
            let n = rng.gen_range(0..1000) + tag * 1000;
            format!("{adj} {noun} {n}")
        }
        EntityKind::Code => {
            let prefix = pool.choose(rng).unwrap();
            let n = rng.gen_range(0..10_000) + tag * 10_000;
            format!("{prefix}-{n:05}")
        }
        EntityKind::Date => {
            // Each tag owns a band of years so domains stay disjoint.
            let year = 1200 + tag * 40 + rng.gen_range(0..40);
            let month = rng.gen_range(1..=12);
            let day = rng.gen_range(1..=28);
            format!("{year:04}-{month:02}-{day:02}")
        }
        EntityKind::Email => {
            let first = pool2.choose(rng).unwrap();
            let last = pool.choose(rng).unwrap();
            let host = pool.first().unwrap_or(&"mail");
            let n = rng.gen_range(0..200) + tag * 200;
            format!("{first}.{last}{n}@{host}.com")
        }
    }
}

/// Code prefixes (two-letter) used by Code domains.
const CODE_PREFIXES: &[&str] = &[
    "ax", "bq", "cz", "dk", "el", "fn", "gm", "hp", "ir", "js", "kt", "lu", "mv", "nw", "ox",
    "py", "qz", "ra", "sb", "tc",
];

/// The full set of domains available to a corpus.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DomainCatalog {
    /// Domains in id order.
    pub domains: Vec<Domain>,
}

impl DomainCatalog {
    /// Generate `num_domains` domains of roughly `entities_per_domain`
    /// entities each, deterministically from `seed`.
    pub fn generate(num_domains: usize, entities_per_domain: usize, seed: u64) -> Self {
        assert!(num_domains > 0, "need at least one domain");
        assert!(entities_per_domain > 0, "need at least one entity");
        let mut domains = Vec::with_capacity(num_domains);
        // Count domains per kind to assign disjoint tags within a kind.
        let mut kind_counters = [0u32; EntityKind::ALL.len()];
        for d in 0..num_domains {
            let kind_idx = d % EntityKind::ALL.len();
            let kind = EntityKind::ALL[kind_idx];
            let tag = kind_counters[kind_idx];
            kind_counters[kind_idx] += 1;

            let mut rng = StdRng::seed_from_u64(seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(d as u64 + 1)));
            // Restricted per-domain word pools: domains are internally
            // homogeneous (few stems), so entities within a domain look
            // alike — see `pick_pool`.
            let (pool, pool2): (Vec<&str>, Vec<&str>) = match kind {
                EntityKind::Place => (
                    pick_pool(PLACE_STEMS, 3, &mut rng),
                    pick_pool(PLACE_AFFIXES, 4, &mut rng),
                ),
                EntityKind::Person => (
                    pick_pool(LAST_NAMES, 4, &mut rng),
                    pick_pool(FIRST_NAMES, 8, &mut rng),
                ),
                EntityKind::Company => (
                    pick_pool(COMPANY_STEMS, 3, &mut rng),
                    pick_pool(COMPANY_SUFFIXES, 3, &mut rng),
                ),
                EntityKind::Product => (
                    pick_pool(PRODUCT_NOUNS, 3, &mut rng),
                    pick_pool(PRODUCT_ADJECTIVES, 5, &mut rng),
                ),
                EntityKind::Code => (pick_pool(CODE_PREFIXES, 2, &mut rng), Vec::new()),
                EntityKind::Date => (Vec::new(), Vec::new()),
                EntityKind::Email => (
                    pick_pool(LAST_NAMES, 4, &mut rng),
                    pick_pool(FIRST_NAMES, 8, &mut rng),
                ),
            };
            let mut seen = crate::fxhash::FxHashSet::default();
            let mut entities = Vec::with_capacity(entities_per_domain);
            // Rejection-sample distinct entity strings.
            let mut attempts = 0usize;
            while entities.len() < entities_per_domain && attempts < entities_per_domain * 50 {
                attempts += 1;
                let e = make_entity(kind, tag, &pool, &pool2, &mut rng);
                if seen.insert(e.clone()) {
                    entities.push(e);
                }
            }
            let name_stem = match kind {
                EntityKind::Place => PLACE_STEMS[d % PLACE_STEMS.len()],
                EntityKind::Person => LAST_NAMES[d % LAST_NAMES.len()],
                EntityKind::Company => COMPANY_STEMS[d % COMPANY_STEMS.len()],
                EntityKind::Product => PRODUCT_NOUNS[d % PRODUCT_NOUNS.len()],
                EntityKind::Code => "registry",
                EntityKind::Date => "calendar",
                EntityKind::Email => "contact",
            };
            domains.push(Domain {
                id: d as u32,
                name: format!("{name_stem} {}", kind.label()),
                kind,
                entities,
            });
        }
        Self { domains }
    }

    /// Number of domains.
    pub fn len(&self) -> usize {
        self.domains.len()
    }

    /// True when the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.domains.is_empty()
    }

    /// Domain by id.
    pub fn domain(&self, id: u32) -> &Domain {
        &self.domains[id as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fxhash::FxHashSet;

    #[test]
    fn generates_requested_shape() {
        let cat = DomainCatalog::generate(10, 200, 7);
        assert_eq!(cat.len(), 10);
        for d in &cat.domains {
            assert!(d.len() >= 150, "domain {} too small: {}", d.id, d.len());
            // entities are distinct
            let set: FxHashSet<&String> = d.entities.iter().collect();
            assert_eq!(set.len(), d.entities.len());
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = DomainCatalog::generate(5, 100, 42);
        let b = DomainCatalog::generate(5, 100, 42);
        for (da, db) in a.domains.iter().zip(&b.domains) {
            assert_eq!(da.entities, db.entities);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = DomainCatalog::generate(3, 100, 1);
        let b = DomainCatalog::generate(3, 100, 2);
        assert_ne!(a.domains[0].entities, b.domains[0].entities);
    }

    #[test]
    fn same_kind_domains_are_disjoint() {
        // Domains 0 and 7 are both Place (7 kinds cycle).
        let cat = DomainCatalog::generate(14, 300, 9);
        let d0: FxHashSet<&String> = cat.domain(0).entities.iter().collect();
        let d7: FxHashSet<&String> = cat.domain(7).entities.iter().collect();
        assert_eq!(cat.domain(0).kind, cat.domain(7).kind);
        assert!(d0.is_disjoint(&d7), "same-kind domains must not share entities");
    }

    #[test]
    fn kinds_cycle() {
        let cat = DomainCatalog::generate(8, 10, 3);
        assert_eq!(cat.domain(0).kind, EntityKind::Place);
        assert_eq!(cat.domain(1).kind, EntityKind::Person);
        assert_eq!(cat.domain(7).kind, EntityKind::Place);
    }
}
