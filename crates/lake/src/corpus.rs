//! Synthetic data-lake generator (Webtable / Wikitable stand-ins).
//!
//! The generator replaces the WDC Web Table Corpus and the Wikipedia tables
//! used in the paper (see DESIGN.md §1 for the substitution rationale). It
//! produces tables whose key columns sample entities from ground-truth
//! *domains* (see [`crate::dictionary`]) with:
//!
//! * **Zipfian skew** — head entities recur across tables, mirroring the
//!   skewed token frequencies of real lakes;
//! * **focus windows** — each domain has narrow entity windows that groups of
//!   tables share, so the lake contains genuinely joinable column families
//!   (the self-join of §4.1 finds its positives there);
//! * **heavy-tailed column sizes** — lognormal lengths with min 5, average
//!   ≈ 20, and a long tail, matching Table 2;
//! * **cell noise** — a fraction of cells are misspelled / reformatted, which
//!   breaks equi-matching but not semantic matching;
//! * **metadata** — table titles, column names and context sentences built
//!   from the domain vocabulary, feeding the contextualization options.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::column::{Column, ColumnMeta};
use crate::dictionary::{DomainCatalog, EntityKind, CONTEXT_WORDS};
use crate::noise::perturb;
use crate::repository::{ExtractionRule, Repository, MIN_CELLS};
use crate::table::Table;
use crate::zipf::Zipf;

/// Which real corpus the generated lake imitates. The two profiles differ in
/// the statistics the paper reports in Table 2 and in the extraction rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CorpusProfile {
    /// WDC web tables: key column designated by metadata, avg |X| ≈ 20.8,
    /// max ≈ 6031, noisier values.
    Webtable,
    /// Wikipedia tables: most-distinct column extracted, avg |X| ≈ 18.6,
    /// max ≈ 3454, cleaner values but denser join structure.
    Wikitable,
}

impl CorpusProfile {
    /// The column-extraction rule §5.1 pairs with this corpus.
    pub fn extraction_rule(self) -> ExtractionRule {
        match self {
            CorpusProfile::Webtable => ExtractionRule::KeyColumn,
            CorpusProfile::Wikitable => ExtractionRule::MostDistinct,
        }
    }

    fn size_log_mean(self) -> f64 {
        match self {
            CorpusProfile::Webtable => 2.25,
            CorpusProfile::Wikitable => 2.15,
        }
    }

    fn size_log_std(self) -> f64 {
        match self {
            CorpusProfile::Webtable => 0.95,
            CorpusProfile::Wikitable => 0.85,
        }
    }

    fn max_cells(self) -> usize {
        match self {
            CorpusProfile::Webtable => 6031,
            CorpusProfile::Wikitable => 3454,
        }
    }

    fn default_noise_rate(self) -> f64 {
        match self {
            CorpusProfile::Webtable => 0.12,
            CorpusProfile::Wikitable => 0.06,
        }
    }
}

/// Configuration of the synthetic lake.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorpusConfig {
    /// Which corpus to imitate.
    pub profile: CorpusProfile,
    /// Number of tables to generate. Each table yields one searchable column
    /// under the profile's extraction rule, so this roughly equals |𝒳|.
    pub num_tables: usize,
    /// Number of ground-truth domains.
    pub num_domains: usize,
    /// Entities per domain universe.
    pub entities_per_domain: usize,
    /// Zipf exponent for entity sampling (higher = more head-heavy).
    pub zipf_exponent: f64,
    /// Probability that a column samples from a narrow focus window rather
    /// than the whole domain. Focused columns form joinable families.
    pub focus_rate: f64,
    /// Width of a focus window, as a fraction of the domain universe.
    pub focus_width: f64,
    /// Number of focus windows per domain. Family size ≈
    /// `num_tables · focus_rate / (num_domains · windows_per_domain)`;
    /// the default targets ≈ 40 columns per family so top-k (k ≤ 50)
    /// ground truth is meaningful, mirroring the dense join structure of
    /// the paper's corpora (190K+ positives from 30K columns).
    pub windows_per_domain: usize,
    /// Fraction of cells perturbed with noise (misspellings / reformatting).
    pub noise_rate: f64,
    /// Of the noisy cells, the fraction receiving a *strong* variant
    /// (stacked edits, word reorder/drop) that typically falls outside the
    /// τ-matching radius while remaining the same entity to the oracle.
    pub strong_noise_rate: f64,
    /// Master seed; every derived RNG is seeded from this.
    pub seed: u64,
}

impl CorpusConfig {
    /// A config with profile-appropriate defaults at the given scale.
    pub fn new(profile: CorpusProfile, num_tables: usize, seed: u64) -> Self {
        let num_domains = (num_tables / 120).clamp(7, 350);
        let focus_rate = 0.7;
        let windows_per_domain =
            ((num_tables as f64 * focus_rate) / (num_domains as f64 * 40.0)).round() as usize;
        Self {
            profile,
            num_tables,
            num_domains,
            entities_per_domain: 600,
            zipf_exponent: 0.9,
            focus_rate,
            focus_width: 0.03,
            windows_per_domain: windows_per_domain.max(1),
            noise_rate: profile.default_noise_rate(),
            strong_noise_rate: 0.3,
            seed,
        }
    }

    /// Override the noise rate (used by ablations).
    pub fn with_noise_rate(mut self, rate: f64) -> Self {
        self.noise_rate = rate;
        self
    }
}

/// Per-column rendering format. Real lakes render the same entity in
/// different surface formats per table; formats are what make a *fixed*
/// vector-matching threshold misjudge joinability (paper Table 7): token-
/// level methods see through most of them, cell-level distance does not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CellFormat {
    /// The canonical entity string.
    Canonical,
    /// Each word capitalized ("Fort Kelso 123").
    TitleCase,
    /// Spaces replaced by underscores ("fort_kelso_123").
    Underscore,
    /// First word reduced to an initial ("f kelso 123").
    Initialed,
    /// Word order reversed ("123 kelso fort").
    Reversed,
}

impl CellFormat {
    /// Apply the format to a canonical entity string.
    pub fn apply(self, s: &str) -> String {
        match self {
            CellFormat::Canonical => s.to_string(),
            CellFormat::TitleCase => s
                .split(' ')
                .map(|w| {
                    let mut it = w.chars();
                    match it.next() {
                        Some(f) => f.to_uppercase().chain(it).collect::<String>(),
                        None => String::new(),
                    }
                })
                .collect::<Vec<_>>()
                .join(" "),
            CellFormat::Underscore => s.replace(' ', "_"),
            CellFormat::Initialed => {
                let mut words: Vec<String> = s.split(' ').map(|w| w.to_string()).collect();
                if words.len() >= 2 {
                    if let Some(f) = words[0].chars().next() {
                        words[0] = f.to_string();
                    }
                }
                words.join(" ")
            }
            CellFormat::Reversed => {
                let mut words: Vec<&str> = s.split(' ').collect();
                words.reverse();
                words.join(" ")
            }
        }
    }

    /// Draw a table-level format: canonical 55%, the rest split.
    pub fn sample(rng: &mut StdRng) -> Self {
        match rng.gen_range(0..20) {
            0..=10 => CellFormat::Canonical,
            11..=13 => CellFormat::TitleCase,
            14..=16 => CellFormat::Underscore,
            17..=18 => CellFormat::Initialed,
            _ => CellFormat::Reversed,
        }
    }
}

/// Ground-truth provenance of one column: which domain it samples and which
/// entity each cell denotes (pre-noise).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnProvenance {
    /// Domain the column draws from.
    pub domain: u32,
    /// Entity id (index into the domain's entity list) per cell, parallel to
    /// the column's `cells`.
    pub entities: Vec<u32>,
}

impl ColumnProvenance {
    /// Distinct entity ids in this column.
    pub fn distinct_entities(&self) -> crate::fxhash::FxHashSet<u32> {
        self.entities.iter().copied().collect()
    }
}

/// A generated lake: tables plus the provenance of every key column.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Corpus {
    /// The configuration it was generated with.
    pub config: CorpusConfig,
    /// Ground-truth domains.
    pub catalog: DomainCatalog,
    /// Generated tables.
    pub tables: Vec<Table>,
    /// Provenance of each table's *extracted* column (the key column for
    /// Webtable, the most-distinct column for Wikitable — the generator makes
    /// these coincide), parallel to `tables`.
    pub provenance: Vec<ColumnProvenance>,
}

/// Draw a standard normal via Box–Muller (keeps us off `rand_distr`).
fn sample_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Sample a column length: `MIN_CELLS + lognormal`, clipped at the profile max.
fn sample_len(profile: CorpusProfile, rng: &mut StdRng) -> usize {
    let z = sample_normal(rng);
    let raw = (profile.size_log_mean() + profile.size_log_std() * z).exp();
    (MIN_CELLS + raw as usize).min(profile.max_cells())
}

/// Generator state shared across table construction.
struct Generator<'a> {
    config: &'a CorpusConfig,
    catalog: &'a DomainCatalog,
    /// Per-domain whole-universe Zipf samplers.
    domain_zipf: Vec<Zipf>,
}

impl<'a> Generator<'a> {
    fn new(config: &'a CorpusConfig, catalog: &'a DomainCatalog) -> Self {
        let domain_zipf = catalog
            .domains
            .iter()
            .map(|d| Zipf::new(d.len(), config.zipf_exponent))
            .collect();
        Self {
            config,
            catalog,
            domain_zipf,
        }
    }

    /// Sample the entity ids for a column of `len` cells from `domain`.
    fn sample_entities(&self, domain: u32, len: usize, rng: &mut StdRng) -> Vec<u32> {
        let universe = self.catalog.domain(domain).len();
        let focused = rng.gen_bool(self.config.focus_rate);
        if focused {
            // Pick a window; windows are positional so distinct tables
            // choosing the same window share entities.
            let width = ((universe as f64 * self.config.focus_width) as usize)
                .clamp(MIN_CELLS * 2, universe);
            let num_windows = self.config.windows_per_domain.max(1);
            let w = rng.gen_range(0..num_windows);
            let stride = if num_windows == 1 {
                0
            } else {
                (universe - width) / (num_windows - 1)
            };
            let start = w * stride;
            let window_zipf =
                Zipf::new(width.min(universe - start), self.config.zipf_exponent * 0.5);
            (0..len)
                .map(|_| (start + window_zipf.sample(rng)) as u32)
                .collect()
        } else {
            let z = &self.domain_zipf[domain as usize];
            (0..len).map(|_| z.sample(rng) as u32).collect()
        }
    }

    /// Materialize cell strings for entity ids: render in the column's
    /// format, then apply cell-level noise.
    fn materialize(
        &self,
        domain: u32,
        entities: &[u32],
        format: CellFormat,
        rng: &mut StdRng,
    ) -> Vec<String> {
        let d = self.catalog.domain(domain);
        entities
            .iter()
            .map(|&e| {
                let rendered = format.apply(&d.entities[e as usize]);
                if rng.gen_bool(self.config.noise_rate) {
                    if rng.gen_bool(self.config.strong_noise_rate) {
                        crate::noise::perturb_strong(&rendered, rng)
                    } else {
                        perturb(&rendered, rng)
                    }
                } else {
                    rendered
                }
            })
            .collect()
    }

    /// Build one table around `domain`, returning it with the key column's
    /// provenance.
    fn make_table(&self, domain: u32, rng: &mut StdRng) -> (Table, ColumnProvenance) {
        let d = self.catalog.domain(domain);
        let len = sample_len(self.config.profile, rng);
        let mut entities = self.sample_entities(domain, len, rng);
        // Invariant: the key column has strictly more distinct values than
        // any companion column (companions are capped at 2 distinct below),
        // so the Wikitable most-distinct extraction rule selects it. Zipf
        // sampling can collapse short columns; patch in distinct entities.
        ensure_min_distinct(&mut entities, 3, d.len() as u32);
        let format = CellFormat::sample(rng);
        let key_cells = self.materialize(domain, &entities, format, rng);

        // Companion columns: a numeric group column and, half the time, a
        // small secondary column from another domain. Both are capped at 2
        // distinct values so the Wikitable most-distinct rule picks the key
        // column (which is guaranteed >= 3 distinct above).
        let mut headers = vec![key_column_name(d.kind, rng)];
        let mut columns = vec![key_cells];

        let group: Vec<String> = (0..len)
            .map(|i| if i < len / 2 { "1".to_string() } else { "2".to_string() })
            .collect();
        headers.push("group".to_string());
        columns.push(group);

        if rng.gen_bool(0.5) && self.catalog.len() > 1 {
            let other = loop {
                let o = rng.gen_range(0..self.catalog.len() as u32);
                if o != domain {
                    break o;
                }
            };
            let od = self.catalog.domain(other);
            // Reuse at most two entities so the distinct count stays low.
            let pool: Vec<u32> = (0..2).map(|_| rng.gen_range(0..od.len() as u32)).collect();
            let cells: Vec<String> = (0..len)
                .map(|_| od.entities[*pool.choose(rng).unwrap() as usize].clone())
                .collect();
            headers.push(od.kind.label().to_string());
            columns.push(cells);
        }

        let ctx1 = CONTEXT_WORDS[rng.gen_range(0..CONTEXT_WORDS.len())];
        let ctx2 = CONTEXT_WORDS[rng.gen_range(0..CONTEXT_WORDS.len())];
        let title = format!("{} {}", d.name, ctx1);
        let context = format!("a {ctx2} of {} entries about {}", len, d.name);

        let table = Table {
            title,
            context,
            headers,
            columns,
            key_column: 0,
        };
        let prov = ColumnProvenance { domain, entities };
        (table, prov)
    }
}

/// Overwrite leading samples so `entities` contains at least `min_distinct`
/// distinct ids (bounded by the universe size).
fn ensure_min_distinct(entities: &mut [u32], min_distinct: usize, universe: u32) {
    let want = min_distinct.min(entities.len()).min(universe as usize);
    let mut seen: crate::fxhash::FxHashSet<u32> = entities.iter().copied().collect();
    if seen.len() >= want {
        return;
    }
    let base = entities.first().copied().unwrap_or(0);
    let mut slot = 0usize;
    let mut candidate = 0u32;
    while seen.len() < want && slot < entities.len() {
        // Find a fresh id near the column's existing range.
        while seen.contains(&((base + candidate) % universe)) {
            candidate += 1;
        }
        let fresh = (base + candidate) % universe;
        entities[slot] = fresh;
        seen = entities.iter().copied().collect();
        slot += 1;
    }
}

/// Column-name vocabulary per kind (with some variety so names carry signal
/// without being unique identifiers).
fn key_column_name(kind: EntityKind, rng: &mut StdRng) -> String {
    let options: &[&str] = match kind {
        EntityKind::Place => &["location", "place", "city", "region"],
        EntityKind::Person => &["name", "person", "member", "author"],
        EntityKind::Company => &["company", "organization", "vendor", "firm"],
        EntityKind::Product => &["product", "item", "model", "sku"],
        EntityKind::Code => &["code", "id", "reference", "key"],
        EntityKind::Date => &["date", "day", "issued", "updated"],
        EntityKind::Email => &["email", "contact", "address", "mailbox"],
    };
    options[rng.gen_range(0..options.len())].to_string()
}

impl Corpus {
    /// Generate a lake from `config`.
    pub fn generate(config: CorpusConfig) -> Self {
        let catalog = DomainCatalog::generate(
            config.num_domains,
            config.entities_per_domain,
            config.seed ^ 0xD0_4A1,
        );
        let generator = Generator::new(&config, &catalog);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let domain_pick = Zipf::new(catalog.len(), 0.5); // mild domain popularity skew

        let mut tables = Vec::with_capacity(config.num_tables);
        let mut provenance = Vec::with_capacity(config.num_tables);
        for _ in 0..config.num_tables {
            let domain = domain_pick.sample(&mut rng) as u32;
            let (t, p) = generator.make_table(domain, &mut rng);
            tables.push(t);
            provenance.push(p);
        }
        Self {
            config,
            catalog,
            tables,
            provenance,
        }
    }

    /// Flatten to a searchable repository under the profile's extraction
    /// rule. Returns the repository and the provenance parallel to its
    /// columns.
    ///
    /// The generator guarantees the extracted column is the key column, so
    /// the stored provenance applies under both profile rules; this is
    /// asserted in debug builds.
    pub fn to_repository(&self) -> (Repository, Vec<ColumnProvenance>) {
        let rule = self.config.profile.extraction_rule();
        let mut repo = Repository::new();
        let mut prov = Vec::with_capacity(self.tables.len());
        for (tid, (t, p)) in self.tables.iter().zip(&self.provenance).enumerate() {
            let idx = match rule {
                ExtractionRule::KeyColumn => t.key_column,
                ExtractionRule::MostDistinct => t.most_distinct_column().unwrap_or(t.key_column),
                ExtractionRule::All => t.key_column,
            };
            debug_assert_eq!(
                idx, t.key_column,
                "generator invariant: extracted column is the key column"
            );
            let col = t.extract_column(t.key_column, Some(tid as u32));
            if col.len() >= MIN_CELLS {
                repo.push(col);
                prov.push(p.clone());
            }
        }
        (repo, prov)
    }

    /// Sample `n` query columns *outside* the repository (fresh draws from
    /// the same catalog — the paper samples queries from the corpus excluding
    /// 𝒳 to avoid data leak, §5.1).
    pub fn sample_queries(&self, n: usize, seed: u64) -> Vec<(Column, ColumnProvenance)> {
        let generator = Generator::new(&self.config, &self.catalog);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0051_EED5);
        let domain_pick = Zipf::new(self.catalog.len(), 0.5);
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            let domain = domain_pick.sample(&mut rng) as u32;
            let (t, p) = generator.make_table(domain, &mut rng);
            let col = t.extract_column(t.key_column, None);
            if col.len() >= MIN_CELLS {
                out.push((col, p));
            }
        }
        out
    }

    /// Sample query columns whose length falls in `range` (used by the
    /// column-size experiments, Tables 8 and 15).
    pub fn sample_queries_sized(
        &self,
        n: usize,
        range: std::ops::RangeInclusive<usize>,
        seed: u64,
    ) -> Vec<(Column, ColumnProvenance)> {
        let generator = Generator::new(&self.config, &self.catalog);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0005_17ED);
        let domain_pick = Zipf::new(self.catalog.len(), 0.5);
        let mut out = Vec::with_capacity(n);
        let mut attempts = 0usize;
        while out.len() < n && attempts < n * 20_000 {
            attempts += 1;
            let domain = domain_pick.sample(&mut rng) as u32;
            // Force the length into range by sampling it directly.
            let len = rng.gen_range(range.clone());
            if len < MIN_CELLS {
                continue;
            }
            let entities = generator.sample_entities(domain, len, &mut rng);
            let format = CellFormat::sample(&mut rng);
            let cells = generator.materialize(domain, &entities, format, &mut rng);
            let d = self.catalog.domain(domain);
            let meta = ColumnMeta {
                table_title: format!("{} listing", d.name),
                column_name: key_column_name(d.kind, &mut rng),
                table_context: format!("a listing of {}", d.name),
                table_id: None,
            };
            out.push((Column::new(cells, meta), ColumnProvenance { domain, entities }));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_corpus(profile: CorpusProfile) -> Corpus {
        let mut cfg = CorpusConfig::new(profile, 300, 17);
        cfg.num_domains = 7;
        cfg.entities_per_domain = 300;
        Corpus::generate(cfg)
    }

    #[test]
    fn generates_requested_table_count() {
        let c = small_corpus(CorpusProfile::Webtable);
        assert_eq!(c.tables.len(), 300);
        assert_eq!(c.provenance.len(), 300);
    }

    #[test]
    fn repository_matches_provenance() {
        let c = small_corpus(CorpusProfile::Webtable);
        let (repo, prov) = c.to_repository();
        assert_eq!(repo.len(), prov.len());
        assert!(repo.len() > 250, "most tables should survive the length filter");
        for (id, col) in repo.iter() {
            let p = &prov[id.index()];
            assert_eq!(col.len(), p.entities.len(), "cells and provenance parallel");
        }
    }

    #[test]
    fn wikitable_extraction_picks_key_column() {
        let c = small_corpus(CorpusProfile::Wikitable);
        for t in &c.tables {
            assert_eq!(t.most_distinct_column(), Some(t.key_column));
        }
    }

    #[test]
    fn sizes_look_like_table2() {
        let c = small_corpus(CorpusProfile::Webtable);
        let (repo, _) = c.to_repository();
        let lens: Vec<usize> = repo.columns().iter().map(|c| c.len()).collect();
        let min = *lens.iter().min().unwrap();
        let avg = lens.iter().sum::<usize>() as f64 / lens.len() as f64;
        assert!(min >= MIN_CELLS);
        assert!(avg > 10.0 && avg < 45.0, "avg len {avg}");
    }

    #[test]
    fn lake_contains_joinable_families() {
        // The self-join of §4.1 needs pairs with jn >= 0.7 to exist.
        let c = small_corpus(CorpusProfile::Webtable);
        let (repo, prov) = c.to_repository();
        let mut found = 0usize;
        for i in 0..repo.len().min(150) {
            let qi = crate::column::ColumnId(i as u32);
            for j in 0..repo.len() {
                if i == j {
                    continue;
                }
                let xj = crate::column::ColumnId(j as u32);
                if prov[i].domain != prov[j].domain {
                    continue;
                }
                let jn = crate::joinability::equi_joinability(repo.column(qi), repo.column(xj));
                if jn >= 0.7 {
                    found += 1;
                }
            }
        }
        assert!(found >= 20, "expected joinable families, found {found} pairs");
    }

    #[test]
    fn queries_are_fresh_but_joinable() {
        let c = small_corpus(CorpusProfile::Webtable);
        let (repo, prov) = c.to_repository();
        let queries = c.sample_queries(10, 5);
        assert_eq!(queries.len(), 10);
        // At least one query should have a same-domain target with positive
        // ground-truth overlap.
        let any_overlap = queries.iter().any(|(_, qp)| {
            let qset = qp.distinct_entities();
            prov.iter().any(|tp| {
                tp.domain == qp.domain
                    && tp.distinct_entities().intersection(&qset).next().is_some()
            })
        });
        assert!(any_overlap);
        let _ = repo;
    }

    #[test]
    fn sized_queries_respect_range() {
        let c = small_corpus(CorpusProfile::Webtable);
        let qs = c.sample_queries_sized(8, 5..=10, 3);
        assert_eq!(qs.len(), 8);
        for (col, _) in &qs {
            assert!(col.len() >= 5 && col.len() <= 10);
        }
    }

    #[test]
    fn deterministic_generation() {
        let a = small_corpus(CorpusProfile::Webtable);
        let b = small_corpus(CorpusProfile::Webtable);
        assert_eq!(a.tables[0].columns, b.tables[0].columns);
        assert_eq!(a.provenance[0], b.provenance[0]);
    }

    #[test]
    fn noise_rate_zero_means_formatted_canonical_cells() {
        let mut cfg = CorpusConfig::new(CorpusProfile::Webtable, 50, 23).with_noise_rate(0.0);
        cfg.num_domains = 7;
        cfg.entities_per_domain = 200;
        let c = Corpus::generate(cfg);
        let (repo, prov) = c.to_repository();
        for (id, col) in repo.iter() {
            let p = &prov[id.index()];
            let d = c.catalog.domain(p.domain);
            for (cell, &e) in col.cells.iter().zip(&p.entities) {
                // With zero noise every cell is the canonical entity under
                // one of the column formats.
                let canonical = &d.entities[e as usize];
                let matches_some_format = [
                    CellFormat::Canonical,
                    CellFormat::TitleCase,
                    CellFormat::Underscore,
                    CellFormat::Initialed,
                    CellFormat::Reversed,
                ]
                .iter()
                .any(|f| &f.apply(canonical) == cell);
                assert!(matches_some_format, "{cell} vs {canonical}");
            }
        }
    }

    #[test]
    fn cell_formats_apply_as_documented() {
        assert_eq!(CellFormat::Canonical.apply("fort kelso 12"), "fort kelso 12");
        assert_eq!(CellFormat::TitleCase.apply("fort kelso 12"), "Fort Kelso 12");
        assert_eq!(CellFormat::Underscore.apply("fort kelso 12"), "fort_kelso_12");
        assert_eq!(CellFormat::Initialed.apply("fort kelso 12"), "f kelso 12");
        assert_eq!(CellFormat::Reversed.apply("fort kelso 12"), "12 kelso fort");
        // Single-word entities are stable under Initialed.
        assert_eq!(CellFormat::Initialed.apply("zx-100"), "zx-100");
    }
}
