//! Multiset joinability — the extension §2.1 sketches for one-to-many,
//! many-to-one and many-to-many joins.
//!
//! When columns are modeled as multisets, the natural measure is the number
//! of *join results* `Σ_v count_Q(v) · count_X(v)` (each pair of matching
//! rows joins), normalized by `|Q| · |X|` so the value stays in `[0, 1]`.

use crate::column::Column;
use crate::fxhash::FxHashMap;
use crate::joinability::{rank_and_truncate, ScoredColumn};
use crate::repository::Repository;

/// Multiset value counts of a column.
fn counts(col: &Column) -> FxHashMap<&str, u32> {
    let mut m: FxHashMap<&str, u32> = FxHashMap::default();
    for c in &col.cells {
        *m.entry(c.as_str()).or_insert(0) += 1;
    }
    m
}

/// Number of equi-join result rows between `q` and `x` under multiset
/// semantics: `Σ_v count_q(v) · count_x(v)`.
pub fn join_result_count(q: &Column, x: &Column) -> u64 {
    let qc = counts(q);
    let xc = counts(x);
    // Iterate the smaller map.
    let (small, large) = if qc.len() <= xc.len() { (&qc, &xc) } else { (&xc, &qc) };
    small
        .iter()
        .filter_map(|(v, &c1)| large.get(v).map(|&c2| c1 as u64 * c2 as u64))
        .sum()
}

/// Multiset joinability: join-result count normalized by `|Q| · |X|`
/// (the normalization §2.1 proposes for the multiset case). Symmetric,
/// in `[0, 1]`, and 1 iff both columns are constant with the same value.
pub fn multiset_joinability(q: &Column, x: &Column) -> f64 {
    if q.is_empty() || x.is_empty() {
        return 0.0;
    }
    join_result_count(q, x) as f64 / (q.len() as f64 * x.len() as f64)
}

/// Exact top-k under multiset joinability (reference implementation; the
/// measure is a drop-in replacement for `jn` in Problem 1).
pub fn brute_force_topk_multiset(repo: &Repository, query: &Column, k: usize) -> Vec<ScoredColumn> {
    let scored = repo
        .iter()
        .map(|(id, x)| ScoredColumn {
            id,
            score: multiset_joinability(query, x),
        })
        .collect();
    rank_and_truncate(scored, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(cells: &[&str]) -> Column {
        Column::from_cells(cells.iter().copied())
    }

    #[test]
    fn join_count_multiplies_multiplicities() {
        // "a" appears 2× in q and 3× in x -> 6 join rows; "b" 1×1 -> 1.
        let q = col(&["a", "a", "b"]);
        let x = col(&["a", "a", "a", "b", "z"]);
        assert_eq!(join_result_count(&q, &x), 7);
    }

    #[test]
    fn multiset_jn_is_symmetric_and_bounded() {
        let q = col(&["a", "a", "b"]);
        let x = col(&["a", "b", "c", "c"]);
        let jn = multiset_joinability(&q, &x);
        assert!((0.0..=1.0).contains(&jn));
        assert_eq!(jn, multiset_joinability(&x, &q));
    }

    #[test]
    fn constant_equal_columns_score_one() {
        let q = col(&["a", "a", "a"]);
        let x = col(&["a", "a"]);
        assert_eq!(multiset_joinability(&q, &x), 1.0);
    }

    #[test]
    fn disjoint_and_empty_score_zero() {
        let q = col(&["a"]);
        assert_eq!(multiset_joinability(&q, &col(&["b"])), 0.0);
        assert_eq!(multiset_joinability(&q, &col(&[])), 0.0);
        assert_eq!(multiset_joinability(&col(&[]), &q), 0.0);
    }

    #[test]
    fn topk_ranks_by_result_density() {
        let repo = Repository::from_columns(vec![
            col(&["a", "a", "a", "a", "a"]), // dense matches with q
            col(&["a", "b", "c", "d", "e"]), // sparse
            col(&["z", "z", "z", "z", "z"]), // none
        ]);
        let q = col(&["a", "a", "a"]);
        let top = brute_force_topk_multiset(&repo, &q, 3);
        assert_eq!(top[0].id.0, 0);
        assert_eq!(top[0].score, 1.0);
        assert_eq!(top[1].id.0, 1);
        assert_eq!(top[2].score, 0.0);
    }

    #[test]
    fn one_to_many_beats_one_to_one_in_result_count() {
        let q = col(&["k1", "k2"]);
        let one_to_one = col(&["k1", "k2"]);
        let one_to_many = col(&["k1", "k1", "k1", "k2", "k2"]);
        assert!(join_result_count(&q, &one_to_many) > join_result_count(&q, &one_to_one));
    }
}
