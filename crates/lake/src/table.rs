//! Tables as found in the lake, before column extraction.

use serde::{Deserialize, Serialize};

use crate::column::{Column, ColumnMeta};

/// A relational table with metadata, as crawled from the (synthetic) lake.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    /// Table title (e.g. the page or file title).
    pub title: String,
    /// A short free-text description accompanying the table.
    pub context: String,
    /// Column headers, parallel to `columns`.
    pub headers: Vec<String>,
    /// Column bodies, parallel to `headers`. Stored column-major because
    /// joinable table discovery never needs row-wise access.
    pub columns: Vec<Vec<String>>,
    /// Which column the corpus metadata designates as the key column
    /// (the Webtable profile extracts this one).
    pub key_column: usize,
}

impl Table {
    /// Number of rows (length of the longest column; generators keep columns
    /// equal-length, but ragged tables are tolerated).
    pub fn num_rows(&self) -> usize {
        self.columns.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Extract column `idx` with full metadata attached.
    ///
    /// `table_id` is recorded in the metadata so experiments can map results
    /// back to source tables.
    pub fn extract_column(&self, idx: usize, table_id: Option<u32>) -> Column {
        let meta = ColumnMeta {
            table_title: self.title.clone(),
            column_name: self.headers.get(idx).cloned().unwrap_or_default(),
            table_context: self.context.clone(),
            table_id,
        };
        Column::new(self.columns[idx].clone(), meta)
    }

    /// Index of the column with the largest number of distinct values
    /// (the Wikitable extraction rule from §5.1). Ties break to the lower
    /// index. Returns `None` for tables without columns.
    pub fn most_distinct_column(&self) -> Option<usize> {
        (0..self.columns.len()).max_by_key(|&i| {
            let distinct: crate::fxhash::FxHashSet<&str> =
                self.columns[i].iter().map(String::as_str).collect();
            // max_by_key keeps the *last* max; invert index to prefer the first.
            (distinct.len(), usize::MAX - i)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        Table {
            title: "World capitals".into(),
            context: "Capitals and populations".into(),
            headers: vec!["country".into(), "capital".into(), "flag".into()],
            columns: vec![
                vec!["fr".into(), "jp".into(), "fr".into()],
                vec!["paris".into(), "tokyo".into(), "paris".into()],
                vec!["🇫🇷".into(), "🇯🇵".into(), "🇫🇷".into()],
            ],
            key_column: 0,
        }
    }

    #[test]
    fn dims() {
        let t = sample_table();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.num_columns(), 3);
    }

    #[test]
    fn extract_carries_metadata() {
        let t = sample_table();
        let c = t.extract_column(1, Some(9));
        assert_eq!(c.cells, vec!["paris", "tokyo", "paris"]);
        assert_eq!(c.meta.table_title, "World capitals");
        assert_eq!(c.meta.column_name, "capital");
        assert_eq!(c.meta.table_context, "Capitals and populations");
        assert_eq!(c.meta.table_id, Some(9));
    }

    #[test]
    fn most_distinct_prefers_first_on_tie() {
        let t = sample_table();
        // Columns 0,1,2 all have 2 distinct values -> index 0 wins.
        assert_eq!(t.most_distinct_column(), Some(0));
    }

    #[test]
    fn most_distinct_detects_larger() {
        let mut t = sample_table();
        t.columns[2] = vec!["a".into(), "b".into(), "c".into()];
        assert_eq!(t.most_distinct_column(), Some(2));
    }

    #[test]
    fn empty_table() {
        let t = Table {
            title: String::new(),
            context: String::new(),
            headers: vec![],
            columns: vec![],
            key_column: 0,
        };
        assert_eq!(t.num_rows(), 0);
        assert_eq!(t.most_distinct_column(), None);
    }
}
