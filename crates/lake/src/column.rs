//! Columns — the unit of search in joinable table discovery.
//!
//! A data lake is flattened into a repository of columns (paper §2.1): every
//! column that could plausibly appear in a join predicate is extracted from
//! its table together with the metadata DeepJoin's contextualization options
//! use (table title, column name, table context).

use std::sync::OnceLock;

use serde::{Deserialize, Serialize};

use crate::fxhash::FxHashSet;

/// Identifier of a column inside a [`Repository`](crate::repository::Repository).
///
/// Stored as `u32` (not `usize`) to keep hot index structures small, per the
/// type-size guidance in the performance guide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ColumnId(pub u32);

impl ColumnId {
    /// The id as an index into repository-ordered vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ColumnId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "col#{}", self.0)
    }
}

/// Metadata accompanying a column, used by the column-to-text transformation
/// options of Table 1 in the paper.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnMeta {
    /// Title of the table the column was extracted from.
    pub table_title: String,
    /// Header / name of the column.
    pub column_name: String,
    /// Free-text context accompanying the table (e.g. a brief description).
    pub table_context: String,
    /// Index of the source table in the originating corpus, if known.
    pub table_id: Option<u32>,
}

/// A column: an ordered list of cell values plus metadata.
///
/// Order matters to the *encoder* (PLMs are order-sensitive; §4.1 discusses
/// cell-shuffle augmentation precisely because of this) but not to
/// *joinability* (Definitions 2.1 and 2.3 are set/multiset based).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Column {
    /// Cell values in their original order, duplicates preserved.
    pub cells: Vec<String>,
    /// Metadata used for contextualization.
    pub meta: ColumnMeta,
    /// Cached set of distinct cell values (lazily built).
    #[serde(skip)]
    distinct: OnceLock<FxHashSet<String>>,
}

impl PartialEq for Column {
    fn eq(&self, other: &Self) -> bool {
        self.cells == other.cells && self.meta == other.meta
    }
}

impl Column {
    /// Create a column from cells and metadata.
    pub fn new(cells: Vec<String>, meta: ColumnMeta) -> Self {
        Self {
            cells,
            meta,
            distinct: OnceLock::new(),
        }
    }

    /// Create a column with default (empty) metadata — convenient in tests.
    pub fn from_cells<I, S>(cells: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self::new(cells.into_iter().map(Into::into).collect(), ColumnMeta::default())
    }

    /// Number of cells including duplicates.
    #[inline]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when the column has no cells.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The set of distinct cell values (built once, cached).
    pub fn distinct(&self) -> &FxHashSet<String> {
        self.distinct
            .get_or_init(|| self.cells.iter().cloned().collect())
    }

    /// Number of distinct cell values (`n` in the contextualization patterns).
    pub fn distinct_len(&self) -> usize {
        self.distinct().len()
    }

    /// Distinct cells in first-occurrence order. This is the order the
    /// column-to-text transformation concatenates (`col` pattern).
    pub fn distinct_in_order(&self) -> Vec<&str> {
        let mut seen: FxHashSet<&str> = FxHashSet::default();
        let mut out = Vec::with_capacity(self.cells.len());
        for c in &self.cells {
            if seen.insert(c.as_str()) {
                out.push(c.as_str());
            }
        }
        out
    }

    /// Word-count statistics over cells: `(max, min, avg)` numbers of
    /// whitespace-separated words per cell, as used by the `stat`
    /// contextualization patterns. Returns `(0, 0, 0.0)` for empty columns.
    pub fn word_stats(&self) -> (usize, usize, f64) {
        if self.cells.is_empty() {
            return (0, 0, 0.0);
        }
        let mut max = 0usize;
        let mut min = usize::MAX;
        let mut total = 0usize;
        for cell in &self.cells {
            let words = cell.split_whitespace().count();
            max = max.max(words);
            min = min.min(words);
            total += words;
        }
        (max, min, total as f64 / self.cells.len() as f64)
    }

    /// A copy of the column with cells permuted according to `perm` (used by
    /// the shuffle data augmentation). `perm` must be a permutation of
    /// `0..self.len()`.
    pub fn permuted(&self, perm: &[usize]) -> Column {
        debug_assert_eq!(perm.len(), self.cells.len());
        let cells = perm.iter().map(|&i| self.cells[i].clone()).collect();
        Column::new(cells, self.meta.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(cells: &[&str]) -> Column {
        Column::from_cells(cells.iter().copied())
    }

    #[test]
    fn distinct_dedupes() {
        let c = col(&["a", "b", "a", "c", "b"]);
        assert_eq!(c.len(), 5);
        assert_eq!(c.distinct_len(), 3);
        assert!(c.distinct().contains("a"));
        assert!(!c.distinct().contains("z"));
    }

    #[test]
    fn distinct_in_order_preserves_first_occurrence() {
        let c = col(&["b", "a", "b", "c", "a"]);
        assert_eq!(c.distinct_in_order(), vec!["b", "a", "c"]);
    }

    #[test]
    fn word_stats_counts_words() {
        let c = col(&["new york", "tokyo", "rio de janeiro"]);
        let (max, min, avg) = c.word_stats();
        assert_eq!(max, 3);
        assert_eq!(min, 1);
        assert!((avg - 2.0).abs() < 1e-9);
    }

    #[test]
    fn word_stats_empty() {
        let c = col(&[]);
        assert_eq!(c.word_stats(), (0, 0, 0.0));
    }

    #[test]
    fn permuted_reorders_cells_only() {
        let meta = ColumnMeta {
            column_name: "city".into(),
            ..ColumnMeta::default()
        };
        let c = Column::new(vec!["a".into(), "b".into(), "c".into()], meta.clone());
        let p = c.permuted(&[2, 0, 1]);
        assert_eq!(p.cells, vec!["c", "a", "b"]);
        assert_eq!(p.meta, meta);
        // Joinability-relevant content unchanged:
        assert_eq!(p.distinct(), c.distinct());
    }

    #[test]
    fn column_id_display_and_index() {
        let id = ColumnId(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "col#7");
    }
}
