//! The ground-truth oracle: the stand-in for the paper's expert labels.
//!
//! Table 7 of the paper evaluates semantic-join methods against labels from
//! human database researchers. Our synthetic lake knows, for every cell,
//! which underlying entity it denotes (pre-noise). The oracle judges
//! joinability on those entity sets: it is *threshold-free with respect to
//! surface strings*, exactly like a human judge — no single vector-matching
//! threshold τ reproduces it, which is the phenomenon Table 7 demonstrates.

use crate::corpus::ColumnProvenance;
use crate::fxhash::FxHashSet;

/// Ground-truth joinability judge.
#[derive(Debug, Clone, Copy)]
pub struct Oracle {
    /// Minimum ground-truth containment for a pair to count as joinable.
    pub threshold: f64,
}

impl Default for Oracle {
    fn default() -> Self {
        Self { threshold: 0.5 }
    }
}

impl Oracle {
    /// Create an oracle with an explicit containment threshold.
    pub fn new(threshold: f64) -> Self {
        Self { threshold }
    }

    /// Ground-truth joinability from `q` to `x`: the fraction of `q`'s
    /// distinct entities that occur in `x`, or 0 across domains.
    pub fn joinability(&self, q: &ColumnProvenance, x: &ColumnProvenance) -> f64 {
        if q.domain != x.domain {
            return 0.0;
        }
        let qset: FxHashSet<u32> = q.entities.iter().copied().collect();
        if qset.is_empty() {
            return 0.0;
        }
        let xset: FxHashSet<u32> = x.entities.iter().copied().collect();
        let inter = qset.intersection(&xset).count();
        inter as f64 / qset.len() as f64
    }

    /// Binary judgment: is `x` truly joinable with `q`?
    pub fn is_joinable(&self, q: &ColumnProvenance, x: &ColumnProvenance) -> bool {
        self.joinability(q, x) >= self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prov(domain: u32, entities: &[u32]) -> ColumnProvenance {
        ColumnProvenance {
            domain,
            entities: entities.to_vec(),
        }
    }

    #[test]
    fn cross_domain_is_never_joinable() {
        let o = Oracle::default();
        let q = prov(0, &[1, 2, 3]);
        let x = prov(1, &[1, 2, 3]);
        assert_eq!(o.joinability(&q, &x), 0.0);
        assert!(!o.is_joinable(&q, &x));
    }

    #[test]
    fn containment_fraction() {
        let o = Oracle::default();
        let q = prov(0, &[1, 2, 3, 4]);
        let x = prov(0, &[2, 4, 9]);
        assert!((o.joinability(&q, &x) - 0.5).abs() < 1e-12);
        assert!(o.is_joinable(&q, &x));
        assert!(!Oracle::new(0.6).is_joinable(&q, &x));
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let o = Oracle::default();
        let q = prov(0, &[1, 1, 1, 2]);
        let x = prov(0, &[1]);
        assert!((o.joinability(&q, &x) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_query_scores_zero() {
        let o = Oracle::default();
        assert_eq!(o.joinability(&prov(0, &[]), &prov(0, &[1])), 0.0);
    }

    #[test]
    fn asymmetry() {
        let o = Oracle::default();
        let q = prov(0, &[1, 2]);
        let x = prov(0, &[1, 2, 3, 4]);
        assert_eq!(o.joinability(&q, &x), 1.0);
        assert!((o.joinability(&x, &q) - 0.5).abs() < 1e-12);
    }
}
