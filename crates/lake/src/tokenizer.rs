//! A small word-level tokenizer and vocabulary.
//!
//! Both the SGNS pre-training (in `deepjoin-embed`) and the column encoder
//! (in `deepjoin-nn` / `deepjoin`) consume token ids produced here. Tokens
//! are lowercased alphanumeric runs; punctuation separates tokens; numbers
//! are kept as-is (cell values like zip codes matter for joins).

use serde::{Deserialize, Serialize};

use crate::fxhash::FxHashMap;

/// Split text into lowercase tokens: maximal runs of alphanumeric characters.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            for lc in ch.to_lowercase() {
                cur.push(lc);
            }
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Hybrid tokenization — the miniature of PLM subword tokenization.
///
/// A WordPiece/BPE tokenizer gives a transformer *both* surface identity
/// (the exact piece sequence distinguishes `Fort_Kelso` from `fort kelso`)
/// and content overlap (the pieces still share subwords). This hybrid
/// scheme reproduces that: each whitespace-delimited word emits
///
/// 1. its **surface token** — the word with case and inner punctuation
///    preserved (template delimiters `,:.()` are trimmed from the edges);
/// 2. its lowercase alphanumeric **subtokens**, when they differ from the
///    surface form.
///
/// `"Fort_Kelso, 12"` → `["Fort_Kelso", "fort", "kelso", "12"]`.
///
/// Equi-trained encoders can attend to the surface tokens (exact-match
/// identity), semantic-trained encoders to the subtokens (format-invariant
/// content); the attention pooling decides which matters.
pub fn tokenize_hybrid(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    for raw in text.split_whitespace() {
        let surface = raw.trim_matches(|c: char| matches!(c, ',' | ':' | '.' | ';' | '(' | ')'));
        if surface.is_empty() {
            continue;
        }
        out.push(surface.to_string());
        // Lowercase alphanumeric subtokens.
        let subs = tokenize(surface);
        if !(subs.len() == 1 && subs[0] == surface) {
            for s in subs {
                out.push(s);
            }
        }
    }
    out
}

/// Token id. `0` is reserved for the unknown token.
pub type TokenId = u32;

/// The reserved id for out-of-vocabulary tokens.
pub const UNK: TokenId = 0;

/// A frequency-built vocabulary mapping tokens to dense ids.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Vocabulary {
    token_to_id: FxHashMap<String, TokenId>,
    id_to_token: Vec<String>,
    counts: Vec<u64>,
}

impl Vocabulary {
    /// An empty vocabulary containing only `<unk>`.
    pub fn new() -> Self {
        let mut v = Self {
            token_to_id: FxHashMap::default(),
            id_to_token: Vec::new(),
            counts: Vec::new(),
        };
        v.id_to_token.push("<unk>".to_string());
        v.counts.push(0);
        v.token_to_id.insert("<unk>".to_string(), UNK);
        v
    }

    /// Build a vocabulary from an iterator of texts, keeping tokens that
    /// occur at least `min_count` times. Ids are assigned in descending
    /// frequency order (ties broken lexicographically) for determinism.
    pub fn build<'a, I: IntoIterator<Item = &'a str>>(texts: I, min_count: u64) -> Self {
        Self::build_tokenized(texts.into_iter().map(tokenize), min_count)
    }

    /// Build from texts using the hybrid (surface + subtoken) scheme of
    /// [`tokenize_hybrid`].
    pub fn build_hybrid<'a, I: IntoIterator<Item = &'a str>>(texts: I, min_count: u64) -> Self {
        Self::build_tokenized(texts.into_iter().map(tokenize_hybrid), min_count)
    }

    /// Rebuild a vocabulary from `(token, count)` pairs **in id order**
    /// (ids 1..; id 0 stays `<unk>`). Persistence path: preserves the exact
    /// id assignment of the saved vocabulary.
    pub fn from_id_order<I: IntoIterator<Item = (String, u64)>>(pairs: I) -> Self {
        let mut v = Self::new();
        for (tok, count) in pairs {
            let id = v.id_to_token.len() as TokenId;
            v.token_to_id.insert(tok.clone(), id);
            v.id_to_token.push(tok);
            v.counts.push(count);
        }
        v
    }

    /// Build from pre-tokenized token lists.
    pub fn build_tokenized<I: IntoIterator<Item = Vec<String>>>(lists: I, min_count: u64) -> Self {
        let mut freq: FxHashMap<String, u64> = FxHashMap::default();
        for toks in lists {
            for tok in toks {
                *freq.entry(tok).or_insert(0) += 1;
            }
        }
        let mut entries: Vec<(String, u64)> =
            freq.into_iter().filter(|(_, c)| *c >= min_count).collect();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));

        let mut v = Self::new();
        for (tok, count) in entries {
            let id = v.id_to_token.len() as TokenId;
            v.token_to_id.insert(tok.clone(), id);
            v.id_to_token.push(tok);
            v.counts.push(count);
        }
        v
    }

    /// Number of tokens including `<unk>`.
    pub fn len(&self) -> usize {
        self.id_to_token.len()
    }

    /// True when only `<unk>` is present.
    pub fn is_empty(&self) -> bool {
        self.id_to_token.len() <= 1
    }

    /// Id of `token`, or [`UNK`].
    pub fn id(&self, token: &str) -> TokenId {
        self.token_to_id.get(token).copied().unwrap_or(UNK)
    }

    /// Token string for `id`. Panics on out-of-range ids.
    pub fn token(&self, id: TokenId) -> &str {
        &self.id_to_token[id as usize]
    }

    /// Corpus count recorded for `id` at build time.
    pub fn count(&self, id: TokenId) -> u64 {
        self.counts[id as usize]
    }

    /// Encode text to token ids (OOV → `UNK`).
    pub fn encode(&self, text: &str) -> Vec<TokenId> {
        tokenize(text).iter().map(|t| self.id(t)).collect()
    }

    /// Encode text with hash-bucket fallback: out-of-vocabulary tokens map
    /// deterministically to one of `buckets` reserved ids in
    /// `[len(), len() + buckets)` instead of `UNK`.
    ///
    /// This is the "hashing trick" fastText uses for its n-gram table: two
    /// occurrences of the same unseen word still receive the same id, so the
    /// encoder keeps an *identity* signal for cell values never seen during
    /// training — essential for equi-joins over a large test repository.
    pub fn encode_bucketed(&self, text: &str, buckets: u32) -> Vec<TokenId> {
        self.encode_tokens_bucketed(&tokenize(text), buckets)
    }

    /// Hybrid-tokenized variant of [`Self::encode_bucketed`].
    pub fn encode_hybrid_bucketed(&self, text: &str, buckets: u32) -> Vec<TokenId> {
        self.encode_tokens_bucketed(&tokenize_hybrid(text), buckets)
    }

    /// Bucket-encode pre-tokenized tokens (see [`Self::encode_bucketed`]).
    pub fn encode_tokens_bucketed(&self, tokens: &[String], buckets: u32) -> Vec<TokenId> {
        assert!(buckets > 0, "need at least one bucket");
        let base = self.len() as TokenId;
        tokens
            .iter()
            .map(|t| match self.token_to_id.get(t) {
                Some(&id) => id,
                None => {
                    let h = crate::fxhash::hash_bytes(t.as_bytes());
                    base + (h % buckets as u64) as TokenId
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_lowercases_and_splits() {
        assert_eq!(tokenize("Hello, World!"), vec!["hello", "world"]);
        assert_eq!(tokenize("a-b_c"), vec!["a", "b", "c"]);
        assert_eq!(tokenize("ZIP 90210"), vec!["zip", "90210"]);
        assert_eq!(tokenize(""), Vec::<String>::new());
        assert_eq!(tokenize("  ,,  "), Vec::<String>::new());
    }

    #[test]
    fn tokenize_handles_unicode() {
        assert_eq!(tokenize("Əlif Ba"), vec!["əlif", "ba"]);
        assert_eq!(tokenize("東京 tower"), vec!["東京", "tower"]);
    }

    #[test]
    fn vocabulary_orders_by_frequency() {
        let texts = ["b b b a a c", "a b"];
        let v = Vocabulary::build(texts.iter().copied(), 1);
        // b appears 4x, a 3x, c 1x
        assert_eq!(v.id("b"), 1);
        assert_eq!(v.id("a"), 2);
        assert_eq!(v.id("c"), 3);
        assert_eq!(v.count(1), 4);
        assert_eq!(v.len(), 4);
    }

    #[test]
    fn min_count_filters() {
        let texts = ["a a b"];
        let v = Vocabulary::build(texts.iter().copied(), 2);
        assert_eq!(v.id("a"), 1);
        assert_eq!(v.id("b"), UNK);
    }

    #[test]
    fn encode_roundtrip() {
        let texts = ["tokyo paris tokyo"];
        let v = Vocabulary::build(texts.iter().copied(), 1);
        let ids = v.encode("Tokyo osaka");
        assert_eq!(ids.len(), 2);
        assert_eq!(v.token(ids[0]), "tokyo");
        assert_eq!(ids[1], UNK);
    }

    #[test]
    fn hybrid_tokenize_emits_surface_and_subtokens() {
        assert_eq!(
            tokenize_hybrid("Fort_Kelso, 12"),
            vec!["Fort_Kelso", "fort", "kelso", "12"]
        );
        // Plain lowercase words emit only themselves.
        assert_eq!(tokenize_hybrid("paris tokyo"), vec!["paris", "tokyo"]);
        // Template punctuation is trimmed; inner punctuation preserved.
        assert_eq!(
            tokenize_hybrid("city: a.b@c.com."),
            vec!["city", "a.b@c.com", "a", "b", "c", "com"]
        );
        assert_eq!(tokenize_hybrid("  ,,  "), Vec::<String>::new());
    }

    #[test]
    fn hybrid_formats_share_subtokens_but_not_surface() {
        let a = tokenize_hybrid("fort kelso");
        let b = tokenize_hybrid("Fort_Kelso");
        // Different surfaces…
        assert!(!b.contains(&"fort kelso".to_string()));
        assert_ne!(a, b);
        // …same content subtokens.
        assert!(b.contains(&"fort".to_string()) && b.contains(&"kelso".to_string()));
        assert!(a.contains(&"fort".to_string()) && a.contains(&"kelso".to_string()));
    }

    #[test]
    fn hybrid_vocab_and_encoding_roundtrip() {
        let v = Vocabulary::build_hybrid(["Fort_Kelso rest"].iter().copied(), 1);
        assert_ne!(v.id("Fort_Kelso"), UNK);
        assert_ne!(v.id("fort"), UNK);
        let ids = v.encode_hybrid_bucketed("Fort_Kelso unseen_word", 512);
        assert_eq!(ids[0], v.id("Fort_Kelso"));
        // OOV surface + subtokens land in buckets.
        assert!(ids[3] >= v.len() as TokenId);
    }

    #[test]
    fn bucketed_encode_is_stable_for_oov() {
        let v = Vocabulary::build(["seen words here"].iter().copied(), 1);
        let a = v.encode_bucketed("seen unseen1 unseen1 unseen2", 4096);
        assert_eq!(a[0], v.id("seen"));
        assert!(a[1] >= v.len() as TokenId && a[1] < (v.len() + 4096) as TokenId);
        assert_eq!(a[1], a[2], "same OOV word -> same bucket");
        // Different OOV words *usually* differ (these two do under FxHash).
        assert_ne!(a[1], a[3]);
    }

    #[test]
    fn deterministic_ids_on_ties() {
        let v1 = Vocabulary::build(["x y", "y x"].iter().copied(), 1);
        let v2 = Vocabulary::build(["y x", "x y"].iter().copied(), 1);
        assert_eq!(v1.id("x"), v2.id("x"));
        assert_eq!(v1.id("y"), v2.id("y"));
    }
}
