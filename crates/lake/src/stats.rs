//! Dataset statistics (paper Table 2).

use serde::{Deserialize, Serialize};

use crate::repository::Repository;

/// Statistics of a column repository, matching the columns of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RepoStats {
    /// |𝒳| — number of columns.
    pub num_columns: usize,
    /// max |X| — largest column (cells, duplicates included).
    pub max_len: usize,
    /// min |X| — smallest column.
    pub min_len: usize,
    /// avg |X| — mean column length.
    pub avg_len: f64,
    /// Mean number of *distinct* values per column.
    pub avg_distinct: f64,
}

impl RepoStats {
    /// Compute statistics for `repo`. Empty repositories yield zeroed stats.
    pub fn compute(repo: &Repository) -> Self {
        if repo.is_empty() {
            return Self {
                num_columns: 0,
                max_len: 0,
                min_len: 0,
                avg_len: 0.0,
                avg_distinct: 0.0,
            };
        }
        let mut max_len = 0usize;
        let mut min_len = usize::MAX;
        let mut total = 0usize;
        let mut total_distinct = 0usize;
        for c in repo.columns() {
            max_len = max_len.max(c.len());
            min_len = min_len.min(c.len());
            total += c.len();
            total_distinct += c.distinct_len();
        }
        let n = repo.len() as f64;
        Self {
            num_columns: repo.len(),
            max_len,
            min_len,
            avg_len: total as f64 / n,
            avg_distinct: total_distinct as f64 / n,
        }
    }
}

impl std::fmt::Display for RepoStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "|X|={} max|X|={} min|X|={} avg|X|={:.2} avg distinct={:.2}",
            self.num_columns, self.max_len, self.min_len, self.avg_len, self.avg_distinct
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    #[test]
    fn computes_basic_stats() {
        let repo = Repository::from_columns(vec![
            Column::from_cells((0..5).map(|i| format!("a{i}"))),
            Column::from_cells((0..15).map(|i| format!("b{}", i % 5))),
        ]);
        let s = RepoStats::compute(&repo);
        assert_eq!(s.num_columns, 2);
        assert_eq!(s.max_len, 15);
        assert_eq!(s.min_len, 5);
        assert!((s.avg_len - 10.0).abs() < 1e-12);
        assert!((s.avg_distinct - 5.0).abs() < 1e-12);
    }

    #[test]
    fn empty_repo() {
        let s = RepoStats::compute(&Repository::new());
        assert_eq!(s.num_columns, 0);
        assert_eq!(s.min_len, 0);
    }

    #[test]
    fn display_is_readable() {
        let repo = Repository::from_columns(vec![Column::from_cells(
            (0..5).map(|i| i.to_string()),
        )]);
        let s = RepoStats::compute(&repo).to_string();
        assert!(s.contains("|X|=1"));
    }
}
