//! Cell-level noise: misspellings and format variants.
//!
//! Semantic joins exist because real lakes contain the *same* entity written
//! differently ("American Indian & Alaska Native" vs "Mainland Indigenous",
//! misspellings, case and punctuation variants — paper §1). The generator
//! perturbs a fraction of cells with these transforms; a char-n-gram
//! embedding keeps perturbed strings near their originals, while exact string
//! equality (equi-join) no longer matches them.

use rand::rngs::StdRng;
use rand::Rng;

/// Kinds of perturbation the noiser can apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NoiseKind {
    /// Swap two adjacent characters ("paris" → "pairs").
    Transpose,
    /// Drop one character ("tokyo" → "tkyo").
    Deletion,
    /// Duplicate one character ("lima" → "liima").
    Duplication,
    /// Uppercase the first letter of each word ("new york" → "New York").
    TitleCase,
    /// Replace inner spaces with underscores ("new york" → "new_york").
    Underscore,
    /// Append a short qualifier token (" city", " jr", " v2").
    Suffix,
}

const ALL_KINDS: [NoiseKind; 6] = [
    NoiseKind::Transpose,
    NoiseKind::Deletion,
    NoiseKind::Duplication,
    NoiseKind::TitleCase,
    NoiseKind::Underscore,
    NoiseKind::Suffix,
];

const SUFFIXES: [&str; 4] = [" city", " jr", " v2", " est"];

/// Apply one random perturbation to `s`. Always returns a string different
/// from the input when the input has at least two characters; single-char and
/// empty inputs may come back unchanged.
pub fn perturb(s: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = s.chars().collect();
    if chars.len() < 2 {
        return s.to_string();
    }
    // Try kinds until one changes the string; bounded to stay total.
    for _ in 0..8 {
        let kind = ALL_KINDS[rng.gen_range(0..ALL_KINDS.len())];
        let out = apply(&chars, s, kind, rng);
        if out != s {
            return out;
        }
    }
    // Fallback that always changes the string.
    format!("{s}{}", SUFFIXES[rng.gen_range(0..SUFFIXES.len())])
}

fn apply(chars: &[char], original: &str, kind: NoiseKind, rng: &mut StdRng) -> String {
    match kind {
        NoiseKind::Transpose => {
            let i = rng.gen_range(0..chars.len() - 1);
            let mut c = chars.to_vec();
            c.swap(i, i + 1);
            c.into_iter().collect()
        }
        NoiseKind::Deletion => {
            let i = rng.gen_range(0..chars.len());
            let mut c = chars.to_vec();
            c.remove(i);
            c.into_iter().collect()
        }
        NoiseKind::Duplication => {
            let i = rng.gen_range(0..chars.len());
            let mut c = chars.to_vec();
            c.insert(i, c[i]);
            c.into_iter().collect()
        }
        NoiseKind::TitleCase => original
            .split(' ')
            .map(|w| {
                let mut it = w.chars();
                match it.next() {
                    Some(f) => f.to_uppercase().chain(it).collect::<String>(),
                    None => String::new(),
                }
            })
            .collect::<Vec<_>>()
            .join(" "),
        NoiseKind::Underscore => original.replace(' ', "_"),
        NoiseKind::Suffix => format!("{original}{}", SUFFIXES[rng.gen_range(0..SUFFIXES.len())]),
    }
}

/// Apply a *strong* perturbation: several stacked edits plus, for
/// multi-word cells, word reordering or word dropping.
///
/// Strong variants land *outside* the vector-matching radius of typical τ
/// settings while remaining recognizably the same entity to a human (or to
/// a model that uses table metadata). They create the gap between
/// threshold-based semantic matching (PEXESO) and learned joinability that
/// Table 7 of the paper demonstrates.
pub fn perturb_strong(s: &str, rng: &mut StdRng) -> String {
    let words: Vec<&str> = s.split(' ').collect();
    let mut out = if words.len() >= 2 {
        match rng.gen_range(0..3) {
            // Reorder words.
            0 => {
                let mut w = words.clone();
                let i = rng.gen_range(0..w.len() - 1);
                w.swap(i, i + 1);
                w.join(" ")
            }
            // Drop one word (never the only one).
            1 => {
                let drop = rng.gen_range(0..words.len());
                words
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != drop)
                    .map(|(_, w)| *w)
                    .collect::<Vec<_>>()
                    .join(" ")
            }
            // Initialize the first word ("fort kelso" -> "f kelso").
            _ => {
                let mut w: Vec<String> = words.iter().map(|x| x.to_string()).collect();
                if let Some(first) = w[0].chars().next() {
                    w[0] = first.to_string();
                }
                w.join(" ")
            }
        }
    } else {
        s.to_string()
    };
    // Stack a couple of character-level edits on top.
    for _ in 0..2 {
        out = perturb(&out, rng);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn perturb_changes_string() {
        let mut rng = StdRng::seed_from_u64(11);
        for s in ["paris", "new york", "ab", "swift widget 12"] {
            for _ in 0..20 {
                let p = perturb(s, &mut rng);
                assert_ne!(p, s, "perturbation left '{s}' unchanged");
            }
        }
    }

    #[test]
    fn perturb_keeps_most_characters() {
        // A single edit keeps the string recognizably close (length within 6).
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..100 {
            let p = perturb("montevideo", &mut rng);
            assert!((p.chars().count() as i64 - 10).abs() <= 6, "{p}");
        }
    }

    #[test]
    fn short_inputs_are_safe() {
        let mut rng = StdRng::seed_from_u64(13);
        assert_eq!(perturb("", &mut rng), "");
        assert_eq!(perturb("x", &mut rng), "x");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(99);
        let mut b = StdRng::seed_from_u64(99);
        for _ in 0..50 {
            assert_eq!(perturb("granada 17", &mut a), perturb("granada 17", &mut b));
        }
    }

    #[test]
    fn strong_perturb_changes_more() {
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..30 {
            let p = perturb_strong("fort kelso 123", &mut rng);
            assert_ne!(p, "fort kelso 123");
        }
        // Single-word inputs still get stacked edits.
        let p = perturb_strong("montevideo", &mut rng);
        assert_ne!(p, "montevideo");
    }

    #[test]
    fn title_case_variant() {
        let chars: Vec<char> = "new york".chars().collect();
        let mut rng = StdRng::seed_from_u64(1);
        let out = apply(&chars, "new york", NoiseKind::TitleCase, &mut rng);
        assert_eq!(out, "New York");
    }

    #[test]
    fn underscore_variant() {
        let chars: Vec<char> = "a b c".chars().collect();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(apply(&chars, "a b c", NoiseKind::Underscore, &mut rng), "a_b_c");
    }
}
