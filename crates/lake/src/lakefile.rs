//! On-disk lake files.
//!
//! A lake file stores the *generator inputs* (a [`CorpusConfig`]) and
//! regenerates the corpus deterministically on load — corpora are pure
//! functions of their config, so persisting the config is lossless and
//! tiny.
//!
//! The current format (`DJLAKE2`) is a `DJAR` container with a single
//! checksummed `LAKE` section, so a torn copy or flipped bit is caught at
//! load time instead of silently regenerating a different lake. The legacy
//! whitespace-separated text format (`DJLAKE1`) is still read.

use deepjoin_store::codec::{DecodeErrorKind, Reader, Writer};
use deepjoin_store::{is_container, Container, ContainerBuilder, DecodeError};

use crate::corpus::{CorpusConfig, CorpusProfile};

/// Container section holding the corpus config.
pub const SECTION_LAKE: [u8; 4] = *b"LAKE";

const LAKE_MAGIC: &[u8; 4] = b"DJL2";
const LAKE_VERSION: u8 = 1;

/// Why a lake file failed to load.
#[derive(Debug)]
pub enum LakeFileError {
    /// The binary (`DJLAKE2`) payload is damaged or malformed.
    Decode(DecodeError),
    /// The legacy text (`DJLAKE1`) payload is malformed.
    Legacy(String),
}

impl std::fmt::Display for LakeFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LakeFileError::Decode(e) => write!(f, "lake file: {e}"),
            LakeFileError::Legacy(why) => write!(f, "lake file (legacy): {why}"),
        }
    }
}

impl std::error::Error for LakeFileError {}

impl From<DecodeError> for LakeFileError {
    fn from(e: DecodeError) -> Self {
        LakeFileError::Decode(e)
    }
}

fn profile_tag(p: CorpusProfile) -> u8 {
    match p {
        CorpusProfile::Webtable => 0,
        CorpusProfile::Wikitable => 1,
    }
}

/// Serialize a corpus config as a `DJLAKE2` container.
pub fn encode(config: &CorpusConfig) -> Vec<u8> {
    let mut w = Writer::with_capacity(96);
    w.put_slice(LAKE_MAGIC);
    w.put_u8(LAKE_VERSION);
    w.put_u8(profile_tag(config.profile));
    w.put_u64_le(config.num_tables as u64);
    w.put_u64_le(config.num_domains as u64);
    w.put_u64_le(config.entities_per_domain as u64);
    // Floats travel as raw IEEE-754 bits for byte-exact roundtrips.
    w.put_u64_le(config.zipf_exponent.to_bits());
    w.put_u64_le(config.focus_rate.to_bits());
    w.put_u64_le(config.focus_width.to_bits());
    w.put_u64_le(config.windows_per_domain as u64);
    w.put_u64_le(config.noise_rate.to_bits());
    w.put_u64_le(config.strong_noise_rate.to_bits());
    w.put_u64_le(config.seed);
    ContainerBuilder::new()
        .section(SECTION_LAKE, w.into_vec())
        .build()
}

/// Deserialize a lake file, accepting both `DJLAKE2` containers and legacy
/// `DJLAKE1` text.
pub fn decode(bytes: &[u8]) -> Result<CorpusConfig, LakeFileError> {
    if is_container(bytes) {
        decode_v2(bytes)
    } else {
        decode_v1(bytes)
    }
}

fn decode_v2(bytes: &[u8]) -> Result<CorpusConfig, LakeFileError> {
    let container = Container::parse(bytes)?;
    let payload = container
        .section(SECTION_LAKE, "LAKE")
        .ok_or_else(|| {
            LakeFileError::Decode(DecodeError::new(
                DecodeErrorKind::Invalid("lake container has no LAKE section"),
                "container",
                0,
            ))
        })??;
    let mut r = Reader::new(payload, "LAKE");
    r.expect_magic(LAKE_MAGIC)?;
    r.expect_version(LAKE_VERSION)?;
    let profile = match r.u8()? {
        0 => CorpusProfile::Webtable,
        1 => CorpusProfile::Wikitable,
        other => return Err(r.error(DecodeErrorKind::BadDiscriminant(other)).into()),
    };
    Ok(CorpusConfig {
        profile,
        num_tables: r.u64_le()? as usize,
        num_domains: r.u64_le()? as usize,
        entities_per_domain: r.u64_le()? as usize,
        zipf_exponent: f64::from_bits(r.u64_le()?),
        focus_rate: f64::from_bits(r.u64_le()?),
        focus_width: f64::from_bits(r.u64_le()?),
        windows_per_domain: r.u64_le()? as usize,
        noise_rate: f64::from_bits(r.u64_le()?),
        strong_noise_rate: f64::from_bits(r.u64_le()?),
        seed: r.u64_le()?,
    })
}

fn decode_v1(bytes: &[u8]) -> Result<CorpusConfig, LakeFileError> {
    let text = std::str::from_utf8(bytes)
        .map_err(|_| LakeFileError::Legacy("not UTF-8".to_string()))?;
    let parts: Vec<&str> = text.split_whitespace().collect();
    if parts.len() != 12 || parts[0] != "DJLAKE1" {
        return Err(LakeFileError::Legacy("not a dj lake file".to_string()));
    }
    let profile = match parts[1] {
        "Webtable" => CorpusProfile::Webtable,
        "Wikitable" => CorpusProfile::Wikitable,
        other => return Err(LakeFileError::Legacy(format!("unknown profile {other}"))),
    };
    fn field<T: std::str::FromStr>(s: &str, name: &str) -> Result<T, LakeFileError> {
        s.parse()
            .map_err(|_| LakeFileError::Legacy(format!("bad {name}: {s:?}")))
    }
    Ok(CorpusConfig {
        profile,
        num_tables: field(parts[2], "num_tables")?,
        num_domains: field(parts[3], "num_domains")?,
        entities_per_domain: field(parts[4], "entities_per_domain")?,
        zipf_exponent: field(parts[5], "zipf_exponent")?,
        focus_rate: field(parts[6], "focus_rate")?,
        focus_width: field(parts[7], "focus_width")?,
        windows_per_domain: field(parts[8], "windows_per_domain")?,
        noise_rate: field(parts[9], "noise_rate")?,
        strong_noise_rate: field(parts[10], "strong_noise_rate")?,
        seed: field(parts[11], "seed")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CorpusConfig {
        let mut c = CorpusConfig::new(CorpusProfile::Wikitable, 123, 9);
        c.noise_rate = 0.125;
        c
    }

    #[test]
    fn v2_roundtrip_is_exact() {
        let config = sample();
        let bytes = encode(&config);
        let back = decode(&bytes).unwrap();
        assert_eq!(format!("{config:?}"), format!("{back:?}"));
    }

    #[test]
    fn legacy_text_still_loads() {
        let c = sample();
        let line = format!(
            "DJLAKE1 {:?} {} {} {} {} {} {} {} {} {} {}\n",
            c.profile,
            c.num_tables,
            c.num_domains,
            c.entities_per_domain,
            c.zipf_exponent,
            c.focus_rate,
            c.focus_width,
            c.windows_per_domain,
            c.noise_rate,
            c.strong_noise_rate,
            c.seed,
        );
        let back = decode(line.as_bytes()).unwrap();
        assert_eq!(back.num_tables, c.num_tables);
        assert_eq!(back.seed, c.seed);
    }

    #[test]
    fn corruption_is_detected() {
        let bytes = encode(&sample());
        // Bit flip in the payload: checksum mismatch.
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x04;
        match decode(&bad) {
            Err(LakeFileError::Decode(e)) => assert!(e.is_checksum_mismatch()),
            other => panic!("expected checksum failure, got {other:?}"),
        }
        // Truncation at every offset: structured error, never a panic.
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut]).is_err());
        }
        // Garbage that is neither format.
        assert!(decode(b"DJLAKE9 what").is_err());
    }
}
