//! # deepjoin-lake
//!
//! Data-lake substrate for the DeepJoin reproduction: the column/table data
//! model, the repository abstraction (𝒳 in the paper), equi-joinability
//! (Definition 2.1) with exact reference searchers, a word tokenizer, and a
//! synthetic corpus generator with a ground-truth oracle that stands in for
//! the WDC Webtable and Wikipedia table corpora (see `DESIGN.md`).
//!
//! ```
//! use deepjoin_lake::corpus::{Corpus, CorpusConfig, CorpusProfile};
//! use deepjoin_lake::joinability::brute_force_topk;
//!
//! let corpus = Corpus::generate(CorpusConfig::new(CorpusProfile::Webtable, 200, 42));
//! let (repo, _prov) = corpus.to_repository();
//! let queries = corpus.sample_queries(1, 7);
//! let top = brute_force_topk(&repo, &queries[0].0, 10);
//! assert_eq!(top.len(), 10);
//! ```

#![warn(missing_docs)]

pub mod column;
pub mod corpus;
pub mod csv;
pub mod dictionary;
pub mod fxhash;
pub mod joinability;
pub mod lakefile;
pub mod live_oracle;
pub mod multiset;
pub mod noise;
pub mod oracle;
pub mod repository;
pub mod stats;
pub mod table;
pub mod tokenizer;
pub mod zipf;

pub use column::{Column, ColumnId, ColumnMeta};
pub use corpus::{ColumnProvenance, Corpus, CorpusConfig, CorpusProfile};
pub use joinability::{equi_joinability, overlap, ScoredColumn};
pub use live_oracle::{MutationOracle, OracleColumn};
pub use multiset::{join_result_count, multiset_joinability};
pub use oracle::Oracle;
pub use repository::{ExtractionRule, Repository};
pub use stats::RepoStats;
pub use table::Table;
pub use tokenizer::{tokenize, TokenId, Vocabulary, UNK};
