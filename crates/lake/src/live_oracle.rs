//! An executable specification of live-lake mutation semantics
//! (DESIGN.md §13), deliberately embedding-free: it tracks only *which*
//! columns survive a sequence of `add-table` / `drop-table` operations, in
//! insertion order. The property tests in the core crate mutate a real
//! [`LiveLake`](../deepjoin/live/struct.LiveLake.html) through a random
//! interleaving of adds, drops, flushes, and compactions, then rebuild a
//! from-scratch index over `surviving()` and demand byte-identical search
//! results — any divergence means the lake's recovery or compaction logic
//! changed observable state.

/// One surviving column: where it came from and its cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleColumn {
    /// Table title the column was added under.
    pub table: String,
    /// Column name within its table.
    pub name: String,
    /// Cell values.
    pub cells: Vec<String>,
}

/// Reference model of live mutations: an append-only log of adds with a
/// tombstone flag per column. Drops never reorder survivors — exactly the
/// invariant the real lake's stable global ids enforce.
#[derive(Debug, Clone, Default)]
pub struct MutationOracle {
    columns: Vec<(OracleColumn, bool)>,
}

impl MutationOracle {
    /// Empty oracle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Oracle pre-seeded with base columns (the immutable snapshot's
    /// contents), so base-table drops are part of the specification too.
    pub fn with_base(base: impl IntoIterator<Item = OracleColumn>) -> Self {
        Self {
            columns: base.into_iter().map(|c| (c, false)).collect(),
        }
    }

    /// Record an `add-table`: every column appends, live from birth.
    pub fn add_table(&mut self, title: &str, columns: &[(String, Vec<String>)]) {
        for (name, cells) in columns {
            self.columns.push((
                OracleColumn {
                    table: title.to_string(),
                    name: name.clone(),
                    cells: cells.clone(),
                },
                false,
            ));
        }
    }

    /// Record a `drop-table`: tombstone every live column of `title`.
    /// Returns how many columns died (0 when the title names nothing —
    /// the real lake reports that as an error, the oracle just counts).
    pub fn drop_table(&mut self, title: &str) -> usize {
        let mut dropped = 0;
        for (col, dead) in &mut self.columns {
            if !*dead && col.table == title {
                *dead = true;
                dropped += 1;
            }
        }
        dropped
    }

    /// The surviving columns, in add order. This is the observable state a
    /// crash-recovered or compacted lake must reproduce exactly.
    pub fn surviving(&self) -> Vec<OracleColumn> {
        self.columns
            .iter()
            .filter(|(_, dead)| !*dead)
            .map(|(c, _)| c.clone())
            .collect()
    }

    /// Surviving `table.name` labels in add order (the cheap comparison
    /// key when cells are not in question).
    pub fn surviving_labels(&self) -> Vec<String> {
        self.columns
            .iter()
            .filter(|(_, dead)| !*dead)
            .map(|(c, _)| format!("{}.{}", c.table, c.name))
            .collect()
    }

    /// Total columns ever added (dead or alive).
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True when nothing was ever added.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(table: &str, name: &str) -> OracleColumn {
        OracleColumn {
            table: table.into(),
            name: name.into(),
            cells: vec!["x".into()],
        }
    }

    #[test]
    fn adds_accumulate_in_order_and_drops_tombstone_by_title() {
        let mut o = MutationOracle::new();
        o.add_table("t1", &[("a".into(), vec!["1".into()]), ("b".into(), vec![])]);
        o.add_table("t2", &[("c".into(), vec!["2".into()])]);
        assert_eq!(o.surviving_labels(), vec!["t1.a", "t1.b", "t2.c"]);
        assert_eq!(o.drop_table("t1"), 2);
        assert_eq!(o.surviving_labels(), vec!["t2.c"]);
        // Dropping again finds nothing: the tombstones are permanent.
        assert_eq!(o.drop_table("t1"), 0);
        assert_eq!(o.len(), 3);
    }

    #[test]
    fn re_added_title_after_a_drop_is_a_fresh_table() {
        let mut o = MutationOracle::new();
        o.add_table("t", &[("a".into(), vec![])]);
        o.drop_table("t");
        o.add_table("t", &[("b".into(), vec![])]);
        // Only the new incarnation survives; the old one stays dead.
        assert_eq!(o.surviving_labels(), vec!["t.b"]);
        assert_eq!(o.drop_table("t"), 1);
    }

    #[test]
    fn base_seeding_makes_base_drops_part_of_the_spec() {
        let mut o = MutationOracle::with_base([col("base", "k"), col("other", "v")]);
        o.add_table("live", &[("w".into(), vec![])]);
        assert_eq!(o.drop_table("base"), 1);
        assert_eq!(o.surviving_labels(), vec!["other.v", "live.w"]);
    }
}
