//! A seeded Zipf sampler.
//!
//! Real data-lake value distributions are heavy-tailed: a few entities appear
//! in very many columns. The corpus generator samples entities Zipfianly so
//! the synthetic lake reproduces JOSIE's motivating regime (skewed token
//! frequencies make prefix-filter behaviour realistic).
//!
//! Implementation: inverse-CDF over precomputed cumulative weights, O(log n)
//! per sample. `rand_distr` is avoided to stay inside the approved
//! dependency set; the distribution is simple enough to own.

use rand::Rng;

/// Zipf distribution over ranks `0..n` with exponent `s`:
/// `P(rank = i) ∝ 1 / (i + 1)^s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Create a sampler over `n` ranks with exponent `s >= 0`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is negative/NaN.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s >= 0.0 && s.is_finite(), "exponent must be finite and >= 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating point: the last entry must cover 1.0.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Self { cdf }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draw a rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // partition_point: first index whose cdf >= u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_s_zero() {
        let z = Zipf::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "counts {counts:?}");
        }
    }

    #[test]
    fn skewed_when_s_large() {
        let z = Zipf::new(100, 1.5);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = vec![0usize; 100];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] * 5, "rank 0 should dominate: {} vs {}", counts[0], counts[10]);
        assert!(counts[0] > counts[99]);
    }

    #[test]
    fn all_ranks_in_range() {
        let z = Zipf::new(7, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1_000 {
            assert!(z.sample(&mut rng) < 7);
        }
    }

    #[test]
    fn single_rank() {
        let z = Zipf::new(1, 2.0);
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(z.sample(&mut rng), 0);
    }

    #[test]
    #[should_panic]
    fn zero_ranks_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
