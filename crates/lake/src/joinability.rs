//! Equi-joinability (Definition 2.1) and exact brute-force top-k search.
//!
//! `jn(Q, X) = |Q ∩ X| / |Q|` over *distinct* cell values. The measure is
//! asymmetric (normalized by the query side) and lies in `[0, 1]`.
//!
//! The brute-force searcher here is the reference implementation used to
//! label training data on small samples, to define the "exact" answer in
//! precision@k / NDCG@k (JOSIE computes the same answer faster), and as the
//! test oracle for every approximate method.

use crate::column::{Column, ColumnId};
use crate::repository::Repository;

/// Equi-joinability from `q` to `x` (Definition 2.1). Returns 0 for an empty
/// query (nothing to match).
pub fn equi_joinability(q: &Column, x: &Column) -> f64 {
    let qd = q.distinct();
    if qd.is_empty() {
        return 0.0;
    }
    // Iterate over the smaller set for the intersection count.
    let xd = x.distinct();
    let inter = if qd.len() <= xd.len() {
        qd.iter().filter(|c| xd.contains(c.as_str())).count()
    } else {
        xd.iter().filter(|c| qd.contains(c.as_str())).count()
    };
    inter as f64 / qd.len() as f64
}

/// Raw overlap `|Q ∩ X|` over distinct values — the similarity JOSIE ranks by.
pub fn overlap(q: &Column, x: &Column) -> usize {
    let qd = q.distinct();
    let xd = x.distinct();
    if qd.len() <= xd.len() {
        qd.iter().filter(|c| xd.contains(c.as_str())).count()
    } else {
        xd.iter().filter(|c| qd.contains(c.as_str())).count()
    }
}

/// A scored search result. Ordered by descending score, then ascending id
/// (deterministic tie-break shared by every searcher in this repo).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredColumn {
    /// The target column.
    pub id: ColumnId,
    /// The joinability (or overlap, metric-dependent) score.
    pub score: f64,
}

/// Sort results by descending score with ascending-id tie-break and truncate
/// to `k`. Shared by all searchers so ties resolve identically everywhere.
pub fn rank_and_truncate(mut results: Vec<ScoredColumn>, k: usize) -> Vec<ScoredColumn> {
    results.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.id.cmp(&b.id))
    });
    results.truncate(k);
    results
}

/// Exact top-k equi-joinable columns by brute force: O(|𝒳| · (|Q| + |X̄|)).
pub fn brute_force_topk(repo: &Repository, query: &Column, k: usize) -> Vec<ScoredColumn> {
    let scored = repo
        .iter()
        .map(|(id, x)| ScoredColumn {
            id,
            score: equi_joinability(query, x),
        })
        .collect();
    rank_and_truncate(scored, k)
}

/// All columns with `jn(query, X) >= threshold`, by brute force (used by the
/// training-data self-join reference and tests).
pub fn brute_force_threshold(
    repo: &Repository,
    query: &Column,
    threshold: f64,
) -> Vec<ScoredColumn> {
    let mut out: Vec<ScoredColumn> = repo
        .iter()
        .filter_map(|(id, x)| {
            let score = equi_joinability(query, x);
            (score >= threshold).then_some(ScoredColumn { id, score })
        })
        .collect();
    out.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap()
            .then_with(|| a.id.cmp(&b.id))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(cells: &[&str]) -> Column {
        Column::from_cells(cells.iter().copied())
    }

    #[test]
    fn joinability_basic() {
        let q = col(&["a", "b", "c", "d"]);
        let x = col(&["b", "d", "e"]);
        assert!((equi_joinability(&q, &x) - 0.5).abs() < 1e-12);
        // Asymmetric: normalized by the other side now.
        assert!((equi_joinability(&x, &q) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn joinability_ignores_duplicates() {
        let q = col(&["a", "a", "b"]);
        let x = col(&["a", "c", "a", "a"]);
        assert!((equi_joinability(&q, &x) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn joinability_bounds() {
        let q = col(&["a", "b"]);
        assert_eq!(equi_joinability(&q, &q), 1.0);
        assert_eq!(equi_joinability(&q, &col(&["z"])), 0.0);
        assert_eq!(equi_joinability(&col(&[]), &q), 0.0);
    }

    #[test]
    fn overlap_counts_distinct_matches() {
        let q = col(&["a", "b", "c"]);
        let x = col(&["c", "a", "a"]);
        assert_eq!(overlap(&q, &x), 2);
    }

    #[test]
    fn brute_force_ranks_correctly() {
        let repo = Repository::from_columns(vec![
            col(&["a", "b", "c", "d", "e"]),      // jn = 3/5 with query below? compute
            col(&["a", "b", "x", "y", "z"]),
            col(&["p", "q", "r", "s", "t"]),
        ]);
        let q = col(&["a", "b", "c", "d", "e"]);
        let top = brute_force_topk(&repo, &q, 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].id, ColumnId(0));
        assert_eq!(top[0].score, 1.0);
        assert_eq!(top[1].id, ColumnId(1));
        assert!((top[1].score - 0.4).abs() < 1e-12);
    }

    #[test]
    fn tie_break_is_by_id() {
        let repo = Repository::from_columns(vec![
            col(&["a", "b", "c", "d", "e"]),
            col(&["a", "b", "c", "d", "e"]),
        ]);
        let q = col(&["a", "b", "c", "d", "e"]);
        let top = brute_force_topk(&repo, &q, 2);
        assert_eq!(top[0].id, ColumnId(0));
        assert_eq!(top[1].id, ColumnId(1));
    }

    #[test]
    fn threshold_filters() {
        let repo = Repository::from_columns(vec![
            col(&["a", "b", "c", "d", "e"]),
            col(&["a", "b", "x", "y", "z"]),
        ]);
        let q = col(&["a", "b", "c", "d", "e"]);
        let hits = brute_force_threshold(&repo, &q, 0.7);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, ColumnId(0));
    }
}
