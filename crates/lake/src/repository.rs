//! The column repository 𝒳: the searchable flattening of a data lake.

use serde::{Deserialize, Serialize};

use crate::column::{Column, ColumnId};
use crate::table::Table;

/// Which column(s) to extract from each table when flattening a lake.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExtractionRule {
    /// Take the key column designated in table metadata (Webtable rule, §5.1).
    KeyColumn,
    /// Take the column with the most distinct values (Wikitable rule, §5.1).
    MostDistinct,
    /// Take every column (useful for small lakes and tests).
    All,
}

/// A repository of target columns, indexed by [`ColumnId`].
///
/// Columns that are too short (< `min_cells`; the paper removes columns with
/// fewer than 5 cells) are dropped at construction time.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Repository {
    columns: Vec<Column>,
}

/// Minimum cell count for a column to enter the repository (paper §5.1).
pub const MIN_CELLS: usize = 5;

impl Repository {
    /// An empty repository.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a repository directly from columns, dropping those shorter than
    /// [`MIN_CELLS`].
    pub fn from_columns<I: IntoIterator<Item = Column>>(columns: I) -> Self {
        let columns = columns
            .into_iter()
            .filter(|c| c.len() >= MIN_CELLS)
            .collect();
        Self { columns }
    }

    /// Flatten a lake of tables into a repository according to `rule`.
    pub fn from_tables(tables: &[Table], rule: ExtractionRule) -> Self {
        let mut columns = Vec::with_capacity(tables.len());
        for (tid, t) in tables.iter().enumerate() {
            let tid = Some(tid as u32);
            match rule {
                ExtractionRule::KeyColumn => {
                    if t.key_column < t.num_columns() {
                        columns.push(t.extract_column(t.key_column, tid));
                    }
                }
                ExtractionRule::MostDistinct => {
                    if let Some(i) = t.most_distinct_column() {
                        columns.push(t.extract_column(i, tid));
                    }
                }
                ExtractionRule::All => {
                    for i in 0..t.num_columns() {
                        columns.push(t.extract_column(i, tid));
                    }
                }
            }
        }
        Self::from_columns(columns)
    }

    /// Append a column (no length filter — caller decides). Returns its id.
    pub fn push(&mut self, column: Column) -> ColumnId {
        let id = ColumnId(self.columns.len() as u32);
        self.columns.push(column);
        id
    }

    /// Number of columns.
    #[inline]
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True when the repository has no columns.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Access a column by id. Panics on out-of-range ids (ids are only minted
    /// by this repository, so out-of-range indicates a logic error).
    #[inline]
    pub fn column(&self, id: ColumnId) -> &Column {
        &self.columns[id.index()]
    }

    /// Access a column by id, returning `None` when out of range.
    #[inline]
    pub fn get(&self, id: ColumnId) -> Option<&Column> {
        self.columns.get(id.index())
    }

    /// Iterate `(id, column)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (ColumnId, &Column)> {
        self.columns
            .iter()
            .enumerate()
            .map(|(i, c)| (ColumnId(i as u32), c))
    }

    /// All ids in order.
    pub fn ids(&self) -> impl Iterator<Item = ColumnId> + '_ {
        (0..self.columns.len() as u32).map(ColumnId)
    }

    /// Slice view of all columns (id order).
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    fn col_n(n: usize) -> Column {
        Column::from_cells((0..n).map(|i| format!("v{i}")))
    }

    #[test]
    fn short_columns_are_dropped() {
        let repo = Repository::from_columns(vec![col_n(4), col_n(5), col_n(10)]);
        assert_eq!(repo.len(), 2);
        assert_eq!(repo.column(ColumnId(0)).len(), 5);
    }

    #[test]
    fn extraction_rules() {
        let t = Table {
            title: "t".into(),
            context: "c".into(),
            headers: vec!["a".into(), "b".into()],
            columns: vec![
                vec!["x".into(); 6],                                  // 1 distinct
                (0..6).map(|i| format!("y{i}")).collect::<Vec<_>>(),  // 6 distinct
            ],
            key_column: 0,
        };
        let tables = vec![t];
        let key = Repository::from_tables(&tables, ExtractionRule::KeyColumn);
        assert_eq!(key.len(), 1);
        assert_eq!(key.column(ColumnId(0)).meta.column_name, "a");

        let distinct = Repository::from_tables(&tables, ExtractionRule::MostDistinct);
        assert_eq!(distinct.column(ColumnId(0)).meta.column_name, "b");

        let all = Repository::from_tables(&tables, ExtractionRule::All);
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn ids_and_iter_agree() {
        let repo = Repository::from_columns(vec![col_n(5), col_n(6)]);
        let ids: Vec<_> = repo.ids().collect();
        let iter_ids: Vec<_> = repo.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, iter_ids);
        assert_eq!(ids, vec![ColumnId(0), ColumnId(1)]);
    }

    #[test]
    fn get_handles_out_of_range() {
        let repo = Repository::from_columns(vec![col_n(5)]);
        assert!(repo.get(ColumnId(0)).is_some());
        assert!(repo.get(ColumnId(1)).is_none());
    }
}
