//! Loading real tables from CSV files — the adoption path for actual data
//! lakes (the synthetic generator covers evaluation; this covers use).
//!
//! A deliberately small RFC-4180-ish parser: comma-separated, `"`-quoted
//! fields with `""` escapes, `\n` / `\r\n` row terminators, quoted fields
//! may contain newlines. No external dependency.

use std::path::Path;

use crate::table::Table;

/// Parse CSV text into rows of fields.
///
/// Handles quoted fields (`"a, b"`), escaped quotes (`""` inside quotes),
/// and newlines inside quoted fields. Empty trailing lines are dropped.
pub fn parse_csv(text: &str) -> Vec<Vec<String>> {
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut row: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut chars = text.chars().peekable();

    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                other => field.push(other),
            }
            continue;
        }
        match c {
            '"' => in_quotes = true,
            ',' => row.push(std::mem::take(&mut field)),
            '\r' => {} // swallowed; the \n closes the row
            '\n' => {
                row.push(std::mem::take(&mut field));
                rows.push(std::mem::take(&mut row));
            }
            other => field.push(other),
        }
    }
    // Final row without trailing newline.
    if !field.is_empty() || !row.is_empty() {
        row.push(field);
        rows.push(row);
    }
    // Drop fully-empty rows (e.g. trailing blank lines).
    rows.retain(|r| !(r.len() == 1 && r[0].is_empty()));
    rows
}

/// Build a [`Table`] from CSV text. The first row is the header; the table
/// title defaults to `title` (usually the file stem) and `context` may be
/// empty. Ragged rows are padded with empty strings.
pub fn table_from_csv(text: &str, title: &str, context: &str) -> Option<Table> {
    let mut rows = parse_csv(text);
    if rows.is_empty() {
        return None;
    }
    let headers: Vec<String> = rows.remove(0);
    if headers.is_empty() {
        return None;
    }
    let ncols = headers.len();
    let mut columns: Vec<Vec<String>> = vec![Vec::with_capacity(rows.len()); ncols];
    for row in rows {
        for (ci, col) in columns.iter_mut().enumerate() {
            col.push(row.get(ci).cloned().unwrap_or_default());
        }
    }
    Some(Table {
        title: title.to_string(),
        context: context.to_string(),
        headers,
        columns,
        key_column: 0,
    })
}

/// Load one CSV file into a [`Table`] (title = file stem).
pub fn load_csv_file(path: &Path) -> std::io::Result<Option<Table>> {
    let text = std::fs::read_to_string(path)?;
    let title = path
        .file_stem()
        .map(|s| s.to_string_lossy().replace(['_', '-'], " "))
        .unwrap_or_default();
    Ok(table_from_csv(&text, &title, ""))
}

/// Load every `.csv` file in a directory (non-recursive, sorted by file
/// name for determinism). Unparseable/empty files are skipped.
pub fn load_csv_dir(dir: &Path) -> std::io::Result<Vec<Table>> {
    let mut paths: Vec<_> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e.eq_ignore_ascii_case("csv")))
        .collect();
    paths.sort();
    let mut tables = Vec::with_capacity(paths.len());
    for p in paths {
        if let Some(t) = load_csv_file(&p)? {
            tables.push(t);
        }
    }
    Ok(tables)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repository::{ExtractionRule, Repository};

    #[test]
    fn parses_plain_csv() {
        let rows = parse_csv("a,b,c\n1,2,3\n4,5,6\n");
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0], vec!["a", "b", "c"]);
        assert_eq!(rows[2], vec!["4", "5", "6"]);
    }

    #[test]
    fn parses_quotes_and_escapes() {
        let rows = parse_csv("name,quote\n\"Smith, John\",\"he said \"\"hi\"\"\"\n");
        assert_eq!(rows[1], vec!["Smith, John", "he said \"hi\""]);
    }

    #[test]
    fn parses_newline_inside_quotes() {
        let rows = parse_csv("a,b\n\"line1\nline2\",x\n");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1][0], "line1\nline2");
    }

    #[test]
    fn handles_crlf_and_missing_trailing_newline() {
        let rows = parse_csv("a,b\r\n1,2\r\n3,4");
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2], vec!["3", "4"]);
    }

    #[test]
    fn table_from_csv_builds_columns() {
        let t = table_from_csv("city,country\nparis,fr\ntokyo,jp\n", "capitals", "demo").unwrap();
        assert_eq!(t.headers, vec!["city", "country"]);
        assert_eq!(t.columns[0], vec!["paris", "tokyo"]);
        assert_eq!(t.title, "capitals");
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn ragged_rows_are_padded() {
        let t = table_from_csv("a,b,c\n1,2\n", "t", "").unwrap();
        assert_eq!(t.columns[2], vec![""]);
    }

    #[test]
    fn empty_input_yields_none() {
        assert!(table_from_csv("", "t", "").is_none());
    }

    #[test]
    fn dir_loading_roundtrip() {
        let dir = std::env::temp_dir().join(format!("djcsv-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("b_cities.csv"), "city\nparis\ntokyo\nlima\noslo\ncairo\n")
            .unwrap();
        std::fs::write(dir.join("a_people.csv"), "name\nalice\nbob\ncarol\ndan\neve\n").unwrap();
        std::fs::write(dir.join("ignore.txt"), "not a csv").unwrap();

        let tables = load_csv_dir(&dir).unwrap();
        assert_eq!(tables.len(), 2);
        // Sorted by file name: a_people first; underscores become spaces.
        assert_eq!(tables[0].title, "a people");
        let repo = Repository::from_tables(&tables, ExtractionRule::All);
        assert_eq!(repo.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
