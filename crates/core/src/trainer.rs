//! Stepwise, checkpointable fine-tuning with deterministic resume and
//! numerical self-healing (DESIGN.md §10).
//!
//! [`fine_tune_checkpointed`] replaces the closed epoch loop of
//! `train::fine_tune` with a trainer that:
//!
//! * shuffles each epoch with a **counter-based RNG stream**
//!   (`stream_rng(seed, epoch | bump << 32)`), so the batch order of any
//!   epoch is derivable from `(seed, epoch, stream_bump)` alone — the key
//!   to resuming mid-epoch without replaying prior epochs;
//! * writes a checkpoint (encoder parameters, Adam moments + step counts,
//!   trainer counters, loss history) into a two-slot [`CheckpointStore`]
//!   every `checkpoint_every` applied steps and at every epoch end, via
//!   the store's atomic temp/fsync/rename path;
//! * on start, loads the newest intact checkpoint whose fingerprint
//!   matches the training data + hyperparameters and resumes from it —
//!   the continued run is **bit-identical** to an uninterrupted one;
//! * watches the batch loss with an EMA spike detector and, on a spike or
//!   a non-finite loss, rolls back to the last good checkpoint and
//!   re-shuffles under the next RNG stream so the run does not replay the
//!   exact trajectory that diverged.

use rand::seq::SliceRandom;
use rand::stream::stream_rng;

use deepjoin_lake::tokenizer::TokenId;
use deepjoin_nn::encoder::{ColumnEncoder, EncoderOptimizer};
use deepjoin_nn::mnr::MnrLoss;

use crate::checkpoint::{
    decode_checkpoint, encode_checkpoint, training_fingerprint, CheckpointMeta, CheckpointStore,
    LoadedCheckpoint,
};
use crate::train::FineTuneConfig;

/// Robustness knobs of the stepwise trainer, separate from the model
/// hyperparameters in [`FineTuneConfig`] (which checkpoints fingerprint).
#[derive(Debug, Clone, Copy)]
pub struct TrainerConfig {
    /// Checkpoint every N applied optimizer steps; 0 checkpoints only at
    /// epoch boundaries. Also the cadence of the in-memory rollback
    /// snapshot, so it must match between runs being compared bit-for-bit.
    pub checkpoint_every: usize,
    /// A batch loss above `spike_factor × EMA` triggers a rollback once the
    /// detector is armed.
    pub spike_factor: f32,
    /// Applied batches the EMA must absorb before the detector arms.
    pub spike_warmup: usize,
    /// Rollbacks allowed before the trainer gives up (keeping the last good
    /// state) and returns `completed = false`.
    pub max_rollbacks: usize,
    /// Stop abruptly after this many applied steps *without* any extra
    /// checkpoint — simulates a kill at a step boundary for resume tests.
    pub max_steps: Option<u64>,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        Self {
            checkpoint_every: 0,
            spike_factor: 8.0,
            spike_warmup: 20,
            max_rollbacks: 3,
            max_steps: None,
        }
    }
}

/// What a training run did — the loss history plus the robustness ledger.
#[derive(Debug, Clone, Default)]
pub struct TrainOutcome {
    /// Mean loss of each completed epoch.
    pub epoch_losses: Vec<f32>,
    /// Optimizer steps applied over the whole run (including the resumed
    /// prefix).
    pub global_steps: u64,
    /// Rollbacks performed.
    pub rollbacks: u64,
    /// `Some(step)` when the run resumed from a checkpoint at that step.
    pub resumed_from: Option<u64>,
    /// False when the run stopped early (`max_steps` hit or the rollback
    /// budget exhausted).
    pub completed: bool,
    /// Non-fatal anomalies: corrupt checkpoint slots skipped, fingerprint
    /// mismatches, checkpoint-write failures, rollbacks.
    pub warnings: Vec<String>,
}

/// The trainer's live state between step boundaries.
struct Trainer<'a, 'io> {
    loss_fn: MnrLoss,
    opt: EncoderOptimizer,
    meta: CheckpointMeta,
    /// Serialized last good checkpoint, kept in memory so rollback works
    /// even without a disk store. Refreshed at every checkpoint boundary.
    last_good: Vec<u8>,
    store: Option<&'a mut CheckpointStore<'io>>,
    max_rollbacks: u64,
    warnings: Vec<String>,
}

impl Trainer<'_, '_> {
    /// Snapshot the current state as the new last-good checkpoint and, if a
    /// store is attached, persist it. Write failures degrade to warnings:
    /// training continues on the in-memory snapshot.
    fn commit_checkpoint(&mut self, encoder: &ColumnEncoder) {
        self.last_good = encode_checkpoint(&self.meta, encoder, &self.opt.export_state());
        if let Some(store) = self.store.as_deref_mut() {
            if let Err(e) = store.save(&self.last_good) {
                self.warnings
                    .push(format!("checkpoint write failed ({e}); continuing without it"));
            }
        }
    }

    /// Restore encoder + optimizer + counters from the last good snapshot.
    fn restore_last_good(&mut self, encoder: &mut ColumnEncoder) {
        let ck = decode_checkpoint(&self.last_good).expect("in-memory checkpoint is intact");
        let adam = self.opt.config();
        apply_checkpoint(&ck, encoder, &mut self.opt, adam);
        self.meta = ck.meta;
    }

    /// Roll back to the last good checkpoint and move to the next RNG
    /// stream. Returns false when the rollback budget is exhausted (the
    /// state is still restored so the caller keeps the last good model).
    fn rollback(&mut self, encoder: &mut ColumnEncoder, reason: &str) -> bool {
        let budget_left = self.meta.rollbacks < self.max_rollbacks;
        self.restore_last_good(encoder);
        if !budget_left {
            self.warnings.push(format!(
                "rollback budget exhausted after {reason}; stopping at step {} with the last \
                 good model",
                self.meta.global_step
            ));
            return false;
        }
        self.meta.stream_bump += 1;
        self.meta.rollbacks += 1;
        self.meta.ema_loss = None;
        self.meta.ema_batches = 0;
        self.warnings.push(format!(
            "{reason} at step {}; rolled back (#{}) and re-shuffling on stream {}",
            self.meta.global_step, self.meta.rollbacks, self.meta.stream_bump
        ));
        // Re-commit immediately: the bumped (rollbacks, stream_bump) make
        // this snapshot win the slot tie-break at the same global_step, so
        // a crash right after rollback resumes on the *new* stream.
        self.commit_checkpoint(encoder);
        true
    }

    fn outcome(&mut self, completed: bool, resumed_from: Option<u64>) -> TrainOutcome {
        TrainOutcome {
            epoch_losses: self.meta.epoch_losses.clone(),
            global_steps: self.meta.global_step,
            rollbacks: self.meta.rollbacks,
            resumed_from,
            completed,
            warnings: std::mem::take(&mut self.warnings),
        }
    }
}

/// Restore encoder and optimizer from a decoded checkpoint. Panics only on
/// internal inconsistency — callers validate shape compatibility first via
/// [`checkpoint_matches`].
fn apply_checkpoint(
    ck: &LoadedCheckpoint,
    encoder: &mut ColumnEncoder,
    opt: &mut EncoderOptimizer,
    adam: deepjoin_nn::adam::AdamConfig,
) {
    *encoder = ColumnEncoder::try_from_raw_params(ck.encoder_config, ck.encoder_params.clone())
        .expect("validated checkpoint restores");
    *opt = EncoderOptimizer::restore_state(encoder, adam, ck.optimizer.clone())
        .expect("validated checkpoint restores");
}

/// Can `ck` be applied to this run? Checks the data/hyperparameter
/// fingerprint and that the tensors actually restore into an encoder +
/// optimizer of the right shape.
fn checkpoint_matches(
    ck: &LoadedCheckpoint,
    fingerprint: u64,
    config: &FineTuneConfig,
) -> Result<(), String> {
    if ck.meta.fingerprint != fingerprint {
        return Err(format!(
            "checkpoint fingerprint {:#x} does not match this training run {:#x} \
             (data or hyperparameters changed)",
            ck.meta.fingerprint, fingerprint
        ));
    }
    let mut probe = ColumnEncoder::try_from_raw_params(ck.encoder_config, ck.encoder_params.clone())
        .map_err(|e| format!("checkpoint encoder is inconsistent: {e}"))?;
    EncoderOptimizer::restore_state(&mut probe, config.adam, ck.optimizer.clone())
        .map_err(|e| format!("checkpoint optimizer is inconsistent: {e}"))?;
    Ok(())
}

/// Fine-tune `encoder` on tokenized pairs with checkpoint/resume/rollback.
///
/// With `store = None` and a default [`TrainerConfig`] this is the plain
/// training loop (`train::fine_tune` delegates here). With a store, the
/// run resumes from the newest intact matching checkpoint and the final
/// model is bit-identical to an uninterrupted run — see
/// `tests/train_resume.rs` for the property test.
pub fn fine_tune_checkpointed(
    encoder: &mut ColumnEncoder,
    pairs: &[(Vec<TokenId>, Vec<TokenId>)],
    config: &FineTuneConfig,
    trainer_config: &TrainerConfig,
    store: Option<&mut CheckpointStore<'_>>,
) -> TrainOutcome {
    assert!(!pairs.is_empty(), "no training pairs");
    let fingerprint = training_fingerprint(pairs, config);

    let mut t = Trainer {
        loss_fn: MnrLoss::new(config.mnr_scale),
        opt: EncoderOptimizer::new(encoder, config.adam),
        meta: CheckpointMeta {
            fingerprint,
            epoch: 0,
            batch_in_epoch: 0,
            global_step: 0,
            stream_bump: 0,
            rollbacks: 0,
            ema_loss: None,
            ema_batches: 0,
            partial_total: 0.0,
            partial_batches: 0,
            epoch_losses: Vec::new(),
        },
        last_good: Vec::new(),
        store,
        max_rollbacks: trainer_config.max_rollbacks as u64,
        warnings: Vec::new(),
    };

    // Resume from the newest intact, matching checkpoint if one exists.
    let mut resumed_from = None;
    if let Some(store) = t.store.as_deref_mut() {
        let (loaded, mut load_warnings) = store.load_latest();
        t.warnings.append(&mut load_warnings);
        if let Some(ck) = loaded {
            match checkpoint_matches(&ck, fingerprint, config) {
                Ok(()) => {
                    apply_checkpoint(&ck, encoder, &mut t.opt, config.adam);
                    t.meta = ck.meta.clone();
                    resumed_from = Some(ck.meta.global_step);
                    t.last_good = encode_checkpoint(&t.meta, encoder, &t.opt.export_state());
                }
                Err(why) => t
                    .warnings
                    .push(format!("ignoring checkpoint: {why}; starting fresh")),
            }
        }
    }
    if resumed_from.is_none() {
        // Step-0 snapshot: the rollback target before the first boundary,
        // and the resume point for a kill before the first checkpoint.
        t.commit_checkpoint(encoder);
    }

    let epochs = config.epochs as u64;
    'training: while t.meta.epoch < epochs {
        // The epoch's batch order depends only on (seed, epoch, bump):
        // resuming mid-epoch recomputes it and skips the consumed prefix.
        let mut order: Vec<usize> = (0..pairs.len()).collect();
        let stream = t.meta.epoch | (t.meta.stream_bump << 32);
        order.shuffle(&mut stream_rng(config.seed, stream));

        let skip = t.meta.batch_in_epoch as usize;
        for chunk in order.chunks(config.batch_size).skip(skip) {
            if chunk.len() < 2 {
                // No in-batch negatives; consume the cursor and move on.
                t.meta.batch_in_epoch += 1;
                continue;
            }
            let xs: Vec<Vec<TokenId>> = chunk.iter().map(|&i| pairs[i].0.clone()).collect();
            let ys: Vec<Vec<TokenId>> = chunk.iter().map(|&i| pairs[i].1.clone()).collect();

            encoder.zero_grad();
            let out_x = encoder.encode_batch(&xs);
            let out_y = encoder.encode_batch(&ys); // cache now holds ys
            let Some((loss, dx, dy)) = t.loss_fn.forward_guarded(&out_x, &out_y) else {
                if t.rollback(encoder, "non-finite loss") {
                    continue 'training;
                }
                return t.outcome(false, resumed_from);
            };
            let armed = t.meta.ema_batches >= trainer_config.spike_warmup as u64;
            if let (true, Some(ema)) = (armed, t.meta.ema_loss) {
                if loss > trainer_config.spike_factor * ema.max(1e-6) {
                    if t.rollback(encoder, "loss spike") {
                        continue 'training;
                    }
                    return t.outcome(false, resumed_from);
                }
            }

            encoder.backward(&dy); // consumes the ys cache
            let re_x = encoder.encode_batch(&xs); // restore xs cache
            debug_assert_eq!(re_x.data.len(), out_x.data.len());
            encoder.backward(&dx);
            t.opt.step(encoder);

            t.meta.global_step += 1;
            t.meta.batch_in_epoch += 1;
            t.meta.partial_total += loss;
            t.meta.partial_batches += 1;
            t.meta.ema_loss = Some(match t.meta.ema_loss {
                Some(e) => 0.9 * e + 0.1 * loss,
                None => loss,
            });
            t.meta.ema_batches += 1;

            if trainer_config.checkpoint_every > 0
                && t.meta
                    .global_step
                    .is_multiple_of(trainer_config.checkpoint_every as u64)
            {
                t.commit_checkpoint(encoder);
            }
            if let Some(max) = trainer_config.max_steps {
                if t.meta.global_step >= max {
                    // Simulated kill: stop without any further checkpoint.
                    return t.outcome(false, resumed_from);
                }
            }
        }

        t.meta
            .epoch_losses
            .push(t.meta.partial_total / t.meta.partial_batches.max(1) as f32);
        t.meta.epoch += 1;
        t.meta.batch_in_epoch = 0;
        t.meta.partial_total = 0.0;
        t.meta.partial_batches = 0;
        t.commit_checkpoint(encoder);
    }

    t.outcome(true, resumed_from)
}
