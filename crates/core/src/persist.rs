//! Binary persistence for trained DeepJoin models.
//!
//! A saved model carries everything inference and indexing need — the
//! contextualizer (option, cell budget, cell frequencies), the vocabulary,
//! the encoder configuration and parameters, and (optionally) the built
//! HNSW index — in a little-endian, length-prefixed format with a magic
//! header (same codec style as `deepjoin_ann::io`).
//!
//! Training-only settings (optimizer, labeling thresholds, SGNS) are *not*
//! persisted: a loaded model can embed, index and search, but continuing
//! training requires the original `DeepJoinConfig`.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use deepjoin_ann::io::{decode_hnsw, encode_hnsw, DecodeError};
use deepjoin_lake::tokenizer::Vocabulary;
use deepjoin_nn::encoder::{ColumnEncoder, EncoderConfig, Pooling};

use crate::model::{DeepJoin, DeepJoinConfig, Variant};
use crate::text::{CellFrequencies, Textizer, TransformOption};

const MAGIC: &[u8; 4] = b"DJM1";
const VERSION: u8 = 1;

fn need(buf: &impl Buf, n: usize) -> Result<(), DecodeError> {
    if buf.remaining() < n {
        Err(DecodeError::Truncated)
    } else {
        Ok(())
    }
}

fn put_str(out: &mut BytesMut, s: &str) {
    out.put_u32_le(s.len() as u32);
    out.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> Result<String, DecodeError> {
    need(buf, 4)?;
    let n = buf.get_u32_le() as usize;
    need(buf, n)?;
    let mut raw = vec![0u8; n];
    buf.copy_to_slice(&mut raw);
    String::from_utf8(raw).map_err(|_| DecodeError::BadDiscriminant(0xFF))
}

fn put_f32s(out: &mut BytesMut, xs: &[f32]) {
    out.put_u64_le(xs.len() as u64);
    for &x in xs {
        out.put_f32_le(x);
    }
}

fn get_f32s(buf: &mut Bytes) -> Result<Vec<f32>, DecodeError> {
    need(buf, 8)?;
    let n = buf.get_u64_le() as usize;
    need(buf, n * 4)?;
    Ok((0..n).map(|_| buf.get_f32_le()).collect())
}

fn transform_tag(t: TransformOption) -> u8 {
    TransformOption::ALL.iter().position(|&o| o == t).unwrap() as u8
}

fn transform_from(tag: u8) -> Result<TransformOption, DecodeError> {
    TransformOption::ALL
        .get(tag as usize)
        .copied()
        .ok_or(DecodeError::BadDiscriminant(tag))
}

/// Serialize a trained model. Set `include_index` to persist the built HNSW
/// index alongside the encoder (larger file, instant reload of search).
pub fn save_model(model: &DeepJoin, include_index: bool) -> Bytes {
    let mut out = BytesMut::new();
    out.put_slice(MAGIC);
    out.put_u8(VERSION);

    // --- model-level config (inference-relevant subset) ---
    let cfg = &model.config;
    out.put_u8(match cfg.variant {
        Variant::DistilLite => 0,
        Variant::MpLite => 1,
    });
    out.put_u64_le(cfg.dim as u64);
    out.put_u8(transform_tag(cfg.transform));
    out.put_u64_le(cfg.max_cells as u64);
    out.put_u64_le(cfg.max_tokens as u64);
    out.put_u32_le(cfg.oov_buckets);

    // --- textizer frequencies ---
    match model.textizer.frequencies() {
        Some(freq) => {
            out.put_u8(1);
            out.put_u64_le(freq.len() as u64);
            // Deterministic order for byte-stable files.
            let mut pairs: Vec<(&str, u32)> = freq.iter().collect();
            pairs.sort_unstable();
            for (cell, count) in pairs {
                put_str(&mut out, cell);
                out.put_u32_le(count);
            }
        }
        None => out.put_u8(0),
    }

    // --- vocabulary ---
    out.put_u64_le(model.vocab.len() as u64);
    // Skip <unk> (id 0) — it is implicit in a fresh Vocabulary.
    for id in 1..model.vocab.len() as u32 {
        put_str(&mut out, model.vocab.token(id));
        out.put_u64_le(model.vocab.count(id));
    }

    // --- encoder ---
    let ec = &model.encoder.config;
    out.put_u64_le(ec.vocab_size as u64);
    out.put_u64_le(ec.out_dim as u64);
    out.put_u64_le(ec.attn_hidden as u64);
    out.put_u8(match ec.pooling {
        Pooling::Mean => 0,
        Pooling::Attention => 1,
    });
    out.put_u8(ec.use_positions as u8);
    out.put_u8(ec.residual as u8);
    out.put_u64_le(ec.seed);
    let (emb, pos, aw, ab, av, h1w, h1b, h2w, h2b) = model.encoder.raw_params();
    for t in [emb, pos, aw, ab, av, h1w, h1b, h2w, h2b] {
        put_f32s(&mut out, t);
    }

    // --- index ---
    match (&model.index, include_index) {
        (Some(index), true) => {
            out.put_u8(1);
            let encoded = encode_hnsw(index);
            out.put_u64_le(encoded.len() as u64);
            out.put_slice(&encoded);
        }
        _ => out.put_u8(0),
    }

    out.freeze()
}

/// Deserialize a model saved by [`save_model`].
pub fn load_model(mut buf: Bytes) -> Result<DeepJoin, DecodeError> {
    need(&buf, 5)?;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = buf.get_u8();
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }

    need(&buf, 1 + 8 + 1 + 8 + 8 + 4)?;
    let variant = match buf.get_u8() {
        0 => Variant::DistilLite,
        1 => Variant::MpLite,
        other => return Err(DecodeError::BadDiscriminant(other)),
    };
    let dim = buf.get_u64_le() as usize;
    let transform = transform_from(buf.get_u8())?;
    let max_cells = buf.get_u64_le() as usize;
    let max_tokens = buf.get_u64_le() as usize;
    let oov_buckets = buf.get_u32_le();

    // Textizer.
    need(&buf, 1)?;
    let mut textizer = Textizer::new(transform, max_cells);
    if buf.get_u8() == 1 {
        need(&buf, 8)?;
        let n = buf.get_u64_le() as usize;
        let mut pairs = Vec::with_capacity(n);
        for _ in 0..n {
            let cell = get_str(&mut buf)?;
            need(&buf, 4)?;
            pairs.push((cell, buf.get_u32_le()));
        }
        textizer = textizer.with_frequencies(CellFrequencies::from_pairs(pairs));
    }

    // Vocabulary: rebuild with exact ids by feeding tokens in id order.
    need(&buf, 8)?;
    let vocab_len = buf.get_u64_le() as usize;
    let mut lists: Vec<(String, u64)> = Vec::with_capacity(vocab_len.saturating_sub(1));
    for _ in 1..vocab_len {
        let tok = get_str(&mut buf)?;
        need(&buf, 8)?;
        lists.push((tok, buf.get_u64_le()));
    }
    let vocab = Vocabulary::from_id_order(lists);

    // Encoder.
    need(&buf, 8 * 3 + 3 + 8)?;
    let vocab_size = buf.get_u64_le() as usize;
    let out_dim = buf.get_u64_le() as usize;
    let attn_hidden = buf.get_u64_le() as usize;
    let pooling = match buf.get_u8() {
        0 => Pooling::Mean,
        1 => Pooling::Attention,
        other => return Err(DecodeError::BadDiscriminant(other)),
    };
    let use_positions = buf.get_u8() != 0;
    let residual = buf.get_u8() != 0;
    let seed = buf.get_u64_le();
    let ec = EncoderConfig {
        vocab_size,
        dim,
        out_dim,
        attn_hidden,
        max_len: max_tokens,
        pooling,
        use_positions,
        residual,
        seed,
    };
    let mut params: Vec<Vec<f32>> = Vec::with_capacity(9);
    for _ in 0..9 {
        params.push(get_f32s(&mut buf)?);
    }
    let encoder = ColumnEncoder::from_raw_params(
        ec,
        params.try_into().expect("exactly nine tensors"),
    );

    // Index.
    need(&buf, 1)?;
    let index = if buf.get_u8() == 1 {
        need(&buf, 8)?;
        let n = buf.get_u64_le() as usize;
        need(&buf, n)?;
        let encoded = buf.split_to(n);
        Some(decode_hnsw(encoded)?)
    } else {
        None
    };

    let config = DeepJoinConfig {
        variant,
        dim,
        transform,
        max_cells,
        max_tokens,
        oov_buckets,
        ..DeepJoinConfig::default()
    };
    Ok(DeepJoin {
        config,
        vocab,
        textizer,
        encoder,
        index,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::{FineTuneConfig, JoinType, TrainDataConfig};
    use deepjoin_lake::corpus::{Corpus, CorpusConfig, CorpusProfile};

    fn trained() -> (DeepJoin, deepjoin_lake::Repository, Corpus) {
        let corpus = Corpus::generate(CorpusConfig::new(CorpusProfile::Webtable, 400, 3));
        let (repo, _) = corpus.to_repository();
        let cfg = DeepJoinConfig {
            variant: Variant::MpLite,
            dim: 24,
            sgns: deepjoin_embed::SgnsConfig {
                dim: 24,
                epochs: 1,
                ..Default::default()
            },
            fine_tune: FineTuneConfig {
                epochs: 1,
                ..Default::default()
            },
            data: TrainDataConfig {
                max_pairs: 1_000,
                ..Default::default()
            },
            ..DeepJoinConfig::default()
        };
        let (mut model, _) = DeepJoin::train(&repo, JoinType::Equi, cfg);
        model.index_repository(&repo);
        (model, repo, corpus)
    }

    #[test]
    fn roundtrip_preserves_embeddings_and_search() {
        let (model, _repo, corpus) = trained();
        let bytes = save_model(&model, true);
        let loaded = load_model(bytes).unwrap();

        let (q, _) = corpus.sample_queries(1, 8).pop().unwrap();
        assert_eq!(model.embed_column(&q), loaded.embed_column(&q));
        let a: Vec<u32> = model.search(&q, 10).iter().map(|s| s.id.0).collect();
        let b: Vec<u32> = loaded.search(&q, 10).iter().map(|s| s.id.0).collect();
        assert_eq!(a, b);
        assert_eq!(loaded.indexed_len(), model.indexed_len());
    }

    #[test]
    fn roundtrip_without_index_can_reindex() {
        let (model, repo, corpus) = trained();
        let bytes = save_model(&model, false);
        let mut loaded = load_model(bytes).unwrap();
        assert_eq!(loaded.indexed_len(), 0);
        loaded.index_repository(&repo);
        let (q, _) = corpus.sample_queries(1, 9).pop().unwrap();
        let a: Vec<u32> = model.search(&q, 5).iter().map(|s| s.id.0).collect();
        let b: Vec<u32> = loaded.search(&q, 5).iter().map(|s| s.id.0).collect();
        assert_eq!(a, b, "re-indexing reproduces the same graph (same seed)");
    }

    #[test]
    fn corrupted_model_is_rejected() {
        let (model, _, _) = trained();
        let bytes = save_model(&model, false);
        let mut bad = bytes.to_vec();
        bad[0] = b'X';
        match load_model(Bytes::from(bad)) {
            Err(e) => assert_eq!(e, DecodeError::BadMagic),
            Ok(_) => panic!("corrupted magic must be rejected"),
        }
        let truncated = bytes.slice(0..bytes.len() / 2);
        assert!(load_model(truncated).is_err());
    }

    #[test]
    fn saved_files_are_byte_stable() {
        let (model, _, _) = trained();
        assert_eq!(save_model(&model, true), save_model(&model, true));
    }
}
