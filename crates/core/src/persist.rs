//! Durable persistence for trained DeepJoin models.
//!
//! A saved model carries everything inference and indexing need — the
//! contextualizer (option, cell budget, cell frequencies), the vocabulary,
//! the encoder configuration and parameters, and (optionally) the built
//! index. Since v2 the on-disk form is a `DJAR` container
//! (`deepjoin_store::container`) with three checksummed sections:
//!
//! * `MODL` — the model core (config, frequencies, vocabulary, encoder);
//!   mandatory, and a checksum failure here is fatal;
//! * `VECS` — the indexed embedding vectors as a `DJF1` flat-index payload;
//! * `HNSW` — the graph half of the HNSW index as a `DJG1` payload.
//!
//! Splitting vectors from graph is what makes *graceful degradation*
//! possible: when the `HNSW` section fails its CRC but `VECS` survives,
//! [`load_model`] returns a model in [`IndexState::DegradedFlat`] — exact
//! (slower) search over the same vectors — with a warning, instead of
//! refusing to load. Legacy v1 `DJM1` snapshots (un-sectioned, no
//! checksums) are still read.
//!
//! Training-only settings (optimizer, labeling thresholds, SGNS) are *not*
//! persisted: a loaded model can embed, index and search, but continuing
//! training requires the original `DeepJoinConfig`.

use deepjoin_ann::flat::FlatIndex;
use deepjoin_ann::index::VectorIndex;
use deepjoin_ann::io::{
    decode_flat_in, decode_hnsw_graph, decode_hnsw_in, decode_sq8_in, encode_flat,
    encode_hnsw_graph, encode_sq8, DecodeError,
};
use deepjoin_ann::sq8::Sq8Plane;
use deepjoin_lake::tokenizer::Vocabulary;
use deepjoin_nn::encoder::{ColumnEncoder, EncoderConfig, Pooling};
use deepjoin_store::codec::{DecodeErrorKind, Reader, Writer};
use deepjoin_store::{is_container, Container, ContainerBuilder};

use crate::model::{DeepJoin, DeepJoinConfig, IndexState, TrainLineage, Variant};
use crate::text::{CellFrequencies, Textizer, TransformOption};

/// Container section holding the model core.
pub const SECTION_MODEL: [u8; 4] = *b"MODL";
/// Container section holding the training lineage (`DJTL`).
pub const SECTION_LINEAGE: [u8; 4] = *b"TLIN";
/// Container section holding the indexed embedding vectors (`DJF1`).
pub const SECTION_VECTORS: [u8; 4] = *b"VECS";
/// Container section holding the SQ8 quantized vector plane (`DJQ1`).
/// Written between `VECS` and `HNSW` so the graph stays the trailing
/// section (tail truncation keeps damaging the graph first, the most
/// gracefully degradable section).
pub const SECTION_SQ8: [u8; 4] = *b"SQ8V";
/// Container section holding the HNSW graph (`DJG1`).
pub const SECTION_GRAPH: [u8; 4] = *b"HNSW";

/// Magic of the v2 model-core payload inside the `MODL` section.
const CORE_MAGIC: &[u8; 4] = b"DJM2";
const CORE_VERSION: u8 = 1;

/// Magic of the lineage payload inside the `TLIN` section.
const LINEAGE_MAGIC: &[u8; 4] = b"DJTL";
const LINEAGE_VERSION: u8 = 1;

/// Magic of the legacy whole-file v1 format.
const MAGIC_V1: &[u8; 4] = b"DJM1";
const VERSION_V1: u8 = 1;

/// A model restored from disk, along with any degradation warnings the
/// loader produced. An empty `warnings` means full fidelity.
pub struct LoadedModel {
    /// The restored model; check [`DeepJoin::index_health`] before serving.
    pub model: DeepJoin,
    /// Human-readable accounts of anything that could not be restored.
    pub warnings: Vec<String>,
}

impl LoadedModel {
    /// Drop the warnings and keep the model (callers that already surfaced
    /// or deliberately ignore degradation).
    pub fn into_model(self) -> DeepJoin {
        self.model
    }
}

impl std::fmt::Debug for LoadedModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LoadedModel")
            .field("index_health", &self.model.index_health())
            .field("warnings", &self.warnings)
            .finish_non_exhaustive()
    }
}

/// Tag is the option's position in [`TransformOption::ALL`]; the exhaustive
/// match keeps the mapping total by construction.
fn transform_tag(t: TransformOption) -> u8 {
    match t {
        TransformOption::Col => 0,
        TransformOption::ColnameCol => 1,
        TransformOption::ColnameColContext => 2,
        TransformOption::ColnameStatCol => 3,
        TransformOption::TitleColnameCol => 4,
        TransformOption::TitleColnameColContext => 5,
        TransformOption::TitleColnameStatCol => 6,
    }
}

fn transform_from(r: &Reader<'_>, tag: u8) -> Result<TransformOption, DecodeError> {
    TransformOption::ALL
        .get(tag as usize)
        .copied()
        .ok_or_else(|| r.error(DecodeErrorKind::BadDiscriminant(tag)))
}

/// Model core fields, shared verbatim between the v1 body and the v2
/// `MODL` section (the layouts are byte-identical past their headers).
fn put_core(out: &mut Writer, model: &DeepJoin) {
    let cfg = &model.config;
    out.put_u8(match cfg.variant {
        Variant::DistilLite => 0,
        Variant::MpLite => 1,
    });
    out.put_u64_le(cfg.dim as u64);
    out.put_u8(transform_tag(cfg.transform));
    out.put_u64_le(cfg.max_cells as u64);
    out.put_u64_le(cfg.max_tokens as u64);
    out.put_u32_le(cfg.oov_buckets);

    // --- textizer frequencies ---
    match model.textizer.frequencies() {
        Some(freq) => {
            out.put_u8(1);
            out.put_u64_le(freq.len() as u64);
            // Deterministic order for byte-stable files.
            let mut pairs: Vec<(&str, u32)> = freq.iter().collect();
            pairs.sort_unstable();
            for (cell, count) in pairs {
                out.put_str(cell);
                out.put_u32_le(count);
            }
        }
        None => out.put_u8(0),
    }

    // --- vocabulary ---
    out.put_u64_le(model.vocab.len() as u64);
    // Skip <unk> (id 0) — it is implicit in a fresh Vocabulary.
    for id in 1..model.vocab.len() as u32 {
        out.put_str(model.vocab.token(id));
        out.put_u64_le(model.vocab.count(id));
    }

    // --- encoder ---
    let ec = &model.encoder.config;
    out.put_u64_le(ec.vocab_size as u64);
    out.put_u64_le(ec.out_dim as u64);
    out.put_u64_le(ec.attn_hidden as u64);
    out.put_u8(match ec.pooling {
        Pooling::Mean => 0,
        Pooling::Attention => 1,
    });
    out.put_u8(ec.use_positions as u8);
    out.put_u8(ec.residual as u8);
    out.put_u64_le(ec.seed);
    let (emb, pos, aw, ab, av, h1w, h1b, h2w, h2b) = model.encoder.raw_params();
    for t in [emb, pos, aw, ab, av, h1w, h1b, h2w, h2b] {
        out.put_f32s(t);
    }
}

/// Everything [`get_core`] restores; the index is attached separately.
struct CoreParts {
    config: DeepJoinConfig,
    textizer: Textizer,
    vocab: Vocabulary,
    encoder: ColumnEncoder,
}

impl CoreParts {
    fn into_model(self, index: IndexState, lineage: Option<TrainLineage>) -> DeepJoin {
        DeepJoin {
            config: self.config,
            vocab: self.vocab,
            textizer: self.textizer,
            encoder: self.encoder,
            index,
            lineage,
        }
    }
}

fn put_lineage(out: &mut Writer, lineage: &TrainLineage) {
    out.put_slice(LINEAGE_MAGIC);
    out.put_u8(LINEAGE_VERSION);
    out.put_u64_le(lineage.epochs);
    out.put_u64_le(lineage.steps);
    out.put_f32_le(lineage.last_loss);
    out.put_u64_le(lineage.rollbacks);
}

fn get_lineage(r: &mut Reader<'_>) -> Result<TrainLineage, DecodeError> {
    r.expect_magic(LINEAGE_MAGIC)?;
    r.expect_version(LINEAGE_VERSION)?;
    Ok(TrainLineage {
        epochs: r.u64_le()?,
        steps: r.u64_le()?,
        last_loss: r.f32_le()?,
        rollbacks: r.u64_le()?,
    })
}

fn get_core(r: &mut Reader<'_>) -> Result<CoreParts, DecodeError> {
    let variant = match r.u8()? {
        0 => Variant::DistilLite,
        1 => Variant::MpLite,
        other => return Err(r.error(DecodeErrorKind::BadDiscriminant(other))),
    };
    let dim = r.u64_le()? as usize;
    let transform = {
        let tag = r.u8()?;
        transform_from(r, tag)?
    };
    let max_cells = r.u64_le()? as usize;
    let max_tokens = r.u64_le()? as usize;
    let oov_buckets = r.u32_le()?;

    // Textizer.
    let mut textizer = Textizer::new(transform, max_cells);
    match r.u8()? {
        0 => {}
        1 => {
            // Each pair is at least 4 (string length) + 4 (count) bytes, so
            // `count` bounds the allocation by the bytes actually present.
            let n = r.count(8)?;
            let mut pairs = Vec::with_capacity(n);
            for _ in 0..n {
                let cell = r.str_prefixed()?;
                pairs.push((cell, r.u32_le()?));
            }
            textizer = textizer.with_frequencies(CellFrequencies::from_pairs(pairs));
        }
        other => return Err(r.error(DecodeErrorKind::BadDiscriminant(other))),
    }

    // Vocabulary: rebuild with exact ids by feeding tokens in id order. The
    // stored count includes the implicit <unk>; each entry needs at least
    // 4 (string length) + 8 (count) bytes — validated before allocating.
    let vocab_len = r.u64_le()? as usize;
    let entries = vocab_len.saturating_sub(1);
    if entries > r.remaining() / 12 {
        return Err(r.error(DecodeErrorKind::Truncated {
            needed: entries.saturating_mul(12),
            available: r.remaining(),
        }));
    }
    let mut list: Vec<(String, u64)> = Vec::with_capacity(entries);
    for _ in 0..entries {
        let tok = r.str_prefixed()?;
        list.push((tok, r.u64_le()?));
    }
    let vocab = Vocabulary::from_id_order(list);

    // Encoder.
    let vocab_size = r.u64_le()? as usize;
    let out_dim = r.u64_le()? as usize;
    let attn_hidden = r.u64_le()? as usize;
    let pooling = match r.u8()? {
        0 => Pooling::Mean,
        1 => Pooling::Attention,
        other => return Err(r.error(DecodeErrorKind::BadDiscriminant(other))),
    };
    let use_positions = r.u8()? != 0;
    let residual = r.u8()? != 0;
    let seed = r.u64_le()?;
    let ec = EncoderConfig {
        vocab_size,
        dim,
        out_dim,
        attn_hidden,
        max_len: max_tokens,
        pooling,
        use_positions,
        residual,
        seed,
    };
    let mut params: [Vec<f32>; 9] = Default::default();
    for p in params.iter_mut() {
        *p = r.f32s()?;
    }
    let encoder = ColumnEncoder::try_from_raw_params(ec, params)
        .map_err(|why| r.error(DecodeErrorKind::Invalid(why)))?;

    let config = DeepJoinConfig {
        variant,
        dim,
        transform,
        max_cells,
        max_tokens,
        oov_buckets,
        ..DeepJoinConfig::default()
    };
    Ok(CoreParts {
        config,
        textizer,
        vocab,
        encoder,
    })
}

/// Serialize a trained model as a v2 `DJAR` container. Set `include_index`
/// to persist the built index alongside the encoder (larger file, instant
/// reload of search). A degraded model saves its vectors but no graph, so
/// it reloads degraded rather than silently losing exactness guarantees.
pub fn save_model(model: &DeepJoin, include_index: bool) -> Vec<u8> {
    let mut core = Writer::with_capacity(1 << 16);
    core.put_slice(CORE_MAGIC);
    core.put_u8(CORE_VERSION);
    put_core(&mut core, model);
    let mut builder = ContainerBuilder::new().section(SECTION_MODEL, core.into_vec());
    if let Some(lineage) = &model.lineage {
        let mut w = Writer::new();
        put_lineage(&mut w, lineage);
        builder = builder.section(SECTION_LINEAGE, w.into_vec());
    }
    if include_index {
        match &model.index {
            IndexState::Hnsw(index) => {
                let (config, dim, vectors, ..) = index.raw_parts();
                let mut flat = FlatIndex::new(dim.max(1), config.metric);
                flat.add_batch(vectors);
                builder = builder.section(SECTION_VECTORS, encode_flat(&flat));
                if let Some(plane) = index.sq8() {
                    builder = builder.section(SECTION_SQ8, encode_sq8(plane));
                }
                builder = builder.section(SECTION_GRAPH, encode_hnsw_graph(index));
            }
            IndexState::DegradedFlat { index, .. } => {
                builder = builder.section(SECTION_VECTORS, encode_flat(index));
                if let Some(plane) = index.sq8() {
                    builder = builder.section(SECTION_SQ8, encode_sq8(plane));
                }
            }
            IndexState::None => {}
        }
    }
    builder.build()
}

/// Deserialize a model saved by [`save_model`] (v2 container) or by the
/// pre-container v1 writer (`DJM1`).
///
/// Corruption of the model core is fatal. Corruption of the index sections
/// degrades instead: a damaged graph falls back to exact flat search over
/// the intact vectors ([`IndexState::DegradedFlat`]), and damaged vectors
/// drop the index entirely — each with an entry in
/// [`LoadedModel::warnings`].
pub fn load_model(buf: &[u8]) -> Result<LoadedModel, DecodeError> {
    if is_container(buf) {
        load_v2(buf)
    } else {
        load_v1(buf)
    }
}

fn load_v2(buf: &[u8]) -> Result<LoadedModel, DecodeError> {
    let container = Container::parse(buf)?;
    let core_bytes = match container.section(SECTION_MODEL, "MODL") {
        None => {
            return Err(DecodeError::new(
                DecodeErrorKind::Invalid("model container has no MODL section"),
                "container",
                0,
            ))
        }
        Some(res) => res?,
    };
    let mut r = Reader::new(core_bytes, "MODL");
    r.expect_magic(CORE_MAGIC)?;
    r.expect_version(CORE_VERSION)?;
    let core = get_core(&mut r)?;

    let mut warnings = Vec::new();
    // Lineage is advisory metadata: damage costs the provenance display,
    // never the model.
    let lineage = match container.section(SECTION_LINEAGE, "TLIN") {
        None => None,
        Some(res) => match res.and_then(|b| get_lineage(&mut Reader::new(b, "TLIN"))) {
            Ok(l) => Some(l),
            Err(e) => {
                warnings.push(format!(
                    "training lineage unreadable ({e}); model loads without provenance"
                ));
                None
            }
        },
    };
    let index = match container.section(SECTION_VECTORS, "VECS") {
        None => IndexState::None,
        Some(vecs) => match vecs.and_then(|b| decode_flat_in(b, "VECS")) {
            Ok(flat) => restore_index(&container, flat, &mut warnings),
            Err(e) => {
                warnings.push(format!(
                    "embedding vectors unrecoverable ({e}); \
                     loading without an index — re-index before searching"
                ));
                IndexState::None
            }
        },
    };
    Ok(LoadedModel {
        model: core.into_model(index, lineage),
        warnings,
    })
}

/// Rebuild the search index from intact vectors plus whatever is left of
/// the graph section, degrading to exact flat search when the graph is
/// missing or damaged. An intact `SQ8V` section re-attaches the quantized
/// plane to whichever index comes out; a damaged or mismatched one only
/// costs the quantized fast path (exact f32 serves instead) and never
/// affects index health.
fn restore_index(
    container: &Container<'_>,
    mut flat: FlatIndex,
    warnings: &mut Vec<String>,
) -> IndexState {
    let sq8 = restore_sq8(container, &flat, warnings);
    let graph = match container.section(SECTION_GRAPH, "HNSW") {
        None => {
            if let Some(plane) = sq8 {
                flat.attach_sq8(plane);
            }
            return IndexState::DegradedFlat {
                index: flat,
                reason: "snapshot carries vectors but no graph section \
                         (saved from a degraded model)"
                    .into(),
            };
        }
        Some(Ok(bytes)) => bytes,
        Some(Err(e)) => {
            warnings.push(format!(
                "HNSW graph failed verification ({e}); falling back to exact flat search"
            ));
            if let Some(plane) = sq8 {
                flat.attach_sq8(plane);
            }
            return IndexState::DegradedFlat {
                index: flat,
                reason: e.to_string(),
            };
        }
    };
    let mut vectors = Vec::with_capacity(flat.len() * flat.dim());
    for id in 0..flat.len() as u32 {
        vectors.extend_from_slice(flat.vector(id));
    }
    match decode_hnsw_graph(graph, "HNSW", vectors) {
        Ok(mut index) => {
            if let Some(plane) = sq8 {
                index.attach_sq8(plane);
            }
            IndexState::Hnsw(index)
        }
        Err(e) => {
            warnings.push(format!(
                "HNSW graph failed verification ({e}); falling back to exact flat search"
            ));
            if let Some(plane) = sq8 {
                flat.attach_sq8(plane);
            }
            IndexState::DegradedFlat {
                index: flat,
                reason: e.to_string(),
            }
        }
    }
}

/// Decode the optional `SQ8V` section. Absence is normal (unquantized
/// snapshot); any failure — CRC, codec, or a shape that does not cover the
/// decoded vectors — degrades to exact f32 with a warning.
fn restore_sq8(
    container: &Container<'_>,
    flat: &FlatIndex,
    warnings: &mut Vec<String>,
) -> Option<Sq8Plane> {
    match container.section(SECTION_SQ8, "SQ8V")? {
        Ok(bytes) => match decode_sq8_in(bytes, "SQ8V") {
            Ok(plane) if plane.dim() == flat.dim() && plane.len() == flat.len() => Some(plane),
            Ok(_) => {
                warnings.push(
                    "SQ8 plane shape disagrees with the vectors; \
                     serving exact f32 instead"
                        .into(),
                );
                None
            }
            Err(e) => {
                warnings.push(format!(
                    "SQ8 quantized plane failed verification ({e}); \
                     serving exact f32 instead"
                ));
                None
            }
        },
        Err(e) => {
            warnings.push(format!(
                "SQ8 quantized plane failed verification ({e}); \
                 serving exact f32 instead"
            ));
            None
        }
    }
}

fn load_v1(buf: &[u8]) -> Result<LoadedModel, DecodeError> {
    let mut r = Reader::new(buf, "DJM1");
    r.expect_magic(MAGIC_V1)?;
    r.expect_version(VERSION_V1)?;
    let core = get_core(&mut r)?;
    // v1 has no checksums, so there is nothing to selectively trust: any
    // index decode failure is fatal, as it was for the v1 loader.
    let index = match r.u8()? {
        0 => IndexState::None,
        1 => {
            let n = r.count(1)?;
            let encoded = r.bytes(n)?;
            IndexState::Hnsw(decode_hnsw_in(encoded, "DJM1")?)
        }
        other => return Err(r.error(DecodeErrorKind::BadDiscriminant(other))),
    };
    Ok(LoadedModel {
        // v1 predates lineage tracking.
        model: core.into_model(index, None),
        warnings: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::IndexHealth;
    use crate::train::{FineTuneConfig, JoinType, TrainDataConfig};
    use deepjoin_lake::corpus::{Corpus, CorpusConfig, CorpusProfile};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn trained() -> (DeepJoin, deepjoin_lake::Repository, Corpus) {
        let corpus = Corpus::generate(CorpusConfig::new(CorpusProfile::Webtable, 400, 3));
        let (repo, _) = corpus.to_repository();
        let cfg = DeepJoinConfig {
            variant: Variant::MpLite,
            dim: 24,
            sgns: deepjoin_embed::SgnsConfig {
                dim: 24,
                epochs: 1,
                ..Default::default()
            },
            fine_tune: FineTuneConfig {
                epochs: 1,
                ..Default::default()
            },
            data: TrainDataConfig {
                max_pairs: 1_000,
                ..Default::default()
            },
            ..DeepJoinConfig::default()
        };
        let (mut model, _) = DeepJoin::train(&repo, JoinType::Equi, cfg);
        model.index_repository(&repo);
        (model, repo, corpus)
    }

    /// A hand-assembled model small enough for exhaustive byte sweeps —
    /// no training, tiny vocabulary, tiny encoder.
    fn tiny_model() -> DeepJoin {
        let config = DeepJoinConfig {
            dim: 8,
            oov_buckets: 4,
            max_cells: 4,
            max_tokens: 16,
            ..DeepJoinConfig::default()
        };
        let vocab = Vocabulary::from_id_order(vec![
            ("alpha".to_string(), 3),
            ("beta".to_string(), 2),
        ]);
        let rows = vocab.len() + config.oov_buckets as usize;
        let enc_cfg = EncoderConfig {
            max_len: config.max_tokens,
            ..EncoderConfig::mp_lite(rows, config.dim, 7)
        };
        let encoder = ColumnEncoder::new(enc_cfg);
        let textizer = Textizer::new(config.transform, config.max_cells);
        DeepJoin {
            config,
            vocab,
            textizer,
            encoder,
            index: IndexState::None,
            lineage: Some(TrainLineage {
                epochs: 2,
                steps: 17,
                last_loss: 0.5,
                rollbacks: 1,
            }),
        }
    }

    fn tiny_indexed(n: usize) -> (DeepJoin, Vec<f32>) {
        let mut model = tiny_model();
        let mut rng = StdRng::seed_from_u64(13);
        let vectors: Vec<f32> = (0..n * 8).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        model.index_embeddings(&vectors);
        (model, vectors)
    }

    /// The legacy v1 writer, kept test-side to prove the compat read path.
    fn save_model_v1(model: &DeepJoin, include_index: bool) -> Vec<u8> {
        let mut out = Writer::new();
        out.put_slice(MAGIC_V1);
        out.put_u8(VERSION_V1);
        put_core(&mut out, model);
        match (&model.index, include_index) {
            (IndexState::Hnsw(index), true) => {
                out.put_u8(1);
                let encoded = deepjoin_ann::io::encode_hnsw(index);
                out.put_u64_le(encoded.len() as u64);
                out.put_slice(&encoded);
            }
            _ => out.put_u8(0),
        }
        out.into_vec()
    }

    #[test]
    fn roundtrip_preserves_embeddings_and_search() {
        let (model, _repo, corpus) = trained();
        let bytes = save_model(&model, true);
        let loaded = load_model(&bytes).unwrap();
        assert!(loaded.warnings.is_empty());
        assert_eq!(loaded.model.index_health(), IndexHealth::Hnsw);

        let (q, _) = corpus.sample_queries(1, 8).pop().unwrap();
        assert_eq!(model.embed_column(&q), loaded.model.embed_column(&q));
        let a: Vec<u32> = model.search(&q, 10).iter().map(|s| s.id.0).collect();
        let b: Vec<u32> = loaded.model.search(&q, 10).iter().map(|s| s.id.0).collect();
        assert_eq!(a, b);
        assert_eq!(loaded.model.indexed_len(), model.indexed_len());
    }

    #[test]
    fn roundtrip_without_index_can_reindex() {
        let (model, repo, corpus) = trained();
        let bytes = save_model(&model, false);
        let mut loaded = load_model(&bytes).unwrap().into_model();
        assert_eq!(loaded.indexed_len(), 0);
        assert_eq!(loaded.index_health(), IndexHealth::Missing);
        loaded.index_repository(&repo);
        let (q, _) = corpus.sample_queries(1, 9).pop().unwrap();
        let a: Vec<u32> = model.search(&q, 5).iter().map(|s| s.id.0).collect();
        let b: Vec<u32> = loaded.search(&q, 5).iter().map(|s| s.id.0).collect();
        assert_eq!(a, b, "re-indexing reproduces the same graph (same seed)");
    }

    #[test]
    fn v1_snapshot_still_loads() {
        let (model, _) = tiny_indexed(30);
        let bytes = save_model_v1(&model, true);
        let loaded = load_model(&bytes).unwrap();
        assert!(loaded.warnings.is_empty());
        assert_eq!(loaded.model.index_health(), IndexHealth::Hnsw);
        assert_eq!(loaded.model.indexed_len(), 30);
        let mut rng = StdRng::seed_from_u64(99);
        let q: Vec<f32> = (0..8).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let a: Vec<u32> = model.search_embedded(&q, 5).iter().map(|s| s.id.0).collect();
        let b: Vec<u32> = loaded
            .model
            .search_embedded(&q, 5)
            .iter()
            .map(|s| s.id.0)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn graph_corruption_degrades_to_exact_flat_search() {
        let (model, vectors) = tiny_indexed(40);
        let bytes = save_model(&model, true);

        // The HNSW graph section is written last; flipping the final byte
        // damages only it.
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;

        let loaded = load_model(&bad).unwrap();
        assert_eq!(loaded.warnings.len(), 1, "degradation must be reported");
        assert!(loaded.warnings[0].contains("falling back to exact flat search"));
        assert!(matches!(
            loaded.model.index_health(),
            IndexHealth::DegradedFlat { .. }
        ));
        assert_eq!(loaded.model.indexed_len(), 40);

        // Degraded search is exact: it must agree with a brute-force scan
        // of the stored vectors.
        let mut rng = StdRng::seed_from_u64(5);
        let q: Vec<f32> = (0..8).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let got: Vec<u32> = loaded
            .model
            .search_embedded(&q, 5)
            .iter()
            .map(|s| s.id.0)
            .collect();
        let mut scored: Vec<(f32, u32)> = vectors
            .chunks(8)
            .enumerate()
            .map(|(i, v)| {
                let d = v.iter().zip(&q).map(|(a, b)| (a - b) * (a - b)).sum::<f32>();
                (d, i as u32)
            })
            .collect();
        scored.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let expected: Vec<u32> = scored.iter().take(5).map(|&(_, i)| i).collect();
        assert_eq!(got, expected);

        // A degraded model re-saves without a graph and reloads degraded —
        // degradation is sticky, not silently forgotten.
        let resaved = save_model(&loaded.model, true);
        let reloaded = load_model(&resaved).unwrap();
        assert!(matches!(
            reloaded.model.index_health(),
            IndexHealth::DegradedFlat { .. }
        ));
        let again: Vec<u32> = reloaded
            .model
            .search_embedded(&q, 5)
            .iter()
            .map(|s| s.id.0)
            .collect();
        assert_eq!(again, expected);
    }

    #[test]
    fn sq8_plane_roundtrips_through_save_load() {
        let (mut model, _) = tiny_indexed(40);
        assert!(model.quantize_sq8());
        assert!(model.sq8_resident_bytes().is_some());
        let bytes = save_model(&model, true);
        let loaded = load_model(&bytes).unwrap();
        assert!(loaded.warnings.is_empty(), "{:?}", loaded.warnings);
        assert_eq!(loaded.model.index_health(), IndexHealth::Hnsw);
        assert_eq!(
            loaded.model.sq8_resident_bytes(),
            model.sq8_resident_bytes(),
            "quantization must survive the round trip"
        );
        let mut rng = StdRng::seed_from_u64(77);
        let q: Vec<f32> = (0..8).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let a: Vec<u32> = model.search_embedded(&q, 5).iter().map(|s| s.id.0).collect();
        let b: Vec<u32> = loaded
            .model
            .search_embedded(&q, 5)
            .iter()
            .map(|s| s.id.0)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn sq8_corruption_degrades_to_exact_f32_not_index_loss() {
        let (mut model, _) = tiny_indexed(40);
        model.quantize_sq8();
        let bytes = save_model(&model, true);

        // Locate the SQ8V payload by re-encoding the attached plane.
        let IndexState::Hnsw(index) = &model.index else {
            unreachable!()
        };
        let payload = encode_sq8(index.sq8().unwrap());
        let pos = bytes
            .windows(payload.len())
            .position(|w| w == payload.as_slice())
            .expect("SQ8V payload present in the container");
        let mut bad = bytes.clone();
        bad[pos + payload.len() / 2] ^= 0x10;

        let loaded = load_model(&bad).unwrap();
        assert_eq!(loaded.warnings.len(), 1, "{:?}", loaded.warnings);
        assert!(loaded.warnings[0].contains("SQ8 quantized plane failed verification"));
        // The quantized fast path is lost; the index itself is not.
        assert_eq!(loaded.model.index_health(), IndexHealth::Hnsw);
        assert_eq!(loaded.model.sq8_resident_bytes(), None);
        let IndexState::Hnsw(idx) = &mut model.index else {
            unreachable!()
        };
        idx.detach_sq8();
        let mut rng = StdRng::seed_from_u64(78);
        let q: Vec<f32> = (0..8).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let a: Vec<u32> = model
            .search_embedded(&q, 5)
            .iter()
            .map(|s| s.id.0)
            .collect();
        let b: Vec<u32> = loaded
            .model
            .search_embedded(&q, 5)
            .iter()
            .map(|s| s.id.0)
            .collect();
        assert_eq!(a, b, "corrupt plane must serve exactly like unquantized");
    }

    #[test]
    fn vector_corruption_loads_without_index() {
        let (model, _) = tiny_indexed(20);
        let bytes = save_model(&model, true);

        // Locate the VECS payload by re-encoding it and searching.
        let IndexState::Hnsw(index) = &model.index else {
            unreachable!()
        };
        let (config, dim, vectors, ..) = index.raw_parts();
        let mut flat = FlatIndex::new(dim, config.metric);
        flat.add_batch(vectors);
        let payload = encode_flat(&flat);
        let pos = bytes
            .windows(payload.len())
            .position(|w| w == payload.as_slice())
            .expect("VECS payload present in container");

        let mut bad = bytes.clone();
        bad[pos + payload.len() / 2] ^= 0x10;
        let loaded = load_model(&bad).unwrap();
        assert_eq!(loaded.model.index_health(), IndexHealth::Missing);
        assert_eq!(loaded.model.indexed_len(), 0);
        assert_eq!(loaded.warnings.len(), 1);
        assert!(loaded.warnings[0].contains("re-index before searching"));
    }

    #[test]
    fn corrupted_model_is_rejected() {
        let (model, _) = tiny_indexed(10);
        let bytes = save_model(&model, false);
        let mut bad = bytes.clone();
        bad[0] = b'X';
        // Neither a container nor a v1 file.
        let err = load_model(&bad).unwrap_err();
        assert_eq!(err.kind, DecodeErrorKind::BadMagic);
        assert!(load_model(&bytes[..bytes.len() / 2]).is_err());
    }

    #[test]
    fn truncation_and_bit_flips_never_panic() {
        let (model, _) = tiny_indexed(15);
        for bytes in [save_model(&model, true), save_model_v1(&model, true)] {
            // Every strict prefix must fail cleanly.
            for cut in 0..bytes.len() {
                assert!(load_model(&bytes[..cut]).is_err());
            }
            // Every single-byte flip must load degraded, load clean, or
            // error — never panic; whatever loads must serve searches.
            let q = [0.25f32; 8];
            for i in 0..bytes.len() {
                let mut bad = bytes.clone();
                bad[i] ^= 0x80;
                if let Ok(loaded) = load_model(&bad) {
                    if loaded.model.index_health() != IndexHealth::Missing {
                        let _ = loaded.model.search_embedded(&q, 3);
                    }
                }
            }
        }
    }

    #[test]
    fn saved_files_are_byte_stable() {
        let (model, _, _) = trained();
        assert_eq!(save_model(&model, true), save_model(&model, true));
    }

    #[test]
    fn lineage_roundtrips_and_degrades_gracefully() {
        let (model, _) = tiny_indexed(10);
        let bytes = save_model(&model, false);
        let loaded = load_model(&bytes).unwrap();
        assert!(loaded.warnings.is_empty());
        assert_eq!(loaded.model.lineage(), model.lineage());

        // Damage the TLIN payload (located by its DJTL magic): the model
        // must still load, with a warning and no lineage.
        let pos = bytes
            .windows(4)
            .position(|w| w == LINEAGE_MAGIC)
            .expect("lineage payload present");
        let mut bad = bytes.clone();
        bad[pos + 6] ^= 0x40;
        let loaded = load_model(&bad).unwrap();
        assert!(loaded.model.lineage().is_none());
        assert_eq!(loaded.warnings.len(), 1);
        assert!(loaded.warnings[0].contains("lineage unreadable"));

        // A trained model records real lineage that survives persistence.
        let (trained_model, _, _) = trained();
        let l = *trained_model.lineage().expect("training records lineage");
        assert!(l.epochs == 1 && l.steps > 0 && l.last_loss.is_finite());
        let reloaded = load_model(&save_model(&trained_model, false)).unwrap();
        assert_eq!(reloaded.model.lineage().copied(), Some(l));
    }
}
