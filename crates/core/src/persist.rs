//! Durable persistence for trained DeepJoin models.
//!
//! A saved model carries everything inference and indexing need — the
//! contextualizer (option, cell budget, cell frequencies), the vocabulary,
//! the encoder configuration and parameters, and (optionally) the built
//! index. Since v2 the on-disk form is a `DJAR` container
//! (`deepjoin_store::container`) with three checksummed sections:
//!
//! * `MODL` — the model core (config, frequencies, vocabulary, encoder);
//!   mandatory, and a checksum failure here is fatal;
//! * `VECS` — the indexed embedding vectors as a `DJF1` flat-index payload;
//! * `HNSW` — the graph half of the HNSW index as a `DJG1` payload.
//!
//! Splitting vectors from graph is what makes *graceful degradation*
//! possible: when the `HNSW` section fails its CRC but `VECS` survives,
//! [`load_model`] returns a model in [`IndexState::DegradedFlat`] — exact
//! (slower) search over the same vectors — with a warning, instead of
//! refusing to load. Legacy v1 `DJM1` snapshots (un-sectioned, no
//! checksums) are still read.
//!
//! Training-only settings (optimizer, labeling thresholds, SGNS) are *not*
//! persisted: a loaded model can embed, index and search, but continuing
//! training requires the original `DeepJoinConfig`.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};

use deepjoin_ann::flat::FlatIndex;
use deepjoin_ann::hnsw::HnswIndex;
use deepjoin_ann::index::VectorIndex;
use deepjoin_ann::io::{
    decode_flat_in, decode_flat_v2_in, decode_hnsw_graph, decode_hnsw_graph_v2, decode_hnsw_in,
    decode_sq8_in, decode_sq8_v2_in, encode_flat_v2, encode_hnsw_graph_v2, encode_sq8_v2,
    DecodeError, MappedPayload, MAGIC_FLAT_V2, MAGIC_HNSW_GRAPH_V2, MAGIC_SQ8_V2,
};
use deepjoin_ann::plane::{ByteOwner, PodVec};
use deepjoin_ann::sq8::Sq8Plane;
use deepjoin_lake::tokenizer::Vocabulary;
use deepjoin_nn::encoder::{ColumnEncoder, EncoderConfig, Pooling};
use deepjoin_store::codec::{DecodeErrorKind, Reader, Writer};
use deepjoin_store::{is_aligned_container, is_container, Container, ContainerBuilder, Mmap};

use crate::model::{DeepJoin, DeepJoinConfig, IndexState, TrainLineage, Variant};
use crate::text::{CellFrequencies, Textizer, TransformOption};

/// Container section holding the model core.
pub const SECTION_MODEL: [u8; 4] = *b"MODL";
/// Container section holding the training lineage (`DJTL`).
pub const SECTION_LINEAGE: [u8; 4] = *b"TLIN";
/// Container section holding the indexed embedding vectors (`DJF1`).
pub const SECTION_VECTORS: [u8; 4] = *b"VECS";
/// Container section holding the SQ8 quantized vector plane (`DJQ1`).
/// Written between `VECS` and `HNSW` so the graph stays the trailing
/// section (tail truncation keeps damaging the graph first, the most
/// gracefully degradable section).
pub const SECTION_SQ8: [u8; 4] = *b"SQ8V";
/// Container section holding the HNSW graph (`DJG1`).
pub const SECTION_GRAPH: [u8; 4] = *b"HNSW";

/// Magic of the v2 model-core payload inside the `MODL` section.
const CORE_MAGIC: &[u8; 4] = b"DJM2";
const CORE_VERSION: u8 = 1;

/// Magic of the lineage payload inside the `TLIN` section.
const LINEAGE_MAGIC: &[u8; 4] = b"DJTL";
const LINEAGE_VERSION: u8 = 1;

/// Magic of the legacy whole-file v1 format.
const MAGIC_V1: &[u8; 4] = b"DJM1";
const VERSION_V1: u8 = 1;

/// Backing report for one container section after a load — the
/// `dj info` mapped-vs-resident view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionInfo {
    /// Four-character section name (`MODL`, `VECS`, ...).
    pub name: String,
    /// Payload bytes on disk.
    pub bytes: usize,
    /// True when the loaded structure views the mapping zero-copy.
    pub mapped: bool,
    /// Heap bytes the loaded structure retains for this section (0 for a
    /// mapped plane; its pages are file-backed and evictable).
    pub resident: usize,
}

/// A model restored from disk, along with any degradation warnings the
/// loader produced. An empty `warnings` means full fidelity.
pub struct LoadedModel {
    /// The restored model; check [`DeepJoin::index_health`] before serving.
    pub model: DeepJoin,
    /// Human-readable accounts of anything that could not be restored.
    pub warnings: Vec<String>,
    /// Per-section backing (file bytes, mapped or heap, resident bytes),
    /// in file order. Empty for legacy v1 snapshots.
    pub sections: Vec<SectionInfo>,
}

impl LoadedModel {
    /// Drop the warnings and keep the model (callers that already surfaced
    /// or deliberately ignore degradation).
    pub fn into_model(self) -> DeepJoin {
        self.model
    }
}

impl std::fmt::Debug for LoadedModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LoadedModel")
            .field("index_health", &self.model.index_health())
            .field("warnings", &self.warnings)
            .finish_non_exhaustive()
    }
}

/// Tag is the option's position in [`TransformOption::ALL`]; the exhaustive
/// match keeps the mapping total by construction.
fn transform_tag(t: TransformOption) -> u8 {
    match t {
        TransformOption::Col => 0,
        TransformOption::ColnameCol => 1,
        TransformOption::ColnameColContext => 2,
        TransformOption::ColnameStatCol => 3,
        TransformOption::TitleColnameCol => 4,
        TransformOption::TitleColnameColContext => 5,
        TransformOption::TitleColnameStatCol => 6,
    }
}

fn transform_from(r: &Reader<'_>, tag: u8) -> Result<TransformOption, DecodeError> {
    TransformOption::ALL
        .get(tag as usize)
        .copied()
        .ok_or_else(|| r.error(DecodeErrorKind::BadDiscriminant(tag)))
}

/// Model core fields, shared verbatim between the v1 body and the v2
/// `MODL` section (the layouts are byte-identical past their headers).
fn put_core(out: &mut Writer, model: &DeepJoin) {
    let cfg = &model.config;
    out.put_u8(match cfg.variant {
        Variant::DistilLite => 0,
        Variant::MpLite => 1,
    });
    out.put_u64_le(cfg.dim as u64);
    out.put_u8(transform_tag(cfg.transform));
    out.put_u64_le(cfg.max_cells as u64);
    out.put_u64_le(cfg.max_tokens as u64);
    out.put_u32_le(cfg.oov_buckets);

    // --- textizer frequencies ---
    match model.textizer.frequencies() {
        Some(freq) => {
            out.put_u8(1);
            out.put_u64_le(freq.len() as u64);
            // Deterministic order for byte-stable files.
            let mut pairs: Vec<(&str, u32)> = freq.iter().collect();
            pairs.sort_unstable();
            for (cell, count) in pairs {
                out.put_str(cell);
                out.put_u32_le(count);
            }
        }
        None => out.put_u8(0),
    }

    // --- vocabulary ---
    out.put_u64_le(model.vocab.len() as u64);
    // Skip <unk> (id 0) — it is implicit in a fresh Vocabulary.
    for id in 1..model.vocab.len() as u32 {
        out.put_str(model.vocab.token(id));
        out.put_u64_le(model.vocab.count(id));
    }

    // --- encoder ---
    let ec = &model.encoder.config;
    out.put_u64_le(ec.vocab_size as u64);
    out.put_u64_le(ec.out_dim as u64);
    out.put_u64_le(ec.attn_hidden as u64);
    out.put_u8(match ec.pooling {
        Pooling::Mean => 0,
        Pooling::Attention => 1,
    });
    out.put_u8(ec.use_positions as u8);
    out.put_u8(ec.residual as u8);
    out.put_u64_le(ec.seed);
    let (emb, pos, aw, ab, av, h1w, h1b, h2w, h2b) = model.encoder.raw_params();
    for t in [emb, pos, aw, ab, av, h1w, h1b, h2w, h2b] {
        out.put_f32s(t);
    }
}

/// Everything [`get_core`] restores; the index is attached separately.
struct CoreParts {
    config: DeepJoinConfig,
    textizer: Textizer,
    vocab: Vocabulary,
    encoder: ColumnEncoder,
}

impl CoreParts {
    fn into_model(self, index: IndexState, lineage: Option<TrainLineage>) -> DeepJoin {
        DeepJoin {
            config: self.config,
            vocab: self.vocab,
            textizer: self.textizer,
            encoder: self.encoder,
            index,
            lineage,
        }
    }
}

fn put_lineage(out: &mut Writer, lineage: &TrainLineage) {
    out.put_slice(LINEAGE_MAGIC);
    out.put_u8(LINEAGE_VERSION);
    out.put_u64_le(lineage.epochs);
    out.put_u64_le(lineage.steps);
    out.put_f32_le(lineage.last_loss);
    out.put_u64_le(lineage.rollbacks);
}

fn get_lineage(r: &mut Reader<'_>) -> Result<TrainLineage, DecodeError> {
    r.expect_magic(LINEAGE_MAGIC)?;
    r.expect_version(LINEAGE_VERSION)?;
    Ok(TrainLineage {
        epochs: r.u64_le()?,
        steps: r.u64_le()?,
        last_loss: r.f32_le()?,
        rollbacks: r.u64_le()?,
    })
}

fn get_core(r: &mut Reader<'_>) -> Result<CoreParts, DecodeError> {
    let variant = match r.u8()? {
        0 => Variant::DistilLite,
        1 => Variant::MpLite,
        other => return Err(r.error(DecodeErrorKind::BadDiscriminant(other))),
    };
    let dim = r.u64_le()? as usize;
    let transform = {
        let tag = r.u8()?;
        transform_from(r, tag)?
    };
    let max_cells = r.u64_le()? as usize;
    let max_tokens = r.u64_le()? as usize;
    let oov_buckets = r.u32_le()?;

    // Textizer.
    let mut textizer = Textizer::new(transform, max_cells);
    match r.u8()? {
        0 => {}
        1 => {
            // Each pair is at least 4 (string length) + 4 (count) bytes, so
            // `count` bounds the allocation by the bytes actually present.
            let n = r.count(8)?;
            let mut pairs = Vec::with_capacity(n);
            for _ in 0..n {
                let cell = r.str_prefixed()?;
                pairs.push((cell, r.u32_le()?));
            }
            textizer = textizer.with_frequencies(CellFrequencies::from_pairs(pairs));
        }
        other => return Err(r.error(DecodeErrorKind::BadDiscriminant(other))),
    }

    // Vocabulary: rebuild with exact ids by feeding tokens in id order. The
    // stored count includes the implicit <unk>; each entry needs at least
    // 4 (string length) + 8 (count) bytes — validated before allocating.
    let vocab_len = r.u64_le()? as usize;
    let entries = vocab_len.saturating_sub(1);
    if entries > r.remaining() / 12 {
        return Err(r.error(DecodeErrorKind::Truncated {
            needed: entries.saturating_mul(12),
            available: r.remaining(),
        }));
    }
    let mut list: Vec<(String, u64)> = Vec::with_capacity(entries);
    for _ in 0..entries {
        let tok = r.str_prefixed()?;
        list.push((tok, r.u64_le()?));
    }
    let vocab = Vocabulary::from_id_order(list);

    // Encoder.
    let vocab_size = r.u64_le()? as usize;
    let out_dim = r.u64_le()? as usize;
    let attn_hidden = r.u64_le()? as usize;
    let pooling = match r.u8()? {
        0 => Pooling::Mean,
        1 => Pooling::Attention,
        other => return Err(r.error(DecodeErrorKind::BadDiscriminant(other))),
    };
    let use_positions = r.u8()? != 0;
    let residual = r.u8()? != 0;
    let seed = r.u64_le()?;
    let ec = EncoderConfig {
        vocab_size,
        dim,
        out_dim,
        attn_hidden,
        max_len: max_tokens,
        pooling,
        use_positions,
        residual,
        seed,
    };
    let mut params: [Vec<f32>; 9] = Default::default();
    for p in params.iter_mut() {
        *p = r.f32s()?;
    }
    let encoder = ColumnEncoder::try_from_raw_params(ec, params)
        .map_err(|why| r.error(DecodeErrorKind::Invalid(why)))?;

    let config = DeepJoinConfig {
        variant,
        dim,
        transform,
        max_cells,
        max_tokens,
        oov_buckets,
        ..DeepJoinConfig::default()
    };
    Ok(CoreParts {
        config,
        textizer,
        vocab,
        encoder,
    })
}

/// The legacy whole-file v1 (`DJM1`) writer: un-sectioned, no checksums,
/// nothing mappable. New artifacts are always v2 — this exists so the
/// compat read path and the load benchmark can produce real v1 inputs
/// (the pre-aligned-layout status quo the startup numbers are measured
/// against).
pub fn encode_model_v1(model: &DeepJoin, include_index: bool) -> Vec<u8> {
    let mut out = Writer::new();
    out.put_slice(MAGIC_V1);
    out.put_u8(VERSION_V1);
    put_core(&mut out, model);
    match (&model.index, include_index) {
        (IndexState::Hnsw(index), true) => {
            out.put_u8(1);
            let encoded = deepjoin_ann::io::encode_hnsw(index);
            out.put_u64_le(encoded.len() as u64);
            out.put_slice(&encoded);
        }
        _ => out.put_u8(0),
    }
    out.into_vec()
}

/// Serialize a trained model as an **aligned** (v2) `DJAR` container whose
/// index sections use the v2 aligned payloads (`DJF2`/`DJQ2`/`DJG2`) — the
/// layout [`load_model_path`] can map zero-copy. Set `include_index` to
/// persist the built index alongside the encoder (larger file, instant
/// reload of search). A degraded model saves its vectors but no graph, so
/// it reloads degraded rather than silently losing exactness guarantees.
pub fn save_model(model: &DeepJoin, include_index: bool) -> Vec<u8> {
    let mut core = Writer::with_capacity(1 << 16);
    core.put_slice(CORE_MAGIC);
    core.put_u8(CORE_VERSION);
    put_core(&mut core, model);
    let mut builder = ContainerBuilder::aligned().section(SECTION_MODEL, core.into_vec());
    if let Some(lineage) = &model.lineage {
        let mut w = Writer::new();
        put_lineage(&mut w, lineage);
        builder = builder.section(SECTION_LINEAGE, w.into_vec());
    }
    if include_index {
        match &model.index {
            IndexState::Hnsw(index) => {
                let flat = FlatIndex::from_plane(
                    index.dim().max(1),
                    index.config().metric,
                    index.vectors_plane().clone(),
                );
                builder = builder.section(SECTION_VECTORS, encode_flat_v2(&flat));
                if let Some(plane) = index.sq8() {
                    builder = builder.section(SECTION_SQ8, encode_sq8_v2(plane));
                }
                builder = builder.section(SECTION_GRAPH, encode_hnsw_graph_v2(index));
            }
            IndexState::DegradedFlat { index, .. } => {
                builder = builder.section(SECTION_VECTORS, encode_flat_v2(index));
                if let Some(plane) = index.sq8() {
                    builder = builder.section(SECTION_SQ8, encode_sq8_v2(plane));
                }
            }
            IndexState::None => {}
        }
    }
    builder.build()
}

/// Deserialize a model saved by [`save_model`] (v2 container) or by the
/// pre-container v1 writer (`DJM1`), decoding everything onto the heap.
/// Prefer [`load_model_path`] when the artifact is a file: it maps aligned
/// containers zero-copy instead.
///
/// Corruption of the model core is fatal. Corruption of the index sections
/// degrades instead: a damaged graph falls back to exact flat search over
/// the intact vectors ([`IndexState::DegradedFlat`]), and damaged vectors
/// drop the index entirely — each with an entry in
/// [`LoadedModel::warnings`].
pub fn load_model(buf: &[u8]) -> Result<LoadedModel, DecodeError> {
    if is_container(buf) {
        load_v2(buf, None, true)
    } else {
        load_v1(buf)
    }
}

/// Decode a flat-index payload of either generation; `src` enables the
/// zero-copy path for `DJF2`.
fn decode_flat_any(
    buf: &[u8],
    label: &'static str,
    src: Option<&MappedPayload>,
) -> Result<FlatIndex, DecodeError> {
    if buf.starts_with(MAGIC_FLAT_V2) {
        decode_flat_v2_in(buf, label, src)
    } else {
        decode_flat_in(buf, label)
    }
}

/// Decode an SQ8 payload of either generation.
fn decode_sq8_any(
    buf: &[u8],
    label: &'static str,
    src: Option<&MappedPayload>,
) -> Result<Sq8Plane, DecodeError> {
    if buf.starts_with(MAGIC_SQ8_V2) {
        decode_sq8_v2_in(buf, label, src)
    } else {
        decode_sq8_in(buf, label)
    }
}

/// Decode a graph-only HNSW payload of either generation over `vectors`.
fn decode_graph_any(
    buf: &[u8],
    label: &'static str,
    vectors: PodVec<f32>,
    src: Option<&MappedPayload>,
) -> Result<HnswIndex, DecodeError> {
    if buf.starts_with(MAGIC_HNSW_GRAPH_V2) {
        decode_hnsw_graph_v2(buf, label, vectors, src)
    } else {
        decode_hnsw_graph(buf, label, vectors.into_vec())
    }
}

/// How one load resolves container sections: the parsed container, plus
/// (for the zero-copy path) the pinned whole-file buffer the payloads can
/// be viewed from, plus whether payload CRCs still need checking (`false`
/// only on a reopen of a file this process already verified, unchanged).
struct Sections<'a> {
    container: Container<'a>,
    buf: &'a [u8],
    mapped: Option<ByteOwner>,
    verify: bool,
}

impl<'a> Sections<'a> {
    /// Payload bytes + optional mapped source for `name`, mirroring
    /// [`Container::section`]'s `Option<Result<..>>` contract.
    #[allow(clippy::type_complexity)]
    fn get(
        &self,
        name: [u8; 4],
        label: &'static str,
    ) -> Option<Result<(&'a [u8], Option<MappedPayload>), DecodeError>> {
        let range = if self.verify {
            match self.container.section_range(name, label)? {
                Ok(r) => r,
                Err(e) => return Some(Err(e)),
            }
        } else {
            self.container.section_range_trusted(name)?
        };
        let bytes = &self.buf[range.offset..range.offset + range.len];
        let src = self.mapped.as_ref().map(|owner| MappedPayload {
            owner: owner.clone(),
            base: range.offset,
        });
        Some(Ok((bytes, src)))
    }
}

fn load_v2(buf: &[u8], mapped: Option<ByteOwner>, verify: bool) -> Result<LoadedModel, DecodeError> {
    let sections = Sections {
        container: Container::parse(buf)?,
        buf,
        mapped,
        verify,
    };
    let (core_bytes, _) = match sections.get(SECTION_MODEL, "MODL") {
        None => {
            return Err(DecodeError::new(
                DecodeErrorKind::Invalid("model container has no MODL section"),
                "container",
                0,
            ))
        }
        Some(res) => res?,
    };
    let mut r = Reader::new(core_bytes, "MODL");
    r.expect_magic(CORE_MAGIC)?;
    r.expect_version(CORE_VERSION)?;
    let core = get_core(&mut r)?;

    let mut warnings = Vec::new();
    // Lineage is advisory metadata: damage costs the provenance display,
    // never the model.
    let lineage = match sections.get(SECTION_LINEAGE, "TLIN") {
        None => None,
        Some(res) => match res.and_then(|(b, _)| get_lineage(&mut Reader::new(b, "TLIN"))) {
            Ok(l) => Some(l),
            Err(e) => {
                warnings.push(format!(
                    "training lineage unreadable ({e}); model loads without provenance"
                ));
                None
            }
        },
    };
    let index = match sections.get(SECTION_VECTORS, "VECS") {
        None => IndexState::None,
        Some(vecs) => match vecs.and_then(|(b, src)| decode_flat_any(b, "VECS", src.as_ref())) {
            Ok(flat) => restore_index(&sections, flat, &mut warnings),
            Err(e) => {
                warnings.push(format!(
                    "embedding vectors unrecoverable ({e}); \
                     loading without an index — re-index before searching"
                ));
                IndexState::None
            }
        },
    };
    let model = core.into_model(index, lineage);
    let section_info = section_report(&sections.container, &model);
    Ok(LoadedModel {
        model,
        warnings,
        sections: section_info,
    })
}

/// Per-section backing report for a freshly loaded model (`dj info`).
fn section_report(container: &Container<'_>, model: &DeepJoin) -> Vec<SectionInfo> {
    container
        .section_sizes()
        .into_iter()
        .map(|(name, bytes)| {
            let (mapped, resident) = match (&name, &model.index) {
                (b"VECS", IndexState::Hnsw(i)) => (
                    i.vectors_plane().is_mapped(),
                    i.vectors_plane().resident_bytes(),
                ),
                (b"VECS", IndexState::DegradedFlat { index, .. }) => {
                    (index.is_mapped(), index.plane().resident_bytes())
                }
                (b"HNSW", IndexState::Hnsw(i)) => {
                    (i.graph().is_mapped(), i.graph().resident_bytes())
                }
                (b"SQ8V", IndexState::Hnsw(i)) => match i.sq8() {
                    Some(p) => (p.is_mapped(), p.resident_bytes()),
                    None => (false, 0),
                },
                (b"SQ8V", IndexState::DegradedFlat { index, .. }) => match index.sq8() {
                    Some(p) => (p.is_mapped(), p.resident_bytes()),
                    None => (false, 0),
                },
                // The model core (and lineage) always decode to owned
                // structures; their heap cost ≈ the payload size.
                _ => (false, bytes),
            };
            SectionInfo {
                name: String::from_utf8_lossy(&name).into_owned(),
                bytes,
                mapped,
                resident,
            }
        })
        .collect()
}

/// True unless `DEEPJOIN_MMAP` is set to `0`/`off`/`false` — the toggle the
/// serve e2e suite uses to exercise both backings.
pub(crate) fn mmap_enabled() -> bool {
    match std::env::var("DEEPJOIN_MMAP") {
        Ok(v) => !(v == "0" || v.eq_ignore_ascii_case("off") || v.eq_ignore_ascii_case("false")),
        Err(_) => true,
    }
}

/// Identity of a file's content for the validated-artifact cache.
#[cfg(unix)]
type FileStamp = (u64, u64, i64, i64, u64);

#[cfg(unix)]
fn file_stamp(path: &Path) -> Option<FileStamp> {
    use std::os::unix::fs::MetadataExt;
    let m = std::fs::metadata(path).ok()?;
    Some((m.dev(), m.ino(), m.mtime(), m.mtime_nsec(), m.len()))
}

#[cfg(unix)]
fn validated_cache() -> &'static Mutex<HashMap<PathBuf, FileStamp>> {
    static CACHE: OnceLock<Mutex<HashMap<PathBuf, FileStamp>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// True when `path` was fully CRC-verified by a previous load in this
/// process and is provably the same file content (device, inode, mtime,
/// size all unchanged) — the hot-reload fast path may then skip payload
/// CRCs, touching only header pages instead of the whole file.
#[cfg(unix)]
fn already_validated(path: &Path, stamp: &FileStamp) -> bool {
    validated_cache()
        .lock()
        .map(|c| c.get(path) == Some(stamp))
        .unwrap_or(false)
}

#[cfg(unix)]
fn record_validated(path: &Path, stamp: FileStamp) {
    if let Ok(mut c) = validated_cache().lock() {
        c.insert(path.to_path_buf(), stamp);
    }
}

/// Magic of the validation-stamp sidecar (`<artifact>.stamp`).
#[cfg(unix)]
const STAMP_MAGIC: &[u8; 4] = b"DJST";
#[cfg(unix)]
const STAMP_VERSION: u8 = 1;

/// Sidecar path for `artifact`: the artifact name with `.stamp` appended
/// (`model.djar` → `model.djar.stamp`), so the pair travels together.
#[cfg(unix)]
fn stamp_sidecar_path(path: &Path) -> PathBuf {
    let mut s = path.as_os_str().to_os_string();
    s.push(".stamp");
    PathBuf::from(s)
}

/// The stamp a previous *process* fully CRC-verified this artifact under,
/// if a well-formed sidecar is present. A missing, truncated, or
/// checksum-damaged sidecar simply means "not verified" — never an error.
#[cfg(unix)]
fn read_stamp_sidecar(path: &Path) -> Option<FileStamp> {
    let bytes = std::fs::read(stamp_sidecar_path(path)).ok()?;
    if bytes.len() != 49 || &bytes[..4] != STAMP_MAGIC || bytes[4] != STAMP_VERSION {
        return None;
    }
    let crc_stored = u32::from_le_bytes(bytes[45..49].try_into().ok()?);
    if deepjoin_store::crc32::crc32(&bytes[..45]) != crc_stored {
        return None;
    }
    let u = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
    Some((u(5), u(13), u(21) as i64, u(29) as i64, u(37)))
}

/// Persist `stamp` so the *next process* can skip the payload CRC sweep on
/// an unchanged artifact — this is what makes cold start a remap instead
/// of a full re-read. Written via temp-file + atomic rename; best effort
/// (a read-only artifact directory just means the next start re-verifies).
#[cfg(unix)]
fn write_stamp_sidecar(path: &Path, stamp: &FileStamp) {
    let mut w = Writer::with_capacity(49);
    w.put_slice(STAMP_MAGIC);
    w.put_u8(STAMP_VERSION);
    w.put_u64_le(stamp.0);
    w.put_u64_le(stamp.1);
    w.put_u64_le(stamp.2 as u64);
    w.put_u64_le(stamp.3 as u64);
    w.put_u64_le(stamp.4);
    let bytes = w.into_vec();
    let crc = deepjoin_store::crc32::crc32(&bytes);
    let sidecar = stamp_sidecar_path(path);
    let tmp = sidecar.with_extension("stamp.tmp");
    let mut out = bytes;
    out.extend_from_slice(&crc.to_le_bytes());
    if std::fs::write(&tmp, &out).is_ok() {
        let _ = std::fs::rename(&tmp, &sidecar);
    }
}

/// The shared artifact loader every path-taking call site goes through
/// (`dj serve`, `dj info`, `dj query`, snapshot reload).
///
/// * **Aligned (v2) containers** are `mmap(2)`-ed and their index planes
///   decoded as zero-copy views of the mapping — cold start does no vector
///   copy, and cold RSS stays at the heap structures only. Disable with
///   `DEEPJOIN_MMAP=0` (the planes then decode onto the heap from the same
///   bytes, byte-identically).
/// * **Reloads of an unchanged file** (same device/inode/mtime/size as a
///   load already fully verified — by this process, or by a previous one
///   via the `<artifact>.stamp` sidecar) skip the payload CRC sweep, so a
///   hot remap *and* a process restart cost milliseconds, not a full
///   re-read. Any change to the file (production writes go through
///   temp-file + rename, changing the inode) voids the stamp and forces a
///   full sweep. Delete the sidecar to force re-verification.
/// * **Legacy artifacts** (v1 containers, `DJM1` files) fall back to a
///   heap `std::fs::read` load with one warning and identical behavior.
///
/// Errors carry the path and the failing stage, uniformly.
pub fn load_model_path(path: &Path) -> Result<LoadedModel, String> {
    let want_mmap = mmap_enabled();
    #[cfg(unix)]
    if want_mmap {
        match Mmap::open(path) {
            Ok(map) => {
                if is_aligned_container(&map) {
                    let stamp = file_stamp(path);
                    // Skip the payload CRC sweep when this exact file
                    // content (device/inode/mtime/size) was already fully
                    // verified — by this process (hot reload) or by a
                    // previous one that left a stamp sidecar (restart).
                    let verify = match &stamp {
                        Some(s) => {
                            !already_validated(path, s)
                                && read_stamp_sidecar(path).as_ref() != Some(s)
                        }
                        None => true,
                    };
                    let owner: ByteOwner = Arc::new(map);
                    let buf_owner = owner.clone();
                    let buf: &[u8] = buf_owner.as_ref().as_ref();
                    let loaded = load_v2(buf, Some(owner), verify)
                        .map_err(|e| format!("load {}: {e}", path.display()))?;
                    if verify {
                        if let Some(s) = stamp {
                            record_validated(path, s);
                            // Only a wholly clean load earns a persistent
                            // stamp: a degraded artifact must re-verify
                            // (and re-warn) on every start.
                            if loaded.warnings.is_empty() {
                                write_stamp_sidecar(path, &s);
                            }
                        }
                    }
                    return Ok(loaded);
                }
                // v1 artifact: fall through to the heap path below.
            }
            Err(e) => return Err(format!("open {}: {e}", path.display())),
        }
    }
    let bytes =
        std::fs::read(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let mut loaded =
        load_model(&bytes).map_err(|e| format!("load {}: {e}", path.display()))?;
    if want_mmap && !is_aligned_container(&bytes) {
        loaded.warnings.push(format!(
            "artifact {} predates the aligned (v2) layout; loaded on heap — \
             re-save with `dj build` to enable zero-copy mmap",
            path.display()
        ));
    }
    Ok(loaded)
}

/// Rebuild the search index from intact vectors plus whatever is left of
/// the graph section, degrading to exact flat search when the graph is
/// missing or damaged. An intact `SQ8V` section re-attaches the quantized
/// plane to whichever index comes out; a damaged or mismatched one only
/// costs the quantized fast path (exact f32 serves instead) and never
/// affects index health.
fn restore_index(
    sections: &Sections<'_>,
    mut flat: FlatIndex,
    warnings: &mut Vec<String>,
) -> IndexState {
    let sq8 = restore_sq8(sections, &flat, warnings);
    let (graph, graph_src) = match sections.get(SECTION_GRAPH, "HNSW") {
        None => {
            if let Some(plane) = sq8 {
                flat.attach_sq8(plane);
            }
            return IndexState::DegradedFlat {
                index: flat,
                reason: "snapshot carries vectors but no graph section \
                         (saved from a degraded model)"
                    .into(),
            };
        }
        Some(Ok(pair)) => pair,
        Some(Err(e)) => {
            warnings.push(format!(
                "HNSW graph failed verification ({e}); falling back to exact flat search"
            ));
            if let Some(plane) = sq8 {
                flat.attach_sq8(plane);
            }
            return IndexState::DegradedFlat {
                index: flat,
                reason: e.to_string(),
            };
        }
    };
    // Share the flat plane's backing with the graph index: for a mapped
    // load both view the same mapping; for heap both clone the decode.
    let vectors = flat.plane().clone();
    match decode_graph_any(graph, "HNSW", vectors, graph_src.as_ref()) {
        Ok(mut index) => {
            if let Some(plane) = sq8 {
                index.attach_sq8(plane);
            }
            IndexState::Hnsw(index)
        }
        Err(e) => {
            warnings.push(format!(
                "HNSW graph failed verification ({e}); falling back to exact flat search"
            ));
            if let Some(plane) = sq8 {
                flat.attach_sq8(plane);
            }
            IndexState::DegradedFlat {
                index: flat,
                reason: e.to_string(),
            }
        }
    }
}

/// Decode the optional `SQ8V` section. Absence is normal (unquantized
/// snapshot); any failure — CRC, codec, or a shape that does not cover the
/// decoded vectors — degrades to exact f32 with a warning.
fn restore_sq8(
    sections: &Sections<'_>,
    flat: &FlatIndex,
    warnings: &mut Vec<String>,
) -> Option<Sq8Plane> {
    match sections.get(SECTION_SQ8, "SQ8V")? {
        Ok((bytes, src)) => match decode_sq8_any(bytes, "SQ8V", src.as_ref()) {
            Ok(plane) if plane.dim() == flat.dim() && plane.len() == flat.len() => Some(plane),
            Ok(_) => {
                warnings.push(
                    "SQ8 plane shape disagrees with the vectors; \
                     serving exact f32 instead"
                        .into(),
                );
                None
            }
            Err(e) => {
                warnings.push(format!(
                    "SQ8 quantized plane failed verification ({e}); \
                     serving exact f32 instead"
                ));
                None
            }
        },
        Err(e) => {
            warnings.push(format!(
                "SQ8 quantized plane failed verification ({e}); \
                 serving exact f32 instead"
            ));
            None
        }
    }
}

fn load_v1(buf: &[u8]) -> Result<LoadedModel, DecodeError> {
    let mut r = Reader::new(buf, "DJM1");
    r.expect_magic(MAGIC_V1)?;
    r.expect_version(VERSION_V1)?;
    let core = get_core(&mut r)?;
    // v1 has no checksums, so there is nothing to selectively trust: any
    // index decode failure is fatal, as it was for the v1 loader.
    let index = match r.u8()? {
        0 => IndexState::None,
        1 => {
            let n = r.count(1)?;
            let encoded = r.bytes(n)?;
            IndexState::Hnsw(decode_hnsw_in(encoded, "DJM1")?)
        }
        other => return Err(r.error(DecodeErrorKind::BadDiscriminant(other))),
    };
    Ok(LoadedModel {
        // v1 predates lineage tracking (and sectioned layout).
        model: core.into_model(index, None),
        warnings: Vec::new(),
        sections: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::IndexHealth;
    use crate::train::{FineTuneConfig, JoinType, TrainDataConfig};
    use deepjoin_lake::corpus::{Corpus, CorpusConfig, CorpusProfile};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn trained() -> (DeepJoin, deepjoin_lake::Repository, Corpus) {
        let corpus = Corpus::generate(CorpusConfig::new(CorpusProfile::Webtable, 400, 3));
        let (repo, _) = corpus.to_repository();
        let cfg = DeepJoinConfig {
            variant: Variant::MpLite,
            dim: 24,
            sgns: deepjoin_embed::SgnsConfig {
                dim: 24,
                epochs: 1,
                ..Default::default()
            },
            fine_tune: FineTuneConfig {
                epochs: 1,
                ..Default::default()
            },
            data: TrainDataConfig {
                max_pairs: 1_000,
                ..Default::default()
            },
            ..DeepJoinConfig::default()
        };
        let (mut model, _) = DeepJoin::train(&repo, JoinType::Equi, cfg);
        model.index_repository(&repo);
        (model, repo, corpus)
    }

    /// A hand-assembled model small enough for exhaustive byte sweeps —
    /// no training, tiny vocabulary, tiny encoder.
    fn tiny_model() -> DeepJoin {
        let config = DeepJoinConfig {
            dim: 8,
            oov_buckets: 4,
            max_cells: 4,
            max_tokens: 16,
            ..DeepJoinConfig::default()
        };
        let vocab = Vocabulary::from_id_order(vec![
            ("alpha".to_string(), 3),
            ("beta".to_string(), 2),
        ]);
        let rows = vocab.len() + config.oov_buckets as usize;
        let enc_cfg = EncoderConfig {
            max_len: config.max_tokens,
            ..EncoderConfig::mp_lite(rows, config.dim, 7)
        };
        let encoder = ColumnEncoder::new(enc_cfg);
        let textizer = Textizer::new(config.transform, config.max_cells);
        DeepJoin {
            config,
            vocab,
            textizer,
            encoder,
            index: IndexState::None,
            lineage: Some(TrainLineage {
                epochs: 2,
                steps: 17,
                last_loss: 0.5,
                rollbacks: 1,
            }),
        }
    }

    fn tiny_indexed(n: usize) -> (DeepJoin, Vec<f32>) {
        let mut model = tiny_model();
        let mut rng = StdRng::seed_from_u64(13);
        let vectors: Vec<f32> = (0..n * 8).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        model.index_embeddings(&vectors);
        (model, vectors)
    }

    /// The legacy v1 writer under its historical test-side name.
    fn save_model_v1(model: &DeepJoin, include_index: bool) -> Vec<u8> {
        encode_model_v1(model, include_index)
    }

    #[test]
    fn roundtrip_preserves_embeddings_and_search() {
        let (model, _repo, corpus) = trained();
        let bytes = save_model(&model, true);
        let loaded = load_model(&bytes).unwrap();
        assert!(loaded.warnings.is_empty());
        assert_eq!(loaded.model.index_health(), IndexHealth::Hnsw);

        let (q, _) = corpus.sample_queries(1, 8).pop().unwrap();
        assert_eq!(model.embed_column(&q), loaded.model.embed_column(&q));
        let a: Vec<u32> = model.search(&q, 10).iter().map(|s| s.id.0).collect();
        let b: Vec<u32> = loaded.model.search(&q, 10).iter().map(|s| s.id.0).collect();
        assert_eq!(a, b);
        assert_eq!(loaded.model.indexed_len(), model.indexed_len());
    }

    #[test]
    fn roundtrip_without_index_can_reindex() {
        let (model, repo, corpus) = trained();
        let bytes = save_model(&model, false);
        let mut loaded = load_model(&bytes).unwrap().into_model();
        assert_eq!(loaded.indexed_len(), 0);
        assert_eq!(loaded.index_health(), IndexHealth::Missing);
        loaded.index_repository(&repo);
        let (q, _) = corpus.sample_queries(1, 9).pop().unwrap();
        let a: Vec<u32> = model.search(&q, 5).iter().map(|s| s.id.0).collect();
        let b: Vec<u32> = loaded.search(&q, 5).iter().map(|s| s.id.0).collect();
        assert_eq!(a, b, "re-indexing reproduces the same graph (same seed)");
    }

    #[test]
    fn v1_snapshot_still_loads() {
        let (model, _) = tiny_indexed(30);
        let bytes = save_model_v1(&model, true);
        let loaded = load_model(&bytes).unwrap();
        assert!(loaded.warnings.is_empty());
        assert_eq!(loaded.model.index_health(), IndexHealth::Hnsw);
        assert_eq!(loaded.model.indexed_len(), 30);
        let mut rng = StdRng::seed_from_u64(99);
        let q: Vec<f32> = (0..8).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let a: Vec<u32> = model.search_embedded(&q, 5).iter().map(|s| s.id.0).collect();
        let b: Vec<u32> = loaded
            .model
            .search_embedded(&q, 5)
            .iter()
            .map(|s| s.id.0)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn graph_corruption_degrades_to_exact_flat_search() {
        let (model, vectors) = tiny_indexed(40);
        let bytes = save_model(&model, true);

        // The HNSW graph section is written last; flipping the final byte
        // damages only it.
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;

        let loaded = load_model(&bad).unwrap();
        assert_eq!(loaded.warnings.len(), 1, "degradation must be reported");
        assert!(loaded.warnings[0].contains("falling back to exact flat search"));
        assert!(matches!(
            loaded.model.index_health(),
            IndexHealth::DegradedFlat { .. }
        ));
        assert_eq!(loaded.model.indexed_len(), 40);

        // Degraded search is exact: it must agree with a brute-force scan
        // of the stored vectors.
        let mut rng = StdRng::seed_from_u64(5);
        let q: Vec<f32> = (0..8).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let got: Vec<u32> = loaded
            .model
            .search_embedded(&q, 5)
            .iter()
            .map(|s| s.id.0)
            .collect();
        let mut scored: Vec<(f32, u32)> = vectors
            .chunks(8)
            .enumerate()
            .map(|(i, v)| {
                let d = v.iter().zip(&q).map(|(a, b)| (a - b) * (a - b)).sum::<f32>();
                (d, i as u32)
            })
            .collect();
        scored.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let expected: Vec<u32> = scored.iter().take(5).map(|&(_, i)| i).collect();
        assert_eq!(got, expected);

        // A degraded model re-saves without a graph and reloads degraded —
        // degradation is sticky, not silently forgotten.
        let resaved = save_model(&loaded.model, true);
        let reloaded = load_model(&resaved).unwrap();
        assert!(matches!(
            reloaded.model.index_health(),
            IndexHealth::DegradedFlat { .. }
        ));
        let again: Vec<u32> = reloaded
            .model
            .search_embedded(&q, 5)
            .iter()
            .map(|s| s.id.0)
            .collect();
        assert_eq!(again, expected);
    }

    #[test]
    fn sq8_plane_roundtrips_through_save_load() {
        let (mut model, _) = tiny_indexed(40);
        assert!(model.quantize_sq8());
        assert!(model.sq8_resident_bytes().is_some());
        let bytes = save_model(&model, true);
        let loaded = load_model(&bytes).unwrap();
        assert!(loaded.warnings.is_empty(), "{:?}", loaded.warnings);
        assert_eq!(loaded.model.index_health(), IndexHealth::Hnsw);
        assert_eq!(
            loaded.model.sq8_resident_bytes(),
            model.sq8_resident_bytes(),
            "quantization must survive the round trip"
        );
        let mut rng = StdRng::seed_from_u64(77);
        let q: Vec<f32> = (0..8).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let a: Vec<u32> = model.search_embedded(&q, 5).iter().map(|s| s.id.0).collect();
        let b: Vec<u32> = loaded
            .model
            .search_embedded(&q, 5)
            .iter()
            .map(|s| s.id.0)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn sq8_corruption_degrades_to_exact_f32_not_index_loss() {
        let (mut model, _) = tiny_indexed(40);
        model.quantize_sq8();
        let bytes = save_model(&model, true);

        // Locate the SQ8V payload by re-encoding the attached plane.
        let IndexState::Hnsw(index) = &model.index else {
            unreachable!()
        };
        let payload = encode_sq8_v2(index.sq8().unwrap());
        let pos = bytes
            .windows(payload.len())
            .position(|w| w == payload.as_slice())
            .expect("SQ8V payload present in the container");
        let mut bad = bytes.clone();
        bad[pos + payload.len() / 2] ^= 0x10;

        let loaded = load_model(&bad).unwrap();
        assert_eq!(loaded.warnings.len(), 1, "{:?}", loaded.warnings);
        assert!(loaded.warnings[0].contains("SQ8 quantized plane failed verification"));
        // The quantized fast path is lost; the index itself is not.
        assert_eq!(loaded.model.index_health(), IndexHealth::Hnsw);
        assert_eq!(loaded.model.sq8_resident_bytes(), None);
        let IndexState::Hnsw(idx) = &mut model.index else {
            unreachable!()
        };
        idx.detach_sq8();
        let mut rng = StdRng::seed_from_u64(78);
        let q: Vec<f32> = (0..8).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let a: Vec<u32> = model
            .search_embedded(&q, 5)
            .iter()
            .map(|s| s.id.0)
            .collect();
        let b: Vec<u32> = loaded
            .model
            .search_embedded(&q, 5)
            .iter()
            .map(|s| s.id.0)
            .collect();
        assert_eq!(a, b, "corrupt plane must serve exactly like unquantized");
    }

    #[test]
    fn vector_corruption_loads_without_index() {
        let (model, _) = tiny_indexed(20);
        let bytes = save_model(&model, true);

        // Locate the VECS payload by re-encoding it and searching.
        let IndexState::Hnsw(index) = &model.index else {
            unreachable!()
        };
        let flat = FlatIndex::from_plane(
            index.dim(),
            index.config().metric,
            index.vectors_plane().clone(),
        );
        let payload = encode_flat_v2(&flat);
        let pos = bytes
            .windows(payload.len())
            .position(|w| w == payload.as_slice())
            .expect("VECS payload present in container");

        let mut bad = bytes.clone();
        bad[pos + payload.len() / 2] ^= 0x10;
        let loaded = load_model(&bad).unwrap();
        assert_eq!(loaded.model.index_health(), IndexHealth::Missing);
        assert_eq!(loaded.model.indexed_len(), 0);
        assert_eq!(loaded.warnings.len(), 1);
        assert!(loaded.warnings[0].contains("re-index before searching"));
    }

    #[test]
    fn corrupted_model_is_rejected() {
        let (model, _) = tiny_indexed(10);
        let bytes = save_model(&model, false);
        let mut bad = bytes.clone();
        bad[0] = b'X';
        // Neither a container nor a v1 file.
        let err = load_model(&bad).unwrap_err();
        assert_eq!(err.kind, DecodeErrorKind::BadMagic);
        assert!(load_model(&bytes[..bytes.len() / 2]).is_err());
    }

    #[test]
    fn truncation_and_bit_flips_never_panic() {
        let (model, _) = tiny_indexed(15);
        for bytes in [save_model(&model, true), save_model_v1(&model, true)] {
            // Every strict prefix must fail cleanly.
            for cut in 0..bytes.len() {
                assert!(load_model(&bytes[..cut]).is_err());
            }
            // Every single-byte flip must load degraded, load clean, or
            // error — never panic; whatever loads must serve searches.
            let q = [0.25f32; 8];
            for i in 0..bytes.len() {
                let mut bad = bytes.clone();
                bad[i] ^= 0x80;
                if let Ok(loaded) = load_model(&bad) {
                    if loaded.model.index_health() != IndexHealth::Missing {
                        let _ = loaded.model.search_embedded(&q, 3);
                    }
                }
            }
        }
    }

    #[test]
    fn saved_files_are_byte_stable() {
        let (model, _, _) = trained();
        assert_eq!(save_model(&model, true), save_model(&model, true));
    }

    #[test]
    fn lineage_roundtrips_and_degrades_gracefully() {
        let (model, _) = tiny_indexed(10);
        let bytes = save_model(&model, false);
        let loaded = load_model(&bytes).unwrap();
        assert!(loaded.warnings.is_empty());
        assert_eq!(loaded.model.lineage(), model.lineage());

        // Damage the TLIN payload (located by its DJTL magic): the model
        // must still load, with a warning and no lineage.
        let pos = bytes
            .windows(4)
            .position(|w| w == LINEAGE_MAGIC)
            .expect("lineage payload present");
        let mut bad = bytes.clone();
        bad[pos + 6] ^= 0x40;
        let loaded = load_model(&bad).unwrap();
        assert!(loaded.model.lineage().is_none());
        assert_eq!(loaded.warnings.len(), 1);
        assert!(loaded.warnings[0].contains("lineage unreadable"));

        // A trained model records real lineage that survives persistence.
        let (trained_model, _, _) = trained();
        let l = *trained_model.lineage().expect("training records lineage");
        assert!(l.epochs == 1 && l.steps > 0 && l.last_loss.is_finite());
        let reloaded = load_model(&save_model(&trained_model, false)).unwrap();
        assert_eq!(reloaded.model.lineage().copied(), Some(l));
    }

    fn write_temp(bytes: &[u8], tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("dj-persist-map-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.djar");
        std::fs::write(&path, bytes).unwrap();
        path
    }

    fn index_hits(
        model: &DeepJoin,
        q: &[f32],
        k: usize,
        tombs: Option<&deepjoin_ann::TombSet>,
    ) -> Vec<(u32, u32)> {
        let budget = deepjoin_ann::Budget::unlimited();
        let r = match &model.index {
            IndexState::Hnsw(i) => i.search_budgeted_filtered(q, k, &budget, tombs),
            IndexState::DegradedFlat { index, .. } => {
                index.search_budgeted_filtered(q, k, &budget, tombs)
            }
            IndexState::None => panic!("model lost its index"),
        };
        r.hits.iter().map(|n| (n.id, n.distance.to_bits())).collect()
    }

    /// The tentpole acceptance property: for every index shape the
    /// artifact can hold — healthy HNSW and degraded flat, with and
    /// without an SQ8 plane, with and without tombstone filtering — a
    /// mapped load and a heap load return byte-identical search results
    /// (same ids, same distance bits, same health, same warnings).
    #[test]
    fn mapped_and_heap_loads_search_byte_identically() {
        for quantize in [false, true] {
            for corrupt_graph in [false, true] {
                let (mut model, vectors) = tiny_indexed(48);
                if quantize {
                    assert!(model.quantize_sq8());
                }
                let mut bytes = save_model(&model, true);
                if corrupt_graph {
                    // Damage the HNSW payload so both loads must degrade
                    // to the exact flat fallback, identically.
                    let payload = match &model.index {
                        IndexState::Hnsw(i) => encode_hnsw_graph_v2(i),
                        _ => unreachable!(),
                    };
                    let at = bytes
                        .windows(payload.len())
                        .position(|w| w == payload.as_slice())
                        .expect("graph payload present");
                    bytes[at + payload.len() / 2] ^= 1;
                }
                let tag = format!("q{}c{}", quantize as u8, corrupt_graph as u8);
                let path = write_temp(&bytes, &tag);

                let heap = load_model(&bytes).unwrap();
                let mapped = load_model_path(&path).unwrap();

                assert_eq!(heap.warnings, mapped.warnings, "{tag}");
                assert_eq!(
                    heap.model.index_health(),
                    mapped.model.index_health(),
                    "{tag}"
                );
                if corrupt_graph {
                    assert!(matches!(
                        mapped.model.index_health(),
                        IndexHealth::DegradedFlat { .. }
                    ));
                } else {
                    assert!(
                        mapped.sections.iter().any(|s| s.mapped),
                        "{tag}: mmap load reported no mapped section"
                    );
                }

                let tombs: deepjoin_ann::TombSet = [1u32, 5, 9].into_iter().collect();
                for qi in 0..4 {
                    let q = &vectors[qi * 8..(qi + 1) * 8];
                    for t in [None, Some(&tombs)] {
                        assert_eq!(
                            index_hits(&heap.model, q, 6, t),
                            index_hits(&mapped.model, q, 6, t),
                            "{tag} query {qi}"
                        );
                    }
                }
                let _ = std::fs::remove_file(&path);
            }
        }
    }

    #[test]
    fn v1_artifact_through_the_path_loader_falls_back_to_heap_with_one_warning() {
        let (model, vectors) = tiny_indexed(24);
        let bytes = save_model_v1(&model, true);
        let path = write_temp(&bytes, "v1compat");
        let loaded = load_model_path(&path).unwrap();
        assert_eq!(loaded.warnings.len(), 1, "{:?}", loaded.warnings);
        assert!(
            loaded.warnings[0].contains("predates the aligned (v2) layout"),
            "{:?}",
            loaded.warnings
        );
        assert!(loaded.sections.is_empty());
        let heap = load_model(&bytes).unwrap();
        let q = &vectors[..8];
        assert_eq!(
            index_hits(&heap.model, q, 5, None),
            index_hits(&loaded.model, q, 5, None)
        );
        let _ = std::fs::remove_file(&path);
    }

    /// Drop the in-process validated cache so the next `load_model_path`
    /// behaves like a fresh process start.
    fn forget_in_process_validation() {
        validated_cache().lock().unwrap().clear();
    }

    #[test]
    fn stamp_sidecar_carries_validation_across_process_restarts() {
        let (model, vectors) = tiny_indexed(32);
        let bytes = save_model(&model, true);
        let path = write_temp(&bytes, "stamp");
        let sidecar = stamp_sidecar_path(&path);
        let _ = std::fs::remove_file(&sidecar);

        // A clean fully-verified load persists its stamp.
        let first = load_model_path(&path).unwrap();
        assert!(first.warnings.is_empty());
        assert!(sidecar.exists(), "clean load must write {}", sidecar.display());

        // "Restart": the in-process cache is gone, only the sidecar
        // remains. The load must still map the hot sections and answer
        // byte-identically.
        forget_in_process_validation();
        let restarted = load_model_path(&path).unwrap();
        assert!(restarted.warnings.is_empty());
        assert!(restarted.sections.iter().any(|s| s.mapped));
        let q = &vectors[..8];
        assert_eq!(
            index_hits(&first.model, q, 7, None),
            index_hits(&restarted.model, q, 7, None)
        );
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&sidecar);
    }

    #[test]
    fn stale_stamp_never_masks_a_changed_artifact() {
        let (model, _) = tiny_indexed(32);
        let bytes = save_model(&model, true);
        let path = write_temp(&bytes, "stale-stamp");
        let sidecar = stamp_sidecar_path(&path);
        let _ = std::fs::remove_file(&sidecar);
        assert!(load_model_path(&path).unwrap().warnings.is_empty());
        assert!(sidecar.exists());

        // Rewrite the artifact with a damaged graph section. The write
        // changes the file stamp, so the sidecar no longer matches: the
        // next start must run the full CRC sweep, catch the damage, and
        // refuse to persist a new stamp for the degraded artifact.
        let payload = match &model.index {
            IndexState::Hnsw(i) => encode_hnsw_graph_v2(i),
            _ => unreachable!(),
        };
        let at = bytes
            .windows(payload.len())
            .position(|w| w == payload.as_slice())
            .expect("graph payload present");
        let mut bad = bytes.clone();
        bad[at + payload.len() / 2] ^= 1;
        std::fs::write(&path, &bad).unwrap();
        let before = std::fs::read(&sidecar).unwrap();

        forget_in_process_validation();
        let degraded = load_model_path(&path).unwrap();
        assert_eq!(degraded.warnings.len(), 1, "{:?}", degraded.warnings);
        assert!(matches!(
            degraded.model.index_health(),
            IndexHealth::DegradedFlat { .. }
        ));
        assert_eq!(
            std::fs::read(&sidecar).unwrap(),
            before,
            "a degraded load must not refresh the stamp"
        );
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&sidecar);
    }

    #[test]
    fn garbage_stamp_sidecar_is_ignored_and_replaced() {
        let (model, _) = tiny_indexed(24);
        let bytes = save_model(&model, true);
        let path = write_temp(&bytes, "junk-stamp");
        let sidecar = stamp_sidecar_path(&path);
        for junk in [&b""[..], &b"DJST"[..], &[0xFFu8; 49][..]] {
            std::fs::write(&sidecar, junk).unwrap();
            forget_in_process_validation();
            let loaded = load_model_path(&path).unwrap();
            assert!(loaded.warnings.is_empty());
            assert!(loaded.sections.iter().any(|s| s.mapped));
        }
        // The junk was replaced by a well-formed stamp the next start trusts.
        assert!(read_stamp_sidecar(&path).is_some());
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&sidecar);
    }

    #[test]
    fn reloading_an_unchanged_artifact_stays_mapped_and_identical() {
        let (model, vectors) = tiny_indexed(32);
        let bytes = save_model(&model, true);
        let path = write_temp(&bytes, "remap");
        // First load verifies every section CRC and records the file
        // stamp; the second takes the trusted remap path. Both must map
        // the hot sections and answer identically.
        let first = load_model_path(&path).unwrap();
        let second = load_model_path(&path).unwrap();
        for loaded in [&first, &second] {
            assert!(loaded.warnings.is_empty());
            assert!(loaded.sections.iter().any(|s| s.mapped));
        }
        let q = &vectors[..8];
        assert_eq!(
            index_hits(&first.model, q, 7, None),
            index_hits(&second.model, q, 7, None)
        );
        let _ = std::fs::remove_file(&path);
    }
}
