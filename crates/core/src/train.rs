//! Training-data preparation (paper §4.1) and the fine-tuning loop (§4.2).
//!
//! * **Positives** — a self-join on the training repository returns column
//!   pairs with `jn(X, Y) ≥ t` (t = 0.7 in §5.1): an inverted-index
//!   containment join for equi-joins, or PEXESO for semantic joins.
//! * **Augmentation** — cell shuffle: with shuffle rate `r`, `r·|P|` extra
//!   positives `(X′, Y)` are added with `X′` a random permutation of `X`, so
//!   `r/(1+r)` of all positives come from shuffling.
//! * **Negatives** — in-batch negatives (every `(Xᵢ, Yⱼ), j≠i` in a batch),
//!   realized inside the multiple-negatives-ranking loss.
//! * **Optimizer** — AdamW with linear warmup and weight decay (§5.1).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use deepjoin_embed::cell_space::CellSpace;
use deepjoin_lake::column::{Column, ColumnId};
use deepjoin_lake::fxhash::FxHashMap;
use deepjoin_lake::repository::Repository;
use deepjoin_lake::tokenizer::{TokenId, Vocabulary};
use deepjoin_nn::adam::AdamConfig;
use deepjoin_nn::encoder::ColumnEncoder;
use deepjoin_pexeso::{PexesoConfig, PexesoIndex};

use crate::text::Textizer;

/// Which join type the model is trained for. The framework is identical —
/// only the labeler differs (the paper's "two birds with one stone").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JoinType {
    /// Equi-joins: Definition 2.1, labeled by a containment self-join.
    Equi,
    /// Semantic joins: Definition 2.3 with vector-matching threshold τ,
    /// labeled by PEXESO.
    Semantic {
        /// Vector-matching threshold τ of Definition 2.2.
        tau: f64,
    },
}

/// Training-data preparation parameters.
#[derive(Debug, Clone, Copy)]
pub struct TrainDataConfig {
    /// Joinability threshold for positives (`t` in §4.1; 0.7 in §5.1).
    pub threshold: f64,
    /// Shuffle rate `r` (§4.1); 0 disables augmentation.
    pub shuffle_rate: f64,
    /// Cap on the number of (pre-augmentation) positive pairs.
    pub max_pairs: usize,
    /// Seed for sampling and shuffling.
    pub seed: u64,
}

impl Default for TrainDataConfig {
    fn default() -> Self {
        Self {
            threshold: 0.7,
            shuffle_rate: 0.2,
            max_pairs: 20_000,
            seed: 0x7247,
        }
    }
}

/// A positive training pair (X may be a shuffled copy).
#[derive(Debug, Clone)]
pub struct TrainingPair {
    /// Left column (the "query" side of the loss).
    pub x: Column,
    /// Right column.
    pub y: Column,
}

/// Self-join positives: all ordered pairs `(X, Y)`, `X ≠ Y`, with
/// `jn(X, Y) ≥ threshold` under the given join type.
pub fn self_join_positives(
    repo: &Repository,
    join_type: JoinType,
    space: &CellSpace,
    config: &TrainDataConfig,
) -> Vec<(ColumnId, ColumnId, f64)> {
    match join_type {
        JoinType::Equi => equi_self_join(repo, config.threshold),
        JoinType::Semantic { tau } => semantic_self_join(repo, space, tau, config.threshold),
    }
}

/// Containment self-join via an inverted index: for each column, accumulate
/// overlap counts against all columns sharing a cell, then threshold.
fn equi_self_join(repo: &Repository, threshold: f64) -> Vec<(ColumnId, ColumnId, f64)> {
    // Inverted index: cell -> column ids.
    let mut inverted: FxHashMap<&str, Vec<u32>> = FxHashMap::default();
    for (id, col) in repo.iter() {
        for cell in col.distinct() {
            inverted.entry(cell.as_str()).or_default().push(id.0);
        }
    }
    let mut out = Vec::new();
    let mut counts: FxHashMap<u32, u32> = FxHashMap::default();
    for (id, col) in repo.iter() {
        counts.clear();
        for cell in col.distinct() {
            if let Some(posting) = inverted.get(cell.as_str()) {
                for &other in posting {
                    if other != id.0 {
                        *counts.entry(other).or_insert(0) += 1;
                    }
                }
            }
        }
        let denom = col.distinct_len() as f64;
        if denom == 0.0 {
            continue;
        }
        for (&other, &overlap) in &counts {
            let jn = overlap as f64 / denom;
            if jn >= threshold {
                out.push((id, ColumnId(other), jn));
            }
        }
    }
    out.sort_by_key(|a| (a.0, a.1));
    out
}

/// Semantic self-join: PEXESO thresholded queries, one per column.
fn semantic_self_join(
    repo: &Repository,
    space: &CellSpace,
    tau: f64,
    threshold: f64,
) -> Vec<(ColumnId, ColumnId, f64)> {
    let embedded: Vec<_> = repo.columns().iter().map(|c| space.embed_column(c)).collect();
    let index = PexesoIndex::build(&embedded, PexesoConfig::default());
    let mut out = Vec::new();
    for (id, _col) in repo.iter() {
        let q = &embedded[id.index()];
        for hit in index.query_threshold(q, tau, threshold) {
            if hit.id != id {
                out.push((id, hit.id, hit.score));
            }
        }
    }
    out.sort_by_key(|a| (a.0, a.1));
    out
}

/// Materialize positive pairs with cell-shuffle augmentation (§4.1).
pub fn prepare_training_pairs(
    repo: &Repository,
    positives: &[(ColumnId, ColumnId, f64)],
    config: &TrainDataConfig,
) -> Vec<TrainingPair> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut base: Vec<(ColumnId, ColumnId)> =
        positives.iter().map(|&(x, y, _)| (x, y)).collect();
    if base.len() > config.max_pairs {
        base.shuffle(&mut rng);
        base.truncate(config.max_pairs);
    }
    let mut pairs: Vec<TrainingPair> = base
        .iter()
        .map(|&(x, y)| TrainingPair {
            x: repo.column(x).clone(),
            y: repo.column(y).clone(),
        })
        .collect();

    // Shuffle augmentation: add r·|P| pairs (X′, Y).
    let num_aug = (config.shuffle_rate * base.len() as f64).round() as usize;
    for _ in 0..num_aug {
        let &(x, y) = base.choose(&mut rng).expect("non-empty positives");
        let xc = repo.column(x);
        let mut perm: Vec<usize> = (0..xc.len()).collect();
        perm.shuffle(&mut rng);
        pairs.push(TrainingPair {
            x: xc.permuted(&perm),
            y: repo.column(y).clone(),
        });
    }
    pairs
}

/// Fine-tuning hyperparameters (§5.1, scaled to the small encoder).
#[derive(Debug, Clone, Copy)]
pub struct FineTuneConfig {
    /// Epochs over the pair set.
    pub epochs: usize,
    /// Mini-batch size (32 in the paper).
    pub batch_size: usize,
    /// Cosine-score scale in the MNR loss.
    pub mnr_scale: f32,
    /// Optimizer settings.
    pub adam: AdamConfig,
    /// Seed for batch shuffling.
    pub seed: u64,
}

impl Default for FineTuneConfig {
    fn default() -> Self {
        Self {
            epochs: 3,
            batch_size: 32,
            mnr_scale: 20.0,
            adam: AdamConfig::default(),
            seed: 0xF17E,
        }
    }
}

/// Fine-tune `encoder` on tokenized pairs with the MNR loss and in-batch
/// negatives. Returns the mean loss per epoch.
///
/// This is the non-persistent entry point: it delegates to the stepwise
/// [`crate::trainer::fine_tune_checkpointed`] with no checkpoint store and
/// default robustness settings. Epoch shuffles use counter-based RNG
/// streams (`stream_rng(seed, epoch)`), so the batch order of epoch `e` is
/// a pure function of `(config.seed, e)`.
pub fn fine_tune(
    encoder: &mut ColumnEncoder,
    pairs: &[(Vec<TokenId>, Vec<TokenId>)],
    config: &FineTuneConfig,
) -> Vec<f32> {
    crate::trainer::fine_tune_checkpointed(
        encoder,
        pairs,
        config,
        &crate::trainer::TrainerConfig::default(),
        None,
    )
    .epoch_losses
}

/// Tokenize training pairs through the textizer + vocabulary, with
/// hash-bucket fallback for out-of-vocabulary tokens (see
/// [`Vocabulary::encode_bucketed`]).
pub fn tokenize_pairs(
    pairs: &[TrainingPair],
    textizer: &Textizer,
    vocab: &Vocabulary,
    oov_buckets: u32,
) -> Vec<(Vec<TokenId>, Vec<TokenId>)> {
    pairs
        .iter()
        .map(|p| {
            (
                vocab.encode_hybrid_bucketed(&textizer.transform(&p.x), oov_buckets),
                vocab.encode_hybrid_bucketed(&textizer.transform(&p.y), oov_buckets),
            )
        })
        .collect()
}

/// Sample a random subset of `repo` as the training repository (§4.1: the
/// self-join may run on a sample when 𝒳 is large).
pub fn sample_training_repository(repo: &Repository, n: usize, seed: u64) -> Repository {
    let mut ids: Vec<ColumnId> = repo.ids().collect();
    let mut rng = StdRng::seed_from_u64(seed);
    ids.shuffle(&mut rng);
    ids.truncate(n);
    Repository::from_columns(ids.into_iter().map(|id| repo.column(id).clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepjoin_embed::ngram::{NgramConfig, NgramEmbedder};
    use deepjoin_nn::encoder::{EncoderConfig, Pooling};

    fn col(cells: &[&str]) -> Column {
        Column::from_cells(cells.iter().copied())
    }

    fn repo() -> Repository {
        Repository::from_columns(vec![
            col(&["a", "b", "c", "d", "e"]),          // 0
            col(&["a", "b", "c", "d", "x"]),          // 1: jn(0,1)=0.8 both ways
            col(&["p", "q", "r", "s", "t"]),          // 2
            col(&["a", "b", "c", "d", "e", "f", "g"]),// 3: jn(0,3)=1.0, jn(3,0)=5/7
        ])
    }

    #[test]
    fn equi_self_join_finds_expected_pairs() {
        let pos = equi_self_join(&repo(), 0.7);
        let has = |x: u32, y: u32| pos.iter().any(|&(a, b, _)| a.0 == x && b.0 == y);
        assert!(has(0, 1));
        assert!(has(1, 0));
        assert!(has(0, 3)); // jn(0->3) = 1.0
        assert!(has(3, 0)); // 5/7 ≈ 0.714
        assert!(!has(0, 2));
        // Scores are correct.
        let s01 = pos.iter().find(|&&(a, b, _)| a.0 == 0 && b.0 == 1).unwrap().2;
        assert!((s01 - 0.8).abs() < 1e-12);
    }

    #[test]
    fn equi_self_join_matches_brute_force() {
        use deepjoin_lake::joinability::equi_joinability;
        let r = repo();
        let pos = equi_self_join(&r, 0.7);
        for (x, y, s) in &pos {
            let jn = equi_joinability(r.column(*x), r.column(*y));
            assert!((jn - s).abs() < 1e-12);
            assert!(jn >= 0.7);
        }
        // Completeness: every qualifying brute-force pair is present.
        for (xi, x) in r.iter() {
            for (yi, y) in r.iter() {
                if xi == yi {
                    continue;
                }
                if equi_joinability(x, y) >= 0.7 {
                    assert!(pos.iter().any(|&(a, b, _)| a == xi && b == yi));
                }
            }
        }
    }

    #[test]
    fn semantic_self_join_catches_noisy_pairs() {
        let r = Repository::from_columns(vec![
            col(&["paris", "tokyo", "lima", "oslo", "cairo"]),
            col(&["pariss", "tokio", "lima", "oslo", "cairo"]), // noisy twin
            col(&["zz-1", "zz-2", "zz-3", "zz-4", "zz-5"]),
        ]);
        let space = CellSpace::new(NgramEmbedder::new(NgramConfig::default()));
        let pos = semantic_self_join(&r, &space, 0.9, 0.7);
        assert!(pos.iter().any(|&(a, b, _)| a.0 == 0 && b.0 == 1));
        assert!(!pos.iter().any(|&(a, b, _)| a.0 == 0 && b.0 == 2));
    }

    #[test]
    fn augmentation_rate_is_respected() {
        let r = repo();
        let pos = equi_self_join(&r, 0.7);
        let cfg = TrainDataConfig {
            shuffle_rate: 0.5,
            ..Default::default()
        };
        let pairs = prepare_training_pairs(&r, &pos, &cfg);
        let expected_aug = (0.5 * pos.len() as f64).round() as usize;
        assert_eq!(pairs.len(), pos.len() + expected_aug);
        // Shuffled copies keep the multiset of cells.
        for p in &pairs {
            let mut orig_found = false;
            for (_, c) in r.iter() {
                let mut a = c.cells.clone();
                let mut b = p.x.cells.clone();
                a.sort();
                b.sort();
                if a == b {
                    orig_found = true;
                    break;
                }
            }
            assert!(orig_found, "augmented X must be a permutation of a repo column");
        }
    }

    #[test]
    fn max_pairs_caps() {
        let r = repo();
        let pos = equi_self_join(&r, 0.7);
        let cfg = TrainDataConfig {
            max_pairs: 2,
            shuffle_rate: 0.0,
            ..Default::default()
        };
        let pairs = prepare_training_pairs(&r, &pos, &cfg);
        assert_eq!(pairs.len(), 2);
    }

    #[test]
    fn fine_tune_reduces_loss() {
        // Two clusters of token sequences; pairs within clusters.
        let mut pairs = Vec::new();
        for i in 0..40u32 {
            let base = if i % 2 == 0 { 1u32 } else { 10 };
            let x: Vec<TokenId> = (0..6).map(|j| base + (i + j) % 5).collect();
            let y: Vec<TokenId> = (0..6).map(|j| base + (i + j + 1) % 5).collect();
            pairs.push((x, y));
        }
        let mut encoder = ColumnEncoder::new(EncoderConfig {
            vocab_size: 20,
            dim: 12,
            out_dim: 8,
            attn_hidden: 6,
            max_len: 10,
            pooling: Pooling::Attention,
            use_positions: true,
            residual: false,
            seed: 3,
        });
        let losses = fine_tune(
            &mut encoder,
            &pairs,
            &FineTuneConfig {
                epochs: 6,
                batch_size: 8,
                adam: AdamConfig {
                    lr: 5e-3,
                    warmup_steps: 5,
                    ..AdamConfig::default()
                },
                ..Default::default()
            },
        );
        assert!(losses.len() == 6);
        assert!(
            losses.last().unwrap() < &(losses[0] * 0.8),
            "loss should drop: {losses:?}"
        );
    }

    #[test]
    fn sample_training_repository_sizes() {
        let r = repo();
        let s = sample_training_repository(&r, 2, 1);
        assert_eq!(s.len(), 2);
        let all = sample_training_repository(&r, 100, 1);
        assert_eq!(all.len(), r.len());
    }
}
