//! `dj` — a small command-line front end for the DeepJoin library.
//!
//! ```text
//! dj generate <out.lake>  [--tables N] [--profile webtable|wikitable] [--seed S]
//! dj train    <in.lake> <out.model> [--join equi|semantic] [--tau T] [--variant mp|distil] [--epochs E] [--threads N]
//!             [--checkpoint-every N] [--checkpoint-dir DIR] [--resume DIR]
//! dj search   <in.lake> <in.model> [--k K] [--query-index I]
//! dj build    <in.model> <out.model> --quantize sq8
//! dj serve    <in.lake> <in.model> [--addr HOST:PORT] [--threads N] [--max-inflight M] [--deadline-ms D] [--query-cache N]
//!             [--live DIR] [--flush-rows N] [--compact-secs S] [--compact-min-segs N]
//!             [--replica-of HOST:PORT] [--sync-interval-ms MS] [--stale-after-ms MS] [--sync-chunk-bytes B]
//!             [--tenant-rate QPS] [--tenant-burst N] [--brownout-target-ms T] [--brownout-window-ms W] [--wave-width N]
//! dj query    <addr>[,<addr>...] --cells a,b,c [--cells ...] [--file F] [--depth D] [--name NAME] [--k K] [--tenant NAME]
//! dj ctl      <addr> ping|stats|reload [path]|shutdown
//! dj ctl      <addr> add-table <title> --columns "name:a|b|c;name2:x|y"
//! dj ctl      <addr> drop-table <title>
//! dj info     <in.model>
//! ```
//!
//! `dj serve --live DIR` enables crash-safe live ingest (DESIGN.md §13):
//! `dj ctl add-table` / `drop-table` journal mutations into `DIR` (WAL +
//! manifest + immutable segments) and take effect on the very next query
//! without a restart. A SIGKILL at any moment loses nothing that was
//! acknowledged: on restart the journal tail replays on top of the last
//! flushed manifest. `--flush-rows` bounds the in-memory write buffer,
//! and a background thread compacts small segments every `--compact-secs`
//! once `--compact-min-segs` of them exist (dropping tombstoned rows).
//!
//! `dj build --quantize sq8` rewrites a trained artifact with an SQ8
//! quantized vector plane (`SQ8V` section): searches generate candidates
//! over 1-byte codes and rescore survivors against the exact f32 vectors,
//! so distances stay exact while the plane takes ~4× less memory. A
//! quantized artifact serves and hot-reloads like any other; if its `SQ8V`
//! section is damaged the loader degrades to exact f32 with a warning.
//!
//! `dj serve --replica-of HOST:PORT` runs this server as a read-only
//! replica (DESIGN.md §15): it pulls snapshot generations (model artifact
//! plus sealed live segments, never the WAL) from the primary over the query
//! port, installs them with the same temp/fsync/rename discipline the
//! primary uses, and hot-reloads in O(ms). Every `dj serve` is a
//! sync-exporting primary by default, so replicas can point at any
//! server. Once the primary is unreachable past `--stale-after-ms`,
//! replica answers carry a `stale` health flag but keep serving. `dj
//! query` with a comma-separated address list fails over between
//! endpoints and hedges slow requests against a second one.
//!
//! `dj serve --query-cache N` keeps an LRU of the last N query embeddings
//! so repeated probes skip the encoder forward pass (hit/miss counters in
//! `dj ctl stats`).
//!
//! `dj query` accepts multiple queries — repeat `--cells`, or pass
//! `--file F` with one comma-separated query per line — and pipelines
//! them over ONE connection with up to `--depth` requests in flight
//! (DESIGN.md §17). The server packs concurrent queries into SIMD waves
//! and may answer out of order; the client re-correlates by request id,
//! so results always print in input order. Identical queries in one wave
//! are answered once (`wave dedup hits` in `dj ctl stats`). On the
//! server, `--wave-width N` caps how many admitted queries one worker
//! drains into a single batched wave (default 16).
//!
//! `dj serve` runs the TCP query server (DESIGN.md §11): admission control
//! sheds bursts past `--max-inflight` with structured `Overloaded` errors,
//! `--deadline-ms` bounds per-query compute (late queries return partial,
//! `degraded` results), SIGHUP hot-reloads the model artifact, and
//! SIGTERM/SIGINT drain gracefully. `dj query` / `dj ctl` are the matching
//! client.
//!
//! `--tenant-rate QPS` adds per-tenant token buckets in front of the
//! deficit-weighted fair admission queue (bucket size `--tenant-burst`,
//! default 16); queries carry their tenant via `dj query --tenant NAME`.
//! `--brownout-target-ms T` enables the CoDel-style brownout controller
//! (DESIGN.md §16): queue sojourn over `T` sustained for
//! `--brownout-window-ms` (default 4×T) sheds the heaviest tenant's newest
//! job and steps the answer-effort ladder down one rung; answers produced
//! below full effort carry a `(brownout-N)` label suffix and the
//! `degraded` flag. Per-tenant and brownout gauges show in `dj ctl stats`.
//!
//! `--threads N` caps the worker pool used for column encoding and index
//! construction (default: `available_parallelism`). Results are identical
//! for any thread count.
//!
//! `--checkpoint-every N` snapshots fine-tuning state every N optimizer
//! steps into a two-slot checkpoint directory (default `<out.model>.ckpt`,
//! override with `--checkpoint-dir`). `--resume DIR` restarts a killed run
//! from the newest intact checkpoint in `DIR`; the resumed model is
//! bit-identical to an uninterrupted run.
//!
//! Lakes are serialized corpora (the synthetic-generator output); models are
//! the binary format of `deepjoin::persist`. The CLI exists so the library
//! can be exercised end-to-end without writing Rust.

use std::path::Path;
use std::process::ExitCode;

use deepjoin::checkpoint::CheckpointStore;
use deepjoin::model::{DeepJoin, DeepJoinConfig, IndexHealth, Variant};
use deepjoin::persist::{load_model_path, save_model};
use deepjoin::train::{FineTuneConfig, JoinType};
use deepjoin::trainer::TrainerConfig;
use deepjoin_lake::corpus::{Corpus, CorpusConfig, CorpusProfile};
use deepjoin_lake::joinability::equi_joinability;
use deepjoin_lake::lakefile;
use deepjoin_lake::repository::Repository;
use deepjoin_serve::{Client, Server, ServerConfig};
use deepjoin_store::{ArtifactIo, StdIo};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let result = match cmd.as_str() {
        "generate" => cmd_generate(&args[1..]),
        "train" => cmd_train(&args[1..]),
        "search" => cmd_search(&args[1..]),
        "build" => cmd_build(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "query" => cmd_query(&args[1..]),
        "ctl" => cmd_ctl(&args[1..]),
        "info" => cmd_info(&args[1..]),
        "train-csv" => cmd_train_csv(&args[1..]),
        "search-csv" => cmd_search_csv(&args[1..]),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  dj generate <out.lake> [--tables N] [--profile webtable|wikitable] [--seed S]\n  dj train <in.lake> <out.model> [--join equi|semantic] [--tau T] [--variant mp|distil] [--epochs E] [--threads N] [--checkpoint-every N] [--checkpoint-dir DIR] [--resume DIR]\n  dj search <in.lake> <in.model> [--k K] [--query-index I]\n  dj build <in.model> <out.model> --quantize sq8\n  dj serve <in.lake> <in.model> [--addr HOST:PORT] [--threads N] [--max-inflight M] [--deadline-ms D] [--query-cache N] [--live DIR] [--flush-rows N] [--compact-secs S] [--compact-min-segs N] [--replica-of HOST:PORT] [--sync-interval-ms MS] [--stale-after-ms MS] [--sync-chunk-bytes B] [--tenant-rate QPS] [--tenant-burst N] [--brownout-target-ms T] [--brownout-window-ms W] [--wave-width N]\n  dj query <addr>[,<addr>...] --cells a,b,c [--cells ...] [--file F] [--depth D] [--name NAME] [--k K] [--tenant NAME]\n  dj ctl <addr> ping|stats|reload [path]|shutdown\n  dj ctl <addr> add-table <title> --columns \"name:a|b|c;name2:x|y\"\n  dj ctl <addr> drop-table <title>\n  dj train-csv <csv-dir> <out.model> [--join equi|semantic] [--epochs E] [--threads N]\n  dj search-csv <csv-dir> <in.model> --query <file.csv> [--column NAME] [--k K]\n  dj info <in.model>"
    );
    ExitCode::from(2)
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Parse a numeric flag that must be ≥ 1, with actionable messages: a `0`
/// or a non-number names the flag, shows the offending value, and says how
/// to fix it — instead of a bare `ParseIntError` or a silent clamp.
fn parse_positive(args: &[String], name: &str, default_hint: &str) -> Result<Option<usize>, String> {
    let Some(raw) = flag(args, name) else {
        return Ok(None);
    };
    match raw.parse::<usize>() {
        Ok(0) => Err(format!(
            "{name} must be at least 1 (got 0); omit the flag to use the default ({default_hint})"
        )),
        Ok(n) => Ok(Some(n)),
        Err(_) => Err(format!(
            "{name} expects a whole number of at least 1, got '{raw}'"
        )),
    }
}

/// Like [`parse_positive`] but for flags where 0 is meaningful (e.g.
/// `--query-index 0` is the first query). Still rejects garbage with the
/// flag name and the offending value instead of a bare `ParseIntError`.
fn parse_nonnegative(
    args: &[String],
    name: &str,
    default_hint: &str,
) -> Result<Option<usize>, String> {
    let Some(raw) = flag(args, name) else {
        return Ok(None);
    };
    raw.parse::<usize>().map(Some).map_err(|_| {
        format!(
            "{name} expects a whole number of at least 0, got '{raw}'; \
             omit the flag to use the default ({default_hint})"
        )
    })
}

/// Clamp `k` to the number of indexed columns, warning when the request
/// asked for more than exists (asking for 50 neighbors in a 10-column lake
/// is well-defined, not an error).
fn clamp_k(k: usize, indexed: usize) -> usize {
    if k > indexed {
        eprintln!("warning: --k {k} exceeds the {indexed} indexed columns; returning {indexed}");
        indexed
    } else {
        k
    }
}

/// Parse `--threads` (default: `available_parallelism`), configure the
/// process-global pool with it, and return the count.
fn thread_budget(args: &[String]) -> Result<usize, String> {
    let n = parse_positive(args, "--threads", "all available cores")?
        .unwrap_or_else(|| deepjoin_par::Pool::auto().threads());
    deepjoin_par::Pool::set_global_threads(n);
    Ok(n)
}

/// Read a lake file (checksummed `DJLAKE2` or legacy text) and regenerate
/// its corpus.
fn load_lake(path: &str) -> Result<Corpus, Box<dyn std::error::Error>> {
    let bytes = std::fs::read(path)?;
    let config = lakefile::decode(&bytes)?;
    Ok(Corpus::generate(config))
}

/// Load a model snapshot through the shared zero-copy-capable loader,
/// surfacing any degradation warnings on stderr.
fn load_model_file(path: &str) -> Result<DeepJoin, Box<dyn std::error::Error>> {
    let loaded = load_model_path(Path::new(path))?;
    for w in &loaded.warnings {
        eprintln!("warning: {path}: {w}");
    }
    Ok(loaded.model)
}

/// Crash-safe write: temp file, fsync, atomic rename.
fn write_artifact(path: &str, bytes: &[u8]) -> std::io::Result<()> {
    StdIo.write_atomic(Path::new(path), bytes)
}

fn cmd_generate(args: &[String]) -> CliResult {
    let out = args.first().ok_or("missing <out.lake>")?;
    let tables: usize = flag(args, "--tables").map_or(Ok(2_000), |v| v.parse())?;
    let seed: u64 = flag(args, "--seed").map_or(Ok(42), |v| v.parse())?;
    let profile = match flag(args, "--profile").as_deref() {
        Some("wikitable") => CorpusProfile::Wikitable,
        _ => CorpusProfile::Webtable,
    };
    let config = CorpusConfig::new(profile, tables, seed);
    write_artifact(out, &lakefile::encode(&config))?;
    let corpus = Corpus::generate(config);
    let (repo, _) = corpus.to_repository();
    println!(
        "wrote {out}: {profile:?}, {tables} tables -> {} searchable columns",
        repo.len()
    );
    Ok(())
}

fn cmd_train(args: &[String]) -> CliResult {
    let lake = args.first().ok_or("missing <in.lake>")?;
    let out = args.get(1).ok_or("missing <out.model>")?;
    let corpus = load_lake(lake)?;
    let (repo, _) = corpus.to_repository();

    let join = match flag(args, "--join").as_deref() {
        Some("semantic") => {
            let tau: f64 = flag(args, "--tau").map_or(Ok(0.9), |v| v.parse())?;
            JoinType::Semantic { tau }
        }
        _ => JoinType::Equi,
    };
    let variant = match flag(args, "--variant").as_deref() {
        Some("distil") => Variant::DistilLite,
        _ => Variant::MpLite,
    };
    let epochs = parse_positive(args, "--epochs", "6")?.unwrap_or(6);
    let threads = thread_budget(args)?;
    let checkpoint_every =
        parse_positive(args, "--checkpoint-every", "checkpoint at epoch boundaries")?;
    // Any checkpoint-related flag enables the store; --resume names the
    // directory to continue from (and keep checkpointing into).
    let store_dir = flag(args, "--resume")
        .or_else(|| flag(args, "--checkpoint-dir"))
        .or_else(|| checkpoint_every.map(|_| format!("{out}.ckpt")));

    // Train on a fresh sample from the lake; index the repository.
    let train_cols = corpus.sample_queries((repo.len() / 3).clamp(200, 3_000), 0x7EA1);
    let train_repo = Repository::from_columns(train_cols.into_iter().map(|(c, _)| c));
    let config = DeepJoinConfig {
        variant,
        fine_tune: FineTuneConfig {
            epochs,
            adam: deepjoin_nn::AdamConfig {
                lr: 5e-3,
                warmup_steps: 50,
                ..Default::default()
            },
            ..Default::default()
        },
        ..DeepJoinConfig::default()
    };
    let trainer = TrainerConfig {
        checkpoint_every: checkpoint_every.unwrap_or(0),
        ..TrainerConfig::default()
    };
    let io = StdIo;
    let mut store = match &store_dir {
        Some(dir) => {
            std::fs::create_dir_all(dir)?;
            eprintln!("checkpointing into {dir}");
            Some(CheckpointStore::new(&io, dir.clone()))
        }
        None => None,
    };
    eprintln!("training {} on {} columns…", variant.name(), train_repo.len());
    let (mut model, report) =
        DeepJoin::train_checkpointed(&train_repo, join, config, &trainer, store.as_mut());
    for w in &report.warnings {
        eprintln!("warning: {w}");
    }
    if let Some(step) = report.resumed_from {
        eprintln!("  resumed from checkpoint at step {step}");
    }
    eprintln!(
        "  {} positives, {} pairs, vocab {}, final loss {:.3}, {} rollback(s)",
        report.num_positives,
        report.num_pairs,
        report.vocab_size,
        report.epoch_losses.last().copied().unwrap_or(f32::NAN),
        report.rollbacks
    );
    eprintln!("indexing {} columns ({threads} threads)…", repo.len());
    model.index_repository_parallel(&repo, threads);
    write_artifact(out, &save_model(&model, true))?;
    println!("wrote {out} ({} bytes)", std::fs::metadata(out)?.len());
    Ok(())
}

fn cmd_search(args: &[String]) -> CliResult {
    let lake = args.first().ok_or("missing <in.lake>")?;
    let model_path = args.get(1).ok_or("missing <in.model>")?;
    let k = parse_positive(args, "--k", "10")?.unwrap_or(10);
    let qi = parse_nonnegative(args, "--query-index", "0, the first query")?.unwrap_or(0);

    let corpus = load_lake(lake)?;
    let (repo, _) = corpus.to_repository();
    let model = load_model_file(model_path)?;
    if model.indexed_len() == 0 {
        return Err("model was saved without an index".into());
    }
    let k = clamp_k(k, model.indexed_len());
    let (query, _) = corpus
        .sample_queries(qi + 1, 0x0BEE)
        .pop()
        .ok_or("no query")?;
    println!(
        "query: '{}' from '{}' ({} cells)",
        query.meta.column_name,
        query.meta.table_title,
        query.len()
    );
    for (rank, hit) in model.search(&query, k).iter().enumerate() {
        let col = repo.column(hit.id);
        println!(
            "#{rank:<3} {:<10} '{}' in '{}' (equi jn {:.2})",
            hit.id.to_string(),
            col.meta.column_name,
            col.meta.table_title,
            equi_joinability(&query, col)
        );
    }
    Ok(())
}

/// Flatten a CSV directory into a repository (every column, so the lake is
/// searchable on any attribute).
fn csv_repository(dir: &str) -> Result<Repository, Box<dyn std::error::Error>> {
    let tables = deepjoin_lake::csv::load_csv_dir(std::path::Path::new(dir))?;
    if tables.is_empty() {
        return Err(format!("no CSV tables found in {dir}").into());
    }
    Ok(Repository::from_tables(
        &tables,
        deepjoin_lake::ExtractionRule::All,
    ))
}

fn cmd_train_csv(args: &[String]) -> CliResult {
    let dir = args.first().ok_or("missing <csv-dir>")?;
    let out = args.get(1).ok_or("missing <out.model>")?;
    let repo = csv_repository(dir)?;
    let join = match flag(args, "--join").as_deref() {
        Some("semantic") => JoinType::Semantic { tau: 0.9 },
        _ => JoinType::Equi,
    };
    let epochs = parse_positive(args, "--epochs", "6")?.unwrap_or(6);
    let threads = thread_budget(args)?;
    let config = DeepJoinConfig {
        fine_tune: FineTuneConfig {
            epochs,
            adam: deepjoin_nn::AdamConfig {
                lr: 5e-3,
                warmup_steps: 50,
                ..Default::default()
            },
            ..Default::default()
        },
        ..DeepJoinConfig::default()
    };
    eprintln!("training on {} columns from {dir}…", repo.len());
    let (mut model, report) = DeepJoin::train(&repo, join, config);
    eprintln!(
        "  {} positives, vocab {}",
        report.num_positives, report.vocab_size
    );
    model.index_repository_parallel(&repo, threads);
    write_artifact(out, &save_model(&model, true))?;
    println!("wrote {out} ({} bytes)", std::fs::metadata(out)?.len());
    Ok(())
}

fn cmd_search_csv(args: &[String]) -> CliResult {
    let dir = args.first().ok_or("missing <csv-dir>")?;
    let model_path = args.get(1).ok_or("missing <in.model>")?;
    let query_file = flag(args, "--query").ok_or("missing --query <file.csv>")?;
    let k = parse_positive(args, "--k", "10")?.unwrap_or(10);

    let repo = csv_repository(dir)?;
    let model = load_model_file(model_path)?;
    let k = clamp_k(k, model.indexed_len());
    if model.indexed_len() != repo.len() {
        return Err(format!(
            "model indexes {} columns but {dir} has {} — retrain with train-csv",
            model.indexed_len(),
            repo.len()
        )
        .into());
    }
    let qtable = deepjoin_lake::csv::load_csv_file(std::path::Path::new(&query_file))?
        .ok_or("query CSV is empty")?;
    let col_idx = match flag(args, "--column") {
        Some(name) => qtable
            .headers
            .iter()
            .position(|h| h == &name)
            .ok_or_else(|| format!("no column '{name}' in {query_file}"))?,
        None => 0,
    };
    let query = qtable.extract_column(col_idx, None);
    println!(
        "query: '{}' from {query_file} ({} cells)",
        query.meta.column_name,
        query.len()
    );
    for (rank, hit) in model.search(&query, k).iter().enumerate() {
        let col = repo.column(hit.id);
        println!(
            "#{rank:<3} '{}' in '{}' (equi jn {:.2})",
            col.meta.column_name,
            col.meta.table_title,
            equi_joinability(&query, col)
        );
    }
    Ok(())
}

/// Rewrite a trained artifact with a derived plane — today that means
/// `--quantize sq8` (the SQ8 quantized vector plane). Reads the input
/// snapshot, quantizes the indexed vectors, and writes a new artifact with
/// the extra checksummed `SQ8V` section.
fn cmd_build(args: &[String]) -> CliResult {
    let input = args.first().ok_or("missing <in.model>")?;
    let out = args.get(1).ok_or("missing <out.model>")?;
    let scheme = flag(args, "--quantize")
        .ok_or("nothing to build: pass --quantize sq8")?;
    if scheme != "sq8" {
        return Err(format!("unknown quantization scheme '{scheme}': only sq8 is supported").into());
    }
    let mut model = load_model_file(input)?;
    if model.indexed_len() == 0 {
        return Err(format!("{input} was saved without an index; nothing to quantize").into());
    }
    let f32_bytes = model.indexed_len() * model.config().dim * std::mem::size_of::<f32>();
    if !model.quantize_sq8() {
        return Err("quantization failed: model has no index state".into());
    }
    let sq8_bytes = model
        .sq8_resident_bytes()
        .expect("plane attached by quantize_sq8");
    write_artifact(out, &save_model(&model, true))?;
    println!(
        "wrote {out} ({} bytes): sq8 plane {sq8_bytes} bytes vs {f32_bytes} f32 ({:.2}x smaller)",
        std::fs::metadata(out)?.len(),
        f32_bytes as f64 / sq8_bytes as f64
    );
    Ok(())
}

fn cmd_serve(args: &[String]) -> CliResult {
    let lake = args.first().ok_or("missing <in.lake>")?;
    let model_path = args.get(1).ok_or("missing <in.model>")?;
    let addr = flag(args, "--addr").unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let workers = thread_budget(args)?;
    let max_inflight = parse_positive(args, "--max-inflight", "32")?.unwrap_or(32);
    let deadline = parse_positive(args, "--deadline-ms", "no deadline")?
        .map(|ms| std::time::Duration::from_millis(ms as u64));
    let query_cache =
        parse_nonnegative(args, "--query-cache", "0, caching disabled")?.unwrap_or(0);
    let live_dir = flag(args, "--live");
    let flush_rows = parse_positive(args, "--flush-rows", "256")?
        .unwrap_or(deepjoin::live::DEFAULT_FLUSH_ROWS);
    let compact_secs = parse_positive(args, "--compact-secs", "5")?.unwrap_or(5);
    let compact_min_segs = parse_positive(args, "--compact-min-segs", "4")?.unwrap_or(4);
    let replica_of = flag(args, "--replica-of");
    let sync_interval = parse_positive(args, "--sync-interval-ms", "500")?.unwrap_or(500);
    let stale_after = parse_positive(args, "--stale-after-ms", "10000")?.unwrap_or(10_000);
    let sync_chunk = parse_positive(args, "--sync-chunk-bytes", "262144")?;
    // Overload controls (DESIGN.md §16). `parse_positive` rejects a
    // zero-capacity bucket or zero-length brownout timings up front with
    // an actionable message instead of a server that admits nothing.
    let tenant_rate = parse_positive(args, "--tenant-rate", "no per-tenant rate limit")?;
    let tenant_burst = parse_positive(args, "--tenant-burst", "16")?;
    let wave_width = parse_positive(args, "--wave-width", "16")?.unwrap_or(16);
    if tenant_burst.is_some() && tenant_rate.is_none() {
        return Err(
            "--tenant-burst sizes the per-tenant token bucket, which only exists with \
             --tenant-rate; add --tenant-rate N (queries/second) or drop --tenant-burst"
                .into(),
        );
    }
    let brownout_target = parse_positive(args, "--brownout-target-ms", "brownout disabled")?;
    let brownout_window = parse_positive(args, "--brownout-window-ms", "4x the target")?;
    if brownout_window.is_some() && brownout_target.is_none() {
        return Err(
            "--brownout-window-ms tunes the brownout controller, which only exists with \
             --brownout-target-ms; add --brownout-target-ms N or drop --brownout-window-ms"
                .into(),
        );
    }
    let brownout = brownout_target.map(|t| deepjoin_serve::BrownoutConfig {
        target: std::time::Duration::from_millis(t as u64),
        window: std::time::Duration::from_millis(brownout_window.unwrap_or(t * 4) as u64),
    });
    // Test hook: pretend to be a slow replica by stalling every query this
    // many milliseconds (exercises hedged clients without a slow machine).
    let debug_stall = std::env::var("DEEPJOIN_DEBUG_STALL_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|&ms| ms > 0)
        .map(std::time::Duration::from_millis);

    // The lake provides the human-readable labels for hits; it is loaded
    // once and shared across model reloads.
    let corpus = load_lake(lake)?;
    let (repo, _) = corpus.to_repository();
    let repo = std::sync::Arc::new(repo);
    eprintln!("lake {lake}: {} columns", repo.len());

    let io: deepjoin_store::SharedIo = std::sync::Arc::new(StdIo);

    // Replica mode: the model artifact (and live directory, when given)
    // are *installed by sync*, not authored here — bootstrap a first
    // complete generation if the disk is empty, serve read-only, and keep
    // pulling generations in the background.
    if let Some(primary_addr) = replica_of {
        let replica_cfg = deepjoin_serve::ReplicaConfig {
            primary_addr: primary_addr.clone(),
            model_path: std::path::PathBuf::from(model_path),
            live_dir: live_dir.as_ref().map(|d| {
                let _ = std::fs::create_dir_all(d);
                std::path::PathBuf::from(d)
            }),
            interval: std::time::Duration::from_millis(sync_interval as u64),
            stale_after: std::time::Duration::from_millis(stale_after as u64),
            ..deepjoin_serve::ReplicaConfig::default()
        };
        let replica_cfg = match sync_chunk {
            Some(bytes) => deepjoin_serve::ReplicaConfig {
                chunk_len: bytes as u32,
                ..replica_cfg
            },
            None => replica_cfg,
        };
        let state = deepjoin_serve::ReplicationState::replica(replica_cfg.stale_after);
        if !Path::new(model_path).exists() {
            deepjoin_serve::bootstrap(io.clone(), &replica_cfg, &state)?;
            eprintln!("replica: bootstrapped first generation from {primary_addr}");
        }
        let loader = deepjoin::serving::replica_snapshot_loader(
            model_path.clone(),
            repo,
            query_cache,
            io.clone(),
            replica_cfg.live_dir.clone(),
        );
        let server = Server::start(
            ServerConfig {
                addr,
                workers,
                max_inflight,
                deadline,
                install_signal_handlers: true,
                replication: Some(state.clone()),
                debug_stall,
                tenant_rate: tenant_rate.map(|r| r as f64),
                tenant_burst: tenant_burst.unwrap_or(16) as f64,
                wave_width,
                brownout,
                ..ServerConfig::default()
            },
            loader,
        )?;
        for w in server.startup_warnings() {
            eprintln!("warning: {model_path}: {w}");
        }
        println!("dj-serve listening on {} (replica of {primary_addr})", server.local_addr()?);
        use std::io::Write as _;
        std::io::stdout().flush()?;
        let handle = server.handle();
        let sync_thread = std::thread::spawn({
            let io = io.clone();
            let state = state.clone();
            move || deepjoin_serve::run_sync_loop(io, &replica_cfg, &handle, &state)
        });
        server.run()?;
        let _ = sync_thread.join();
        eprintln!("dj-serve replica drained cleanly");
        return Ok(());
    }

    // With --live, open (and crash-recover) the live directory against the
    // model, then hand every snapshot the same lake so mutations survive
    // hot reloads. The compactor thread belongs to this function, not to
    // any snapshot: it runs for the server's whole life.
    let mut compactor = None;
    let loader = match &live_dir {
        Some(dir) => {
            std::fs::create_dir_all(dir)?;
            let model = load_model_file(model_path)?;
            if model.indexed_len() == 0 {
                return Err(format!("{model_path} was saved without an index").into());
            }
            let opened = deepjoin::live::LiveLake::open_with_flush_rows(
                io.clone(),
                std::path::PathBuf::from(dir),
                &model,
                flush_rows,
            )?;
            for w in &opened.warnings {
                eprintln!("warning: {dir}: {w}");
            }
            let stats = opened.lake.stats();
            eprintln!(
                "live lake {dir}: {} segment(s), {} live row(s), {} pending tombstone(s)",
                stats.segments, stats.live_rows, stats.pending_tombstones
            );
            compactor = Some(opened.lake.spawn_compactor(
                std::time::Duration::from_secs(compact_secs as u64),
                compact_min_segs,
            ));
            deepjoin::serving::live_snapshot_loader(
                model_path.clone(),
                repo,
                query_cache,
                opened.lake,
            )
        }
        None => deepjoin::serving::snapshot_loader(model_path.clone(), repo, query_cache),
    };
    // Any server can be a sync-exporting primary: replicas poll the
    // generation+fingerprint and pull model artifacts plus sealed live
    // segments (never the WAL) over the query port.
    let sync_export = std::sync::Arc::new(deepjoin_serve::SyncExport::new(
        io.clone(),
        std::path::PathBuf::from(model_path),
        live_dir.as_ref().map(std::path::PathBuf::from),
    ));
    let server = Server::start(
        ServerConfig {
            addr,
            workers,
            max_inflight,
            deadline,
            install_signal_handlers: true,
            sync_export: Some(sync_export),
            replication: Some(deepjoin_serve::ReplicationState::primary()),
            debug_stall,
            tenant_rate: tenant_rate.map(|r| r as f64),
            tenant_burst: tenant_burst.unwrap_or(16) as f64,
            wave_width,
            brownout,
            ..ServerConfig::default()
        },
        loader,
    )?;
    for w in server.startup_warnings() {
        eprintln!("warning: {model_path}: {w}");
    }
    // The e2e tests (and scripts) parse this line for the bound port, so
    // it goes to stdout and is flushed before the accept loop starts.
    println!("dj-serve listening on {}", server.local_addr()?);
    use std::io::Write as _;
    std::io::stdout().flush()?;
    server.run()?;
    if let Some(c) = compactor {
        c.stop();
    }
    eprintln!("dj-serve drained cleanly");
    Ok(())
}

/// Parse `--columns "name:a|b|c;name2:x|y"` — columns split on `;`, the
/// name from its cells on the first `:`, cells on `|`.
fn parse_ctl_columns(spec: &str) -> Result<Vec<(String, Vec<String>)>, String> {
    let mut columns = Vec::new();
    for part in spec.split(';').filter(|p| !p.is_empty()) {
        let (name, cells) = part.split_once(':').ok_or_else(|| {
            format!("column spec '{part}' has no ':'; expected name:cell|cell|cell")
        })?;
        if name.is_empty() {
            return Err(format!("column spec '{part}' has an empty name"));
        }
        columns.push((
            name.to_string(),
            cells
                .split('|')
                .filter(|c| !c.is_empty())
                .map(str::to_string)
                .collect(),
        ));
    }
    if columns.is_empty() {
        return Err("no columns: pass --columns \"name:a|b|c;name2:x|y\"".to_string());
    }
    Ok(columns)
}

/// Collect the queries for `dj query`, one cell list each. Sources, in
/// priority order: every repeated `--cells a,b,c` occurrence is one query;
/// `--file F` adds one query per non-empty line (cells comma-separated);
/// with neither, stdin supplies a single query of one cell per line.
fn query_cell_sets(args: &[String]) -> Result<Vec<Vec<String>>, Box<dyn std::error::Error>> {
    let mut sets: Vec<Vec<String>> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--cells" {
            let joined = args
                .get(i + 1)
                .ok_or("--cells expects a comma-separated cell list")?;
            sets.push(joined.split(',').map(str::to_string).collect());
            i += 2;
        } else {
            i += 1;
        }
    }
    if let Some(path) = flag(args, "--file") {
        let body = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read --file {path}: {e}"))?;
        for line in body.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            sets.push(line.split(',').map(str::to_string).collect());
        }
        if sets.is_empty() {
            return Err(format!("--file {path} holds no queries (one per line)").into());
        }
    }
    if !sets.is_empty() {
        return Ok(sets);
    }
    use std::io::Read as _;
    let mut buf = String::new();
    std::io::stdin().read_to_string(&mut buf)?;
    let cells: Vec<String> = buf.lines().map(str::to_string).collect();
    if cells.is_empty() {
        return Err(
            "no query cells: pass --cells a,b,c (repeatable), --file F, or pipe one cell per line"
                .into(),
        );
    }
    Ok(vec![cells])
}

fn print_reply(reply: &deepjoin_serve::QueryReply) {
    println!(
        "generation {} | health {} | {}{}",
        reply.generation,
        reply.health_label,
        if reply.degraded { "DEGRADED" } else { "ok" },
        if reply.complete { "" } else { " (partial: deadline hit)" },
    );
    for (rank, hit) in reply.hits.iter().enumerate() {
        println!("#{rank:<3} col#{:<6} {:<30} dist {:.4}", hit.id, hit.label, hit.score);
    }
}

fn cmd_query(args: &[String]) -> CliResult {
    let addr = args.first().ok_or("missing <addr> (e.g. 127.0.0.1:7878)")?;
    let name = flag(args, "--name").unwrap_or_else(|| "query".to_string());
    let k = parse_positive(args, "--k", "10")?.unwrap_or(10);
    let depth = parse_positive(args, "--depth", "16 requests in flight")?.unwrap_or(16);
    let tenant = flag(args, "--tenant");
    let cell_sets = query_cell_sets(args)?;
    let multi = cell_sets.len() > 1;
    // Multiple queries ride ONE pipelined connection with up to --depth
    // requests in flight; responses may return out of order and are
    // re-correlated, so results always print in input order.
    let names: Vec<String> = if multi {
        (0..cell_sets.len()).map(|i| format!("{name}[{i}]")).collect()
    } else {
        vec![name.clone()]
    };
    let specs: Vec<deepjoin_serve::QuerySpec<'_>> = cell_sets
        .iter()
        .zip(&names)
        .map(|(cells, name)| deepjoin_serve::QuerySpec {
            name,
            cells,
            k: k as u32,
        })
        .collect();
    // A comma-separated address list enables failover + hedging: health
    // probes rank the endpoints (non-stale first, then freshest
    // generation), breakers skip dead ones, and a hedge fires a second
    // attempt when the first runs past the observed p99. Pipelined sets
    // skip hedging but keep ranked failover.
    let results: Vec<deepjoin_serve::QueryResult> = if addr.contains(',') {
        let endpoints: Vec<String> = addr
            .split(',')
            .filter(|a| !a.is_empty())
            .map(str::to_string)
            .collect();
        if tenant.is_some() {
            eprintln!("warning: --tenant is ignored on multi-endpoint queries");
        }
        let client = deepjoin_serve::MultiClient::new(deepjoin_serve::ClusterConfig {
            endpoints,
            ..deepjoin_serve::ClusterConfig::default()
        })?;
        if multi {
            let (results, endpoint) = client.query_many(&specs, depth)?;
            eprintln!("answered by {endpoint} (pipelined, depth {depth})");
            results
        } else {
            let routed = client.query(&names[0], &cell_sets[0], k as u32)?;
            let (fired, won) = client.hedge_counters();
            eprintln!(
                "answered by {}{}{}",
                routed.endpoint,
                if routed.hedged { " (hedged)" } else { "" },
                if fired > 0 {
                    format!(" | hedges fired {fired}, won {won}")
                } else {
                    String::new()
                },
            );
            vec![Ok(routed.reply)]
        }
    } else {
        let mut client = Client::connect(addr)?;
        client.set_tenant(tenant.as_deref());
        if multi {
            client.query_pipelined(&specs, depth)?
        } else {
            vec![Ok(client.query(&names[0], &cell_sets[0], k as u32)?)]
        }
    };
    let mut failed = 0usize;
    for (i, result) in results.iter().enumerate() {
        if multi {
            println!("== query {i} ({}) ==", names[i]);
        }
        match result {
            Ok(reply) => print_reply(reply),
            Err(e) => {
                failed += 1;
                println!("ERROR {:?}: {}", e.code, e.message);
            }
        }
    }
    if failed > 0 {
        return Err(format!("{failed} of {} queries failed", results.len()).into());
    }
    Ok(())
}

fn cmd_ctl(args: &[String]) -> CliResult {
    let addr = args.first().ok_or("missing <addr>")?;
    let verb = args
        .get(1)
        .ok_or("missing verb: ping|stats|reload|shutdown|add-table|drop-table")?;
    let mut client = Client::connect(addr)?;
    match verb.as_str() {
        "ping" => {
            client.ping()?;
            println!("pong");
        }
        "stats" => {
            let s = client.stats()?;
            println!("generation      : {}", s.generation);
            println!("indexed cols    : {}", s.indexed);
            println!("index health    : {}", s.health_label);
            println!("accepted        : {}", s.accepted);
            println!("shed (overload) : {}", s.shed);
            println!("expired queued  : {}", s.expired);
            println!("degraded answers: {}", s.degraded_answers);
            println!("queue capacity  : {}", s.queue_capacity);
            println!("cache hits      : {}", s.cache_hits);
            println!("cache misses    : {}", s.cache_misses);
            if let Some(dedup) = s.dedup_hits {
                println!("wave dedup hits : {dedup}");
            }
            if let Some(us) = s.last_reload_micros {
                if us > 0 {
                    println!("last reload     : {:.3} ms", us as f64 / 1000.0);
                }
            }
            if let Some(live) = &s.live {
                println!("live segments   : {}", live.segments);
                println!("wal bytes       : {}", live.wal_bytes);
                println!("pending tombs   : {}", live.pending_tombstones);
                println!("live rows       : {}", live.live_rows);
            }
            if let Some(r) = &s.replication {
                let role = if r.role == deepjoin_serve::ROLE_PRIMARY {
                    "primary"
                } else {
                    "replica"
                };
                println!("role            : {role}");
                println!("primary gen     : {}", r.primary_generation);
                println!("synced gen      : {}", r.synced_generation);
                println!("lag generations : {}", r.lag_generations);
                println!("lag seconds     : {}", r.lag_seconds);
                println!("syncs completed : {}", r.syncs);
                if r.syncs > 0 {
                    println!(
                        "last sync       : {:.3} ms, {} bytes",
                        r.last_sync_micros as f64 / 1000.0,
                        r.last_sync_bytes
                    );
                }
                println!("hedges fired    : {}", r.hedges_fired);
                println!("hedges won      : {}", r.hedges_won);
                println!("stale           : {}", r.stale);
            }
            if let Some(o) = &s.overload {
                println!("brownout rung   : {}", o.brownout_rung);
                println!(
                    "brownout steps  : {} down, {} up",
                    o.brownout_steps_down, o.brownout_steps_up
                );
                println!("brownout answers: {}", o.brownout_answers);
                println!("bucket shed     : {}", o.bucket_shed);
                println!("displaced       : {}", o.displaced);
                println!("codel shed      : {}", o.codel_shed);
                for t in &o.tenants {
                    println!(
                        "tenant {:<16}: accepted {} shed {} p50 {:.3} ms p99 {:.3} ms",
                        t.name,
                        t.accepted,
                        t.shed,
                        t.p50_micros as f64 / 1000.0,
                        t.p99_micros as f64 / 1000.0
                    );
                }
            }
        }
        "reload" => {
            let (generation, warnings) = client.reload(args.get(2).map(String::as_str))?;
            for w in warnings {
                eprintln!("warning: {w}");
            }
            println!("reloaded: generation {generation}");
        }
        "shutdown" => {
            client.shutdown()?;
            println!("server draining");
        }
        "add-table" => {
            let title = args.get(2).ok_or("missing <title>")?;
            let spec = flag(args, "--columns")
                .ok_or("missing --columns \"name:a|b|c;name2:x|y\"")?;
            let columns = parse_ctl_columns(&spec)?;
            let (seq, applied) = client.add_table(title, &columns)?;
            println!("added {applied} column(s) to '{title}' (journal seq {seq})");
        }
        "drop-table" => {
            let title = args.get(2).ok_or("missing <title>")?;
            let (seq, applied) = client.drop_table(title)?;
            println!("dropped {applied} column(s) of '{title}' (journal seq {seq})");
        }
        other => {
            return Err(format!(
                "unknown ctl verb '{other}': ping|stats|reload|shutdown|add-table|drop-table"
            )
            .into())
        }
    }
    Ok(())
}

fn cmd_info(args: &[String]) -> CliResult {
    let model_path = args.first().ok_or("missing <in.model>")?;
    let loaded = load_model_path(Path::new(model_path))?;
    for w in &loaded.warnings {
        eprintln!("warning: {model_path}: {w}");
    }
    let sections = loaded.sections;
    let model = loaded.model;
    let cfg = model.config();
    println!("variant       : {:?}", cfg.variant);
    println!("dim           : {}", cfg.dim);
    println!("transform     : {}", cfg.transform.name());
    println!("max cells     : {}", cfg.max_cells);
    println!("max tokens    : {}", cfg.max_tokens);
    println!("oov buckets   : {}", cfg.oov_buckets);
    println!("vocab size    : {}", model.vocabulary().len());
    println!("indexed cols  : {}", model.indexed_len());
    match model.index_health() {
        IndexHealth::DegradedFlat { reason } => {
            println!("index health  : degraded-flat ({reason})");
        }
        health => println!("index health  : {}", health.label()),
    }
    match model.sq8_resident_bytes() {
        Some(b) => {
            let f32_bytes = model.indexed_len() * cfg.dim * std::mem::size_of::<f32>();
            println!(
                "quantization  : sq8 ({b} bytes resident, {:.2}x smaller than f32)",
                f32_bytes as f64 / b.max(1) as f64
            );
        }
        None => println!("quantization  : none (exact f32)"),
    }
    if !sections.is_empty() {
        println!("sections      :");
        for s in &sections {
            let backing = if s.mapped {
                "mapped (zero-copy)".to_string()
            } else {
                format!("{} bytes resident", s.resident)
            };
            println!("  {:<4}        : {} bytes on disk, {backing}", s.name, s.bytes);
        }
    }
    match model.lineage() {
        Some(l) => println!(
            "training      : {} epoch(s), {} step(s), final loss {:.3}, {} rollback(s)",
            l.epochs, l.steps, l.last_loss, l.rollbacks
        ),
        None => println!("training      : unknown (snapshot predates lineage tracking)"),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn flag_finds_values() {
        let args = argv(&["in.lake", "out.model", "--epochs", "4", "--threads", "2"]);
        assert_eq!(flag(&args, "--epochs").as_deref(), Some("4"));
        assert_eq!(flag(&args, "--threads").as_deref(), Some("2"));
        assert_eq!(flag(&args, "--k"), None);
        // Trailing flag with no value.
        assert_eq!(flag(&argv(&["--epochs"]), "--epochs"), None);
    }

    #[test]
    fn parse_positive_accepts_valid_and_defaults() {
        let args = argv(&["--epochs", "4"]);
        assert_eq!(parse_positive(&args, "--epochs", "6").unwrap(), Some(4));
        assert_eq!(parse_positive(&args, "--threads", "auto").unwrap(), None);
    }

    #[test]
    fn parse_positive_rejects_zero_with_actionable_message() {
        for name in ["--threads", "--epochs", "--checkpoint-every"] {
            let args = argv(&[name, "0"]);
            let err = parse_positive(&args, name, "the default").unwrap_err();
            assert!(err.contains(name), "message names the flag: {err}");
            assert!(err.contains("at least 1"), "message says the bound: {err}");
            assert!(err.contains("omit the flag"), "message says the fix: {err}");
        }
    }

    #[test]
    fn parse_nonnegative_accepts_zero_and_rejects_garbage() {
        assert_eq!(
            parse_nonnegative(&argv(&["--query-index", "0"]), "--query-index", "0").unwrap(),
            Some(0)
        );
        assert_eq!(
            parse_nonnegative(&argv(&["--query-index", "7"]), "--query-index", "0").unwrap(),
            Some(7)
        );
        assert_eq!(parse_nonnegative(&argv(&[]), "--query-index", "0").unwrap(), None);
        for bad in ["abc", "-1", "2.5"] {
            let err =
                parse_nonnegative(&argv(&["--query-index", bad]), "--query-index", "0").unwrap_err();
            assert!(err.contains("--query-index"), "{err}");
            assert!(err.contains(&format!("'{bad}'")), "{err}");
        }
    }

    #[test]
    fn ctl_columns_spec_parses_and_rejects_garbage() {
        let cols = parse_ctl_columns("id:1|2|3;sku:a|b").unwrap();
        assert_eq!(
            cols,
            vec![
                ("id".to_string(), vec!["1".into(), "2".into(), "3".into()]),
                ("sku".to_string(), vec!["a".into(), "b".into()]),
            ]
        );
        // Empty cells are allowed (a column of no values is still a column).
        assert_eq!(parse_ctl_columns("empty:").unwrap()[0].1.len(), 0);
        assert!(parse_ctl_columns("no-colon").is_err());
        assert!(parse_ctl_columns(":cells|but|no|name").is_err());
        assert!(parse_ctl_columns("").is_err());
    }

    #[test]
    fn clamp_k_caps_at_index_size() {
        // k larger than the index clamps (with a warning on stderr);
        // anything within bounds passes through untouched.
        assert_eq!(clamp_k(50, 10), 10);
        assert_eq!(clamp_k(10, 10), 10);
        assert_eq!(clamp_k(3, 10), 3);
        assert_eq!(clamp_k(1, 0), 0);
    }

    #[test]
    fn parse_positive_rejects_garbage_with_the_value_shown() {
        for bad in ["abc", "-3", "1.5", ""] {
            let args = argv(&["--checkpoint-every", bad]);
            let err = parse_positive(&args, "--checkpoint-every", "x").unwrap_err();
            assert!(err.contains("--checkpoint-every"), "{err}");
            assert!(err.contains(&format!("'{bad}'")), "{err}");
        }
    }
}
