//! Batched / parallel column encoding — the GPU stand-in.
//!
//! The paper's efficiency tables report DeepJoin with a CPU and with an
//! A100. The architectural point is that query encoding dominates and is
//! embarrassingly parallel; we reproduce the two regimes as a single-thread
//! path ("CPU") and a multi-thread path ("GPU stand-in"), labeled as such in
//! the experiment output (DESIGN.md §1).
//!
//! Both parallel paths route through the shared [`Pool`]: workers are
//! bounded by the pool size (never one thread per chunk), tiny inputs run
//! on the calling thread, and per-column outputs land in fixed slots so the
//! result is identical to the sequential path for any thread count.

use deepjoin_lake::column::Column;
use deepjoin_lake::repository::Repository;
use deepjoin_par::Pool;

use crate::model::DeepJoin;

/// Minimum columns per task: below this, thread hand-off costs more than
/// the encode itself.
const MIN_COLS_PER_CHUNK: usize = 8;

/// Encode every column of `repo`, single-threaded. Returns row-major
/// embeddings in repository order.
pub fn encode_repository(model: &DeepJoin, repo: &Repository) -> Vec<f32> {
    let mut out = Vec::with_capacity(repo.len() * model.config().dim);
    for col in repo.columns() {
        out.extend_from_slice(&model.embed_column(col));
    }
    out
}

/// Encode every column with up to `threads` worker threads (the GPU
/// stand-in). Output is row-major in repository order, identical to
/// [`encode_repository`].
pub fn encode_repository_parallel(model: &DeepJoin, repo: &Repository, threads: usize) -> Vec<f32> {
    let dim = model.config().dim;
    let columns = repo.columns();
    let mut out = vec![0f32; columns.len() * dim];
    Pool::new(threads.max(1)).for_each_chunk_mut(
        &mut out,
        columns.len(),
        MIN_COLS_PER_CHUNK,
        |range, slot| {
            for (i, col) in columns[range].iter().enumerate() {
                slot[i * dim..(i + 1) * dim].copy_from_slice(&model.embed_column(col));
            }
        },
    );
    out
}

/// Encode a batch of query columns in parallel (used by the efficiency
/// benches to measure the GPU-stand-in query path).
pub fn encode_queries_parallel(model: &DeepJoin, queries: &[Column], threads: usize) -> Vec<Vec<f32>> {
    let mut out: Vec<Vec<f32>> = vec![Vec::new(); queries.len()];
    Pool::new(threads.max(1)).for_each_chunk_mut(
        &mut out,
        queries.len(),
        MIN_COLS_PER_CHUNK,
        |range, slot| {
            for (v, q) in slot.iter_mut().zip(&queries[range]) {
                *v = model.embed_column(q);
            }
        },
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{DeepJoinConfig, Variant};
    use crate::train::JoinType;
    use deepjoin_lake::corpus::{Corpus, CorpusConfig, CorpusProfile};

    fn trained_model_and_repo() -> (DeepJoin, Repository) {
        let mut cfg = CorpusConfig::new(CorpusProfile::Webtable, 150, 31);
        cfg.num_domains = 7;
        cfg.entities_per_domain = 150;
        let corpus = Corpus::generate(cfg);
        let (repo, _) = corpus.to_repository();
        let dj_cfg = DeepJoinConfig {
            variant: Variant::DistilLite,
            dim: 16,
            sgns: deepjoin_embed::SgnsConfig {
                dim: 16,
                epochs: 1,
                ..Default::default()
            },
            fine_tune: crate::train::FineTuneConfig {
                epochs: 1,
                ..Default::default()
            },
            ..DeepJoinConfig::default()
        };
        let (model, _) = DeepJoin::train(&repo, JoinType::Equi, dj_cfg);
        (model, repo)
    }

    #[test]
    fn parallel_matches_sequential() {
        let (model, repo) = trained_model_and_repo();
        let seq = encode_repository(&model, &repo);
        let par = encode_repository_parallel(&model, &repo, 4);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn parallel_queries_match() {
        let (model, repo) = trained_model_and_repo();
        let queries: Vec<Column> = repo.columns().iter().take(7).cloned().collect();
        let seq = encode_queries_parallel(&model, &queries, 1);
        let par = encode_queries_parallel(&model, &queries, 3);
        assert_eq!(seq, par);
    }

    #[test]
    fn thread_count_edge_cases() {
        let (model, repo) = trained_model_and_repo();
        let zero = encode_repository_parallel(&model, &repo, 0);
        assert_eq!(zero.len(), repo.len() * 16);
        let many = encode_repository_parallel(&model, &repo, 999);
        assert_eq!(many, zero);
    }
}
