//! Column-to-text transformation (paper §3.1, Table 1).
//!
//! A column is *contextualized* into a text sequence before encoding. All
//! seven options from Table 1 are implemented; `title-colname-stat-col` is
//! the paper's best and the default. Variables, as in the paper:
//!
//! * `$column_name$`, `$table_title$`, `$table_context$` — from metadata;
//! * `$n$` — number of distinct cell values;
//! * `$max_len$/$min_len$/$avg_len$` — word-count statistics over cells;
//! * `$col$` — the distinct cell values joined with `", "`.
//!
//! When the contextualized sequence would exceed the encoder's token budget,
//! §3.2 keeps the cells with the highest *frequency* (the number of target
//! columns containing the value); [`CellFrequencies`] supplies those counts.

use deepjoin_lake::column::Column;
use deepjoin_lake::fxhash::FxHashMap;
use deepjoin_lake::repository::Repository;
use serde::{Deserialize, Serialize};

/// The seven contextualization options of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TransformOption {
    /// `$cell_1$,$cell_2$,…,$cell_n$`
    Col,
    /// `$column_name$: $col$.`
    ColnameCol,
    /// `$colname-col$. $table_context$`
    ColnameColContext,
    /// `$column_name$ contains $n$ values ($max$, $min$, $avg$): $col$.`
    ColnameStatCol,
    /// `$table_title$. $colname-col$.`
    TitleColnameCol,
    /// `$title-colname-col$. $table_context$`
    TitleColnameColContext,
    /// `$table_title$. $colname-stat-col$.` — the paper's best option.
    TitleColnameStatCol,
}

impl TransformOption {
    /// All options, in Table 1 order.
    pub const ALL: [TransformOption; 7] = [
        TransformOption::Col,
        TransformOption::ColnameCol,
        TransformOption::ColnameColContext,
        TransformOption::ColnameStatCol,
        TransformOption::TitleColnameCol,
        TransformOption::TitleColnameColContext,
        TransformOption::TitleColnameStatCol,
    ];

    /// The paper's name for this option.
    pub fn name(self) -> &'static str {
        match self {
            TransformOption::Col => "col",
            TransformOption::ColnameCol => "colname-col",
            TransformOption::ColnameColContext => "colname-col-context",
            TransformOption::ColnameStatCol => "colname-stat-col",
            TransformOption::TitleColnameCol => "title-colname-col",
            TransformOption::TitleColnameColContext => "title-colname-col-context",
            TransformOption::TitleColnameStatCol => "title-colname-stat-col",
        }
    }

    /// Whether the option includes the column name.
    pub fn has_colname(self) -> bool {
        !matches!(self, TransformOption::Col)
    }

    /// Whether the option includes the table title.
    pub fn has_title(self) -> bool {
        matches!(
            self,
            TransformOption::TitleColnameCol
                | TransformOption::TitleColnameColContext
                | TransformOption::TitleColnameStatCol
        )
    }

    /// Whether the option includes the table context.
    pub fn has_context(self) -> bool {
        matches!(
            self,
            TransformOption::ColnameColContext | TransformOption::TitleColnameColContext
        )
    }

    /// Whether the option includes the statistics clause.
    pub fn has_stat(self) -> bool {
        matches!(
            self,
            TransformOption::ColnameStatCol | TransformOption::TitleColnameStatCol
        )
    }
}

/// Document frequency of cell values across a repository: the number of
/// target columns containing each value (§3.2's truncation criterion).
#[derive(Debug, Clone, Default)]
pub struct CellFrequencies {
    counts: FxHashMap<String, u32>,
}

impl CellFrequencies {
    /// Count cell document-frequencies over `repo`.
    pub fn build(repo: &Repository) -> Self {
        let mut counts: FxHashMap<String, u32> = FxHashMap::default();
        for col in repo.columns() {
            for cell in col.distinct() {
                *counts.entry(cell.clone()).or_insert(0) += 1;
            }
        }
        Self { counts }
    }

    /// Frequency of `cell` (0 when unseen).
    pub fn get(&self, cell: &str) -> u32 {
        self.counts.get(cell).copied().unwrap_or(0)
    }

    /// Number of distinct values tracked.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True when nothing was counted.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Iterate `(cell, count)` pairs (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (&str, u32)> {
        self.counts.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Rebuild from `(cell, count)` pairs (persistence path).
    pub fn from_pairs<I: IntoIterator<Item = (String, u32)>>(pairs: I) -> Self {
        Self {
            counts: pairs.into_iter().collect(),
        }
    }
}

/// The contextualizer: option + cell budget + optional frequency table.
#[derive(Debug, Clone)]
pub struct Textizer {
    /// Which Table 1 option to apply.
    pub option: TransformOption,
    /// Maximum number of cells included in `$col$` (the stand-in for the
    /// PLM's 512-token input limit). `usize::MAX` disables truncation.
    pub max_cells: usize,
    freq: Option<CellFrequencies>,
}

impl Textizer {
    /// A textizer without frequency-guided truncation.
    pub fn new(option: TransformOption, max_cells: usize) -> Self {
        Self {
            option,
            max_cells,
            freq: None,
        }
    }

    /// Attach repository cell frequencies for §3.2's truncation rule.
    pub fn with_frequencies(mut self, freq: CellFrequencies) -> Self {
        self.freq = Some(freq);
        self
    }

    /// The attached frequencies, if any (persistence path).
    pub fn frequencies(&self) -> Option<&CellFrequencies> {
        self.freq.as_ref()
    }

    /// Contextualize `column` into a text sequence.
    pub fn transform(&self, column: &Column) -> String {
        let cells = self.select_cells(column);
        let col = cells.join(", ");
        let name = column.meta.column_name.as_str();
        let title = column.meta.table_title.as_str();
        let context = column.meta.table_context.as_str();

        match self.option {
            TransformOption::Col => col,
            TransformOption::ColnameCol => format!("{name}: {col}."),
            TransformOption::ColnameColContext => format!("{name}: {col}. {context}"),
            TransformOption::ColnameStatCol => {
                format!("{}: {col}.", self.stat_clause(column, name))
            }
            TransformOption::TitleColnameCol => format!("{title}. {name}: {col}."),
            TransformOption::TitleColnameColContext => {
                format!("{title}. {name}: {col}. {context}")
            }
            TransformOption::TitleColnameStatCol => {
                format!("{title}. {}: {col}.", self.stat_clause(column, name))
            }
        }
    }

    /// `$column_name$ contains $n$ values ($max$, $min$, $avg$)`.
    fn stat_clause(&self, column: &Column, name: &str) -> String {
        let n = column.distinct_len();
        let (max, min, avg) = column.word_stats();
        format!("{name} contains {n} values ({max}, {min}, {avg:.1})")
    }

    /// Distinct cells to include, truncated to the budget — by repository
    /// frequency when available (highest first, §3.2), otherwise by
    /// first-occurrence order.
    fn select_cells<'c>(&self, column: &'c Column) -> Vec<&'c str> {
        let mut cells = column.distinct_in_order();
        if cells.len() <= self.max_cells {
            return cells;
        }
        if let Some(freq) = &self.freq {
            // Stable sort keeps first-occurrence order among ties.
            cells.sort_by_key(|c| std::cmp::Reverse(freq.get(c)));
        }
        cells.truncate(self.max_cells);
        cells
    }
}

impl Default for Textizer {
    fn default() -> Self {
        Self::new(TransformOption::TitleColnameStatCol, 64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepjoin_lake::column::ColumnMeta;

    fn column() -> Column {
        Column::new(
            vec!["paris".into(), "new york".into(), "paris".into(), "tokyo".into()],
            ColumnMeta {
                table_title: "World capitals".into(),
                column_name: "city".into(),
                table_context: "a listing of capitals".into(),
                table_id: None,
            },
        )
    }

    #[test]
    fn col_concatenates_distinct_cells() {
        let t = Textizer::new(TransformOption::Col, usize::MAX);
        assert_eq!(t.transform(&column()), "paris, new york, tokyo");
    }

    #[test]
    fn colname_prefixes() {
        let t = Textizer::new(TransformOption::ColnameCol, usize::MAX);
        assert_eq!(t.transform(&column()), "city: paris, new york, tokyo.");
    }

    #[test]
    fn context_appends() {
        let t = Textizer::new(TransformOption::ColnameColContext, usize::MAX);
        let s = t.transform(&column());
        assert!(s.ends_with("a listing of capitals"));
        assert!(s.starts_with("city:"));
    }

    #[test]
    fn stat_clause_contains_counts() {
        let t = Textizer::new(TransformOption::ColnameStatCol, usize::MAX);
        let s = t.transform(&column());
        // 4 cells with word counts 1, 2, 1, 1 -> avg 1.25, printed "1.2".
        assert!(s.contains("city contains 3 values (2, 1, 1.2)"), "{s}");
    }

    #[test]
    fn title_options_lead_with_title() {
        for opt in [
            TransformOption::TitleColnameCol,
            TransformOption::TitleColnameColContext,
            TransformOption::TitleColnameStatCol,
        ] {
            let t = Textizer::new(opt, usize::MAX);
            assert!(t.transform(&column()).starts_with("World capitals."), "{opt:?}");
        }
    }

    #[test]
    fn all_options_distinct_output() {
        let outputs: Vec<String> = TransformOption::ALL
            .iter()
            .map(|&o| Textizer::new(o, usize::MAX).transform(&column()))
            .collect();
        for i in 0..outputs.len() {
            for j in (i + 1)..outputs.len() {
                assert_ne!(outputs[i], outputs[j], "{i} vs {j}");
            }
        }
    }

    #[test]
    fn budget_truncates_by_frequency() {
        use deepjoin_lake::repository::Repository;
        // "common" appears in 3 columns, "rare" in 1.
        let repo = Repository::from_columns(vec![
            Column::from_cells(["common", "a1", "a2", "a3", "a4"]),
            Column::from_cells(["common", "b1", "b2", "b3", "b4"]),
            Column::from_cells(["common", "rare", "c1", "c2", "c3"]),
        ]);
        let freq = CellFrequencies::build(&repo);
        assert_eq!(freq.get("common"), 3);
        assert_eq!(freq.get("rare"), 1);

        let t = Textizer::new(TransformOption::Col, 1).with_frequencies(freq);
        let q = Column::from_cells(["rare", "common"]);
        assert_eq!(t.transform(&q), "common");
    }

    #[test]
    fn budget_without_frequencies_keeps_order() {
        let t = Textizer::new(TransformOption::Col, 2);
        assert_eq!(t.transform(&column()), "paris, new york");
    }

    #[test]
    fn option_predicates() {
        assert!(!TransformOption::Col.has_colname());
        assert!(TransformOption::TitleColnameStatCol.has_stat());
        assert!(TransformOption::ColnameColContext.has_context());
        assert!(TransformOption::TitleColnameCol.has_title());
        assert_eq!(TransformOption::TitleColnameStatCol.name(), "title-colname-stat-col");
    }
}
