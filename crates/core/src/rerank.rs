//! Two-stage retrieval — the "more advanced paradigm" the paper's
//! introduction points to as future work (candidate generation by ANNS,
//! re-ranking by a more sophisticated scorer).
//!
//! Stage 1 retrieves `k · expansion` candidates with the embedding index;
//! stage 2 re-scores them with the *exact* joinability of the target join
//! type and returns the top-k. Cost: the ANNS search plus `O(k·expansion)`
//! exact verifications — still independent of |𝒳|, but recovering exact
//! ordering among the candidates.

use deepjoin_embed::cell_space::{CellSpace, ColumnVectors};
use deepjoin_lake::column::Column;
use deepjoin_lake::joinability::{equi_joinability, rank_and_truncate, ScoredColumn};
use deepjoin_lake::repository::Repository;

use crate::model::DeepJoin;
use crate::train::JoinType;

/// Configuration of the re-ranking stage.
#[derive(Debug, Clone, Copy)]
pub struct RerankConfig {
    /// Candidate multiplier: stage 1 fetches `k * expansion` columns.
    pub expansion: usize,
    /// Join type whose exact joinability re-scores the candidates.
    pub join_type: JoinType,
}

impl Default for RerankConfig {
    fn default() -> Self {
        Self {
            expansion: 4,
            join_type: JoinType::Equi,
        }
    }
}

/// A two-stage searcher: DeepJoin embeddings for recall, exact joinability
/// for precision.
pub struct RerankingSearcher<'m> {
    model: &'m DeepJoin,
    repo: &'m Repository,
    config: RerankConfig,
    /// Pre-embedded repository columns for semantic re-scoring (built only
    /// for semantic join types).
    semantic: Option<(CellSpace, Vec<ColumnVectors>)>,
}

impl<'m> RerankingSearcher<'m> {
    /// Wrap a trained + indexed model. For semantic re-ranking the
    /// repository is embedded into 𝒱 once, up front.
    pub fn new(model: &'m DeepJoin, repo: &'m Repository, config: RerankConfig) -> Self {
        assert!(config.expansion >= 1, "expansion must be >= 1");
        assert!(model.indexed_len() > 0, "index_repository() first");
        let semantic = match config.join_type {
            JoinType::Equi => None,
            JoinType::Semantic { .. } => {
                let space = CellSpace::new(deepjoin_embed::ngram::NgramEmbedder::new(
                    deepjoin_embed::ngram::NgramConfig {
                        dim: model.config().dim,
                        ..Default::default()
                    },
                ));
                let vecs = repo.columns().iter().map(|c| space.embed_column(c)).collect();
                Some((space, vecs))
            }
        };
        Self {
            model,
            repo,
            config,
            semantic,
        }
    }

    /// Top-k search with exact re-ranking.
    pub fn search(&self, query: &Column, k: usize) -> Vec<ScoredColumn> {
        let candidates = self.model.search(query, k * self.config.expansion);
        let rescored: Vec<ScoredColumn> = match (&self.config.join_type, &self.semantic) {
            (JoinType::Equi, _) => candidates
                .into_iter()
                .map(|c| ScoredColumn {
                    id: c.id,
                    score: equi_joinability(query, self.repo.column(c.id)),
                })
                .collect(),
            (JoinType::Semantic { tau }, Some((space, vecs))) => {
                let qv = space.embed_column(query);
                candidates
                    .into_iter()
                    .map(|c| ScoredColumn {
                        id: c.id,
                        score: CellSpace::semantic_joinability(&qv, &vecs[c.id.index()], *tau),
                    })
                    .collect()
            }
            _ => unreachable!("semantic state built in new()"),
        };
        rank_and_truncate(rescored, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{DeepJoinConfig, Variant};
    use crate::train::{FineTuneConfig, TrainDataConfig};
    use deepjoin_lake::corpus::{Corpus, CorpusConfig, CorpusProfile};
    use deepjoin_lake::joinability::brute_force_topk;
    use deepjoin_metrics::{mean, precision_at_k};

    fn setup() -> (Corpus, Repository, DeepJoin) {
        let corpus = Corpus::generate(CorpusConfig::new(CorpusProfile::Webtable, 600, 19));
        let (repo, _) = corpus.to_repository();
        let cfg = DeepJoinConfig {
            variant: Variant::MpLite,
            dim: 32,
            sgns: deepjoin_embed::SgnsConfig {
                dim: 32,
                epochs: 1,
                ..Default::default()
            },
            fine_tune: FineTuneConfig {
                epochs: 4,
                adam: deepjoin_nn::AdamConfig {
                    lr: 5e-3,
                    warmup_steps: 20,
                    ..Default::default()
                },
                ..Default::default()
            },
            data: TrainDataConfig {
                max_pairs: 4000,
                ..Default::default()
            },
            ..DeepJoinConfig::default()
        };
        let (mut model, _) = DeepJoin::train(&repo, JoinType::Equi, cfg);
        model.index_repository(&repo);
        (corpus, repo, model)
    }

    #[test]
    fn reranking_improves_or_matches_plain_search() {
        let (corpus, repo, model) = setup();
        let searcher = RerankingSearcher::new(&model, &repo, RerankConfig::default());
        let queries = corpus.sample_queries(6, 9);
        let k = 10;
        let mut plain = Vec::new();
        let mut reranked = Vec::new();
        for (q, _) in &queries {
            let exact: Vec<u32> = brute_force_topk(&repo, q, k).iter().map(|s| s.id.0).collect();
            let p: Vec<u32> = model.search(q, k).iter().map(|s| s.id.0).collect();
            let r: Vec<u32> = searcher.search(q, k).iter().map(|s| s.id.0).collect();
            plain.push(precision_at_k(&p, &exact, k));
            reranked.push(precision_at_k(&r, &exact, k));
        }
        assert!(
            mean(&reranked) >= mean(&plain) - 1e-9,
            "rerank {:.3} vs plain {:.3}",
            mean(&reranked),
            mean(&plain)
        );
    }

    #[test]
    fn rerank_scores_are_exact_joinability() {
        let (corpus, repo, model) = setup();
        let searcher = RerankingSearcher::new(&model, &repo, RerankConfig::default());
        let (q, _) = corpus.sample_queries(1, 4).pop().unwrap();
        for hit in searcher.search(&q, 5) {
            let jn = equi_joinability(&q, repo.column(hit.id));
            assert!((hit.score - jn).abs() < 1e-12);
        }
    }

    #[test]
    fn semantic_rerank_runs() {
        let (corpus, repo, model) = setup();
        let searcher = RerankingSearcher::new(
            &model,
            &repo,
            RerankConfig {
                expansion: 3,
                join_type: JoinType::Semantic { tau: 0.9 },
            },
        );
        let (q, _) = corpus.sample_queries(1, 6).pop().unwrap();
        let hits = searcher.search(&q, 5);
        assert_eq!(hits.len(), 5);
        for h in &hits {
            assert!((0.0..=1.0).contains(&h.score));
        }
    }
}
