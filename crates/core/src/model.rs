//! The DeepJoin model: train → embed → index → search (paper §3, Figure 1).

use deepjoin_ann::budget::{Budget, BudgetedSearch};
use deepjoin_ann::flat::FlatIndex;
use deepjoin_ann::TombSet;
use deepjoin_ann::hnsw::{HnswConfig, HnswIndex};
use deepjoin_ann::index::{Neighbor, VectorIndex};
use deepjoin_embed::cell_space::CellSpace;
use deepjoin_embed::ngram::{NgramConfig, NgramEmbedder};
use deepjoin_embed::sgns::{train_sgns, SgnsConfig};
use deepjoin_lake::column::{Column, ColumnId};
use deepjoin_lake::joinability::ScoredColumn;
use deepjoin_lake::repository::Repository;
use deepjoin_lake::tokenizer::Vocabulary;
use deepjoin_nn::encoder::{ColumnEncoder, EncoderConfig};

use crate::checkpoint::CheckpointStore;
use crate::text::{CellFrequencies, Textizer, TransformOption};
use crate::train::{
    prepare_training_pairs, self_join_positives, tokenize_pairs, FineTuneConfig, JoinType,
    TrainDataConfig,
};
use crate::trainer::{fine_tune_checkpointed, TrainerConfig};

/// Which PLM stand-in variant to use (DESIGN.md §1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Mean-pooling encoder — mirrors DeepJoin-DistilBERT.
    DistilLite,
    /// Position-aware attention-pooling encoder — mirrors DeepJoin-MPNet.
    MpLite,
}

impl Variant {
    /// Display name matching the paper's notation.
    pub fn name(self) -> &'static str {
        match self {
            Variant::DistilLite => "DeepJoin-DistilLite",
            Variant::MpLite => "DeepJoin-MPLite",
        }
    }
}

/// End-to-end model configuration.
#[derive(Debug, Clone)]
pub struct DeepJoinConfig {
    /// Encoder variant.
    pub variant: Variant,
    /// Embedding dimensionality.
    pub dim: usize,
    /// Contextualization option (Table 1); `TitleColnameStatCol` is best.
    pub transform: TransformOption,
    /// Cell budget for the contextualized sequence (§3.2 truncation).
    pub max_cells: usize,
    /// Encoder token budget.
    pub max_tokens: usize,
    /// Hash buckets reserved for out-of-vocabulary tokens (the fastText
    /// hashing trick), so unseen cell values keep an identity signal.
    pub oov_buckets: u32,
    /// SGNS pre-training settings.
    pub sgns: SgnsConfig,
    /// Training-data preparation settings.
    pub data: TrainDataConfig,
    /// Fine-tuning settings.
    pub fine_tune: FineTuneConfig,
    /// ANNS settings.
    pub hnsw: HnswConfig,
    /// Master seed.
    pub seed: u64,
}

impl Default for DeepJoinConfig {
    fn default() -> Self {
        Self {
            variant: Variant::MpLite,
            dim: 64,
            transform: TransformOption::TitleColnameStatCol,
            max_cells: 48,
            max_tokens: 256,
            oov_buckets: 4096,
            sgns: SgnsConfig::default(),
            data: TrainDataConfig::default(),
            fine_tune: FineTuneConfig::default(),
            hnsw: HnswConfig::default(),
            seed: 0xDEE9,
        }
    }
}

/// Summary of a training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Number of self-join positives before augmentation.
    pub num_positives: usize,
    /// Number of pairs after augmentation.
    pub num_pairs: usize,
    /// Vocabulary size.
    pub vocab_size: usize,
    /// MNR loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Loss-spike/NaN rollbacks performed during fine-tuning.
    pub rollbacks: u64,
    /// `Some(step)` when fine-tuning resumed from a checkpoint.
    pub resumed_from: Option<u64>,
    /// Non-fatal training anomalies (corrupt checkpoint slots, rollbacks,
    /// checkpoint-write failures) for the operator.
    pub warnings: Vec<String>,
}

/// Provenance of a model's fine-tuning run, persisted alongside the
/// parameters and reported by `dj info`. Deliberately excludes anything
/// that differs between an interrupted-and-resumed run and an
/// uninterrupted one, so resumed models stay byte-identical.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainLineage {
    /// Fine-tuning epochs completed.
    pub epochs: u64,
    /// Optimizer steps applied.
    pub steps: u64,
    /// Mean loss of the final epoch (NaN when no epoch completed).
    pub last_loss: f32,
    /// Rollbacks the loss-spike detector performed.
    pub rollbacks: u64,
}

/// The search backend a model is currently serving with.
///
/// Normal operation uses the HNSW graph. When a persisted snapshot's graph
/// section fails its checksum but the vector section survives, the loader
/// degrades to an exact flat scan over the same vectors — slower, but
/// correct — instead of refusing to serve (see `persist::load_model`).
pub enum IndexState {
    /// Nothing indexed yet.
    None,
    /// Full HNSW graph index (normal mode).
    Hnsw(HnswIndex),
    /// Exact-scan fallback over the recovered vectors (degraded mode).
    DegradedFlat {
        /// The flat index serving searches.
        index: FlatIndex,
        /// Why the model is degraded (e.g. the graph checksum error).
        reason: String,
    },
}

/// Health summary of a model's search index, for operators (`dj info`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexHealth {
    /// No index present; `search` is unavailable.
    Missing,
    /// HNSW graph index, full fidelity.
    Hnsw,
    /// Serving via exact flat scan after index corruption.
    DegradedFlat {
        /// Human-readable cause of the degradation.
        reason: String,
    },
}

impl IndexHealth {
    /// Short operator-facing label.
    pub fn label(&self) -> &'static str {
        match self {
            IndexHealth::Missing => "none",
            IndexHealth::Hnsw => "hnsw",
            IndexHealth::DegradedFlat { .. } => "degraded-flat",
        }
    }
}

/// Result of a budgeted, ladder-protected search
/// ([`DeepJoin::search_embedded_budgeted`]): the hits plus an honest
/// account of how they were obtained.
#[derive(Debug, Clone)]
pub struct LadderSearch {
    /// Best hits found, highest score (closest) first.
    pub hits: Vec<ScoredColumn>,
    /// False when the budget expired mid-search and `hits` is a partial
    /// best-effort top-k.
    pub complete: bool,
    /// Distance evaluations performed.
    pub visited: usize,
    /// True when the HNSW path failed and the exact-scan rescue answered.
    pub via_fallback: bool,
}

/// The trained DeepJoin model.
pub struct DeepJoin {
    pub(crate) config: DeepJoinConfig,
    pub(crate) vocab: Vocabulary,
    pub(crate) textizer: Textizer,
    pub(crate) encoder: ColumnEncoder,
    pub(crate) index: IndexState,
    pub(crate) lineage: Option<TrainLineage>,
}

impl DeepJoin {
    /// Train a model on `train_repo` for the given join type.
    ///
    /// `space` is the cell-embedding space used by the PEXESO labeler for
    /// semantic joins; it is ignored for equi-joins.
    pub fn train(
        train_repo: &Repository,
        join_type: JoinType,
        config: DeepJoinConfig,
    ) -> (Self, TrainReport) {
        Self::train_checkpointed(train_repo, join_type, config, &TrainerConfig::default(), None)
    }

    /// [`DeepJoin::train`] with stepwise checkpointing: fine-tuning
    /// snapshots into `store` every `trainer.checkpoint_every` steps and
    /// resumes from the newest intact checkpoint on restart. The
    /// pre-fine-tuning stages (vocabulary, SGNS pre-training, labeling) are
    /// deterministic in `config`, so a resumed run re-derives them
    /// identically rather than persisting them.
    pub fn train_checkpointed(
        train_repo: &Repository,
        join_type: JoinType,
        config: DeepJoinConfig,
        trainer: &TrainerConfig,
        store: Option<&mut CheckpointStore<'_>>,
    ) -> (Self, TrainReport) {
        let space = CellSpace::new(NgramEmbedder::new(NgramConfig {
            dim: config.dim,
            ..NgramConfig::default()
        }));

        // 1. Contextualize the training columns and build the vocabulary.
        let freq = CellFrequencies::build(train_repo);
        let textizer = Textizer::new(config.transform, config.max_cells).with_frequencies(freq);
        let texts: Vec<String> = train_repo
            .columns()
            .iter()
            .map(|c| textizer.transform(c))
            .collect();
        // Hybrid tokenization (surface + subtokens) mirrors PLM subword
        // behaviour: surface tokens carry exact-match identity, subtokens
        // carry format-invariant content. See `tokenize_hybrid`.
        let vocab = Vocabulary::build_hybrid(texts.iter().map(String::as_str), 1);

        // 2. Pre-train token embeddings with SGNS (the PLM's pre-training
        //    stand-in).
        let sentences: Vec<Vec<_>> = texts
            .iter()
            .map(|t| {
                deepjoin_lake::tokenizer::tokenize_hybrid(t)
                    .iter()
                    .map(|tok| vocab.id(tok))
                    .collect()
            })
            .collect();
        let sgns_cfg = SgnsConfig {
            dim: config.dim,
            ..config.sgns
        };
        let pretrained = train_sgns(&vocab, &sentences, sgns_cfg);

        // 3. Build the encoder and load the pre-trained embeddings. The
        //    table has `vocab + oov_buckets` rows; bucket rows keep their
        //    random init and are trained only if touched during fine-tuning.
        let table_rows = vocab.len() + config.oov_buckets as usize;
        let enc_cfg = match config.variant {
            Variant::DistilLite => EncoderConfig {
                max_len: config.max_tokens,
                ..EncoderConfig::distil_lite(table_rows, config.dim, config.seed)
            },
            Variant::MpLite => EncoderConfig {
                max_len: config.max_tokens,
                ..EncoderConfig::mp_lite(table_rows, config.dim, config.seed)
            },
        };
        let mut encoder = ColumnEncoder::new(enc_cfg);
        encoder.load_pretrained_embeddings(&pretrained.table);

        // 4. Self-join labeling + augmentation + fine-tuning.
        let positives = self_join_positives(train_repo, join_type, &space, &config.data);
        let pairs = prepare_training_pairs(train_repo, &positives, &config.data);
        let tokenized = tokenize_pairs(&pairs, &textizer, &vocab, config.oov_buckets);
        let outcome = if tokenized.len() >= 2 {
            fine_tune_checkpointed(&mut encoder, &tokenized, &config.fine_tune, trainer, store)
        } else {
            crate::trainer::TrainOutcome {
                completed: true,
                ..Default::default()
            }
        };

        let lineage = TrainLineage {
            epochs: outcome.epoch_losses.len() as u64,
            steps: outcome.global_steps,
            last_loss: outcome.epoch_losses.last().copied().unwrap_or(f32::NAN),
            rollbacks: outcome.rollbacks,
        };
        let report = TrainReport {
            num_positives: positives.len(),
            num_pairs: pairs.len(),
            vocab_size: vocab.len(),
            epoch_losses: outcome.epoch_losses,
            rollbacks: outcome.rollbacks,
            resumed_from: outcome.resumed_from,
            warnings: outcome.warnings,
        };
        (
            Self {
                config,
                vocab,
                textizer,
                encoder,
                index: IndexState::None,
                lineage: Some(lineage),
            },
            report,
        )
    }

    /// Fine-tuning provenance, when known (absent on models saved before
    /// lineage tracking or stripped snapshots).
    pub fn lineage(&self) -> Option<&TrainLineage> {
        self.lineage.as_ref()
    }

    /// The model configuration.
    pub fn config(&self) -> &DeepJoinConfig {
        &self.config
    }

    /// Contextualize + tokenize + encode one column (the "query encoding"
    /// stage of the efficiency analysis, §3.4).
    pub fn embed_column(&self, column: &Column) -> Vec<f32> {
        let text = self.textizer.transform(column);
        let tokens = self
            .vocab
            .encode_hybrid_bucketed(&text, self.config.oov_buckets);
        let mut v = self.encoder.encode(&tokens);
        deepjoin_embed::vector::normalize(&mut v);
        v
    }

    /// Offline: embed and index every column of the repository (§3.3).
    ///
    /// `embed_column` L2-normalizes every embedding, so the index is built
    /// with the unit-norm promise (enables the cosine `-dot` fast path; a
    /// no-op under L2).
    pub fn index_repository(&mut self, repo: &Repository) {
        let mut index = HnswIndex::new(self.config.dim, self.config.hnsw).with_unit_norm(true);
        for col in repo.columns() {
            let v = self.embed_column(col);
            index.add(&v);
        }
        self.index = IndexState::Hnsw(index);
    }

    /// [`DeepJoin::index_repository`] with up to `threads` workers for both
    /// the embedding pass and HNSW construction. The graph is built with the
    /// deterministic batch inserter, so the result is identical for any
    /// thread count (though not to the sequential [`DeepJoin::index_repository`]).
    pub fn index_repository_parallel(&mut self, repo: &Repository, threads: usize) {
        let embeddings = crate::batch::encode_repository_parallel(self, repo, threads);
        self.index_embeddings_parallel(&embeddings, threads);
    }

    /// A structurally valid model over a synthetic vector plane and a
    /// ring-adjacency HNSW graph: every artifact section (`MODL`, `VECS`,
    /// `SQ8V`, `HNSW`) at a caller-chosen scale, without hours of
    /// training. Exists for the artifact load/startup benchmark
    /// (`bench_load`), where what matters is section *size*, not recall —
    /// the graph answers queries, but its neighbors are meaningless.
    pub fn synthetic(n: usize, dim: usize, seed: u64) -> DeepJoin {
        assert!(n > 0 && dim > 0, "synthetic model needs rows and dims");
        let config = DeepJoinConfig {
            dim,
            ..DeepJoinConfig::default()
        };
        let vocab = Vocabulary::from_id_order(vec![("synthetic".to_string(), 1)]);
        let rows = vocab.len() + config.oov_buckets as usize;
        let enc_cfg = EncoderConfig {
            max_len: config.max_tokens,
            ..EncoderConfig::mp_lite(rows, dim, seed)
        };
        let encoder = ColumnEncoder::new(enc_cfg);
        let textizer = Textizer::new(config.transform, config.max_cells);

        // Deterministic xorshift vectors — content is irrelevant, bytes
        // and shape are what the load path pays for.
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state % 2000) as f32) / 1000.0 - 1.0
        };
        let vectors: Vec<f32> = (0..n * dim).map(|_| next()).collect();

        // One-layer ring adjacency in CSR form: node i points at the next
        // `deg` ids. Valid by construction, built in O(n).
        let deg = 8.min(n - 1);
        let node_off: Vec<u32> = (0..=n as u32).collect();
        let adj_off: Vec<u32> = (0..=n).map(|i| (i * deg) as u32).collect();
        let mut neighbors = Vec::with_capacity(n * deg);
        for i in 0..n {
            for j in 1..=deg {
                neighbors.push(((i + j) % n) as u32);
            }
        }
        let graph = deepjoin_ann::graph::Graph::from_csr(node_off, adj_off, neighbors)
            .expect("synthetic ring CSR is structurally valid");
        let index = HnswIndex::from_graph_parts(
            config.hnsw,
            dim,
            vectors,
            graph,
            Some(0),
            0,
            seed,
        );
        DeepJoin {
            config,
            vocab,
            textizer,
            encoder,
            index: IndexState::Hnsw(index),
            lineage: None,
        }
    }

    /// Index pre-computed embeddings (used when the embedding pass was
    /// batched / parallelized externally). The embeddings must come from
    /// [`DeepJoin::embed_column`] (unit-norm).
    pub fn index_embeddings(&mut self, embeddings: &[f32]) {
        let mut index = HnswIndex::new(self.config.dim, self.config.hnsw).with_unit_norm(true);
        index.add_batch(embeddings);
        self.index = IndexState::Hnsw(index);
    }

    /// [`DeepJoin::index_embeddings`] using the parallel batch inserter with
    /// up to `threads` workers.
    pub fn index_embeddings_parallel(&mut self, embeddings: &[f32], threads: usize) {
        let mut index = HnswIndex::new(self.config.dim, self.config.hnsw).with_unit_norm(true);
        index.add_batch_parallel(embeddings, &deepjoin_par::Pool::new(threads.max(1)));
        self.index = IndexState::Hnsw(index);
    }

    /// Online top-k search: encode the query column and run ANNS under
    /// Euclidean distance (§3.3). Returned ids are repository column ids
    /// (insertion order), scores are negated distances (higher = closer).
    pub fn search(&self, query: &Column, k: usize) -> Vec<ScoredColumn> {
        let v = self.embed_column(query);
        self.search_embedded(&v, k)
    }

    /// ANNS part only (for timing decomposition in the benchmarks).
    pub fn search_embedded(&self, query_embedding: &[f32], k: usize) -> Vec<ScoredColumn> {
        let neighbors = match &self.index {
            IndexState::None => panic!("index_repository() first"),
            IndexState::Hnsw(index) => index.search(query_embedding, k),
            IndexState::DegradedFlat { index, .. } => index.search(query_embedding, k),
        };
        neighbors
            .into_iter()
            .map(|Neighbor { id, distance }| ScoredColumn {
                id: ColumnId(id),
                score: -distance as f64,
            })
            .collect()
    }

    /// [`DeepJoin::search_embedded`] under a cooperative [`Budget`], with
    /// the full degradation ladder (see [`LadderSearch`]):
    ///
    /// 1. a healthy HNSW graph runs a budgeted graph search; if the graph
    ///    traversal *panics* (e.g. an index corrupted in memory), the panic
    ///    is caught and the query re-runs as a budgeted exact scan over the
    ///    graph's own vectors;
    /// 2. a degraded model (flat fallback from load time) runs the budgeted
    ///    exact scan directly;
    /// 3. when the budget expires mid-scan on any rung, the best-so-far
    ///    partial top-k is returned with `complete == false` instead of
    ///    nothing.
    ///
    /// An empty index returns an empty, complete result (no panic — this
    /// path is reachable from the server, which must not die on it).
    pub fn search_embedded_budgeted(
        &self,
        query_embedding: &[f32],
        k: usize,
        budget: &Budget,
    ) -> LadderSearch {
        self.search_embedded_budgeted_filtered(query_embedding, k, budget, None)
    }

    /// [`DeepJoin::search_embedded_budgeted`] with a tombstone filter:
    /// ids in `deleted` never appear in the hits, on any rung of the
    /// ladder (graph search, flat rescue, or degraded flat). This is how
    /// the live lake makes `drop-table` effective on the very next query
    /// without rebuilding the index (DESIGN.md §13).
    pub fn search_embedded_budgeted_filtered(
        &self,
        query_embedding: &[f32],
        k: usize,
        budget: &Budget,
        deleted: Option<&TombSet>,
    ) -> LadderSearch {
        let (result, via_fallback) = match &self.index {
            IndexState::None => (
                BudgetedSearch {
                    hits: Vec::new(),
                    complete: true,
                    visited: 0,
                },
                false,
            ),
            IndexState::Hnsw(index) => {
                let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    index.search_budgeted_filtered(query_embedding, k, budget, deleted)
                }));
                match attempt {
                    Ok(result) => (result, false),
                    // The graph path failed outright; rescue with an exact
                    // scan over the same vectors, still under the budget.
                    Err(_) => (
                        index.flat_scan_budgeted_filtered(query_embedding, k, budget, deleted),
                        true,
                    ),
                }
            }
            IndexState::DegradedFlat { index, .. } => (
                index.search_budgeted_filtered(query_embedding, k, budget, deleted),
                false,
            ),
        };
        LadderSearch {
            hits: result
                .hits
                .into_iter()
                .map(|Neighbor { id, distance }| ScoredColumn {
                    id: ColumnId(id),
                    score: -distance as f64,
                })
                .collect(),
            complete: result.complete,
            visited: result.visited,
            via_fallback,
        }
    }

    /// Batched [`Self::search_embedded_budgeted_filtered`]: a whole wave of
    /// query embeddings answered together under one budget (the caller
    /// passes the min of the wave members' deadlines). On the degraded-flat
    /// rung the wave runs one rows-outer batched scan — each vector block
    /// is pulled through the cache once per wave instead of once per query
    /// (`deepjoin_ann::flat::scan_budgeted_batch`). On a healthy graph each
    /// member runs its own traversal (graph walks don't share row blocks),
    /// with the same per-query panic-rescue ladder. Either way, every
    /// member's result is bit-identical to the single-query path.
    pub fn search_embedded_batch_budgeted_filtered(
        &self,
        queries: &[&[f32]],
        k: usize,
        budget: &Budget,
        deleted: Option<&TombSet>,
    ) -> Vec<LadderSearch> {
        if let IndexState::DegradedFlat { index, .. } = &self.index {
            let dim = index.dim();
            let mut flat_queries = Vec::with_capacity(queries.len() * dim);
            for q in queries {
                assert_eq!(q.len(), dim, "dimension mismatch");
                flat_queries.extend_from_slice(q);
            }
            return index
                .search_budgeted_batch_filtered(&flat_queries, k, budget, deleted)
                .into_iter()
                .map(|result| LadderSearch {
                    hits: result
                        .hits
                        .into_iter()
                        .map(|Neighbor { id, distance }| ScoredColumn {
                            id: ColumnId(id),
                            score: -distance as f64,
                        })
                        .collect(),
                    complete: result.complete,
                    visited: result.visited,
                    via_fallback: false,
                })
                .collect();
        }
        queries
            .iter()
            .map(|q| self.search_embedded_budgeted_filtered(q, k, budget, deleted))
            .collect()
    }

    /// [`DeepJoin::search`] under a budget: encode, then run the ladder.
    pub fn search_budgeted(&self, query: &Column, k: usize, budget: &Budget) -> LadderSearch {
        let v = self.embed_column(query);
        self.search_embedded_budgeted(&v, k, budget)
    }

    /// Number of indexed columns (0 before `index_repository`).
    pub fn indexed_len(&self) -> usize {
        match &self.index {
            IndexState::None => 0,
            IndexState::Hnsw(index) => index.len(),
            IndexState::DegradedFlat { index, .. } => index.len(),
        }
    }

    /// Quantize the indexed vectors into an SQ8 plane (`dj build
    /// --quantize sq8`): candidate generation runs over 1-byte codes and
    /// survivors are rescored against the exact f32 vectors, so results
    /// stay exact-distance while the scan touches ~4× less memory. No-op
    /// without an index. Returns `true` when a plane was attached.
    pub fn quantize_sq8(&mut self) -> bool {
        match &mut self.index {
            IndexState::None => false,
            IndexState::Hnsw(index) => {
                index.quantize_sq8();
                true
            }
            IndexState::DegradedFlat { index, .. } => {
                index.quantize_sq8();
                true
            }
        }
    }

    /// Resident bytes of the attached SQ8 plane, when the index is
    /// quantized (surfaced by `dj info`).
    pub fn sq8_resident_bytes(&self) -> Option<usize> {
        match &self.index {
            IndexState::None => None,
            IndexState::Hnsw(index) => index.sq8().map(|p| p.resident_bytes()),
            IndexState::DegradedFlat { index, .. } => index.sq8().map(|p| p.resident_bytes()),
        }
    }

    /// Current search-backend health (surfaced by `dj info`).
    pub fn index_health(&self) -> IndexHealth {
        match &self.index {
            IndexState::None => IndexHealth::Missing,
            IndexState::Hnsw(_) => IndexHealth::Hnsw,
            IndexState::DegradedFlat { reason, .. } => IndexHealth::DegradedFlat {
                reason: reason.clone(),
            },
        }
    }

    /// Vocabulary accessor (shared with baselines in the benchmarks).
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Textizer accessor.
    pub fn textizer(&self) -> &Textizer {
        &self.textizer
    }

    /// Encoder accessor (for the batch/parallel encoding path).
    pub fn encoder(&self) -> &ColumnEncoder {
        &self.encoder
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepjoin_lake::corpus::{Corpus, CorpusConfig, CorpusProfile};
    use deepjoin_metrics::precision_at_k;

    fn small_setup() -> (Repository, Repository, Vec<(Column, deepjoin_lake::ColumnProvenance)>) {
        let mut cfg = CorpusConfig::new(CorpusProfile::Webtable, 400, 11);
        cfg.num_domains = 7;
        cfg.entities_per_domain = 250;
        let corpus = Corpus::generate(cfg);
        let (repo, _) = corpus.to_repository();
        let train = crate::train::sample_training_repository(&repo, 300, 3);
        let queries = corpus.sample_queries(8, 21);
        (train, repo, queries)
    }

    fn quick_config(variant: Variant) -> DeepJoinConfig {
        DeepJoinConfig {
            variant,
            dim: 32,
            sgns: SgnsConfig {
                dim: 32,
                epochs: 1,
                ..SgnsConfig::default()
            },
            fine_tune: FineTuneConfig {
                epochs: 5,
                adam: deepjoin_nn::adam::AdamConfig {
                    lr: 5e-3,
                    warmup_steps: 20,
                    ..Default::default()
                },
                ..FineTuneConfig::default()
            },
            data: TrainDataConfig {
                max_pairs: 2_000,
                ..TrainDataConfig::default()
            },
            ..DeepJoinConfig::default()
        }
    }

    #[test]
    fn end_to_end_equi_beats_random() {
        let (train, repo, queries) = small_setup();
        let (mut model, report) = DeepJoin::train(&train, JoinType::Equi, quick_config(Variant::MpLite));
        assert!(report.num_positives > 0, "lake must contain positives");
        assert!(!report.epoch_losses.is_empty());
        model.index_repository(&repo);
        assert_eq!(model.indexed_len(), repo.len());

        let k = 10;
        let mut precs = Vec::new();
        for (q, _) in &queries {
            let exact: Vec<u32> = deepjoin_lake::joinability::brute_force_topk(&repo, q, k)
                .iter()
                .map(|s| s.id.0)
                .collect();
            let got: Vec<u32> = model.search(q, k).iter().map(|s| s.id.0).collect();
            assert_eq!(got.len(), k);
            precs.push(precision_at_k(&got, &exact, k));
        }
        let mean = deepjoin_metrics::mean(&precs);
        // Random retrieval over ~380 columns would land near k/|X| ≈ 0.03.
        assert!(mean > 0.2, "precision@10 {mean} too low");
    }

    #[test]
    fn both_variants_train() {
        let (train, _repo, _q) = small_setup();
        for v in [Variant::DistilLite, Variant::MpLite] {
            let (model, report) = DeepJoin::train(&train, JoinType::Equi, quick_config(v));
            assert!(report.vocab_size > 10);
            let c = Column::from_cells(["alpha", "beta", "gamma", "delta", "eps"]);
            let e = model.embed_column(&c);
            assert_eq!(e.len(), 32);
            assert!(e.iter().any(|&x| x != 0.0));
        }
    }

    #[test]
    fn embedding_is_deterministic() {
        let (train, _, _) = small_setup();
        let (model, _) = DeepJoin::train(&train, JoinType::Equi, quick_config(Variant::DistilLite));
        let c = Column::from_cells(["one", "two", "three", "four", "five"]);
        assert_eq!(model.embed_column(&c), model.embed_column(&c));
    }

    #[test]
    #[should_panic]
    fn search_before_index_panics() {
        let (train, _, _) = small_setup();
        let (model, _) = DeepJoin::train(&train, JoinType::Equi, quick_config(Variant::DistilLite));
        let c = Column::from_cells(["x", "y", "z", "w", "v"]);
        let _ = model.search(&c, 5);
    }
}
