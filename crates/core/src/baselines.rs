//! The embedding baselines of the evaluation (§5.1, "Methods").
//!
//! All of them follow DeepJoin's retrieval scheme (same contextualization,
//! same ANNS) but replace the fine-tuned column embedding:
//!
//! * **fastText** — average of char-n-gram word embeddings (no training);
//! * **BERT / MPNet (no fine-tuning)** — average of SGNS-pre-trained token
//!   embeddings; the two differ in pre-training hyperparameters (window,
//!   epochs), mirroring "different PLM, same recipe";
//! * **TaBERT-like** — token embeddings pre-trained on table *context*
//!   text only (a question-answering-flavoured objective), which misaligns
//!   with join discovery exactly as the paper observes for TaBERT;
//! * **MLP** — a 3-layer perceptron regression on fastText column
//!   embeddings whose last hidden layer becomes the retrieval embedding.

use deepjoin_ann::hnsw::{HnswConfig, HnswIndex};
use deepjoin_ann::index::VectorIndex;
use deepjoin_embed::ngram::NgramEmbedder;
use deepjoin_embed::sgns::TokenEmbeddings;
use deepjoin_embed::vector::{add_assign, normalize, scale};
use deepjoin_lake::column::{Column, ColumnId};
use deepjoin_lake::joinability::ScoredColumn;
use deepjoin_lake::repository::Repository;
use deepjoin_lake::tokenizer::Vocabulary;
use deepjoin_nn::mlp::MlpRegressor;

use crate::text::Textizer;

/// Anything that maps a column to a fixed-length embedding.
pub trait ColumnEmbedder {
    /// Embed one column.
    fn embed(&self, column: &Column) -> Vec<f32>;
    /// Embedding dimensionality.
    fn dim(&self) -> usize;
    /// Display name for experiment tables.
    fn name(&self) -> &str;
}

/// fastText baseline: average the n-gram word embeddings of the
/// contextualized text.
pub struct FastTextEmbedder {
    /// The underlying n-gram embedder.
    pub ngram: NgramEmbedder,
    /// Contextualizer shared with the model under comparison.
    pub textizer: Textizer,
}

impl ColumnEmbedder for FastTextEmbedder {
    fn embed(&self, column: &Column) -> Vec<f32> {
        let text = self.textizer.transform(column);
        let words: Vec<&str> = text
            .split(|c: char| !c.is_alphanumeric())
            .filter(|w| !w.is_empty())
            .collect();
        let mut acc = vec![0f32; self.ngram.dim()];
        if words.is_empty() {
            return acc;
        }
        for w in &words {
            add_assign(&mut acc, &self.ngram.embed(w));
        }
        scale(&mut acc, 1.0 / words.len() as f32);
        normalize(&mut acc);
        acc
    }

    fn dim(&self) -> usize {
        self.ngram.dim()
    }

    fn name(&self) -> &str {
        "fastText"
    }
}

/// Un-fine-tuned PLM baseline: mean-pooled SGNS token embeddings.
pub struct SgnsAvgEmbedder {
    /// Pre-trained token embeddings.
    pub embeddings: TokenEmbeddings,
    /// Vocabulary matching the embeddings.
    pub vocab: Vocabulary,
    /// Contextualizer.
    pub textizer: Textizer,
    /// Display name ("BERT", "MPNet", or "TaBERT").
    pub label: String,
}

impl ColumnEmbedder for SgnsAvgEmbedder {
    fn embed(&self, column: &Column) -> Vec<f32> {
        let text = self.textizer.transform(column);
        let tokens = self.vocab.encode(&text);
        self.embeddings.mean_pool(&tokens)
    }

    fn dim(&self) -> usize {
        self.embeddings.dim
    }

    fn name(&self) -> &str {
        &self.label
    }
}

/// MLP baseline: fastText column embedding passed through the trained
/// regression tower.
pub struct MlpEmbedder {
    /// The fastText feature extractor.
    pub features: FastTextEmbedder,
    /// The trained tower (interior mutability needed by the forward cache).
    pub mlp: std::cell::RefCell<MlpRegressor>,
    /// Output dimensionality.
    pub out_dim: usize,
}

impl ColumnEmbedder for MlpEmbedder {
    fn embed(&self, column: &Column) -> Vec<f32> {
        let f = self.features.embed(column);
        self.mlp.borrow_mut().embed(&f)
    }

    fn dim(&self) -> usize {
        self.out_dim
    }

    fn name(&self) -> &str {
        "MLP"
    }
}

/// A retrieval stack around any [`ColumnEmbedder`]: embeddings + HNSW, the
/// same scheme DeepJoin uses (§5.1 gives every embedding method the same
/// ANNS).
pub struct EmbeddingRetriever<E: ColumnEmbedder> {
    /// The embedder.
    pub embedder: E,
    index: HnswIndex,
}

impl<E: ColumnEmbedder> EmbeddingRetriever<E> {
    /// Embed and index every repository column.
    pub fn build(embedder: E, repo: &Repository, hnsw: HnswConfig) -> Self {
        let mut index = HnswIndex::new(embedder.dim(), hnsw);
        for col in repo.columns() {
            let v = embedder.embed(col);
            index.add(&v);
        }
        Self { embedder, index }
    }

    /// Top-k retrieval (ids are repository column ids; score = −distance).
    pub fn search(&self, query: &Column, k: usize) -> Vec<ScoredColumn> {
        let v = self.embedder.embed(query);
        self.index
            .search(&v, k)
            .into_iter()
            .map(|n| ScoredColumn {
                id: ColumnId(n.id),
                score: -n.distance as f64,
            })
            .collect()
    }

    /// Number of indexed columns.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::text::TransformOption;
    use deepjoin_embed::ngram::NgramConfig;

    fn textizer() -> Textizer {
        Textizer::new(TransformOption::Col, usize::MAX)
    }

    fn fasttext() -> FastTextEmbedder {
        FastTextEmbedder {
            ngram: NgramEmbedder::new(NgramConfig {
                dim: 16,
                ..NgramConfig::default()
            }),
            textizer: textizer(),
        }
    }

    #[test]
    fn fasttext_similar_columns_are_close() {
        let e = fasttext();
        let a = e.embed(&Column::from_cells(["paris", "tokyo", "lima"]));
        let b = e.embed(&Column::from_cells(["paris", "tokyo", "cairo"]));
        let c = e.embed(&Column::from_cells(["zx1", "qy2", "wz3"]));
        let cos = deepjoin_embed::vector::cosine;
        assert!(cos(&a, &b) > cos(&a, &c));
        assert_eq!(e.dim(), 16);
        assert_eq!(e.name(), "fastText");
    }

    #[test]
    fn retriever_finds_identical_column() {
        let repo = Repository::from_columns(vec![
            Column::from_cells(["paris", "tokyo", "lima", "oslo", "cairo"]),
            Column::from_cells(["aa", "bb", "cc", "dd", "ee"]),
            Column::from_cells(["one", "two", "three", "four", "five"]),
        ]);
        let r = EmbeddingRetriever::build(fasttext(), &repo, HnswConfig::default());
        assert_eq!(r.len(), 3);
        let hits = r.search(
            &Column::from_cells(["paris", "tokyo", "lima", "oslo", "cairo"]),
            1,
        );
        assert_eq!(hits[0].id.0, 0);
    }

    #[test]
    fn empty_column_embeds_to_zero() {
        let e = fasttext();
        let v = e.embed(&Column::from_cells(Vec::<String>::new()));
        assert!(v.iter().all(|&x| x == 0.0));
    }
}
