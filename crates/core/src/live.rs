//! The crash-safe live lake (DESIGN.md §13): WAL-journaled incremental
//! ingest, tombstoned deletes, and kill-safe flush/compaction layered on
//! top of an immutable base snapshot.
//!
//! The base model (`dj train` output) stays frozen; mutations accumulate
//! beside it in a *live directory*:
//!
//! * `wal.djwl` — the journal. `add-table` / `drop-table` append one
//!   checksummed record each ([`deepjoin_store::Wal`]) and are committed
//!   the moment the append returns; a SIGKILL at any byte boundary
//!   recovers exactly the committed prefix.
//! * in-memory **memtable** — journaled-but-unflushed columns, searched by
//!   exact flat scan alongside the base index.
//! * `seg-NNNNNN.djar` — immutable flushed segments (atomic rename), each
//!   an exact-scan slab of embedded live columns.
//! * `manifest.djar` — the single source of truth: which segments exist,
//!   the journal watermark (`applied_seq`), the id allocator, and the
//!   tombstone bitmap (`TOMB` section). Rewritten atomically; every state
//!   transition (flush, compaction) becomes durable exactly when the
//!   manifest rename lands, which is what makes those transitions
//!   kill-safe.
//!
//! Ids are global and stable: the base snapshot owns `[0, base_len)`,
//! live columns are allocated upward from `base_len` and never reused —
//! so tombstones, WAL records, and search results all speak one id
//! language, and replay is idempotent (`seq <= applied_seq` is skipped).
//!
//! Deletes are logical until compaction: [`LiveLake::drop_table`] journals
//! the *resolved* ids (so replay cannot re-resolve differently), marks
//! them in the tombstone bitmap, and every search path filters through it
//! — effective on the very next query, no restart. Compaction rewrites
//! the surviving segment rows into one segment, physically dropping dead
//! rows; a corrupt tombstone bitmap degrades to serving-without-deletes
//! with a warning rather than refusing to load.

use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use deepjoin_ann::budget::{Budget, BudgetedSearch};
use deepjoin_ann::io::{decode_flat_v2_in, decode_tombs_in, encode_flat_v2, encode_tombs, MappedPayload};
use deepjoin_ann::plane::ByteOwner;
use deepjoin_ann::segmented::search_segments;
use deepjoin_ann::{FlatIndex, Metric, TombSet, VectorIndex};
use deepjoin_lake::column::{Column, ColumnMeta};
use deepjoin_par::Pool;
use deepjoin_store::codec::{DecodeError, DecodeErrorKind, Reader, Writer};
use deepjoin_store::{is_aligned_container, Container, ContainerBuilder, Mmap, SharedIo, Wal, WalOpen};

use crate::model::DeepJoin;

/// The journal file inside a live directory.
pub const WAL_FILE: &str = "wal.djwl";
/// The manifest file inside a live directory.
pub const MANIFEST_FILE: &str = "manifest.djar";
/// Manifest container section: segment list + watermarks.
pub const SECTION_MANIFEST: [u8; 4] = *b"MNFS";
/// Manifest container section: the tombstone bitmap (`DJT1`).
pub const SECTION_TOMBS: [u8; 4] = *b"TOMB";
/// Segment container section: the embedded live rows.
pub const SECTION_SEGMENT: [u8; 4] = *b"SEGM";
/// Segment container section (v2 layout): the row vectors as a `DJF2`
/// aligned flat-index payload, mappable zero-copy.
pub const SECTION_SEGMENT_VECS: [u8; 4] = *b"VECS";

const MANIFEST_MAGIC: &[u8; 4] = b"DJMF";
const MANIFEST_VERSION: u8 = 1;
const SEGMENT_MAGIC: &[u8; 4] = b"DJS1";
const SEGMENT_VERSION: u8 = 1;
/// v2 segment header magic: ids + labels only, vectors live in the
/// `VECS` section of the same (aligned) container.
const SEGMENT_MAGIC_V2: &[u8; 4] = b"DJS2";

/// WAL record body tags.
const OP_ADD_TABLE: u8 = 1;
const OP_DROP_TABLE: u8 = 2;

/// Memtable rows that trigger an automatic flush from `add_table`.
pub const DEFAULT_FLUSH_ROWS: usize = 256;

/// Identity of the model a live directory belongs to: FNV-1a over the
/// embedding dimension, the base snapshot's indexed length, the vocabulary
/// size, and the encoder seed. Live embeddings are only meaningful under
/// the model that produced them, so [`LiveLake::open`] refuses a directory
/// whose fingerprint disagrees.
pub fn model_fingerprint(model: &DeepJoin) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x1000_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    eat(model.config().dim as u64);
    eat(model.indexed_len() as u64);
    eat(model.vocabulary().len() as u64);
    eat(model.encoder().config.seed);
    h
}

/// One live (non-base) column: its stable global id, its provenance
/// labels, and its embedding under the base model.
#[derive(Clone)]
struct LiveRow {
    id: u32,
    table: String,
    column: String,
    embedding: Vec<f32>,
}

#[derive(Clone)]
struct SegmentMeta {
    file: String,
    rows: u32,
}

/// An immutable, loaded segment: parallel id/label arrays plus an exact
/// flat index over the rows. Shared by `Arc` into every published view.
struct Segment {
    ids: Arc<Vec<u32>>,
    labels: Arc<Vec<(String, String)>>,
    index: Arc<FlatIndex>,
}

impl Segment {
    fn build(rows: &[LiveRow], dim: usize, metric: Metric) -> Self {
        let mut index = FlatIndex::new(dim.max(1), metric).with_unit_norm(true);
        let mut ids = Vec::with_capacity(rows.len());
        let mut labels = Vec::with_capacity(rows.len());
        for r in rows {
            index.add(&r.embedding);
            ids.push(r.id);
            labels.push((r.table.clone(), r.column.clone()));
        }
        Segment {
            ids: Arc::new(ids),
            labels: Arc::new(labels),
            index: Arc::new(index),
        }
    }
}

#[derive(Clone)]
struct Manifest {
    fingerprint: u64,
    /// Journal records with `seq <= applied_seq` are reflected in the
    /// segments + tombstone bitmap; replay skips them (idempotence).
    applied_seq: u64,
    /// Next global column id to allocate (starts at `base_len`).
    next_id: u32,
    /// Next segment file number (never reused, so a half-compacted
    /// directory cannot collide names).
    next_seg: u64,
    base_len: u32,
    segments: Vec<SegmentMeta>,
}

impl Manifest {
    fn fresh(fingerprint: u64, base_len: u32) -> Self {
        Manifest {
            fingerprint,
            applied_seq: 0,
            next_id: base_len,
            next_seg: 0,
            base_len,
            segments: Vec::new(),
        }
    }
}

fn encode_manifest(m: &Manifest, tombs: &TombSet) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_slice(MANIFEST_MAGIC);
    w.put_u8(MANIFEST_VERSION);
    w.put_u64_le(m.fingerprint);
    w.put_u64_le(m.applied_seq);
    w.put_u32_le(m.next_id);
    w.put_u64_le(m.next_seg);
    w.put_u32_le(m.base_len);
    w.put_u32_le(m.segments.len() as u32);
    for s in &m.segments {
        w.put_str(&s.file);
        w.put_u32_le(s.rows);
    }
    ContainerBuilder::new()
        .section(SECTION_MANIFEST, w.into_vec())
        .section(SECTION_TOMBS, encode_tombs(tombs))
        .build()
}

/// Decode a manifest container. A damaged `MNFS` section is fatal to the
/// manifest (the caller degrades to journal-only recovery); a damaged
/// `TOMB` section only costs the deletes — `None` plus a warning.
fn decode_manifest(bytes: &[u8]) -> Result<(Manifest, Option<TombSet>, Vec<String>), DecodeError> {
    let container = Container::parse(bytes)?;
    let payload = match container.section(SECTION_MANIFEST, "MNFS") {
        None => {
            return Err(DecodeError::new(
                DecodeErrorKind::Invalid("manifest container has no MNFS section"),
                "MNFS",
                0,
            ))
        }
        Some(res) => res?,
    };
    let mut r = Reader::new(payload, "MNFS");
    r.expect_magic(MANIFEST_MAGIC)?;
    r.expect_version(MANIFEST_VERSION)?;
    let fingerprint = r.u64_le()?;
    let applied_seq = r.u64_le()?;
    let next_id = r.u32_le()?;
    let next_seg = r.u64_le()?;
    let base_len = r.u32_le()?;
    // Each segment entry is at least a 4-byte name length + 4-byte rows.
    let n = r.count_u32(8)?;
    let mut segments = Vec::with_capacity(n);
    for _ in 0..n {
        let file = r.str_prefixed()?;
        segments.push(SegmentMeta {
            file,
            rows: r.u32_le()?,
        });
    }
    if !r.is_empty() {
        return Err(r.error(DecodeErrorKind::Invalid("trailing bytes after manifest")));
    }
    let manifest = Manifest {
        fingerprint,
        applied_seq,
        next_id,
        next_seg,
        base_len,
        segments,
    };
    let mut warnings = Vec::new();
    let tombs = match container.section(SECTION_TOMBS, "TOMB") {
        None => {
            warnings.push(
                "manifest has no tombstone section; serving without deletes — \
                 dropped columns may reappear until the next flush"
                    .to_string(),
            );
            None
        }
        Some(res) => match res.and_then(decode_tombs) {
            Ok(t) => Some(t),
            Err(e) => {
                warnings.push(format!(
                    "tombstone bitmap failed verification ({e}); serving without deletes — \
                     dropped columns may reappear until the next flush"
                ));
                None
            }
        },
    };
    Ok((manifest, tombs, warnings))
}

fn decode_tombs(buf: &[u8]) -> Result<TombSet, DecodeError> {
    decode_tombs_in(buf, "TOMB")
}

/// Encode a segment in the aligned (v2) container layout: the `SEGM`
/// section carries ids and labels only, and the vector plane lives in a
/// separate `VECS` section as a v2 flat payload whose raw f32 blob sits
/// on a 64-byte file boundary — so a reopened segment file can be
/// mmap'd and searched in place without copying the vectors.
fn encode_segment(rows: &[LiveRow], dim: usize, metric: Metric) -> Vec<u8> {
    let mut w = Writer::with_capacity(32 + rows.len() * 16);
    w.put_slice(SEGMENT_MAGIC_V2);
    w.put_u8(SEGMENT_VERSION);
    w.put_u32_le(dim as u32);
    w.put_u32_le(rows.len() as u32);
    for r in rows {
        w.put_u32_le(r.id);
        w.put_str(&r.table);
        w.put_str(&r.column);
    }
    // Same construction as `Segment::build`, so the bytes on disk are
    // exactly the plane a freshly flushed in-memory segment searches.
    let mut index = FlatIndex::new(dim.max(1), metric).with_unit_norm(true);
    for r in rows {
        index.add(&r.embedding);
    }
    ContainerBuilder::aligned()
        .section(SECTION_SEGMENT, w.into_vec())
        .section(SECTION_SEGMENT_VECS, encode_flat_v2(&index))
        .build()
}

/// Decode a segment container straight into a loaded [`Segment`].
///
/// Handles both on-disk generations: the aligned v2 layout (`DJS2`
/// header + `VECS` flat payload, viewed zero-copy when `mapped` carries
/// the file's pinned mapping) and the legacy v1 row format (always
/// heap-decoded). Structural validation is identical either way — a
/// mapping is never trusted.
fn decode_segment_loaded(
    bytes: &[u8],
    mapped: Option<&ByteOwner>,
    dim: usize,
    metric: Metric,
) -> Result<Segment, DecodeError> {
    let container = Container::parse(bytes)?;
    let payload = match container.section(SECTION_SEGMENT, "SEGM") {
        None => {
            return Err(DecodeError::new(
                DecodeErrorKind::Invalid("segment container has no SEGM section"),
                "SEGM",
                0,
            ))
        }
        Some(res) => res?,
    };
    let mut r = Reader::new(payload, "SEGM");
    if payload.starts_with(SEGMENT_MAGIC_V2) {
        r.expect_magic(SEGMENT_MAGIC_V2)?;
        r.expect_version(SEGMENT_VERSION)?;
        let seg_dim = r.u32_le()? as usize;
        if seg_dim != dim {
            return Err(r.error(DecodeErrorKind::Invalid(
                "segment dimensionality disagrees with the model",
            )));
        }
        // A row header is at least id + two string length prefixes.
        let n = r.count_u32(12)?;
        let mut ids = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            ids.push(r.u32_le()?);
            labels.push((r.str_prefixed()?, r.str_prefixed()?));
        }
        if !r.is_empty() {
            return Err(r.error(DecodeErrorKind::Invalid("trailing bytes after segment")));
        }
        let range = match container.section_range(SECTION_SEGMENT_VECS, "VECS") {
            None => {
                return Err(DecodeError::new(
                    DecodeErrorKind::Invalid("segment container has no VECS section"),
                    "VECS",
                    0,
                ))
            }
            Some(res) => res?,
        };
        let vecs = &bytes[range.offset..range.offset + range.len];
        let src = mapped.map(|owner| MappedPayload {
            owner: owner.clone(),
            base: range.offset,
        });
        let index = decode_flat_v2_in(vecs, "VECS", src.as_ref())?;
        if index.len() != n || index.dim() != dim.max(1) || index.metric() != metric {
            return Err(DecodeError::new(
                DecodeErrorKind::Invalid("segment vector plane disagrees with its header"),
                "VECS",
                0,
            ));
        }
        return Ok(Segment {
            ids: Arc::new(ids),
            labels: Arc::new(labels),
            // `Segment::build` stores unit-norm rows; restore the same
            // cosine fast path so mapped and rebuilt segments score
            // byte-identically.
            index: Arc::new(index.with_unit_norm(true)),
        });
    }
    // Legacy v1 segment: inline rows, always heap.
    r.expect_magic(SEGMENT_MAGIC)?;
    r.expect_version(SEGMENT_VERSION)?;
    let seg_dim = r.u32_le()? as usize;
    if seg_dim != dim {
        return Err(r.error(DecodeErrorKind::Invalid(
            "segment dimensionality disagrees with the model",
        )));
    }
    // A row header is at least id + two string length prefixes = 12 bytes.
    let n = r.count_u32(12)?;
    let mut heads = Vec::with_capacity(n);
    for _ in 0..n {
        let id = r.u32_le()?;
        let table = r.str_prefixed()?;
        let column = r.str_prefixed()?;
        heads.push((id, table, column));
    }
    let data = r.f32s()?;
    if data.len() != n * dim {
        return Err(r.error(DecodeErrorKind::Invalid(
            "segment vector block does not cover its rows",
        )));
    }
    if !r.is_empty() {
        return Err(r.error(DecodeErrorKind::Invalid("trailing bytes after segment")));
    }
    let rows: Vec<LiveRow> = heads
        .into_iter()
        .zip(data.chunks(dim.max(1)))
        .map(|((id, table, column), chunk)| LiveRow {
            id,
            table,
            column,
            embedding: chunk.to_vec(),
        })
        .collect();
    Ok(Segment::build(&rows, dim, metric))
}

/// Open one segment file. Tries the zero-copy path first — mmap the
/// real file and view its vector plane in place — and falls back to the
/// io-mediated heap read for legacy v1 segments, non-aligned files, and
/// test doubles whose "files" have no real backing on disk. Any failure
/// on the mapped path (including a file that parses but fails
/// validation) retries through `io`, so fault-injection wrappers always
/// see the read they expect to intercept.
fn load_segment(
    io: &SharedIo,
    path: &std::path::Path,
    dim: usize,
    metric: Metric,
) -> Result<Segment, String> {
    if crate::persist::mmap_enabled() {
        if let Ok(map) = Mmap::open(path) {
            if is_aligned_container(&map) {
                let owner: ByteOwner = Arc::new(map);
                let buf_owner = owner.clone();
                let buf: &[u8] = buf_owner.as_ref().as_ref();
                if let Ok(seg) = decode_segment_loaded(buf, Some(&owner), dim, metric) {
                    return Ok(seg);
                }
            }
        }
    }
    let bytes = io.read(path).map_err(|e| e.to_string())?;
    decode_segment_loaded(&bytes, None, dim, metric).map_err(|e| e.to_string())
}

/// Decoded WAL record bodies.
enum WalOp {
    AddTable {
        title: String,
        first_id: u32,
        columns: Vec<(String, Vec<String>)>,
    },
    DropTable {
        ids: Vec<u32>,
    },
}

fn encode_add(title: &str, first_id: u32, columns: &[(String, Vec<String>)]) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u8(OP_ADD_TABLE);
    w.put_str(title);
    w.put_u32_le(first_id);
    w.put_u32_le(columns.len() as u32);
    for (name, cells) in columns {
        w.put_str(name);
        w.put_u32_le(cells.len() as u32);
        for c in cells {
            w.put_str(c);
        }
    }
    w.into_vec()
}

fn encode_drop(title: &str, ids: &[u32]) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u8(OP_DROP_TABLE);
    w.put_str(title);
    w.put_u32_le(ids.len() as u32);
    for &id in ids {
        w.put_u32_le(id);
    }
    w.into_vec()
}

fn decode_record(body: &[u8]) -> Result<WalOp, DecodeError> {
    let mut r = Reader::new(body, "wal-record");
    let op = match r.u8()? {
        OP_ADD_TABLE => {
            let title = r.str_prefixed()?;
            let first_id = r.u32_le()?;
            let n = r.count_u32(8)?;
            let mut columns = Vec::with_capacity(n);
            for _ in 0..n {
                let name = r.str_prefixed()?;
                let cells_n = r.count_u32(4)?;
                let mut cells = Vec::with_capacity(cells_n);
                for _ in 0..cells_n {
                    cells.push(r.str_prefixed()?);
                }
                columns.push((name, cells));
            }
            WalOp::AddTable {
                title,
                first_id,
                columns,
            }
        }
        OP_DROP_TABLE => {
            let _title = r.str_prefixed()?;
            let n = r.count_u32(4)?;
            let mut ids = Vec::with_capacity(n);
            for _ in 0..n {
                ids.push(r.u32_le()?);
            }
            WalOp::DropTable { ids }
        }
        other => return Err(r.error(DecodeErrorKind::BadDiscriminant(other))),
    };
    if !r.is_empty() {
        return Err(r.error(DecodeErrorKind::Invalid("trailing bytes after record")));
    }
    Ok(op)
}

/// One exact-scan slab of a published [`LiveView`]: an immutable segment
/// or a snapshot of the memtable, with its local dead-row mask precomputed
/// so queries never translate global tombstones per scan.
struct Slab {
    ids: Arc<Vec<u32>>,
    labels: Arc<Vec<(String, String)>>,
    index: Arc<FlatIndex>,
    dead: Arc<TombSet>,
}

fn local_dead(ids: &[u32], tombs: &TombSet) -> TombSet {
    ids.iter()
        .enumerate()
        .filter(|(_, &id)| tombs.contains(id))
        .map(|(i, _)| i as u32)
        .collect()
}

/// An immutable snapshot of the live lake, published after every mutation
/// and consumed lock-free by queries (clone the `Arc`, use it for the
/// whole request). Holds the global tombstone bitmap (for filtering the
/// base index) and the live slabs in ascending-id order.
pub struct LiveView {
    base_len: u32,
    tombs: TombSet,
    slabs: Vec<Slab>,
}

impl LiveView {
    /// Size of the immutable base snapshot's id range.
    pub fn base_len(&self) -> u32 {
        self.base_len
    }

    /// Global deleted-id bitmap (base and live ids). Pass it to the base
    /// index's filtered search so dropped base columns vanish too.
    pub fn tombs(&self) -> &TombSet {
        &self.tombs
    }

    /// Live (non-deleted) rows across all slabs.
    pub fn live_rows(&self) -> usize {
        self.slabs
            .iter()
            .map(|s| s.ids.len() - s.dead.len())
            .sum()
    }

    /// Number of slabs (segments + at most one memtable snapshot).
    pub fn slab_count(&self) -> usize {
        self.slabs.len()
    }

    /// `(table, column)` of a live id, if it exists and is not deleted.
    pub fn label(&self, id: u32) -> Option<(&str, &str)> {
        if self.tombs.contains(id) {
            return None;
        }
        for slab in &self.slabs {
            if let Ok(i) = slab.ids.binary_search(&id) {
                let (t, c) = &slab.labels[i];
                return Some((t.as_str(), c.as_str()));
            }
        }
        None
    }

    /// `(id, table, column)` of every surviving live row, ascending id —
    /// the observable mutation state (used by the recovery oracle tests).
    pub fn surviving(&self) -> Vec<(u32, String, String)> {
        let mut out = Vec::with_capacity(self.live_rows());
        for slab in &self.slabs {
            for (i, &id) in slab.ids.iter().enumerate() {
                if !slab.dead.contains(i as u32) {
                    let (t, c) = &slab.labels[i];
                    out.push((id, t.clone(), c.clone()));
                }
            }
        }
        out
    }

    /// Exact top-k over the live rows (dead rows filtered at candidate
    /// collection), scatter-gathered across the slabs on the shared
    /// worker pool and merged through the bounded top-k selector — so
    /// the result holds at most `k` hits and is identical for any
    /// thread count. Returned ids are global; the caller merges them
    /// with the base index's hits through the same selector, so the
    /// combined result is deterministic.
    pub fn search(&self, query: &[f32], k: usize, budget: &Budget) -> BudgetedSearch {
        search_segments(&Pool::global(), &self.slabs, k, |slab| {
            let mut r = slab
                .index
                .search_budgeted_filtered(query, k, budget, Some(&slab.dead));
            for n in &mut r.hits {
                n.id = slab.ids[n.id as usize];
            }
            r
        })
    }
}

struct Inner {
    wal: Wal,
    manifest: Manifest,
    mem: Vec<LiveRow>,
    segments: Vec<Segment>,
    tombs: TombSet,
    /// True when the journal holds records not yet covered by the
    /// manifest (i.e. a flush would change durable state).
    dirty: bool,
}

/// Channel a blocked mutator waits on for its commit acknowledgement.
type Done = mpsc::Sender<io::Result<MutateOutcome>>;

/// A mutation waiting for a group-commit leader. The expensive half of an
/// ingest (embedding every cell) is already done — it happens *outside*
/// the mutation lock — so what queues here is cheap to commit.
enum PendingOp {
    Add {
        title: String,
        columns: Vec<(String, Vec<String>)>,
        /// Pre-embedded rows; ids are placeholders until the leader
        /// allocates them in journal order.
        rows: Vec<LiveRow>,
    },
    Drop {
        title: String,
        base_ids: Vec<u32>,
    },
}

/// One queued mutation plus the channel its caller blocks on.
struct Pending {
    op: PendingOp,
    done: Done,
}

/// A [`PendingOp`] resolved against the lake state at commit time: ids
/// allocated / tombstones enumerated, journal body encoded.
enum ResolvedOp {
    Add { rows: Vec<LiveRow> },
    Drop { ids: Vec<u32> },
}

/// `io::Error` is not `Clone`; a batch-wide failure must still reach
/// every waiter, so rebuild an equivalent error per recipient.
fn clone_io_err(e: &io::Error) -> io::Error {
    io::Error::new(e.kind(), e.to_string())
}

/// Enumerate every un-tombstoned id belonging to `title`: base columns
/// come pre-resolved from the caller (the lake has no base catalog),
/// live columns are found by title in sealed segments and the memtable.
fn resolve_drop(inner: &Inner, title: &str, base_ids: &[u32]) -> Vec<u32> {
    let mut ids: Vec<u32> = Vec::new();
    for &b in base_ids {
        if b < inner.manifest.base_len && !inner.tombs.contains(b) {
            ids.push(b);
        }
    }
    for seg in &inner.segments {
        for (i, &id) in seg.ids.iter().enumerate() {
            if seg.labels[i].0 == title && !inner.tombs.contains(id) {
                ids.push(id);
            }
        }
    }
    for r in &inner.mem {
        if r.table == title && !inner.tombs.contains(r.id) {
            ids.push(r.id);
        }
    }
    ids.sort_unstable();
    ids.dedup();
    ids
}

/// Acknowledgement of a durably journaled mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MutateOutcome {
    /// Journal sequence number of the committed record.
    pub seq: u64,
    /// Columns added, or ids tombstoned.
    pub applied: u64,
}

/// Operator-facing gauges for `dj ctl stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiveLakeStats {
    /// Flushed segment files.
    pub segments: u32,
    /// Journal size on disk.
    pub wal_bytes: u64,
    /// Tombstoned ids not yet physically dropped by compaction.
    pub pending_tombstones: u64,
    /// Surviving live (non-base) rows.
    pub live_rows: u64,
}

/// A live lake opened with [`LiveLake::open`], plus its recovery warnings.
pub struct LiveOpen {
    /// The mutable live lake.
    pub lake: Arc<LiveLake>,
    /// Non-fatal recovery notes (torn journal tail dropped, unreadable
    /// tombstone bitmap, orphan segments swept, ...).
    pub warnings: Vec<String>,
}

/// The mutable live half of a serving lake. All mutations are serialized
/// behind one lock and follow write-ahead discipline: the journal append
/// (or the manifest rename) is the commit point, and in-memory state only
/// changes after the bytes are durable.
pub struct LiveLake {
    io: SharedIo,
    dir: PathBuf,
    dim: usize,
    metric: Metric,
    fingerprint: u64,
    flush_rows: usize,
    inner: Mutex<Inner>,
    view: Mutex<Arc<LiveView>>,
    /// Group-commit queue: mutations enqueue here, then race for the
    /// `inner` lock; whoever wins drains the whole queue and journals it
    /// with ONE batched append (= one fsync), so N concurrent mutations
    /// cost far fewer than N fsyncs under load.
    pending: Mutex<Vec<Pending>>,
}

impl LiveLake {
    /// Open (or create) the live directory `dir`, recovering whatever a
    /// previous process committed: load the manifest and its segments,
    /// replay the journal tail (`seq > applied_seq`) into the memtable by
    /// re-embedding the journaled columns under `model` (embedding is
    /// deterministic, so replayed vectors are byte-identical to the
    /// originals), and sweep orphan segment files left by a crash between
    /// a segment write and its manifest commit.
    pub fn open(io: SharedIo, dir: PathBuf, model: &DeepJoin) -> io::Result<LiveOpen> {
        Self::open_with_flush_rows(io, dir, model, DEFAULT_FLUSH_ROWS)
    }

    /// [`LiveLake::open`] with an explicit memtable auto-flush threshold.
    pub fn open_with_flush_rows(
        io: SharedIo,
        dir: PathBuf,
        model: &DeepJoin,
        flush_rows: usize,
    ) -> io::Result<LiveOpen> {
        let mut warnings = Vec::new();
        let fingerprint = model_fingerprint(model);
        let base_len = model.indexed_len() as u32;
        let dim = model.config().dim;
        let metric = model.config().hnsw.metric;

        // Manifest: the single source of truth for flushed state. A
        // damaged manifest degrades to journal-only recovery (flushed
        // segments are unreachable without it); a damaged TOMB section
        // degrades to serving without deletes.
        let manifest_path = dir.join(MANIFEST_FILE);
        let mut manifest = Manifest::fresh(fingerprint, base_len);
        let mut tombs = TombSet::new();
        if io.exists(&manifest_path) {
            let bytes = io.read(&manifest_path)?;
            match decode_manifest(&bytes) {
                Ok((m, t, mut w)) => {
                    if m.fingerprint != fingerprint {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!(
                                "live directory {} belongs to a different model \
                                 (fingerprint {:#018x}, this model is {:#018x}); \
                                 serve the original model or use a fresh --live directory",
                                dir.display(),
                                m.fingerprint,
                                fingerprint
                            ),
                        ));
                    }
                    warnings.append(&mut w);
                    if let Some(t) = t {
                        tombs = t;
                    }
                    manifest = m;
                }
                Err(e) => warnings.push(format!(
                    "live manifest unreadable ({e}); recovering from the journal alone — \
                     previously flushed segments are not reachable"
                )),
            }
        }

        // Load the segments the manifest vouches for. An unreadable
        // segment loses its rows but never the lake.
        let mut segments = Vec::new();
        let mut metas = Vec::new();
        for meta in std::mem::take(&mut manifest.segments) {
            match load_segment(&io, &dir.join(&meta.file), dim, metric) {
                Ok(seg) => {
                    segments.push(seg);
                    metas.push(meta);
                }
                Err(e) => warnings.push(format!(
                    "live segment {} unreadable ({e}); its rows are lost",
                    meta.file
                )),
            }
        }
        manifest.segments = metas;

        // Journal: replay the un-flushed tail into the memtable. Records
        // at or below the manifest watermark are already reflected in the
        // segments/tombstones (a crash between the manifest rename and the
        // journal reset leaves them behind) and must not double-apply.
        let WalOpen {
            wal,
            records,
            warnings: wal_warnings,
        } = Wal::open(io.clone(), dir.join(WAL_FILE), fingerprint)?;
        warnings.extend(wal_warnings);
        let mut mem: Vec<LiveRow> = Vec::new();
        let mut dirty = false;
        for rec in records {
            if rec.seq <= manifest.applied_seq {
                continue;
            }
            match decode_record(&rec.body) {
                Ok(WalOp::AddTable {
                    title,
                    first_id,
                    columns,
                }) => {
                    for (i, (name, cells)) in columns.iter().enumerate() {
                        let col = Column::new(
                            cells.clone(),
                            ColumnMeta {
                                table_title: title.clone(),
                                column_name: name.clone(),
                                ..ColumnMeta::default()
                            },
                        );
                        mem.push(LiveRow {
                            id: first_id + i as u32,
                            table: title.clone(),
                            column: name.clone(),
                            embedding: model.embed_column(&col),
                        });
                    }
                    manifest.next_id = manifest.next_id.max(first_id + columns.len() as u32);
                    dirty = true;
                }
                Ok(WalOp::DropTable { ids }) => {
                    for id in ids {
                        tombs.insert(id);
                    }
                    dirty = true;
                }
                Err(e) => {
                    warnings.push(format!(
                        "journal record {} undecodable ({e}); replay stops at the committed prefix",
                        rec.seq
                    ));
                    break;
                }
            }
        }

        // Sweep orphan segment files: a crash between a segment write and
        // its manifest rename leaves a file no manifest references.
        if let Ok(files) = io.list(&dir) {
            for f in files {
                let orphan = f.starts_with("seg-")
                    && f.ends_with(".djar")
                    && !manifest.segments.iter().any(|m| m.file == f);
                if orphan {
                    warnings.push(format!(
                        "removing orphan segment {f} (crashed before its manifest commit)"
                    ));
                    let _ = io.remove(&dir.join(&f));
                }
            }
        }

        let inner = Inner {
            wal,
            manifest,
            mem,
            segments,
            tombs,
            dirty,
        };
        let view = Arc::new(build_view(&inner, dim, metric));
        let lake = Arc::new(LiveLake {
            io,
            dir,
            dim,
            metric,
            fingerprint,
            flush_rows: flush_rows.max(1),
            inner: Mutex::new(inner),
            view: Mutex::new(view),
            pending: Mutex::new(Vec::new()),
        });
        Ok(LiveOpen { lake, warnings })
    }

    /// The fingerprint of the model this directory belongs to.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The current published view (cheap `Arc` clone; never blocks on
    /// mutations beyond the clone itself).
    pub fn view(&self) -> Arc<LiveView> {
        self.view.lock().expect("live view lock").clone()
    }

    fn publish(&self, inner: &Inner) {
        let view = Arc::new(build_view(inner, self.dim, self.metric));
        *self.view.lock().expect("live view lock") = view;
    }

    /// Journal and ingest one table of columns. Committed (and therefore
    /// crash-durable) the moment its journal record is durable; visible to
    /// the very next query via the republished view. Returns the journal
    /// sequence number and the number of columns added.
    ///
    /// Embedding happens *before* the mutation lock, and concurrent
    /// mutations group-commit: the journal appends of every mutation
    /// queued while a commit is in flight coalesce into one batched
    /// append — one fsync — without weakening durability (no mutation is
    /// acknowledged before its record is on disk).
    pub fn add_table(
        &self,
        model: &DeepJoin,
        title: &str,
        columns: &[(String, Vec<String>)],
    ) -> io::Result<MutateOutcome> {
        if columns.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "add-table needs at least one column",
            ));
        }
        // Embed outside every lock — the expensive half of ingest no
        // longer serializes behind the mutation lock. The encoder is
        // deterministic, so replay re-derives identical vectors from the
        // journaled cells. Ids are assigned by the commit leader in
        // journal order (replay assigns `first_id + i`, so allocation
        // order and journal order must agree).
        let mut rows = Vec::with_capacity(columns.len());
        for (name, cells) in columns {
            let col = Column::new(
                cells.clone(),
                ColumnMeta {
                    table_title: title.to_string(),
                    column_name: name.clone(),
                    ..ColumnMeta::default()
                },
            );
            rows.push(LiveRow {
                id: 0, // allocated at commit
                table: title.to_string(),
                column: name.clone(),
                embedding: model.embed_column(&col),
            });
        }
        self.commit(PendingOp::Add {
            title: title.to_string(),
            columns: columns.to_vec(),
            rows,
        })
    }

    /// Journal and apply a table drop. The ids are resolved at commit
    /// time (base columns via `base_ids`, live columns by title) and
    /// journaled resolved, so replay can never re-resolve against a
    /// different state. Effective on the next query; physically reclaimed
    /// by compaction.
    pub fn drop_table(&self, title: &str, base_ids: &[u32]) -> io::Result<MutateOutcome> {
        self.commit(PendingOp::Drop {
            title: title.to_string(),
            base_ids: base_ids.to_vec(),
        })
    }

    /// Group-commit entry: enqueue the op, then race for the mutation
    /// lock. The winner (leader) drains the whole queue — its own op plus
    /// everything that piled up while the previous leader was fsyncing —
    /// and commits it as one batch; losers find their op already durable
    /// and just collect the outcome. Lock order is always queue → inner
    /// with the queue lock released in between, so there is no inversion.
    fn commit(&self, op: PendingOp) -> io::Result<MutateOutcome> {
        let (done, outcome) = mpsc::channel();
        self.pending
            .lock()
            .expect("commit queue lock")
            .push(Pending { op, done });
        {
            let mut inner = self.inner.lock().expect("live lake lock");
            let batch: Vec<Pending> =
                std::mem::take(&mut *self.pending.lock().expect("commit queue lock"));
            if !batch.is_empty() {
                self.commit_batch(&mut inner, batch);
            }
        }
        outcome
            .recv()
            .unwrap_or_else(|_| Err(io::Error::other("commit leader vanished")))
    }

    /// Resolve, journal (one batched append = one fsync), and apply a
    /// group of mutations, then publish once and acknowledge every
    /// waiter. Resolution happens against the state all earlier commits
    /// left behind — racing mutations carry no ordering promise beyond
    /// "journal order is apply order", which batch seqs preserve.
    fn commit_batch(&self, inner: &mut Inner, batch: Vec<Pending>) {
        // Tentative id cursor: advanced during resolution, written back
        // to the manifest only once the batched append has made every
        // allocation durable.
        let mut next_id = inner.manifest.next_id;
        let mut bodies: Vec<Vec<u8>> = Vec::with_capacity(batch.len());
        let mut resolved: Vec<(Done, io::Result<ResolvedOp>)> = Vec::with_capacity(batch.len());
        for Pending { op, done } in batch {
            let res = match op {
                PendingOp::Add {
                    title,
                    columns,
                    mut rows,
                } => {
                    if ((u32::MAX - next_id) as usize) < columns.len() {
                        Err(io::Error::new(
                            io::ErrorKind::InvalidInput,
                            "live id space exhausted",
                        ))
                    } else {
                        let first_id = next_id;
                        next_id += columns.len() as u32;
                        for (i, r) in rows.iter_mut().enumerate() {
                            r.id = first_id + i as u32;
                        }
                        bodies.push(encode_add(&title, first_id, &columns));
                        Ok(ResolvedOp::Add { rows })
                    }
                }
                PendingOp::Drop { title, base_ids } => {
                    // Resolved against committed state: two drops of the
                    // same table in one batch journal the same ids, and
                    // tombstone inserts keep the double-apply idempotent —
                    // exactly what replaying both records would do.
                    let ids = resolve_drop(inner, &title, &base_ids);
                    if ids.is_empty() {
                        Err(io::Error::new(
                            io::ErrorKind::NotFound,
                            format!("no live or indexed columns belong to table '{title}'"),
                        ))
                    } else {
                        bodies.push(encode_drop(&title, &ids));
                        Ok(ResolvedOp::Drop { ids })
                    }
                }
            };
            resolved.push((done, res));
        }

        if bodies.is_empty() {
            // Every op failed resolution; nothing reached the journal.
            for (done, res) in resolved {
                let _ = done.send(res.map(|_| MutateOutcome { seq: 0, applied: 0 }));
            }
            return;
        }

        // THE commit point for the whole group: one append, one fsync.
        let first_seq = match inner.wal.append_batch(&bodies) {
            Ok(seq) => seq,
            Err(e) => {
                for (done, res) in resolved {
                    let _ = done.send(match res {
                        Ok(_) => Err(clone_io_err(&e)),
                        Err(own) => Err(own),
                    });
                }
                return;
            }
        };
        inner.manifest.next_id = next_id;

        // Apply in journal order, handing out consecutive seqs — replay
        // assigns ids and seqs in record order, so apply must match.
        let mut seq = first_seq;
        let mut acks: Vec<(Done, io::Result<MutateOutcome>)> = Vec::with_capacity(resolved.len());
        for (done, res) in resolved {
            match res {
                Ok(ResolvedOp::Add { mut rows }) => {
                    let applied = rows.len() as u64;
                    inner.mem.append(&mut rows);
                    inner.dirty = true;
                    acks.push((done, Ok(MutateOutcome { seq, applied })));
                    seq += 1;
                }
                Ok(ResolvedOp::Drop { ids }) => {
                    let applied = ids.len() as u64;
                    for id in ids {
                        inner.tombs.insert(id);
                    }
                    inner.dirty = true;
                    acks.push((done, Ok(MutateOutcome { seq, applied })));
                    seq += 1;
                }
                Err(e) => acks.push((done, Err(e))),
            }
        }

        // One conditional flush and one view publish for the whole group.
        // A flush failure is reported to every member (matching the
        // single-op behavior of old releases): their records ARE durable,
        // but the lake could not seal them into a segment.
        let flush_err = if inner.mem.len() >= self.flush_rows {
            self.flush_locked(inner).err()
        } else {
            None
        };
        self.publish(inner);
        for (done, result) in acks {
            let result = match (&flush_err, result) {
                (Some(e), Ok(_)) => Err(clone_io_err(e)),
                (_, r) => r,
            };
            let _ = done.send(result);
        }
    }

    /// Flush the memtable into an immutable segment and advance the
    /// manifest watermark. Ordering is the whole point:
    ///
    /// 1. write the segment file (atomic rename; a crash here leaves an
    ///    orphan the next open sweeps);
    /// 2. rewrite the manifest referencing it with `applied_seq` advanced
    ///    (atomic rename — THE commit point of the flush);
    /// 3. reset the journal (advisory: a crash before this leaves stale
    ///    records that replay skips via the watermark).
    ///
    /// Returns false when there was nothing to flush.
    pub fn flush(&self) -> io::Result<bool> {
        let mut inner = self.inner.lock().expect("live lake lock");
        let did = self.flush_locked(&mut inner)?;
        if did {
            self.publish(&inner);
        }
        Ok(did)
    }

    fn flush_locked(&self, inner: &mut Inner) -> io::Result<bool> {
        if !inner.dirty {
            return Ok(false);
        }
        let mut manifest = inner.manifest.clone();
        let mut new_seg = None;
        if !inner.mem.is_empty() {
            let file = format!("seg-{:06}.djar", manifest.next_seg);
            manifest.next_seg += 1;
            self.io
                .write_atomic(
                    &self.dir.join(&file),
                    &encode_segment(&inner.mem, self.dim, self.metric),
                )?;
            manifest.segments.push(SegmentMeta {
                file: file.clone(),
                rows: inner.mem.len() as u32,
            });
            new_seg = Some(Segment::build(&inner.mem, self.dim, self.metric));
        }
        manifest.applied_seq = inner.wal.next_seq().saturating_sub(1);
        self.io.write_atomic(
            &self.dir.join(MANIFEST_FILE),
            &encode_manifest(&manifest, &inner.tombs),
        )?;
        // The manifest rename landed: commit to memory before the
        // advisory journal reset, so an error below cannot tear state.
        if let Some(seg) = new_seg {
            inner.segments.push(seg);
        }
        inner.mem.clear();
        let applied = manifest.applied_seq;
        inner.manifest = manifest;
        inner.dirty = false;
        inner.wal.reset(applied)?;
        Ok(true)
    }

    /// Merge all flushed segments into one, physically dropping
    /// tombstoned rows, and prune tombstones that no longer cover any
    /// stored row. The new segment is written first, then the manifest
    /// rename commits the swap; old segment files are removed best-effort
    /// afterwards (a crash in between leaves unreferenced files the next
    /// open sweeps). Returns false when compaction would change nothing.
    pub fn compact(&self) -> io::Result<bool> {
        let mut inner = self.inner.lock().expect("live lake lock");
        let dead_in_segs = inner
            .segments
            .iter()
            .any(|s| s.ids.iter().any(|&id| inner.tombs.contains(id)));
        if inner.segments.len() < 2 && !dead_in_segs {
            return Ok(false);
        }
        let mut rows = Vec::new();
        for seg in &inner.segments {
            for (i, &id) in seg.ids.iter().enumerate() {
                if inner.tombs.contains(id) {
                    continue;
                }
                let (t, c) = &seg.labels[i];
                rows.push(LiveRow {
                    id,
                    table: t.clone(),
                    column: c.clone(),
                    embedding: seg.index.vector(i as u32).to_vec(),
                });
            }
        }
        let mut manifest = inner.manifest.clone();
        let old_files: Vec<String> = manifest.segments.iter().map(|s| s.file.clone()).collect();
        manifest.segments.clear();
        let mut new_seg = None;
        if !rows.is_empty() {
            let file = format!("seg-{:06}.djar", manifest.next_seg);
            manifest.next_seg += 1;
            self.io
                .write_atomic(
                    &self.dir.join(&file),
                    &encode_segment(&rows, self.dim, self.metric),
                )?;
            manifest.segments.push(SegmentMeta {
                file: file.clone(),
                rows: rows.len() as u32,
            });
            new_seg = Some(Segment::build(&rows, self.dim, self.metric));
        }
        // Tombstones covering compacted-away rows are physically gone;
        // keep the ones that still cover stored rows (base ids, and any
        // memtable rows dropped before their first flush).
        let base_len = inner.manifest.base_len;
        let mem_ids: std::collections::HashSet<u32> = inner.mem.iter().map(|r| r.id).collect();
        let kept: TombSet = inner
            .tombs
            .iter()
            .filter(|&id| id < base_len || mem_ids.contains(&id))
            .collect();
        self.io.write_atomic(
            &self.dir.join(MANIFEST_FILE),
            &encode_manifest(&manifest, &kept),
        )?; // commit point
        inner.segments = new_seg.into_iter().collect();
        inner.manifest = manifest;
        inner.tombs = kept;
        for f in old_files {
            let _ = self.io.remove(&self.dir.join(&f));
        }
        self.publish(&inner);
        Ok(true)
    }

    /// Operator gauges for `dj ctl stats`.
    pub fn stats(&self) -> LiveLakeStats {
        let inner = self.inner.lock().expect("live lake lock");
        let live_rows = inner
            .segments
            .iter()
            .flat_map(|s| s.ids.iter())
            .chain(inner.mem.iter().map(|r| &r.id))
            .filter(|&&id| !inner.tombs.contains(id))
            .count() as u64;
        LiveLakeStats {
            segments: inner.segments.len() as u32,
            wal_bytes: inner.wal.size_bytes(),
            pending_tombstones: inner.tombs.len() as u64,
            live_rows,
        }
    }

    /// Spawn the background compactor: every `interval` it merges the
    /// flushed segments when there are at least `min_segments` of them or
    /// any of them carries tombstoned rows. The thread holds only a weak
    /// reference, so dropping the lake (or the returned handle) stops it.
    pub fn spawn_compactor(
        self: &Arc<Self>,
        interval: Duration,
        min_segments: usize,
    ) -> Compactor {
        let stop = Arc::new(AtomicBool::new(false));
        let weak = Arc::downgrade(self);
        let stop_flag = stop.clone();
        let handle = std::thread::spawn(move || loop {
            let deadline = Instant::now() + interval;
            while Instant::now() < deadline {
                if stop_flag.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(25));
            }
            let Some(lake) = weak.upgrade() else { return };
            let worth = {
                let inner = lake.inner.lock().expect("live lake lock");
                inner.segments.len() >= min_segments.max(2)
                    || inner
                        .segments
                        .iter()
                        .any(|s| s.ids.iter().any(|&id| inner.tombs.contains(id)))
            };
            if worth {
                if let Err(e) = lake.compact() {
                    eprintln!("warning: background compaction failed (will retry): {e}");
                }
            }
        });
        Compactor {
            stop,
            handle: Some(handle),
        }
    }
}

fn build_view(inner: &Inner, dim: usize, metric: Metric) -> LiveView {
    let mut slabs: Vec<Slab> = inner
        .segments
        .iter()
        .map(|seg| Slab {
            ids: seg.ids.clone(),
            labels: seg.labels.clone(),
            index: seg.index.clone(),
            dead: Arc::new(local_dead(&seg.ids, &inner.tombs)),
        })
        .collect();
    if !inner.mem.is_empty() {
        let seg = Segment::build(&inner.mem, dim, metric);
        slabs.push(Slab {
            dead: Arc::new(local_dead(&seg.ids, &inner.tombs)),
            ids: seg.ids,
            labels: seg.labels,
            index: seg.index,
        });
    }
    LiveView {
        base_len: inner.manifest.base_len,
        tombs: inner.tombs.clone(),
        slabs,
    }
}

/// Handle for the background compaction thread; stops (and joins) it on
/// [`Compactor::stop`] or drop.
pub struct Compactor {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Compactor {
    /// Stop and join the compactor thread.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Compactor {
    fn drop(&mut self) {
        self.halt();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepjoin_ann::index::Neighbor;
    use deepjoin_store::StdIo;

    fn test_rows(n: usize, dim: usize) -> Vec<LiveRow> {
        (0..n)
            .map(|i| {
                let mut v: Vec<f32> = (0..dim)
                    .map(|d| ((i * 31 + d * 7 + 3) % 17) as f32 - 8.0)
                    .collect();
                let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-6);
                v.iter_mut().for_each(|x| *x /= norm);
                LiveRow {
                    id: 100 + i as u32,
                    table: format!("t{}", i / 3),
                    column: format!("c{i}"),
                    embedding: v,
                }
            })
            .collect()
    }

    fn query(dim: usize) -> Vec<f32> {
        let mut v: Vec<f32> = (0..dim).map(|d| ((d * 5 + 1) % 11) as f32 - 5.0).collect();
        let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        v.iter_mut().for_each(|x| *x /= norm);
        v
    }

    fn seg_hits(seg: &Segment, q: &[f32], k: usize) -> Vec<Neighbor> {
        seg.index
            .search_budgeted_filtered(q, k, &Budget::unlimited(), None)
            .hits
    }

    #[test]
    fn v2_segment_roundtrips_heap_and_mapped_byte_identically() {
        let (dim, metric) = (8, Metric::Cosine);
        let rows = test_rows(17, dim);
        let built = Segment::build(&rows, dim, metric);
        let bytes = encode_segment(&rows, dim, metric);

        let heap = decode_segment_loaded(&bytes, None, dim, metric).unwrap();
        assert!(!heap.index.is_mapped());

        let owner: ByteOwner = Arc::new(bytes.clone());
        let mapped = decode_segment_loaded(&bytes, Some(&owner), dim, metric).unwrap();
        assert!(mapped.index.is_mapped());

        let q = query(dim);
        let want = seg_hits(&built, &q, 5);
        for seg in [&heap, &mapped] {
            assert_eq!(*seg.ids, *built.ids);
            assert_eq!(*seg.labels, *built.labels);
            assert!(seg.index.unit_norm());
            let got = seg_hits(seg, &q, 5);
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.id, w.id);
                assert_eq!(g.distance.to_bits(), w.distance.to_bits());
            }
        }
    }

    #[test]
    fn legacy_v1_segment_still_loads_on_heap() {
        let (dim, metric) = (6, Metric::Cosine);
        let rows = test_rows(9, dim);
        // Byte-for-byte the pre-v2 writer: inline rows in a compact container.
        let mut w = Writer::with_capacity(64);
        w.put_slice(SEGMENT_MAGIC);
        w.put_u8(SEGMENT_VERSION);
        w.put_u32_le(dim as u32);
        w.put_u32_le(rows.len() as u32);
        for r in &rows {
            w.put_u32_le(r.id);
            w.put_str(&r.table);
            w.put_str(&r.column);
        }
        let mut data = Vec::new();
        for r in &rows {
            data.extend_from_slice(&r.embedding);
        }
        w.put_f32s(&data);
        let bytes = ContainerBuilder::new()
            .section(SECTION_SEGMENT, w.into_vec())
            .build();

        let seg = decode_segment_loaded(&bytes, None, dim, metric).unwrap();
        assert!(!seg.index.is_mapped());
        let built = Segment::build(&rows, dim, metric);
        assert_eq!(*seg.ids, *built.ids);
        assert_eq!(*seg.labels, *built.labels);
        let q = query(dim);
        let (got, want) = (seg_hits(&seg, &q, 4), seg_hits(&built, &q, 4));
        for (g, w) in got.iter().zip(&want) {
            assert_eq!((g.id, g.distance.to_bits()), (w.id, w.distance.to_bits()));
        }
    }

    #[test]
    fn load_segment_maps_real_files_and_heap_falls_back_for_mem_io() {
        let (dim, metric) = (4, Metric::L2);
        let rows = test_rows(5, dim);
        let bytes = encode_segment(&rows, dim, metric);

        let dir = std::env::temp_dir().join(format!("dj-live-map-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("seg-000000.djar");
        std::fs::write(&path, &bytes).unwrap();
        let io: SharedIo = Arc::new(StdIo);
        let seg = load_segment(&io, &path, dim, metric).unwrap();
        assert!(seg.index.is_mapped(), "real file should load zero-copy");
        let _ = std::fs::remove_dir_all(&dir);

        // A MemIo "file" has no real backing path: the loader must fall
        // back to the io-mediated heap read, not fail.
        let mem: SharedIo = Arc::new(deepjoin_store::MemIo::new());
        let vpath = PathBuf::from("virtual/seg-000001.djar");
        mem.write_atomic(&vpath, &bytes).unwrap();
        let seg = load_segment(&mem, &vpath, dim, metric).unwrap();
        assert!(!seg.index.is_mapped());
        assert_eq!(*seg.ids, (100..105).collect::<Vec<u32>>());
    }

    #[test]
    fn corrupt_v2_segment_errors_instead_of_panicking() {
        let (dim, metric) = (4, Metric::Cosine);
        let rows = test_rows(6, dim);
        let good = encode_segment(&rows, dim, metric);
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x40;
            // Either a structured error or a decode that still validates —
            // never a panic, never silently inconsistent lengths.
            if let Ok(seg) = decode_segment_loaded(&bad, None, dim, metric) {
                assert_eq!(seg.ids.len(), seg.labels.len());
                assert_eq!(seg.index.len(), seg.ids.len());
            }
        }
    }
}
