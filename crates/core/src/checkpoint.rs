//! Checkpoint persistence for resumable fine-tuning.
//!
//! A checkpoint is a `DJAR` container (`deepjoin_store::container`) with
//! three checksummed sections — the `CKPT` section family:
//!
//! * `CKPT` — trainer metadata: a fingerprint binding the checkpoint to its
//!   training data + hyperparameters, epoch/step counters, the RNG stream
//!   bump, rollback count, the loss-spike detector state, and the partial
//!   epoch-loss accumulator;
//! * `ENCP` — the encoder configuration and all nine parameter tensors;
//! * `OPTS` — the optimizer state: dense AdamW moments + step counter and
//!   the sparse lazy-Adam embedding moments and per-row counters.
//!
//! [`CheckpointStore`] keeps **two slots** (`ckpt-0.djar`, `ckpt-1.djar`)
//! and always writes into the slot *not* holding the latest good
//! checkpoint. Combined with the atomic temp/fsync/rename write path, a
//! crash — even a torn write on a non-atomic store — can damage at most
//! one slot, and [`CheckpointStore::load_latest`] falls back to the other:
//! a torn or bit-flipped slot fails its CRC, produces a warning, and the
//! previous good checkpoint is used instead.

use std::io;
use std::path::{Path, PathBuf};

use deepjoin_lake::tokenizer::TokenId;
use deepjoin_nn::encoder::{ColumnEncoder, EncoderConfig, OptimizerState, Pooling};
use deepjoin_store::codec::{DecodeError, DecodeErrorKind, Reader, Writer};
use deepjoin_store::{ArtifactIo, Container, ContainerBuilder};

use crate::train::FineTuneConfig;

/// Container section holding the trainer metadata.
pub const SECTION_CKPT_META: [u8; 4] = *b"CKPT";
/// Container section holding the encoder config + parameters.
pub const SECTION_CKPT_ENCODER: [u8; 4] = *b"ENCP";
/// Container section holding the optimizer state.
pub const SECTION_CKPT_OPTIMIZER: [u8; 4] = *b"OPTS";

/// Magic of the `CKPT` metadata payload.
const META_MAGIC: &[u8; 4] = b"DJC1";
const META_VERSION: u8 = 1;

/// Trainer state at a step boundary (everything besides the raw tensors).
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointMeta {
    /// Fingerprint of the training pairs + fine-tune config this checkpoint
    /// belongs to; a mismatch on resume means the data or hyperparameters
    /// changed and the checkpoint must not be applied.
    pub fingerprint: u64,
    /// Completed epochs.
    pub epoch: u64,
    /// Batches (chunks of the shuffled order) consumed in the current epoch,
    /// including degenerate skipped ones — the replay cursor.
    pub batch_in_epoch: u64,
    /// Optimizer steps applied over the whole run.
    pub global_step: u64,
    /// RNG stream bump: incremented by each rollback so the re-shuffled
    /// epoch order differs from the one that led to the spike.
    pub stream_bump: u64,
    /// Rollbacks performed so far.
    pub rollbacks: u64,
    /// Loss-spike detector EMA (`None` until the first applied batch).
    pub ema_loss: Option<f32>,
    /// Batches the EMA has absorbed (the detector arms after a warmup).
    pub ema_batches: u64,
    /// Sum of batch losses in the current (partial) epoch.
    pub partial_total: f32,
    /// Applied batches in the current (partial) epoch.
    pub partial_batches: u64,
    /// Mean loss of each completed epoch.
    pub epoch_losses: Vec<f32>,
}

/// A decoded checkpoint: metadata plus the tensors to restore.
#[derive(Debug, Clone)]
pub struct LoadedCheckpoint {
    /// Trainer metadata.
    pub meta: CheckpointMeta,
    /// Encoder configuration recorded at save time.
    pub encoder_config: EncoderConfig,
    /// The nine encoder tensors, in `raw_params` order.
    pub encoder_params: [Vec<f32>; 9],
    /// Optimizer state snapshot.
    pub optimizer: OptimizerState,
}

/// FNV-1a over the training pairs' token ids and the fine-tune
/// hyperparameters: the identity a checkpoint is bound to.
pub fn training_fingerprint(pairs: &[(Vec<TokenId>, Vec<TokenId>)], config: &FineTuneConfig) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    eat(&(pairs.len() as u64).to_le_bytes());
    for (x, y) in pairs {
        eat(&(x.len() as u64).to_le_bytes());
        for &t in x {
            eat(&t.to_le_bytes());
        }
        eat(&(y.len() as u64).to_le_bytes());
        for &t in y {
            eat(&t.to_le_bytes());
        }
    }
    eat(&(config.epochs as u64).to_le_bytes());
    eat(&(config.batch_size as u64).to_le_bytes());
    eat(&config.mnr_scale.to_le_bytes());
    eat(&config.seed.to_le_bytes());
    eat(&config.adam.lr.to_le_bytes());
    eat(&config.adam.beta1.to_le_bytes());
    eat(&config.adam.beta2.to_le_bytes());
    eat(&config.adam.eps.to_le_bytes());
    eat(&config.adam.weight_decay.to_le_bytes());
    eat(&(config.adam.warmup_steps as u64).to_le_bytes());
    eat(&config.adam.clip_norm.to_le_bytes());
    h
}

fn put_meta(w: &mut Writer, meta: &CheckpointMeta) {
    w.put_slice(META_MAGIC);
    w.put_u8(META_VERSION);
    w.put_u64_le(meta.fingerprint);
    w.put_u64_le(meta.epoch);
    w.put_u64_le(meta.batch_in_epoch);
    w.put_u64_le(meta.global_step);
    w.put_u64_le(meta.stream_bump);
    w.put_u64_le(meta.rollbacks);
    match meta.ema_loss {
        Some(v) => {
            w.put_u8(1);
            w.put_f32_le(v);
        }
        None => {
            w.put_u8(0);
            w.put_f32_le(0.0);
        }
    }
    w.put_u64_le(meta.ema_batches);
    w.put_f32_le(meta.partial_total);
    w.put_u64_le(meta.partial_batches);
    w.put_f32s(&meta.epoch_losses);
}

fn get_meta(r: &mut Reader<'_>) -> Result<CheckpointMeta, DecodeError> {
    r.expect_magic(META_MAGIC)?;
    r.expect_version(META_VERSION)?;
    let fingerprint = r.u64_le()?;
    let epoch = r.u64_le()?;
    let batch_in_epoch = r.u64_le()?;
    let global_step = r.u64_le()?;
    let stream_bump = r.u64_le()?;
    let rollbacks = r.u64_le()?;
    let ema_flag = r.u8()?;
    let ema_value = r.f32_le()?;
    let ema_loss = match ema_flag {
        0 => None,
        1 => Some(ema_value),
        other => return Err(r.error(DecodeErrorKind::BadDiscriminant(other))),
    };
    let ema_batches = r.u64_le()?;
    let partial_total = r.f32_le()?;
    let partial_batches = r.u64_le()?;
    let epoch_losses = r.f32s()?;
    Ok(CheckpointMeta {
        fingerprint,
        epoch,
        batch_in_epoch,
        global_step,
        stream_bump,
        rollbacks,
        ema_loss,
        ema_batches,
        partial_total,
        partial_batches,
        epoch_losses,
    })
}

fn put_encoder(w: &mut Writer, encoder: &ColumnEncoder) {
    let c = &encoder.config;
    w.put_u64_le(c.vocab_size as u64);
    w.put_u64_le(c.dim as u64);
    w.put_u64_le(c.out_dim as u64);
    w.put_u64_le(c.attn_hidden as u64);
    w.put_u64_le(c.max_len as u64);
    w.put_u8(match c.pooling {
        Pooling::Mean => 0,
        Pooling::Attention => 1,
    });
    w.put_u8(c.use_positions as u8);
    w.put_u8(c.residual as u8);
    w.put_u64_le(c.seed);
    let (emb, pos, aw, ab, av, h1w, h1b, h2w, h2b) = encoder.raw_params();
    for t in [emb, pos, aw, ab, av, h1w, h1b, h2w, h2b] {
        w.put_f32s(t);
    }
}

fn get_encoder(r: &mut Reader<'_>) -> Result<(EncoderConfig, [Vec<f32>; 9]), DecodeError> {
    let vocab_size = r.u64_le()? as usize;
    let dim = r.u64_le()? as usize;
    let out_dim = r.u64_le()? as usize;
    let attn_hidden = r.u64_le()? as usize;
    let max_len = r.u64_le()? as usize;
    let pooling = match r.u8()? {
        0 => Pooling::Mean,
        1 => Pooling::Attention,
        other => return Err(r.error(DecodeErrorKind::BadDiscriminant(other))),
    };
    let use_positions = r.u8()? != 0;
    let residual = r.u8()? != 0;
    let seed = r.u64_le()?;
    let config = EncoderConfig {
        vocab_size,
        dim,
        out_dim,
        attn_hidden,
        max_len,
        pooling,
        use_positions,
        residual,
        seed,
    };
    let mut params: [Vec<f32>; 9] = Default::default();
    for p in params.iter_mut() {
        *p = r.f32s()?;
    }
    Ok((config, params))
}

fn put_optimizer(w: &mut Writer, state: &OptimizerState) {
    w.put_u64_le(state.t);
    w.put_u32_le(state.dense_m.len() as u32);
    for m in &state.dense_m {
        w.put_f32s(m);
    }
    for v in &state.dense_v {
        w.put_f32s(v);
    }
    w.put_f32s(&state.emb_m);
    w.put_f32s(&state.emb_v);
    w.put_u64_le(state.emb_t.len() as u64);
    for &t in &state.emb_t {
        w.put_u32_le(t);
    }
}

fn get_optimizer(r: &mut Reader<'_>) -> Result<OptimizerState, DecodeError> {
    let t = r.u64_le()?;
    // Each dense buffer costs at least its 8-byte length prefix.
    let n_dense = r.count_u32(8)?;
    let mut dense_m = Vec::with_capacity(n_dense);
    for _ in 0..n_dense {
        dense_m.push(r.f32s()?);
    }
    let mut dense_v = Vec::with_capacity(n_dense);
    for _ in 0..n_dense {
        dense_v.push(r.f32s()?);
    }
    let emb_m = r.f32s()?;
    let emb_v = r.f32s()?;
    let n_rows = r.count(4)?;
    let mut emb_t = Vec::with_capacity(n_rows);
    for _ in 0..n_rows {
        emb_t.push(r.u32_le()?);
    }
    Ok(OptimizerState {
        t,
        dense_m,
        dense_v,
        emb_m,
        emb_v,
        emb_t,
    })
}

/// Serialize a checkpoint container from the trainer's current state.
pub fn encode_checkpoint(
    meta: &CheckpointMeta,
    encoder: &ColumnEncoder,
    optimizer: &OptimizerState,
) -> Vec<u8> {
    let mut m = Writer::new();
    put_meta(&mut m, meta);
    let mut e = Writer::with_capacity(1 << 16);
    put_encoder(&mut e, encoder);
    let mut o = Writer::with_capacity(1 << 16);
    put_optimizer(&mut o, optimizer);
    ContainerBuilder::new()
        .section(SECTION_CKPT_META, m.into_vec())
        .section(SECTION_CKPT_ENCODER, e.into_vec())
        .section(SECTION_CKPT_OPTIMIZER, o.into_vec())
        .build()
}

fn section_bytes<'a>(
    container: &Container<'a>,
    name: [u8; 4],
    label: &'static str,
) -> Result<&'a [u8], DecodeError> {
    match container.section(name, label) {
        None => Err(DecodeError::new(
            DecodeErrorKind::Invalid("checkpoint container is missing a section"),
            label,
            0,
        )),
        Some(res) => res,
    }
}

/// Parse and verify a checkpoint container. Any framing damage, CRC
/// mismatch, or payload inconsistency is an error — a checkpoint is either
/// fully intact or unusable (the two-slot store provides the fallback).
pub fn decode_checkpoint(bytes: &[u8]) -> Result<LoadedCheckpoint, DecodeError> {
    let container = Container::parse(bytes)?;
    let meta = {
        let mut r = Reader::new(section_bytes(&container, SECTION_CKPT_META, "CKPT")?, "CKPT");
        get_meta(&mut r)?
    };
    let (encoder_config, encoder_params) = {
        let mut r = Reader::new(
            section_bytes(&container, SECTION_CKPT_ENCODER, "ENCP")?,
            "ENCP",
        );
        get_encoder(&mut r)?
    };
    let optimizer = {
        let mut r = Reader::new(
            section_bytes(&container, SECTION_CKPT_OPTIMIZER, "OPTS")?,
            "OPTS",
        );
        get_optimizer(&mut r)?
    };
    Ok(LoadedCheckpoint {
        meta,
        encoder_config,
        encoder_params,
        optimizer,
    })
}

/// Two-slot checkpoint directory over an [`ArtifactIo`].
pub struct CheckpointStore<'a> {
    io: &'a dyn ArtifactIo,
    dir: PathBuf,
    next_slot: usize,
}

impl<'a> CheckpointStore<'a> {
    /// A store rooted at `dir`. The directory must already exist for
    /// filesystem-backed IO (`dj train` creates it).
    pub fn new(io: &'a dyn ArtifactIo, dir: impl Into<PathBuf>) -> Self {
        Self {
            io,
            dir: dir.into(),
            next_slot: 0,
        }
    }

    /// The directory checkpoints are written into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of slot `slot` (0 or 1).
    pub fn slot_path(&self, slot: usize) -> PathBuf {
        self.dir.join(format!("ckpt-{slot}.djar"))
    }

    /// True when either slot file exists.
    pub fn any_slot_exists(&self) -> bool {
        self.io.exists(&self.slot_path(0)) || self.io.exists(&self.slot_path(1))
    }

    /// Load the newest intact checkpoint, preferring higher
    /// `(global_step, rollbacks, stream_bump)` — the tuple ordering makes a
    /// post-rollback checkpoint (same step, higher rollback count) win over
    /// the state it rolled back to. Damaged or unreadable slots are
    /// reported through the returned warnings and skipped; the store's
    /// write cursor is positioned so the next save does not overwrite the
    /// slot that just loaded.
    pub fn load_latest(&mut self) -> (Option<LoadedCheckpoint>, Vec<String>) {
        let mut warnings = Vec::new();
        let mut best: Option<(usize, LoadedCheckpoint)> = None;
        for slot in 0..2 {
            let path = self.slot_path(slot);
            if !self.io.exists(&path) {
                continue;
            }
            let bytes = match self.io.read(&path) {
                Ok(b) => b,
                Err(e) => {
                    warnings.push(format!(
                        "checkpoint slot {} unreadable ({e}); ignoring it",
                        path.display()
                    ));
                    continue;
                }
            };
            match decode_checkpoint(&bytes) {
                Ok(ck) => {
                    let key = |m: &CheckpointMeta| (m.global_step, m.rollbacks, m.stream_bump);
                    if best
                        .as_ref()
                        .is_none_or(|(_, b)| key(&ck.meta) > key(&b.meta))
                    {
                        best = Some((slot, ck));
                    }
                }
                Err(e) => warnings.push(format!(
                    "checkpoint slot {} failed verification ({e}); \
                     falling back to the other slot",
                    path.display()
                )),
            }
        }
        match best {
            Some((slot, ck)) => {
                self.next_slot = 1 - slot;
                (Some(ck), warnings)
            }
            None => {
                self.next_slot = 0;
                (None, warnings)
            }
        }
    }

    /// Atomically write checkpoint bytes into the non-latest slot, then
    /// advance the cursor so the slot just written becomes the protected
    /// one. Returns the path written.
    pub fn save(&mut self, bytes: &[u8]) -> io::Result<PathBuf> {
        let path = self.slot_path(self.next_slot);
        self.io.write_atomic(&path, bytes)?;
        self.next_slot = 1 - self.next_slot;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepjoin_nn::adam::AdamConfig;
    use deepjoin_nn::encoder::EncoderOptimizer;
    use deepjoin_store::{Fault, FaultyIo, MemIo};

    fn tiny_encoder() -> ColumnEncoder {
        ColumnEncoder::new(EncoderConfig {
            vocab_size: 12,
            dim: 6,
            out_dim: 6,
            attn_hidden: 3,
            max_len: 8,
            pooling: Pooling::Attention,
            use_positions: true,
            residual: true,
            seed: 0xC4,
        })
    }

    fn sample_meta(step: u64) -> CheckpointMeta {
        CheckpointMeta {
            fingerprint: 0xF00D,
            epoch: 1,
            batch_in_epoch: 3,
            global_step: step,
            stream_bump: 0,
            rollbacks: 0,
            ema_loss: Some(1.25),
            ema_batches: 7,
            partial_total: 4.5,
            partial_batches: 3,
            epoch_losses: vec![2.0],
        }
    }

    fn sample_bytes(step: u64) -> Vec<u8> {
        let enc = tiny_encoder();
        let opt = EncoderOptimizer::new(&enc, AdamConfig::default());
        encode_checkpoint(&sample_meta(step), &enc, &opt.export_state())
    }

    #[test]
    fn checkpoint_roundtrips() {
        let enc = tiny_encoder();
        let opt = EncoderOptimizer::new(&enc, AdamConfig::default());
        let meta = sample_meta(42);
        let bytes = encode_checkpoint(&meta, &enc, &opt.export_state());
        let ck = decode_checkpoint(&bytes).unwrap();
        assert_eq!(ck.meta, meta);
        assert_eq!(ck.optimizer, opt.export_state());
        let (emb, ..) = enc.raw_params();
        assert_eq!(ck.encoder_params[0], emb);
        assert_eq!(ck.encoder_config.vocab_size, 12);
        // Restorable into a real encoder.
        assert!(ColumnEncoder::try_from_raw_params(ck.encoder_config, ck.encoder_params).is_ok());
    }

    #[test]
    fn every_truncation_is_rejected_cleanly() {
        let bytes = sample_bytes(1);
        for cut in 0..bytes.len() {
            assert!(decode_checkpoint(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn every_bit_flip_is_rejected_or_consistent() {
        let bytes = sample_bytes(1);
        // Flips are either detected (CRC/framing) or, in the rare case they
        // cancel nothing, still decode to *something* — never a panic.
        for i in (0..bytes.len()).step_by(7) {
            let mut bad = bytes.clone();
            bad[i] ^= 0x20;
            let _ = decode_checkpoint(&bad);
        }
    }

    #[test]
    fn two_slots_alternate_and_latest_wins() {
        let io = MemIo::new();
        let mut store = CheckpointStore::new(&io, "mem://ck");
        assert!(!store.any_slot_exists());
        let p0 = store.save(&sample_bytes(10)).unwrap();
        let p1 = store.save(&sample_bytes(20)).unwrap();
        assert_ne!(p0, p1);
        let (ck, warnings) = store.load_latest();
        assert!(warnings.is_empty());
        assert_eq!(ck.unwrap().meta.global_step, 20);
        // The next save must overwrite the *older* slot (step 10).
        let p2 = store.save(&sample_bytes(30)).unwrap();
        assert_eq!(p2, p0);
        let (ck, _) = store.load_latest();
        assert_eq!(ck.unwrap().meta.global_step, 30);
    }

    #[test]
    fn torn_write_falls_back_to_previous_slot() {
        let io = FaultyIo::new(MemIo::new());
        let mut store = CheckpointStore::new(&io, "mem://ck");
        store.save(&sample_bytes(10)).unwrap();
        let newer = sample_bytes(20);
        io.inject(Fault::TornWrite { keep: newer.len() / 2 });
        store.save(&newer).unwrap();
        let (ck, warnings) = store.load_latest();
        assert_eq!(ck.unwrap().meta.global_step, 10, "fall back to the good slot");
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("failed verification"));
    }

    #[test]
    fn read_truncation_falls_back_to_previous_slot() {
        let io = FaultyIo::new(MemIo::new());
        let mut store = CheckpointStore::new(&io, "mem://ck");
        store.save(&sample_bytes(10)).unwrap();
        store.save(&sample_bytes(20)).unwrap();
        // Slot 1 (the newer) is read first or second depending on order; we
        // truncate whichever read hits it by injecting on both reads.
        io.inject(Fault::TruncateRead { at: 40 });
        let (ck, warnings) = store.load_latest();
        let ck = ck.expect("one slot survives");
        assert!(ck.meta.global_step == 10 || ck.meta.global_step == 20);
        assert_eq!(warnings.len(), 1);
    }

    #[test]
    fn enospc_on_save_surfaces_and_keeps_old_checkpoints() {
        let io = FaultyIo::new(MemIo::new());
        let mut store = CheckpointStore::new(&io, "mem://ck");
        store.save(&sample_bytes(10)).unwrap();
        io.inject(Fault::Enospc);
        assert!(store.save(&sample_bytes(20)).is_err());
        let (ck, _) = store.load_latest();
        assert_eq!(ck.unwrap().meta.global_step, 10);
    }

    #[test]
    fn fingerprint_tracks_pairs_and_config() {
        let pairs = vec![(vec![1u32, 2], vec![3u32]), (vec![4], vec![5, 6])];
        let cfg = FineTuneConfig::default();
        let a = training_fingerprint(&pairs, &cfg);
        assert_eq!(a, training_fingerprint(&pairs, &cfg));
        let mut other_pairs = pairs.clone();
        other_pairs[0].0[0] = 9;
        assert_ne!(a, training_fingerprint(&other_pairs, &cfg));
        let mut other_cfg = cfg;
        other_cfg.seed ^= 1;
        assert_ne!(a, training_fingerprint(&pairs, &other_cfg));
    }
}
