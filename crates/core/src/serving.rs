//! The adapter between the model-agnostic server crate and the real
//! DeepJoin model: wraps a loaded [`DeepJoin`] (plus the repository that
//! supplies human-readable column labels) as a
//! [`deepjoin_serve::ServeModel`], and builds the snapshot [`Loader`] the
//! server calls at startup and on every hot reload.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use deepjoin_ann::Budget;
use deepjoin_lake::column::{Column, ColumnMeta};
use deepjoin_lake::repository::Repository;
use deepjoin_serve::{Health, Hit, LoadedSnapshot, Loader, QueryOutcome, ServeModel};

use crate::model::{DeepJoin, IndexHealth};
use crate::persist::load_model;

/// FNV-1a over the query identity: the column name and the exact cell
/// bytes, with distinct separators so `["ab"]` and `["a","b"]` hash apart.
fn query_key(cells: &[String], name: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x1000_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    eat(name.as_bytes());
    eat(&[0xFF]);
    for c in cells {
        eat(c.as_bytes());
        eat(&[0xFE]);
    }
    h
}

/// Fixed-capacity LRU of query embeddings, keyed by [`query_key`]. The
/// encoder forward pass dominates query latency for repeated probes (the
/// same column re-checked against a growing lake), so a small cache pays
/// for itself quickly. Eviction scans for the least-recently-used entry —
/// O(capacity), fine at the configured sizes (tens to thousands).
struct QueryCache {
    capacity: usize,
    map: HashMap<u64, (u64, Vec<f32>)>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl QueryCache {
    fn new(capacity: usize) -> Self {
        Self {
            capacity,
            map: HashMap::with_capacity(capacity.min(1024)),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn get(&mut self, key: u64) -> Option<Vec<f32>> {
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(&key) {
            Some((used, v)) => {
                *used = tick;
                self.hits += 1;
                Some(v.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    fn insert(&mut self, key: u64, embedding: Vec<f32>) {
        if self.capacity == 0 {
            return;
        }
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            if let Some(&evict) = self
                .map
                .iter()
                .min_by_key(|(_, (used, _))| *used)
                .map(|(k, _)| k)
            {
                self.map.remove(&evict);
            }
        }
        self.tick += 1;
        self.map.insert(key, (self.tick, embedding));
    }
}

/// A loaded model + its repository, queryable by the server. The
/// repository provides the `table.column` labels attached to hits; it is
/// shared (`Arc`) across reloads because the lake does not change when the
/// model artifact is swapped.
pub struct ServedModel {
    model: DeepJoin,
    repo: Arc<Repository>,
    cache: Option<Mutex<QueryCache>>,
}

impl ServedModel {
    /// Wrap a model and the repository it indexes, without an embedding
    /// cache.
    pub fn new(model: DeepJoin, repo: Arc<Repository>) -> Self {
        Self::with_cache(model, repo, 0)
    }

    /// Wrap a model with a query-embedding LRU of `cache_capacity` entries
    /// (`0` disables caching). Repeated queries skip the encoder forward
    /// pass; the search itself always re-runs against the live index.
    pub fn with_cache(model: DeepJoin, repo: Arc<Repository>, cache_capacity: usize) -> Self {
        Self {
            model,
            repo,
            cache: (cache_capacity > 0).then(|| Mutex::new(QueryCache::new(cache_capacity))),
        }
    }

    fn label(&self, id: u32) -> String {
        match self.repo.get(deepjoin_lake::column::ColumnId(id)) {
            Some(col) => format!("{}.{}", col.meta.table_title, col.meta.column_name),
            None => format!("col#{id}"),
        }
    }

    /// The query embedding, from cache when possible. The encoder pass runs
    /// outside the lock, so concurrent misses never serialize on it.
    fn embed_cached(&self, column: &Column, cells: &[String], name: &str) -> Vec<f32> {
        let Some(cache) = &self.cache else {
            return self.model.embed_column(column);
        };
        let key = query_key(cells, name);
        if let Some(hit) = cache.lock().expect("query cache lock").get(key) {
            return hit;
        }
        let v = self.model.embed_column(column);
        cache
            .lock()
            .expect("query cache lock")
            .insert(key, v.clone());
        v
    }
}

impl ServeModel for ServedModel {
    fn indexed_len(&self) -> usize {
        self.model.indexed_len()
    }

    fn health(&self) -> Health {
        match self.model.index_health() {
            IndexHealth::Hnsw => Health::Hnsw,
            IndexHealth::DegradedFlat { reason } => Health::DegradedFlat { reason },
            IndexHealth::Missing => Health::Missing,
        }
    }

    fn query(&self, cells: &[String], name: &str, k: usize, budget: &Budget) -> QueryOutcome {
        let column = Column::new(
            cells.to_vec(),
            ColumnMeta {
                column_name: name.to_string(),
                ..ColumnMeta::default()
            },
        );
        let embedding = self.embed_cached(&column, cells, name);
        let ladder = self.model.search_embedded_budgeted(&embedding, k, budget);
        QueryOutcome {
            hits: ladder
                .hits
                .into_iter()
                .map(|sc| Hit {
                    id: sc.id.0,
                    // The wire carries the raw distance; ScoredColumn holds
                    // the negated score.
                    score: -sc.score as f32,
                    label: self.label(sc.id.0),
                })
                .collect(),
            complete: ladder.complete,
            visited: ladder.visited,
            via_fallback: ladder.via_fallback,
        }
    }

    fn cache_stats(&self) -> (u64, u64) {
        match &self.cache {
            Some(cache) => {
                let c = cache.lock().expect("query cache lock");
                (c.hits, c.misses)
            }
            None => (0, 0),
        }
    }
}

/// Build the server's snapshot [`Loader`] for a model artifact.
///
/// The loader re-reads `model_path` (or the path given in the reload
/// request) on every call, so `dj ctl reload` after retraining picks up the
/// new artifact without restarting the server. Non-fatal load degradations
/// (e.g. a corrupt HNSW section rescued by the flat fallback) become
/// snapshot warnings and flow into responses via the health field.
///
/// `cache_capacity` sizes each snapshot's query-embedding LRU (`dj serve
/// --query-cache`; `0` disables it). The cache belongs to the snapshot, so
/// a hot reload starts cold — stale embeddings can never outlive the model
/// that produced them.
pub fn snapshot_loader(model_path: String, repo: Arc<Repository>, cache_capacity: usize) -> Loader {
    Box::new(move |path| {
        let path = path.unwrap_or(&model_path);
        let bytes =
            std::fs::read(path).map_err(|e| format!("read model artifact {path}: {e}"))?;
        let loaded = load_model(&bytes).map_err(|e| format!("decode {path}: {e}"))?;
        if loaded.model.indexed_len() == 0 {
            return Err(format!("{path} was saved without an index; retrain with dj train"));
        }
        let warnings = loaded.warnings.clone();
        Ok(LoadedSnapshot {
            model: Box::new(ServedModel::with_cache(
                loaded.model,
                repo.clone(),
                cache_capacity,
            )),
            warnings,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DeepJoinConfig;
    use crate::train::JoinType;
    use deepjoin_lake::corpus::{Corpus, CorpusConfig, CorpusProfile};

    fn tiny_served() -> (ServedModel, Column) {
        let corpus = Corpus::generate(CorpusConfig::new(CorpusProfile::Webtable, 12, 7));
        let (repo, _) = corpus.to_repository();
        let config = DeepJoinConfig {
            fine_tune: crate::train::FineTuneConfig {
                epochs: 1,
                ..Default::default()
            },
            ..DeepJoinConfig::default()
        };
        let (mut model, _report) = DeepJoin::train(&repo, JoinType::Equi, config);
        model.index_repository(&repo);
        let query = repo.column(deepjoin_lake::column::ColumnId(0)).clone();
        (ServedModel::new(model, Arc::new(repo)), query)
    }

    #[test]
    fn served_model_answers_with_labels_and_health() {
        let (served, query) = tiny_served();
        assert!(served.indexed_len() > 0);
        assert_eq!(served.health(), Health::Hnsw);
        let out = served.query(&query.cells, "probe", 3, &Budget::unlimited());
        assert!(out.complete);
        assert!(!out.via_fallback);
        assert_eq!(out.hits.len(), 3);
        for h in &out.hits {
            assert!(h.label.contains('.'), "label '{}' is not table.column", h.label);
        }
    }

    #[test]
    fn query_cache_hits_on_repeats_and_answers_identically() {
        let (served, query) = tiny_served();
        // Re-wrap the same model with a cache: the uncached answer (first
        // call, a miss) must equal the cached one (second call, a hit).
        let cached = ServedModel::with_cache(served.model, served.repo, 4);
        assert_eq!(cached.cache_stats(), (0, 0));
        let a = cached.query(&query.cells, "probe", 3, &Budget::unlimited());
        assert_eq!(cached.cache_stats(), (0, 1));
        let b = cached.query(&query.cells, "probe", 3, &Budget::unlimited());
        assert_eq!(cached.cache_stats(), (1, 1), "repeat must hit");
        assert_eq!(a, b, "cached answer must equal the computed one");
        // A different name is a different query identity.
        cached.query(&query.cells, "other", 3, &Budget::unlimited());
        assert_eq!(cached.cache_stats(), (1, 2));
    }

    #[test]
    fn query_cache_evicts_least_recently_used() {
        let mut cache = QueryCache::new(2);
        cache.insert(1, vec![1.0]);
        cache.insert(2, vec![2.0]);
        assert!(cache.get(1).is_some(), "touch 1 so 2 is the LRU");
        cache.insert(3, vec![3.0]);
        assert!(cache.get(1).is_some());
        assert!(cache.get(2).is_none(), "2 was least recently used");
        assert!(cache.get(3).is_some());
        assert_eq!(cache.map.len(), 2);
    }

    #[test]
    fn expired_budget_yields_incomplete_outcome() {
        let (served, query) = tiny_served();
        let expired = Budget::with_deadline(
            std::time::Instant::now() - std::time::Duration::from_millis(1),
        );
        let out = served.query(&query.cells, "probe", 3, &expired);
        assert!(!out.complete, "expired budget must be reported");
    }
}
