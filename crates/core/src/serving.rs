//! The adapter between the model-agnostic server crate and the real
//! DeepJoin model: wraps a loaded [`DeepJoin`] (plus the repository that
//! supplies human-readable column labels) as a
//! [`deepjoin_serve::ServeModel`], and builds the snapshot [`Loader`] the
//! server calls at startup and on every hot reload.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use deepjoin_store::SharedIo;

use deepjoin_ann::index::TopK;
use deepjoin_ann::Budget;
use deepjoin_lake::column::{Column, ColumnMeta};
use deepjoin_lake::repository::Repository;
use deepjoin_serve::{
    Health, Hit, LiveStats, LoadedSnapshot, Loader, MutateOp, MutateReply, QueryOutcome,
    ServeModel, WaveQuery,
};

use crate::live::{model_fingerprint, LiveLake, LiveView};
use crate::model::{DeepJoin, IndexHealth, LadderSearch};
use crate::persist::load_model_path;

/// FNV-1a over the query identity: the column name and the exact cell
/// bytes, with distinct separators so `["ab"]` and `["a","b"]` hash apart.
fn query_key(cells: &[String], name: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x1000_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    eat(name.as_bytes());
    eat(&[0xFF]);
    for c in cells {
        eat(c.as_bytes());
        eat(&[0xFE]);
    }
    h
}

/// Fixed-capacity LRU of query embeddings, keyed by [`query_key`]. The
/// encoder forward pass dominates query latency for repeated probes (the
/// same column re-checked against a growing lake), so a small cache pays
/// for itself quickly. Eviction scans for the least-recently-used entry —
/// O(capacity), fine at the configured sizes (tens to thousands).
struct QueryCache {
    capacity: usize,
    map: HashMap<u64, (u64, Vec<f32>)>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl QueryCache {
    fn new(capacity: usize) -> Self {
        Self {
            capacity,
            map: HashMap::with_capacity(capacity.min(1024)),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn get(&mut self, key: u64) -> Option<Vec<f32>> {
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(&key) {
            Some((used, v)) => {
                *used = tick;
                self.hits += 1;
                Some(v.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    fn insert(&mut self, key: u64, embedding: Vec<f32>) {
        if self.capacity == 0 {
            return;
        }
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            if let Some(&evict) = self
                .map
                .iter()
                .min_by_key(|(_, (used, _))| *used)
                .map(|(k, _)| k)
            {
                self.map.remove(&evict);
            }
        }
        self.tick += 1;
        self.map.insert(key, (self.tick, embedding));
    }
}

/// A loaded model + its repository, queryable by the server. The
/// repository provides the `table.column` labels attached to hits; it is
/// shared (`Arc`) across reloads because the lake does not change when the
/// model artifact is swapped.
pub struct ServedModel {
    model: DeepJoin,
    repo: Arc<Repository>,
    cache: Option<Mutex<QueryCache>>,
    /// When present, queries merge base-index hits with the live lake's
    /// slabs and mutations are accepted (DESIGN.md §13). The lake outlives
    /// snapshots: a hot reload wraps the same `Arc`.
    live: Option<Arc<LiveLake>>,
    /// A replica serves synced state it does not own: queries (including
    /// the live merge) work, mutations are refused and must go to the
    /// primary (DESIGN.md §15).
    read_only: bool,
    /// Wave members answered by sharing another member's embedding and
    /// search (wave-level dedup, see [`ServeModel::query_batch`]).
    dedup_hits: AtomicU64,
}

impl ServedModel {
    /// Wrap a model and the repository it indexes, without an embedding
    /// cache.
    pub fn new(model: DeepJoin, repo: Arc<Repository>) -> Self {
        Self::with_cache(model, repo, 0)
    }

    /// Wrap a model with a query-embedding LRU of `cache_capacity` entries
    /// (`0` disables caching). Repeated queries skip the encoder forward
    /// pass; the search itself always re-runs against the live index.
    pub fn with_cache(model: DeepJoin, repo: Arc<Repository>, cache_capacity: usize) -> Self {
        Self {
            model,
            repo,
            cache: (cache_capacity > 0).then(|| Mutex::new(QueryCache::new(cache_capacity))),
            live: None,
            read_only: false,
            dedup_hits: AtomicU64::new(0),
        }
    }

    /// Attach a live lake: queries search base + live merged, and
    /// `add-table` / `drop-table` mutations are accepted.
    pub fn with_live(mut self, live: Arc<LiveLake>) -> Self {
        self.live = Some(live);
        self
    }

    /// Refuse mutations even when a live lake is attached — the replica
    /// serving mode, where the lake's contents arrive by snapshot sync
    /// and the primary is the only writer.
    pub fn read_only(mut self) -> Self {
        self.read_only = true;
        self
    }

    fn label(&self, id: u32) -> String {
        match self.repo.get(deepjoin_lake::column::ColumnId(id)) {
            Some(col) => format!("{}.{}", col.meta.table_title, col.meta.column_name),
            None => format!("col#{id}"),
        }
    }

    /// The query embedding, from cache when possible. The encoder pass runs
    /// outside the lock, so concurrent misses never serialize on it.
    fn embed_cached(&self, column: &Column, cells: &[String], name: &str) -> Vec<f32> {
        let Some(cache) = &self.cache else {
            return self.model.embed_column(column);
        };
        let key = query_key(cells, name);
        if let Some(hit) = cache.lock().expect("query cache lock").get(key) {
            return hit;
        }
        let v = self.model.embed_column(column);
        cache
            .lock()
            .expect("query cache lock")
            .insert(key, v.clone());
        v
    }

    /// Package a base-index-only ladder result as a wire outcome.
    fn base_outcome(&self, ladder: LadderSearch) -> QueryOutcome {
        QueryOutcome {
            hits: ladder
                .hits
                .into_iter()
                .map(|sc| Hit {
                    id: sc.id.0,
                    // The wire carries the raw distance; ScoredColumn
                    // holds the negated score.
                    score: -sc.score as f32,
                    label: self.label(sc.id.0),
                })
                .collect(),
            complete: ladder.complete,
            visited: ladder.visited,
            via_fallback: ladder.via_fallback,
        }
    }

    /// Finish one live-path answer: scan the live slabs for this query and
    /// merge the base hits with them through the same bounded top-k
    /// selector the indexes use — deterministic regardless of which side a
    /// hit came from.
    fn merged_outcome(
        &self,
        view: &LiveView,
        base: LadderSearch,
        embedding: &[f32],
        k: usize,
        budget: &Budget,
    ) -> QueryOutcome {
        let live_hits = view.search(embedding, k, budget);
        let mut top = TopK::new(k);
        for sc in &base.hits {
            top.push(sc.id.0, (-sc.score) as f32);
        }
        for n in &live_hits.hits {
            top.push(n.id, n.distance);
        }
        QueryOutcome {
            hits: top
                .into_sorted()
                .into_iter()
                .map(|n| {
                    let label = if n.id < view.base_len() {
                        self.label(n.id)
                    } else {
                        match view.label(n.id) {
                            Some((t, c)) => format!("{t}.{c}"),
                            None => format!("col#{}", n.id),
                        }
                    };
                    Hit {
                        id: n.id,
                        score: n.distance,
                        label,
                    }
                })
                .collect(),
            complete: base.complete && live_hits.complete,
            visited: base.visited + live_hits.visited,
            via_fallback: base.via_fallback,
        }
    }
}

impl ServeModel for ServedModel {
    fn indexed_len(&self) -> usize {
        match &self.live {
            Some(live) => self.model.indexed_len() + live.view().live_rows(),
            None => self.model.indexed_len(),
        }
    }

    fn health(&self) -> Health {
        match self.model.index_health() {
            IndexHealth::Hnsw => Health::Hnsw,
            IndexHealth::DegradedFlat { reason } => Health::DegradedFlat { reason },
            IndexHealth::Missing => Health::Missing,
        }
    }

    fn query(&self, cells: &[String], name: &str, k: usize, budget: &Budget) -> QueryOutcome {
        let column = Column::new(
            cells.to_vec(),
            ColumnMeta {
                column_name: name.to_string(),
                ..ColumnMeta::default()
            },
        );
        let embedding = self.embed_cached(&column, cells, name);
        let Some(live) = &self.live else {
            return self.base_outcome(self.model.search_embedded_budgeted(&embedding, k, budget));
        };
        // Live path: one view snapshot answers the whole request. The base
        // index is filtered through the view's tombstones (dropped base
        // columns vanish on the very next query), then the live slabs merge
        // in (see `merged_outcome`).
        let view = live.view();
        let base =
            self.model
                .search_embedded_budgeted_filtered(&embedding, k, budget, Some(view.tombs()));
        self.merged_outcome(&view, base, &embedding, k, budget)
    }

    fn query_batch(&self, wave: &[WaveQuery<'_>], budget: &Budget) -> Vec<QueryOutcome> {
        use std::collections::hash_map::Entry;
        // Wave-level dedup: members with identical (query, k) share one
        // embedding and one search, and the answer fans out to every
        // requester. k is part of the identity because truncating a larger
        // top-k is not guaranteed identical on the graph path.
        let mut slot_of = Vec::with_capacity(wave.len());
        let mut uniques: Vec<usize> = Vec::new();
        let mut seen: HashMap<(u64, usize), usize> = HashMap::new();
        for (i, q) in wave.iter().enumerate() {
            match seen.entry((query_key(q.cells, q.name), q.k)) {
                Entry::Occupied(e) => {
                    self.dedup_hits.fetch_add(1, Ordering::Relaxed);
                    slot_of.push(*e.get());
                }
                Entry::Vacant(e) => {
                    e.insert(uniques.len());
                    slot_of.push(uniques.len());
                    uniques.push(i);
                }
            }
        }
        // Embedding identity is the query text alone (two members asking
        // different k still share one forward pass): the LRU sees exactly
        // one hit or miss per distinct query, then one batched encoder
        // pass covers all the misses.
        let mut embed_slot_of: Vec<usize> = Vec::with_capacity(uniques.len());
        let mut embed_uniques: Vec<usize> = Vec::new();
        let mut seen_keys: HashMap<u64, usize> = HashMap::new();
        for &i in &uniques {
            match seen_keys.entry(query_key(wave[i].cells, wave[i].name)) {
                Entry::Occupied(e) => embed_slot_of.push(*e.get()),
                Entry::Vacant(e) => {
                    e.insert(embed_uniques.len());
                    embed_slot_of.push(embed_uniques.len());
                    embed_uniques.push(i);
                }
            }
        }
        let mut embeddings: Vec<Option<Vec<f32>>> = embed_uniques
            .iter()
            .map(|&i| {
                let q = &wave[i];
                self.cache.as_ref().and_then(|c| {
                    c.lock()
                        .expect("query cache lock")
                        .get(query_key(q.cells, q.name))
                })
            })
            .collect();
        let miss_slots: Vec<usize> = embeddings
            .iter()
            .enumerate()
            .filter(|(_, e)| e.is_none())
            .map(|(s, _)| s)
            .collect();
        if !miss_slots.is_empty() {
            let columns: Vec<Column> = miss_slots
                .iter()
                .map(|&s| {
                    let q = &wave[embed_uniques[s]];
                    Column::new(
                        q.cells.to_vec(),
                        ColumnMeta {
                            column_name: q.name.to_string(),
                            ..ColumnMeta::default()
                        },
                    )
                })
                .collect();
            let encoded = crate::batch::encode_queries_parallel(
                &self.model,
                &columns,
                deepjoin_par::Pool::global().threads(),
            );
            for (&s, v) in miss_slots.iter().zip(encoded) {
                if let Some(cache) = &self.cache {
                    let q = &wave[embed_uniques[s]];
                    cache
                        .lock()
                        .expect("query cache lock")
                        .insert(query_key(q.cells, q.name), v.clone());
                }
                embeddings[s] = Some(v);
            }
        }
        // One batched ladder search per distinct k (real waves are almost
        // always homogeneous, so this is one call), then fan the unique
        // answers back out to the wave.
        let mut by_k: Vec<(usize, Vec<usize>)> = Vec::new();
        for (s, &i) in uniques.iter().enumerate() {
            let k = wave[i].k;
            match by_k.iter_mut().find(|(kk, _)| *kk == k) {
                Some((_, slots)) => slots.push(s),
                None => by_k.push((k, vec![s])),
            }
        }
        let mut outcomes: Vec<Option<QueryOutcome>> = vec![None; uniques.len()];
        for (k, slots) in by_k {
            let refs: Vec<&[f32]> = slots
                .iter()
                .map(|&s| embeddings[embed_slot_of[s]].as_deref().expect("embedded above"))
                .collect();
            match &self.live {
                None => {
                    let ladders = self
                        .model
                        .search_embedded_batch_budgeted_filtered(&refs, k, budget, None);
                    for (&s, ladder) in slots.iter().zip(ladders) {
                        outcomes[s] = Some(self.base_outcome(ladder));
                    }
                }
                Some(live) => {
                    let view = live.view();
                    let ladders = self.model.search_embedded_batch_budgeted_filtered(
                        &refs,
                        k,
                        budget,
                        Some(view.tombs()),
                    );
                    for (&s, ladder) in slots.iter().zip(ladders) {
                        let embedding =
                            embeddings[embed_slot_of[s]].as_deref().expect("embedded above");
                        outcomes[s] =
                            Some(self.merged_outcome(&view, ladder, embedding, k, budget));
                    }
                }
            }
        }
        slot_of
            .into_iter()
            .map(|s| outcomes[s].clone().expect("every unique slot answered"))
            .collect()
    }

    fn dedup_hits(&self) -> u64 {
        self.dedup_hits.load(Ordering::Relaxed)
    }

    fn mutate(&self, op: MutateOp) -> Result<MutateReply, String> {
        if self.read_only {
            return Err("replica is read-only: send mutations to the primary".to_string());
        }
        let Some(live) = &self.live else {
            return Err("server is read-only: started without live ingest (--live)".to_string());
        };
        let outcome = match op {
            MutateOp::AddTable { title, columns } => live
                .add_table(&self.model, &title, &columns)
                .map_err(|e| format!("add-table {title}: {e}"))?,
            MutateOp::DropTable { title } => {
                // Resolve the base-indexed ids for this title from the
                // repository; live ids resolve inside the lake.
                let base_ids: Vec<u32> = self
                    .repo
                    .iter()
                    .filter(|(_, col)| col.meta.table_title == title)
                    .map(|(id, _)| id.0)
                    .collect();
                live.drop_table(&title, &base_ids)
                    .map_err(|e| format!("drop-table {title}: {e}"))?
            }
        };
        Ok(MutateReply {
            seq: outcome.seq,
            applied: outcome.applied,
        })
    }

    fn live_stats(&self) -> Option<LiveStats> {
        self.live.as_ref().map(|live| {
            let s = live.stats();
            LiveStats {
                segments: s.segments,
                wal_bytes: s.wal_bytes,
                pending_tombstones: s.pending_tombstones,
                live_rows: s.live_rows,
            }
        })
    }

    fn drain(&self) {
        if self.read_only {
            // A replica never writes its synced live directory — flushing
            // would fork it from the primary's segment layout.
            return;
        }
        if let Some(live) = &self.live {
            if let Err(e) = live.flush() {
                eprintln!("warning: live-lake flush on shutdown failed: {e}");
            }
        }
    }

    fn cache_stats(&self) -> (u64, u64) {
        match &self.cache {
            Some(cache) => {
                let c = cache.lock().expect("query cache lock");
                (c.hits, c.misses)
            }
            None => (0, 0),
        }
    }
}

/// Build the server's snapshot [`Loader`] for a model artifact.
///
/// The loader re-reads `model_path` (or the path given in the reload
/// request) on every call, so `dj ctl reload` after retraining picks up the
/// new artifact without restarting the server. Non-fatal load degradations
/// (e.g. a corrupt HNSW section rescued by the flat fallback) become
/// snapshot warnings and flow into responses via the health field.
///
/// `cache_capacity` sizes each snapshot's query-embedding LRU (`dj serve
/// --query-cache`; `0` disables it). The cache belongs to the snapshot, so
/// a hot reload starts cold — stale embeddings can never outlive the model
/// that produced them.
pub fn snapshot_loader(model_path: String, repo: Arc<Repository>, cache_capacity: usize) -> Loader {
    Box::new(move |path| {
        let path = path.unwrap_or(&model_path);
        let loaded = load_model_path(Path::new(path))?;
        if loaded.model.indexed_len() == 0 {
            return Err(format!("{path} was saved without an index; retrain with dj train"));
        }
        let warnings = loaded.warnings.clone();
        Ok(LoadedSnapshot {
            model: Box::new(ServedModel::with_cache(
                loaded.model,
                repo.clone(),
                cache_capacity,
            )),
            warnings,
        })
    })
}

/// [`snapshot_loader`] for a server with live ingest: every snapshot wraps
/// the same [`LiveLake`], so mutations survive hot reloads. Each (re)load
/// verifies the lake's fingerprint against the freshly loaded model —
/// reloading a *different* model under a live directory full of embeddings
/// from the old one would silently corrupt search results, so it is
/// refused and the previous snapshot keeps serving.
pub fn live_snapshot_loader(
    model_path: String,
    repo: Arc<Repository>,
    cache_capacity: usize,
    live: Arc<LiveLake>,
) -> Loader {
    Box::new(move |path| {
        let path = path.unwrap_or(&model_path);
        let loaded = load_model_path(Path::new(path))?;
        if loaded.model.indexed_len() == 0 {
            return Err(format!("{path} was saved without an index; retrain with dj train"));
        }
        if model_fingerprint(&loaded.model) != live.fingerprint() {
            return Err(format!(
                "{path} is not the model this live directory belongs to \
                 (fingerprint mismatch); restart with a fresh --live directory to switch models"
            ));
        }
        let warnings = loaded.warnings.clone();
        Ok(LoadedSnapshot {
            model: Box::new(
                ServedModel::with_cache(loaded.model, repo.clone(), cache_capacity)
                    .with_live(live.clone()),
            ),
            warnings,
        })
    })
}

/// [`snapshot_loader`] for a replica: every (re)load re-reads the model
/// artifact *and* re-opens the synced live directory, because sync
/// installs both behind the server's back — a reload is how a freshly
/// synced generation (new model, new sealed segments, new manifest)
/// starts serving. The resulting snapshot is read-only: mutations are
/// refused and routed to the primary.
///
/// The live directory is best-effort by design. Mid-convergence states
/// (no manifest yet, or a manifest whose fingerprint belongs to a model
/// generation whose artifact hasn't landed) degrade to serving the base
/// index alone with a warning, never to a load failure — the next sync
/// round reconverges and reloads again.
pub fn replica_snapshot_loader(
    model_path: String,
    repo: Arc<Repository>,
    cache_capacity: usize,
    io: SharedIo,
    live_dir: Option<PathBuf>,
) -> Loader {
    Box::new(move |path| {
        let path = path.unwrap_or(&model_path);
        let loaded = load_model_path(Path::new(path))?;
        if loaded.model.indexed_len() == 0 {
            return Err(format!("{path} was saved without an index; retrain with dj train"));
        }
        let mut warnings = loaded.warnings.clone();
        let mut live = None;
        if let Some(live_dir) = live_dir
            .as_ref()
            .filter(|d| io.exists(&d.join(crate::live::MANIFEST_FILE)))
        {
            match LiveLake::open(io.clone(), live_dir.clone(), &loaded.model) {
                Ok(opened) => {
                    warnings.extend(opened.warnings);
                    live = Some(opened.lake);
                }
                Err(e) => warnings.push(format!(
                    "synced live directory unavailable ({e}); serving the base index only \
                     until the next sync round converges"
                )),
            }
        }
        let mut served = ServedModel::with_cache(loaded.model, repo.clone(), cache_capacity);
        if let Some(lake) = live {
            served = served.with_live(lake);
        }
        Ok(LoadedSnapshot {
            model: Box::new(served.read_only()),
            warnings,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DeepJoinConfig;
    use crate::train::JoinType;
    use deepjoin_lake::corpus::{Corpus, CorpusConfig, CorpusProfile};

    fn tiny_served() -> (ServedModel, Column) {
        let corpus = Corpus::generate(CorpusConfig::new(CorpusProfile::Webtable, 12, 7));
        let (repo, _) = corpus.to_repository();
        let config = DeepJoinConfig {
            fine_tune: crate::train::FineTuneConfig {
                epochs: 1,
                ..Default::default()
            },
            ..DeepJoinConfig::default()
        };
        let (mut model, _report) = DeepJoin::train(&repo, JoinType::Equi, config);
        model.index_repository(&repo);
        let query = repo.column(deepjoin_lake::column::ColumnId(0)).clone();
        (ServedModel::new(model, Arc::new(repo)), query)
    }

    #[test]
    fn served_model_answers_with_labels_and_health() {
        let (served, query) = tiny_served();
        assert!(served.indexed_len() > 0);
        assert_eq!(served.health(), Health::Hnsw);
        let out = served.query(&query.cells, "probe", 3, &Budget::unlimited());
        assert!(out.complete);
        assert!(!out.via_fallback);
        assert_eq!(out.hits.len(), 3);
        for h in &out.hits {
            assert!(h.label.contains('.'), "label '{}' is not table.column", h.label);
        }
    }

    #[test]
    fn query_cache_hits_on_repeats_and_answers_identically() {
        let (served, query) = tiny_served();
        // Re-wrap the same model with a cache: the uncached answer (first
        // call, a miss) must equal the cached one (second call, a hit).
        let cached = ServedModel::with_cache(served.model, served.repo, 4);
        assert_eq!(cached.cache_stats(), (0, 0));
        let a = cached.query(&query.cells, "probe", 3, &Budget::unlimited());
        assert_eq!(cached.cache_stats(), (0, 1));
        let b = cached.query(&query.cells, "probe", 3, &Budget::unlimited());
        assert_eq!(cached.cache_stats(), (1, 1), "repeat must hit");
        assert_eq!(a, b, "cached answer must equal the computed one");
        // A different name is a different query identity.
        cached.query(&query.cells, "other", 3, &Budget::unlimited());
        assert_eq!(cached.cache_stats(), (1, 2));
    }

    #[test]
    fn query_cache_evicts_least_recently_used() {
        let mut cache = QueryCache::new(2);
        cache.insert(1, vec![1.0]);
        cache.insert(2, vec![2.0]);
        assert!(cache.get(1).is_some(), "touch 1 so 2 is the LRU");
        cache.insert(3, vec![3.0]);
        assert!(cache.get(1).is_some());
        assert!(cache.get(2).is_none(), "2 was least recently used");
        assert!(cache.get(3).is_some());
        assert_eq!(cache.map.len(), 2);
    }

    #[test]
    fn wave_answers_are_bit_identical_to_single_queries() {
        let (served, query) = tiny_served();
        let other: Vec<String> = query.cells.iter().rev().cloned().collect();
        let singles: Vec<QueryOutcome> = [
            (&query.cells, "probe", 3usize),
            (&other, "other", 4),
            (&query.cells, "probe", 3),
        ]
        .iter()
        .map(|(cells, name, k)| served.query(cells, name, *k, &Budget::unlimited()))
        .collect();
        let wave = vec![
            WaveQuery { cells: &query.cells, name: "probe", k: 3 },
            WaveQuery { cells: &other, name: "other", k: 4 },
            WaveQuery { cells: &query.cells, name: "probe", k: 3 },
        ];
        let batch = served.query_batch(&wave, &Budget::unlimited());
        assert_eq!(batch, singles, "waves must not change answers");
        // The third member shared the first member's embedding and search.
        assert_eq!(served.dedup_hits(), 1);
    }

    #[test]
    fn wave_dedup_keeps_lru_accounting_correct() {
        let (served, query) = tiny_served();
        let cached = ServedModel::with_cache(served.model, served.repo, 8);
        let other: Vec<String> = query.cells.iter().rev().cloned().collect();
        let wave = vec![
            WaveQuery { cells: &query.cells, name: "probe", k: 3 },
            WaveQuery { cells: &other, name: "other", k: 3 },
            // Duplicate of member 0: a dedup hit, never an LRU touch.
            WaveQuery { cells: &query.cells, name: "probe", k: 3 },
            // Same query at a different k: shares the embedding (no second
            // LRU miss, no second forward pass) but searches separately.
            WaveQuery { cells: &query.cells, name: "probe", k: 2 },
        ];
        let batch = cached.query_batch(&wave, &Budget::unlimited());
        assert_eq!(batch.len(), 4);
        assert_eq!(batch[0], batch[2], "deduped members get the shared answer");
        assert_eq!(batch[3].hits.len(), 2);
        assert_eq!(cached.dedup_hits(), 1);
        // Two distinct query texts in the wave: two misses, no hits.
        assert_eq!(cached.cache_stats(), (0, 2));
        // The next wave finds both embeddings cached.
        let again = cached.query_batch(&wave[..2], &Budget::unlimited());
        assert_eq!(again, batch[..2].to_vec());
        assert_eq!(cached.cache_stats(), (2, 2), "repeat wave must hit");
    }

    #[test]
    fn expired_budget_yields_incomplete_outcome() {
        let (served, query) = tiny_served();
        let expired = Budget::with_deadline(
            std::time::Instant::now() - std::time::Duration::from_millis(1),
        );
        let out = served.query(&query.cells, "probe", 3, &expired);
        assert!(!out.complete, "expired budget must be reported");
    }
}
