//! The adapter between the model-agnostic server crate and the real
//! DeepJoin model: wraps a loaded [`DeepJoin`] (plus the repository that
//! supplies human-readable column labels) as a
//! [`deepjoin_serve::ServeModel`], and builds the snapshot [`Loader`] the
//! server calls at startup and on every hot reload.

use std::sync::Arc;

use deepjoin_ann::Budget;
use deepjoin_lake::column::{Column, ColumnMeta};
use deepjoin_lake::repository::Repository;
use deepjoin_serve::{Health, Hit, LoadedSnapshot, Loader, QueryOutcome, ServeModel};

use crate::model::{DeepJoin, IndexHealth};
use crate::persist::load_model;

/// A loaded model + its repository, queryable by the server. The
/// repository provides the `table.column` labels attached to hits; it is
/// shared (`Arc`) across reloads because the lake does not change when the
/// model artifact is swapped.
pub struct ServedModel {
    model: DeepJoin,
    repo: Arc<Repository>,
}

impl ServedModel {
    /// Wrap a model and the repository it indexes.
    pub fn new(model: DeepJoin, repo: Arc<Repository>) -> Self {
        Self { model, repo }
    }

    fn label(&self, id: u32) -> String {
        match self.repo.get(deepjoin_lake::column::ColumnId(id)) {
            Some(col) => format!("{}.{}", col.meta.table_title, col.meta.column_name),
            None => format!("col#{id}"),
        }
    }
}

impl ServeModel for ServedModel {
    fn indexed_len(&self) -> usize {
        self.model.indexed_len()
    }

    fn health(&self) -> Health {
        match self.model.index_health() {
            IndexHealth::Hnsw => Health::Hnsw,
            IndexHealth::DegradedFlat { reason } => Health::DegradedFlat { reason },
            IndexHealth::Missing => Health::Missing,
        }
    }

    fn query(&self, cells: &[String], name: &str, k: usize, budget: &Budget) -> QueryOutcome {
        let column = Column::new(
            cells.to_vec(),
            ColumnMeta {
                column_name: name.to_string(),
                ..ColumnMeta::default()
            },
        );
        let ladder = self.model.search_budgeted(&column, k, budget);
        QueryOutcome {
            hits: ladder
                .hits
                .into_iter()
                .map(|sc| Hit {
                    id: sc.id.0,
                    // The wire carries the raw distance; ScoredColumn holds
                    // the negated score.
                    score: -sc.score as f32,
                    label: self.label(sc.id.0),
                })
                .collect(),
            complete: ladder.complete,
            visited: ladder.visited,
            via_fallback: ladder.via_fallback,
        }
    }
}

/// Build the server's snapshot [`Loader`] for a model artifact.
///
/// The loader re-reads `model_path` (or the path given in the reload
/// request) on every call, so `dj ctl reload` after retraining picks up the
/// new artifact without restarting the server. Non-fatal load degradations
/// (e.g. a corrupt HNSW section rescued by the flat fallback) become
/// snapshot warnings and flow into responses via the health field.
pub fn snapshot_loader(model_path: String, repo: Arc<Repository>) -> Loader {
    Box::new(move |path| {
        let path = path.unwrap_or(&model_path);
        let bytes =
            std::fs::read(path).map_err(|e| format!("read model artifact {path}: {e}"))?;
        let loaded = load_model(&bytes).map_err(|e| format!("decode {path}: {e}"))?;
        if loaded.model.indexed_len() == 0 {
            return Err(format!("{path} was saved without an index; retrain with dj train"));
        }
        let warnings = loaded.warnings.clone();
        Ok(LoadedSnapshot {
            model: Box::new(ServedModel::new(loaded.model, repo.clone())),
            warnings,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DeepJoinConfig;
    use crate::train::JoinType;
    use deepjoin_lake::corpus::{Corpus, CorpusConfig, CorpusProfile};

    fn tiny_served() -> (ServedModel, Column) {
        let corpus = Corpus::generate(CorpusConfig::new(CorpusProfile::Webtable, 12, 7));
        let (repo, _) = corpus.to_repository();
        let config = DeepJoinConfig {
            fine_tune: crate::train::FineTuneConfig {
                epochs: 1,
                ..Default::default()
            },
            ..DeepJoinConfig::default()
        };
        let (mut model, _report) = DeepJoin::train(&repo, JoinType::Equi, config);
        model.index_repository(&repo);
        let query = repo.column(deepjoin_lake::column::ColumnId(0)).clone();
        (ServedModel::new(model, Arc::new(repo)), query)
    }

    #[test]
    fn served_model_answers_with_labels_and_health() {
        let (served, query) = tiny_served();
        assert!(served.indexed_len() > 0);
        assert_eq!(served.health(), Health::Hnsw);
        let out = served.query(&query.cells, "probe", 3, &Budget::unlimited());
        assert!(out.complete);
        assert!(!out.via_fallback);
        assert_eq!(out.hits.len(), 3);
        for h in &out.hits {
            assert!(h.label.contains('.'), "label '{}' is not table.column", h.label);
        }
    }

    #[test]
    fn expired_budget_yields_incomplete_outcome() {
        let (served, query) = tiny_served();
        let expired = Budget::with_deadline(
            std::time::Instant::now() - std::time::Duration::from_millis(1),
        );
        let out = served.query(&query.cells, "probe", 3, &expired);
        assert!(!out.complete, "expired budget must be reported");
    }
}
