//! # deepjoin
//!
//! The paper's primary contribution: joinable table discovery as
//! embedding-based retrieval with a fine-tuned column encoder and ANNS.
//!
//! Pipeline (paper Figure 1):
//!
//! 1. [`text`] — contextualize a column into a text sequence (all seven
//!    Table 1 options, with frequency-guided truncation);
//! 2. [`train`] — self-join labeling (equi via containment join, semantic
//!    via PEXESO), cell-shuffle augmentation, in-batch negatives, and the
//!    multiple-negatives-ranking fine-tuning loop;
//! 3. [`model`] — the [`model::DeepJoin`] model: train → embed → HNSW index
//!    → top-k search under Euclidean distance;
//! 4. [`baselines`] — the embedding baselines of §5.1 (fastText, un-fine-
//!    tuned PLM averages, TaBERT-like, MLP) behind a common retriever;
//! 5. [`batch`] — single-thread vs multi-thread encoding (the CPU/GPU
//!    regimes of the efficiency study).
//!
//! ```
//! use deepjoin::model::{DeepJoin, DeepJoinConfig, Variant};
//! use deepjoin::train::JoinType;
//! use deepjoin_lake::corpus::{Corpus, CorpusConfig, CorpusProfile};
//!
//! let corpus = Corpus::generate(CorpusConfig::new(CorpusProfile::Webtable, 200, 7));
//! let (repo, _) = corpus.to_repository();
//! let cfg = DeepJoinConfig { dim: 16,
//!     sgns: deepjoin_embed::SgnsConfig { dim: 16, epochs: 1, ..Default::default() },
//!     fine_tune: deepjoin::train::FineTuneConfig { epochs: 1, ..Default::default() },
//!     ..DeepJoinConfig::default() };
//! let (mut model, report) = DeepJoin::train(&repo, JoinType::Equi, cfg);
//! assert!(report.num_positives > 0);
//! model.index_repository(&repo);
//! let hits = model.search(&repo.columns()[0].clone(), 5);
//! assert_eq!(hits.len(), 5);
//! ```

#![warn(missing_docs)]

pub mod baselines;
pub mod batch;
pub mod checkpoint;
pub mod live;
pub mod model;
pub mod persist;
pub mod rerank;
pub mod serving;
pub mod text;
pub mod train;
pub mod trainer;

pub use checkpoint::{CheckpointMeta, CheckpointStore, LoadedCheckpoint};
pub use live::{model_fingerprint, Compactor, LiveLake, LiveLakeStats, LiveOpen, LiveView};
pub use model::{
    DeepJoin, DeepJoinConfig, IndexHealth, IndexState, LadderSearch, TrainLineage, TrainReport,
    Variant,
};
pub use persist::{load_model, load_model_path, save_model, LoadedModel, SectionInfo};
pub use rerank::{RerankConfig, RerankingSearcher};
pub use serving::{live_snapshot_loader, snapshot_loader, ServedModel};
pub use text::{CellFrequencies, Textizer, TransformOption};
pub use train::{FineTuneConfig, JoinType, TrainDataConfig};
pub use trainer::{fine_tune_checkpointed, TrainOutcome, TrainerConfig};
