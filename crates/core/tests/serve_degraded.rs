//! Degradation acceptance test (ISSUE PR 4): serving a model artifact
//! whose HNSW section is corrupt must still answer queries — via the exact
//! flat fallback, flagged `degraded` — and a hot reload of the repaired
//! artifact must restore full health without a restart.

use std::sync::Arc;
use std::time::Duration;

use deepjoin::model::{DeepJoin, DeepJoinConfig};
use deepjoin::persist::{load_model, save_model};
use deepjoin::serving::snapshot_loader;
use deepjoin::train::{FineTuneConfig, JoinType};
use deepjoin_lake::corpus::{Corpus, CorpusConfig, CorpusProfile};
use deepjoin_lake::repository::Repository;
use deepjoin_serve::{Client, Server, ServerConfig};

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("dj-serve-degraded-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }

    fn path(&self, name: &str) -> std::path::PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn tiny_trained() -> (DeepJoin, Repository, Corpus) {
    let corpus = Corpus::generate(CorpusConfig::new(CorpusProfile::Webtable, 12, 7));
    let (repo, _) = corpus.to_repository();
    let config = DeepJoinConfig {
        fine_tune: FineTuneConfig {
            epochs: 1,
            ..Default::default()
        },
        ..DeepJoinConfig::default()
    };
    let (mut model, _report) = DeepJoin::train(&repo, JoinType::Equi, config);
    model.index_repository(&repo);
    (model, repo, corpus)
}

#[test]
fn corrupt_hnsw_serves_exact_flat_answers_and_reload_recovers() {
    let tmp = TempDir::new("ladder");
    let (model, repo, corpus) = tiny_trained();

    let good_path = tmp.path("good.model");
    let bytes = save_model(&model, true);
    std::fs::write(&good_path, &bytes).unwrap();

    // The HNSW graph section is written last; flipping the final byte
    // damages only it (same idiom as the persist degradation tests).
    let mut bad = bytes.clone();
    let last = bad.len() - 1;
    bad[last] ^= 0x01;
    let bad_path = tmp.path("bad.model");
    std::fs::write(&bad_path, &bad).unwrap();

    // What the corrupted artifact should answer: the exact flat scan the
    // loader degrades to (already proven brute-force-exact in persist.rs).
    // The wire protocol carries cells + a name but no table metadata, so
    // the oracle must embed the same metadata-stripped column the server
    // will reconstruct.
    let (query, _) = corpus.sample_queries(1, 0x0BEE).pop().unwrap();
    let wire_query = deepjoin_lake::column::Column::new(
        query.cells.clone(),
        deepjoin_lake::column::ColumnMeta {
            column_name: "probe".to_string(),
            ..Default::default()
        },
    );
    let degraded_model = load_model(&bad).unwrap().model;
    let expected_ids: Vec<u32> = degraded_model
        .search(&wire_query, 5)
        .iter()
        .map(|s| s.id.0)
        .collect();

    // Serve the corrupted artifact.
    let loader = snapshot_loader(bad_path.to_str().unwrap().to_string(), Arc::new(repo), 0);
    let server = Server::start(
        ServerConfig {
            deadline: Some(Duration::from_secs(30)),
            ..ServerConfig::default()
        },
        loader,
    )
    .expect("server must start on a degraded artifact");
    assert!(
        server
            .startup_warnings()
            .iter()
            .any(|w| w.contains("flat")),
        "degradation must be surfaced at startup: {:?}",
        server.startup_warnings()
    );
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().unwrap());

    let mut client = Client::connect(&addr).unwrap();
    let reply = client
        .query("probe", &query.cells, 5)
        .expect("degraded server must answer, not refuse");
    assert!(reply.degraded, "degraded index must flag every answer");
    assert!(reply.complete, "no deadline pressure here: scan completes");
    assert!(
        reply.health_label.starts_with("degraded-flat"),
        "health must say what rung is serving, got '{}'",
        reply.health_label
    );
    let got_ids: Vec<u32> = reply.hits.iter().map(|h| h.id).collect();
    assert_eq!(
        got_ids, expected_ids,
        "served answers must match the exact flat scan over the recovered vectors"
    );

    // Hot reload the repaired artifact: health returns to hnsw, answers
    // lose the degraded flag, and nobody restarted anything.
    let (generation, warnings) = client
        .reload(Some(good_path.to_str().unwrap()))
        .expect("reload of the intact artifact");
    assert_eq!(generation, 2);
    assert!(warnings.is_empty(), "intact artifact loads clean: {warnings:?}");
    let reply = client.query("probe", &query.cells, 5).unwrap();
    assert!(!reply.degraded, "recovered server must drop the flag");
    assert_eq!(reply.health_label, "hnsw");
    assert_eq!(reply.generation, 2);

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn reload_failure_keeps_previous_snapshot_serving() {
    let tmp = TempDir::new("badreload");
    let (model, repo, corpus) = tiny_trained();
    let good_path = tmp.path("good.model");
    std::fs::write(&good_path, save_model(&model, true)).unwrap();

    let loader = snapshot_loader(good_path.to_str().unwrap().to_string(), Arc::new(repo), 0);
    let server = Server::start(ServerConfig::default(), loader).unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().unwrap());

    let (query, _) = corpus.sample_queries(1, 0x0BEE).pop().unwrap();
    let mut client = Client::connect(&addr).unwrap();
    let before = client.query("probe", &query.cells, 3).unwrap();

    // Reload pointing at a file that does not exist: structured error...
    let err = client
        .reload(Some(tmp.path("missing.model").to_str().unwrap()))
        .expect_err("reload of a missing artifact must fail");
    assert!(err.to_string().contains("previous snapshot"), "{err}");

    // ...and the old snapshot keeps answering, same generation.
    let after = client.query("probe", &query.cells, 3).unwrap();
    assert_eq!(after.generation, before.generation);
    assert_eq!(
        after.hits.iter().map(|h| h.id).collect::<Vec<_>>(),
        before.hits.iter().map(|h| h.id).collect::<Vec<_>>()
    );

    handle.shutdown();
    join.join().unwrap();
}
